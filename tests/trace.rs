//! Trace-schema integration tests: a recorded stencil-with-faults run
//! round-trips through the Chrome `trace_event` exporter and stays
//! well-formed.
//!
//! The contract under test: (1) the exported JSON parses and every event
//! carries the fields `chrome://tracing` requires (`ph`, `pid`, `tid`,
//! `ts`); (2) span nesting is well-formed per rank lane — no span exits
//! before it enters, every span that enters exits, and virtual timestamps
//! are monotone along each lane's B/E sequence; (3) the phase spans the
//! paper's pipeline is made of (pack → wire → unpack, plus the staged
//! copy) appear nested where they belong and name their method; (4) for a
//! fixed fault seed the per-lane event sequence replays exactly.
//!
//! Seeds 7 and 424242 keep the fault interleavings honest: one light,
//! one heavy.

use std::collections::BTreeMap;

use mpi_sim::consts::MPI_BYTE;
use mpi_sim::{FaultPlan, SchedMode, World, WorldConfig};
use tempi_core::config::{Method, TempiConfig, TunerMode};
use tempi_core::interpose::InterposedMpi;
use tempi_core::{TraceLevel, Tracer};
use tempi_stencil::{HaloConfig, HaloExchanger};

const SEEDS: [u64; 2] = [7, 424242];

/// A fully traced 4-rank halo-exchange run under a seeded fault plan:
/// transient link faults, injected delays and kernel kills (degradation
/// to the CPU copy path), two iterations.
fn traced_stencil(seed: u64) -> Tracer {
    let tracer = Tracer::new(TraceLevel::Full);
    let mut cfg = WorldConfig::summit(4);
    cfg.net.ranks_per_node = 2;
    let cfg = cfg
        .with_faults(
            FaultPlan::parse(&format!(
                "seed={seed},send=0.1,recv=0.05,retries=6,backoff=15us,delay=0.2:30us,kernel=0.3"
            ))
            .unwrap(),
        )
        .with_tracer(tracer.clone());
    World::run(&cfg, |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
        ex.fill(ctx)?;
        ex.exchange(ctx, &mut mpi)?;
        ex.exchange(ctx, &mut mpi)?;
        mpi.publish_metrics(&ctx.tracer);
        Ok(())
    })
    .expect("traced stencil world");
    tracer
}

fn parse_events(tracer: &Tracer) -> Vec<serde_json::Value> {
    let doc: serde_json::Value =
        serde_json::from_str(&tracer.chrome_trace()).expect("chrome trace must be valid JSON");
    assert_eq!(doc["displayTimeUnit"], "ms");
    doc["traceEvents"]
        .as_array()
        .expect("traceEvents must be an array")
        .clone()
}

#[test]
fn chrome_export_is_valid_and_complete_for_stencil_with_faults() {
    for seed in SEEDS {
        let tracer = traced_stencil(seed);
        assert!(tracer.event_count() > 0, "seed {seed}: nothing recorded");
        let evs = parse_events(&tracer);

        for e in &evs {
            let ph = e["ph"].as_str().expect("ph must be a string");
            assert!(
                matches!(ph, "B" | "E" | "X" | "i" | "M"),
                "seed {seed}: unexpected phase {ph:?} in {e}"
            );
            assert!(e["pid"].is_u64(), "seed {seed}: pid missing in {e}");
            assert!(e["tid"].is_u64(), "seed {seed}: tid missing in {e}");
            match ph {
                "M" => assert!(e["name"].is_string(), "metadata must be named: {e}"),
                "E" => assert!(e["ts"].is_number(), "E needs ts: {e}"),
                _ => {
                    assert!(e["ts"].is_number(), "{ph} needs ts: {e}");
                    assert!(e["name"].is_string(), "{ph} needs a name: {e}");
                }
            }
            if ph == "X" {
                assert!(e["dur"].as_f64().unwrap() >= 0.0, "negative dur: {e}");
            }
            if ph == "i" {
                assert_eq!(e["s"], "t", "instants must be thread-scoped: {e}");
            }
        }

        // every rank is named, and every rank has both lanes labelled
        for rank in 0..4u64 {
            assert!(
                evs.iter().any(|e| e["name"] == "process_name"
                    && e["pid"] == rank
                    && e["args"]["name"] == format!("rank {rank}")),
                "seed {seed}: rank {rank} has no process_name metadata"
            );
            for (tid, lane) in [(0u64, "cpu"), (1u64, "gpu")] {
                assert!(
                    evs.iter().any(|e| e["name"] == "thread_name"
                        && e["pid"] == rank
                        && e["tid"] == tid
                        && e["args"]["name"] == lane),
                    "seed {seed}: rank {rank} lane {lane} unlabelled"
                );
            }
        }
    }
}

#[test]
fn spans_nest_well_formed_with_monotone_timestamps() {
    for seed in SEEDS {
        let evs = parse_events(&traced_stencil(seed));
        // Per (pid, tid): walk the B/E sequence in emission order. Depth
        // must never go negative (no exit before enter), must return to
        // zero (every enter exits, even on degraded/error paths), and ts
        // must be monotone — the virtual clock never runs backwards
        // within a lane. X/i events interleave freely (an X's ts is its
        // *start*), so only B/E participate here.
        let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
        let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
        for e in &evs {
            let ph = e["ph"].as_str().unwrap();
            if ph != "B" && ph != "E" {
                continue;
            }
            let key = (e["pid"].as_u64().unwrap(), e["tid"].as_u64().unwrap());
            let ts = e["ts"].as_f64().unwrap();
            let prev = last_ts.insert(key, ts).unwrap_or(f64::MIN);
            assert!(
                ts >= prev,
                "seed {seed}: lane {key:?} time ran backwards ({prev} -> {ts}) at {e}"
            );
            let d = depth.entry(key).or_insert(0);
            if ph == "B" {
                *d += 1;
            } else {
                *d -= 1;
                assert!(
                    *d >= 0,
                    "seed {seed}: lane {key:?} exited an unopened span at {e}"
                );
            }
        }
        for (key, d) in &depth {
            assert_eq!(*d, 0, "seed {seed}: lane {key:?} left {d} span(s) open");
        }
    }
}

#[test]
fn stencil_phases_nest_inside_the_exchange_span() {
    let evs = parse_events(&traced_stencil(SEEDS[0]));
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let (mut packs_nested, mut unpacks_nested, mut collectives_nested) = (0u64, 0u64, 0u64);
    for e in &evs {
        let key = (
            e["pid"].as_u64().unwrap_or(u64::MAX),
            e["tid"].as_u64().unwrap_or(u64::MAX),
        );
        match e["ph"].as_str().unwrap() {
            "B" => {
                let name = e["name"].as_str().unwrap().to_string();
                let stack = stacks.entry(key).or_default();
                let inside_exchange = stack.iter().any(|s| s == "halo.exchange");
                match name.as_str() {
                    "MPI_Pack" if inside_exchange => packs_nested += 1,
                    "MPI_Unpack" if inside_exchange => unpacks_nested += 1,
                    "alltoallv" if inside_exchange => collectives_nested += 1,
                    _ => {}
                }
                stack.push(name);
            }
            "E" => {
                stacks.entry(key).or_default().pop();
            }
            _ => {}
        }
    }
    // 4 ranks x 2 iterations, each exchanging 26 neighbor directions:
    // the phase spans must show up *inside* halo.exchange, repeatedly.
    assert!(
        packs_nested >= 8,
        "only {packs_nested} nested MPI_Pack spans"
    );
    assert!(
        unpacks_nested >= 8,
        "only {unpacks_nested} nested MPI_Unpack spans"
    );
    assert!(
        collectives_nested >= 8,
        "only {collectives_nested} nested alltoallv spans"
    );
    // the GPU lane saw traced kernel/copy work
    assert!(
        evs.iter()
            .any(|e| e["ph"] == "X" && e["tid"] == 1 && e["ts"].is_number()),
        "no GPU-lane complete events recorded"
    );
}

#[test]
fn per_lane_sequences_replay_exactly_for_a_seed() {
    // Buffer order across ranks depends on host thread scheduling, but
    // each lane's own sequence is virtual-time deterministic: same seed,
    // same spans, same timestamps.
    let lanes = |tracer: &Tracer| {
        type LaneSeq = Vec<(String, String, String)>;
        let mut m: BTreeMap<(u64, u64), LaneSeq> = BTreeMap::new();
        for e in parse_events(tracer) {
            let ph = e["ph"].as_str().unwrap().to_string();
            if ph == "M" {
                continue;
            }
            let key = (e["pid"].as_u64().unwrap(), e["tid"].as_u64().unwrap());
            m.entry(key).or_default().push((
                ph,
                e["name"].as_str().unwrap_or("").to_string(),
                e["ts"].to_string(),
            ));
        }
        m
    };
    let a = lanes(&traced_stencil(SEEDS[1]));
    let b = lanes(&traced_stencil(SEEDS[1]));
    assert_eq!(
        a, b,
        "seeded traced runs must replay per-lane sequences exactly"
    );
}

/// One fully deterministic observable of a world run: the per-rank results
/// (virtual clock, verified ghost cells, tuner counters) plus the complete
/// Chrome trace JSON (which embeds every span, timestamp, method choice,
/// and `tuner.decide` instant).
fn seeded_run(mode: SchedMode, workers: usize) -> (Vec<(u64, usize, u64, u64)>, String) {
    let tracer = Tracer::new(TraceLevel::Full);
    let mut cfg = WorldConfig::summit(4);
    cfg.net.ranks_per_node = 2;
    let cfg = cfg
        .with_faults(
            FaultPlan::parse("seed=424242,send=0.1,retries=6,backoff=15us,delay=0.2:30us").unwrap(),
        )
        .with_tracer(tracer.clone())
        .with_sched_mode(mode)
        .with_sched_workers(workers);
    let results = World::run(&cfg, |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig {
            tuner: TunerMode::Online,
            ..TempiConfig::default()
        });
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
        ex.fill(ctx)?;
        ex.exchange(ctx, &mut mpi)?;
        ex.exchange(ctx, &mut mpi)?;
        let ghosts = ex.verify_ghosts(ctx)?;
        // The halo path packs into byte sends, which never consults the
        // tuner; a typed strided ring forces `tuner.choose` so the trace
        // comparison also pins every online tuner decision. Sends are
        // eager, so send-before-recv cannot deadlock.
        let dt = ctx.type_vector(64, 16, 64, MPI_BYTE)?;
        mpi.type_commit(ctx, dt)?;
        let ring = ctx.gpu.malloc(64 * 64 + 64)?;
        let n = ctx.size;
        for _ in 0..3 {
            mpi.send(ctx, ring, 1, dt, (ctx.rank + 1) % n, 9)?;
            mpi.recv(ctx, ring, 1, dt, Some((ctx.rank + n - 1) % n), Some(9))?;
        }
        ctx.gpu.free(ring)?;
        mpi.publish_metrics(&ctx.tracer);
        Ok((
            ctx.clock.now().as_ps(),
            ghosts,
            mpi.tempi.stats.tuner_probes,
            mpi.tempi.stats.tuner_bucket_hits,
        ))
    })
    .expect("seeded world");
    (results, tracer.chrome_trace())
}

#[test]
fn scheduler_worker_count_never_changes_results_traces_or_tuner_decisions() {
    // The determinism contract of the event scheduler: the same seed at
    // M=1 and M=8 workers produces byte-identical per-rank results and a
    // byte-identical Chrome trace (which embeds every tuner decision as a
    // `tuner.decide` instant) — and both match the legacy thread backend.
    let (r1, t1) = seeded_run(SchedMode::Events, 1);
    let (r8, t8) = seeded_run(SchedMode::Events, 8);
    assert_eq!(r1, r8, "per-rank results depend on the worker count");
    assert_eq!(t1, t8, "Chrome traces depend on the worker count");

    let (rt, tt) = seeded_run(SchedMode::Threads, 1);
    assert_eq!(r1, rt, "event-mode results diverge from thread mode");
    assert_eq!(t1, tt, "event-mode traces diverge from thread mode");

    // The trace really does pin the tuner: decisions were recorded.
    assert!(
        t1.contains("tuner.decide"),
        "expected tuner.decide instants in the full trace"
    );
}

#[test]
fn send_path_spans_carry_the_method_and_phase_breakdown() {
    // A staged 2-rank typed send: the MPI_Send/MPI_Recv span pair must
    // report its method, and the pipeline phases pack -> copy -> wire ->
    // unpack must appear as complete events.
    let tracer = Tracer::new(TraceLevel::Full);
    let mut cfg = WorldConfig::summit(2);
    cfg.net.ranks_per_node = 1;
    let cfg = cfg.with_tracer(tracer.clone());
    World::run(&cfg, |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig {
            force_method: Some(Method::Staged),
            ..TempiConfig::default()
        });
        let dt = ctx.type_vector(64, 16, 64, MPI_BYTE)?;
        mpi.type_commit(ctx, dt)?;
        let buf = ctx.gpu.malloc(64 * 64 + 64)?;
        if ctx.rank == 0 {
            mpi.send(ctx, buf, 1, dt, 1, 0)?;
        } else {
            mpi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
        }
        mpi.publish_metrics(&ctx.tracer);
        Ok(())
    })
    .expect("traced send world");

    let evs = parse_events(&tracer);
    assert!(
        evs.iter()
            .any(|e| e["ph"] == "E" && e["args"]["method"] == "Staged"),
        "no span end reports args.method = Staged"
    );
    assert!(
        evs.iter()
            .any(|e| e["ph"] == "B" && e["name"] == "MPI_Send"),
        "no MPI_Send span"
    );
    for phase in ["pack", "copy", "wire", "unpack"] {
        assert!(
            evs.iter().any(|e| e["ph"] == "X" && e["name"] == phase),
            "phase span `{phase}` missing from the staged send trace"
        );
    }
    // the metrics registry drained into JSONL names the send counter
    let jsonl = tracer.metrics_jsonl();
    assert!(
        jsonl.lines().any(|l| l.contains("tempi.staged_sends")),
        "metrics JSONL lacks tempi.staged_sends:\n{jsonl}"
    );
}
