//! Fault-injection integration tests across the whole stack.
//!
//! The contract under test: with a deterministic fault plan active,
//! (1) degradation preserves application bytes — a stencil halo exchange
//! under injected GPU faults produces the same grid as a fault-free run;
//! (2) replay is exact — the same seed yields identical degradation-event
//! logs, fault statistics, and virtual times; (3) an *inactive* plan is
//! free — same bytes and same virtual times as no plan at all.

mod common;

use common::pattern;
use gpu_sim::SimTime;
use mpi_sim::consts::MPI_BYTE;
use mpi_sim::datatype::pack_cpu;
use mpi_sim::{FaultPlan, MpiError, World, WorldConfig};
use tempi_core::config::{Method, TempiConfig};
use tempi_core::interpose::InterposedMpi;
use tempi_stencil::{HaloConfig, HaloExchanger};

/// Run one TEMPI-interposed halo exchange; returns each rank's final grid
/// bytes, degradation-event count, and final virtual time in picoseconds.
fn exchange_under(cfg: &WorldConfig, n: usize) -> Vec<(Vec<u8>, usize, u64)> {
    World::run(cfg, move |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(n))?;
        ex.fill(ctx)?;
        ex.exchange(ctx, &mut mpi)?;
        let bytes = ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())?;
        Ok((
            bytes,
            ctx.faults.stats.events.len(),
            ctx.clock.now().as_ps(),
        ))
    })
    .expect("world")
}

#[test]
fn halo_exchange_survives_kernel_kill_with_identical_bytes() {
    // kernel=1.0 kills every pack/unpack kernel launch; the ladder must
    // degrade to the CPU copy path on all ranks, and the resulting grids
    // must equal the fault-free run bit-for-bit.
    let mut cfg = WorldConfig::summit(4);
    cfg.net.ranks_per_node = 2;
    let clean = exchange_under(&cfg, 6);
    let faulty = exchange_under(
        &cfg.clone()
            .with_faults(FaultPlan::parse("kernel=1.0").unwrap()),
        6,
    );
    let degradations: usize = faulty.iter().map(|(_, e, _)| e).sum();
    assert!(degradations > 0, "the kernel kill must be observed");
    for (rank, ((a, _, _), (b, _, _))) in clean.iter().zip(faulty.iter()).enumerate() {
        assert_eq!(a, b, "rank {rank} grid bytes diverged under degradation");
    }
}

#[test]
fn same_seed_replays_identical_logs_and_virtual_times() {
    // Transient link faults + injected latency, all seeded: two runs must
    // agree on every degradation event, every counter, and the clock. CI
    // varies the seed (TEMPI_FAULT_SEED) to catch nondeterminism that a
    // single lucky seed would hide.
    let seed: u64 = std::env::var("TEMPI_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let run = || {
        let mut cfg = WorldConfig::summit(4);
        cfg.net.ranks_per_node = 2;
        let cfg = cfg.with_faults(
            FaultPlan::parse(&format!(
                "seed={seed},send=0.1,recv=0.05,retries=6,backoff=15us,delay=0.2:30us"
            ))
            .unwrap(),
        );
        World::run(&cfg, |ctx| {
            let mut mpi = InterposedMpi::new(TempiConfig::default());
            let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
            ex.fill(ctx)?;
            ex.exchange(ctx, &mut mpi)?;
            ex.exchange(ctx, &mut mpi)?;
            let s = &ctx.faults.stats;
            let log: Vec<String> = s.events.iter().map(|e| e.to_string()).collect();
            Ok((
                ctx.clock.now().as_ps(),
                s.send_faults,
                s.recv_faults,
                s.retries,
                s.backoff_time.as_ps(),
                s.delays,
                s.delay_time.as_ps(),
                log,
            ))
        })
        .expect("world")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "seeded fault runs must replay exactly");
    let activity: u64 = a.iter().map(|r| r.1 + r.2 + r.5).sum();
    assert!(activity > 0, "the seeded plan must inject something");
}

#[test]
fn inactive_fault_plan_is_zero_cost() {
    // A plan with a seed but no fault sites must not perturb bytes or
    // virtual time relative to running with no plan at all.
    let mut cfg = WorldConfig::summit(2);
    cfg.net.ranks_per_node = 2;
    let off = exchange_under(&cfg, 4);
    let inert = exchange_under(
        &cfg.clone().with_faults(FaultPlan::parse("seed=5").unwrap()),
        4,
    );
    assert_eq!(off, inert, "an inactive plan must be invisible");
}

#[test]
fn degraded_send_still_delivers_pack_oracle_bytes() {
    // alloc@1 kills exactly the sender's pooled device staging buffer
    // (alloc #0 is the application grid): the forced Device method must
    // degrade to OneShot, log the downgrade, and the receiver's bytes must
    // match the CPU pack oracle applied to the sender's pattern.
    let mut cfg = WorldConfig::summit(2);
    cfg.net.ranks_per_node = 1;
    let cfg = cfg.with_faults(FaultPlan::parse("alloc@1").unwrap());
    let span = 15 * 24 + 8; // vector(16, 8, 24) footprint
    let results = World::run(&cfg, move |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig {
            force_method: Some(Method::Device),
            ..TempiConfig::default()
        });
        let dt = ctx.type_vector(16, 8, 24, MPI_BYTE)?;
        mpi.type_commit(ctx, dt)?;
        let buf = ctx.gpu.malloc(span)?; // device alloc #0 on every rank
        if ctx.rank == 0 {
            ctx.gpu.memory().poke(buf, &pattern(span))?;
            mpi.send(ctx, buf, 1, dt, 1, 0)?;
            let ev = &ctx.faults.stats.events;
            Ok((ev.len() == 1 && ev[0].from == "Device" && ev[0].to == "OneShot") as u8 as u64)
        } else {
            let st = mpi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
            if st.bytes != 128 {
                return Err(MpiError::Internal(format!("short recv: {}", st.bytes)));
            }
            let raw = ctx.gpu.memory().peek(buf, span)?;
            let reg = ctx.registry().clone();
            let reg = reg.read();
            let mut got = vec![0u8; 128];
            let mut pos = 0;
            pack_cpu::pack(&reg, &raw, 0, 1, dt, &mut got, &mut pos)?;
            let mut want = vec![0u8; 128];
            let mut pos = 0;
            pack_cpu::pack(&reg, &pattern(span), 0, 1, dt, &mut want, &mut pos)?;
            Ok((got == want) as u8 as u64)
        }
    })
    .unwrap();
    assert_eq!(results[0], 1, "rank 0 must log exactly Device -> OneShot");
    assert_eq!(results[1], 1, "received bytes must match the pack oracle");
}

#[test]
fn transient_taxonomy_is_exhaustive_over_every_error_variant() {
    // Every MpiError variant, with every GpuError variant wrapped under
    // `Gpu`, paired with the expected (is_transient, is_comm_failure)
    // verdicts. The retry/degrade/recover machinery keys off these two
    // predicates, so a new variant with the wrong default silently changes
    // fault-handling behavior — this table is the tripwire.
    use gpu_sim::{GpuError, MemSpace};

    let gpu_cases: Vec<(GpuError, bool)> = vec![
        (GpuError::InvalidPointer { alloc: 3 }, false),
        (
            GpuError::OutOfBounds {
                alloc: 3,
                offset: 8,
                len: 16,
                size: 4,
            },
            false,
        ),
        (
            GpuError::NotDeviceAccessible {
                space: MemSpace::Host,
            },
            false,
        ),
        (GpuError::NotHostAccessible, false),
        (
            GpuError::InvalidLaunch {
                reason: "grid too large".into(),
            },
            false,
        ),
        (
            GpuError::OutOfMemory {
                requested: 1 << 30,
                available: 0,
            },
            true,
        ),
        (GpuError::OverlappingBuffers, false),
        // KernelFault inherits transience from its source — one of each
        (
            GpuError::KernelFault {
                kernel: "pack_2d".into(),
                source: Box::new(GpuError::StreamFault {
                    op: "launch".into(),
                }),
            },
            true,
        ),
        (
            GpuError::KernelFault {
                kernel: "pack_2d".into(),
                source: Box::new(GpuError::NotHostAccessible),
            },
            false,
        ),
        (
            GpuError::StreamFault {
                op: "memcpy".into(),
            },
            true,
        ),
    ];
    // (error, is_transient, is_comm_failure)
    let mut cases: Vec<(MpiError, bool, bool)> = vec![
        (MpiError::InvalidDatatype, false, false),
        (MpiError::NotCommitted, false, false),
        (MpiError::InvalidArg("count < 0".into()), false, false),
        (
            MpiError::Truncated {
                sent: 64,
                capacity: 32,
                envelope: None,
            },
            false,
            false,
        ),
        (MpiError::InvalidRank { rank: 9, size: 4 }, false, false),
        (
            MpiError::BufferTooSmall {
                required: 64,
                available: 16,
                envelope: None,
            },
            false,
            false,
        ),
        (MpiError::PeerGone, false, true),
        (MpiError::Revoked, false, true),
        (MpiError::CommTransient { peer: 1 }, true, false),
        (
            MpiError::CommFailed {
                peer: 1,
                attempts: 4,
            },
            false,
            true,
        ),
        (
            MpiError::Corrupted {
                peer: 1,
                attempts: 4,
            },
            false,
            true,
        ),
        (MpiError::Internal("bug".into()), false, false),
    ];
    for (gpu, transient) in gpu_cases {
        // GPU faults are never communicator failures: revoke/shrink cannot
        // fix a device
        cases.push((MpiError::Gpu(gpu), transient, false));
    }
    for (err, transient, comm) in &cases {
        assert_eq!(
            err.is_transient(),
            *transient,
            "is_transient({err:?}) mis-classified"
        );
        assert_eq!(
            err.is_comm_failure(),
            *comm,
            "is_comm_failure({err:?}) mis-classified"
        );
        // the two classes are disjoint by construction: a transient error
        // is retried in place, a comm failure tears the communicator down
        assert!(
            !(err.is_transient() && err.is_comm_failure()),
            "{err:?} cannot be both transient and a communicator failure"
        );
    }
    assert_eq!(cases.len(), 12 + 10, "one row per variant (plus GPU split)");
}

#[test]
fn scheduled_rank_exit_fails_cleanly_not_by_hanging() {
    // A rank scheduled to die at a virtual instant: sends addressed to it
    // after that instant fail fast with PeerGone instead of deadlocking.
    let cfg = WorldConfig::summit(1).with_faults(FaultPlan::parse("exit=0@5us").unwrap());
    let mut ctx = mpi_sim::RankCtx::standalone(&cfg);
    let buf = ctx.gpu.host_alloc(64).unwrap();
    ctx.gpu.memory().poke(buf, &pattern(64)).unwrap();
    ctx.send_bytes(buf, 64, 0, 0).unwrap(); // before the exit: fine
    ctx.clock.advance(SimTime::from_us(10));
    assert_eq!(ctx.send_bytes(buf, 64, 0, 0), Err(MpiError::PeerGone));
    assert_eq!(
        ctx.recv_bytes(buf, 64, Some(0), None),
        Err(MpiError::PeerGone)
    );
    assert_eq!(ctx.faults.stats.peer_gone, 2);
}
