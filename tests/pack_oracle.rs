//! Property tests: TEMPI's GPU pack/unpack agree with the CPU typemap
//! oracle for arbitrary bounded derived datatypes, and unpack inverts
//! pack.

mod common;

use common::{arb_typedesc, pattern, span_of, TypeDesc};
use mpi_sim::datatype::pack_cpu;
use mpi_sim::{RankCtx, WorldConfig};
use proptest::prelude::*;
use tempi_core::config::TempiConfig;
use tempi_core::interpose::InterposedMpi;

fn ctx() -> RankCtx {
    RankCtx::standalone(&WorldConfig::summit(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For any generated datatype, TEMPI's GPU MPI_Pack produces exactly
    /// the bytes the reference CPU pack produces.
    #[test]
    fn gpu_pack_matches_cpu_oracle(desc in arb_typedesc(), incount in 1usize..3) {
        let mut ctx = ctx();
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let dt = desc.build(&mut ctx).unwrap();
        mpi.type_commit(&mut ctx, dt).unwrap();

        let size = ctx.attrs(dt).unwrap().size as usize * incount;
        prop_assume!(size > 0 && size < 1 << 20);
        let span = span_of(&ctx, dt, incount);
        let data = pattern(span);

        // GPU pack through TEMPI
        let src = ctx.gpu.malloc(span).unwrap();
        ctx.gpu.memory().poke(src, &data).unwrap();
        let dst = ctx.gpu.malloc(size).unwrap();
        let mut pos = 0;
        mpi.pack(&mut ctx, src, incount, dt, dst, size, &mut pos).unwrap();
        prop_assert_eq!(pos, size);
        let gpu_out = ctx.gpu.memory().peek(dst, size).unwrap();

        // CPU oracle
        let reg = ctx.registry().read();
        let mut cpu_out = vec![0u8; size];
        let mut p = 0;
        pack_cpu::pack(&reg, &data, 0, incount, dt, &mut cpu_out, &mut p).unwrap();
        prop_assert_eq!(gpu_out, cpu_out);
    }

    /// Unpack after pack restores every byte the datatype covers.
    #[test]
    fn unpack_inverts_pack(desc in arb_typedesc()) {
        let mut ctx = ctx();
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let dt = desc.build(&mut ctx).unwrap();
        mpi.type_commit(&mut ctx, dt).unwrap();
        let size = ctx.attrs(dt).unwrap().size as usize;
        prop_assume!(size > 0 && size < 1 << 20);
        let span = span_of(&ctx, dt, 1);
        let data = pattern(span);

        let src = ctx.gpu.malloc(span).unwrap();
        ctx.gpu.memory().poke(src, &data).unwrap();
        let packed = ctx.gpu.malloc(size).unwrap();
        let out = ctx.gpu.malloc(span).unwrap();

        let mut pos = 0;
        mpi.pack(&mut ctx, src, 1, dt, packed, size, &mut pos).unwrap();
        let mut pos = 0;
        mpi.unpack(&mut ctx, packed, size, &mut pos, out, 1, dt).unwrap();

        // every covered byte equals the source
        let reg = ctx.registry().read();
        let segs = mpi_sim::datatype::typemap::segments(&reg, dt).unwrap();
        let got = ctx.gpu.memory().peek(out, span).unwrap();
        for seg in segs {
            let o = seg.off as usize;
            let l = seg.len as usize;
            prop_assert_eq!(&got[o..o + l], &data[o..o + l]);
        }
    }

    /// The system-MPI pack (copy-per-block baseline) and TEMPI's pack are
    /// byte-identical — speed differs, semantics must not.
    #[test]
    fn tempi_and_system_pack_agree(desc in arb_typedesc()) {
        let run = |interposed: bool, desc: &TypeDesc| -> Option<Vec<u8>> {
            let mut ctx = ctx();
            let mut mpi = if interposed {
                InterposedMpi::new(TempiConfig::default())
            } else {
                InterposedMpi::system_only()
            };
            let dt = desc.build(&mut ctx).unwrap();
            mpi.type_commit(&mut ctx, dt).unwrap();
            let size = ctx.attrs(dt).unwrap().size as usize;
            if size == 0 || size >= 1 << 20 {
                return None;
            }
            let span = span_of(&ctx, dt, 1);
            let data = pattern(span);
            let src = ctx.gpu.malloc(span).unwrap();
            ctx.gpu.memory().poke(src, &data).unwrap();
            let dst = ctx.gpu.malloc(size).unwrap();
            let mut pos = 0;
            mpi.pack(&mut ctx, src, 1, dt, dst, size, &mut pos).unwrap();
            let out = ctx.gpu.memory().peek(dst, size).unwrap();
            Some(out)
        };
        let a = run(true, &desc);
        let b = run(false, &desc);
        prop_assert_eq!(a, b);
    }

    /// The DMA (`cudaMemcpy2D`) configuration produces the same bytes as
    /// the kernel path for 2-D plans.
    #[test]
    fn dma_path_agrees_with_kernel_path(
        count in 2usize..32,
        block in 1usize..64,
        gap in 0usize..32,
    ) {
        let stride = block + gap;
        let run = |use_dma: bool| {
            let mut ctx = ctx();
            let mut mpi = InterposedMpi::new(TempiConfig {
                use_dma,
                ..TempiConfig::default()
            });
            let dt = ctx
                .type_vector(count as i32, block as i32, stride as i32, mpi_sim::consts::MPI_BYTE)
                .unwrap();
            mpi.type_commit(&mut ctx, dt).unwrap();
            let span = count * stride + 64;
            let data = pattern(span);
            let src = ctx.gpu.malloc(span).unwrap();
            ctx.gpu.memory().poke(src, &data).unwrap();
            let size = count * block;
            let dst = ctx.gpu.malloc(size).unwrap();
            let mut pos = 0;
            mpi.pack(&mut ctx, src, 1, dt, dst, size, &mut pos).unwrap();
            let out = ctx.gpu.memory().peek(dst, size).unwrap();
            out
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// The 3-D DMA (`cudaMemcpy3D`) configuration produces the same bytes
    /// as the 3-D kernel path.
    #[test]
    fn dma_3d_path_agrees_with_kernel_path(
        x in 1usize..16,
        y in 1usize..8,
        z in 1usize..8,
        pad in 0usize..8,
    ) {
        let ax = (x + pad) as i32;
        let ay = (y + 1) as i32;
        let az = (z + 1) as i32;
        let run = |use_dma: bool| {
            let mut ctx = ctx();
            let mut mpi = InterposedMpi::new(TempiConfig {
                use_dma,
                ..TempiConfig::default()
            });
            let dt = ctx
                .type_create_subarray(
                    &[az, ay, ax],
                    &[z as i32, y as i32, x as i32],
                    &[0, 0, 0],
                    mpi_sim::Order::C,
                    mpi_sim::consts::MPI_BYTE,
                )
                .unwrap();
            mpi.type_commit(&mut ctx, dt).unwrap();
            let span = (ax * ay * az) as usize;
            let data = pattern(span);
            let src = ctx.gpu.malloc(span).unwrap();
            ctx.gpu.memory().poke(src, &data).unwrap();
            let size = x * y * z;
            let dst = ctx.gpu.malloc(size).unwrap();
            let mut pos = 0;
            mpi.pack(&mut ctx, src, 1, dt, dst, size, &mut pos).unwrap();
            let out = ctx.gpu.memory().peek(dst, size).unwrap();
            out
        };
        prop_assert_eq!(run(true), run(false));
    }
}
