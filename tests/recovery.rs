//! ULFM-style communicator recovery, end to end.
//!
//! The contract under test: (1) after a scheduled rank death, the
//! survivors revoke, agree, shrink, re-decompose the stencil grid and the
//! resulting halo exchange is byte-for-byte identical to the serial
//! oracle; (2) agreement returns the *identical* failure set on every
//! survivor even when the first coordinator candidate is the one that
//! died; (3) a revoked communicator errors blocked ranks out
//! deterministically instead of hanging, and a shrink restores service;
//! (4) messages from a pre-shrink epoch can never match a post-shrink
//! receive; (5) the whole kill → agree → shrink → resume schedule replays
//! exactly under the same seed.

use gpu_sim::SimTime;
use mpi_sim::{
    FaultPlan, FaultSite, MpiError, MpiResult, RankCtx, ScopedFault, World, WorldConfig,
};
use tempi_core::config::TempiConfig;
use tempi_core::interpose::InterposedMpi;
use tempi_stencil::{CheckpointStore, HaloConfig, HaloExchanger, RecoveryOutcome};

/// One rank's share of a recovering stencil run: build the exchanger,
/// commit checkpoint generation 0 while everyone is still alive, advance
/// past any scheduled exit instant, then exchange with recovery — the
/// restore path rebuilds dead ranks' subdomains from the checkpoint
/// frames alone. Returns the outcome, the full local grid bytes, the
/// serial-oracle expectation, and the final communicator size. A rank the
/// group decides is dead surfaces `PeerGone` to the caller.
fn recovering_rank(
    ctx: &mut RankCtx,
    n: usize,
) -> MpiResult<(RecoveryOutcome, Vec<u8>, Vec<u8>, usize)> {
    let mut mpi = InterposedMpi::new(TempiConfig::default());
    let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(n))?;
    ex.fill(ctx)?;
    let mut store = CheckpointStore::new();
    ex.checkpoint(ctx, &mut mpi, &mut store)?;
    // Scheduled exits are late (10ms) so the snapshot above commits on
    // every rank first; the clock barrier makes that "first" hold in real
    // thread order too, not just on the virtual timeline. Without it a
    // fast survivor that already observed the death could revoke while a
    // slow rank is still inside the checkpoint's message barrier, making
    // that rank abort its commit — leaving no commonly-committed
    // generation and deadlocking the later agreement (a rare but real
    // schedule this suite used to hang on). The advance then carries each
    // rank past its exit instant so the death is observed *inside* the
    // recovered exchange.
    ctx.barrier();
    ctx.clock.advance(SimTime::from_ms(20));
    let out = ex.exchange_with_recovery(ctx, &mut mpi, &store, 4)?;
    let got = { ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())? };
    let want = ex.expected_grid(ctx);
    Ok((out, got, want, ctx.size))
}

#[test]
fn shrink_after_kill_matches_serial_oracle_byte_for_byte() {
    // 8 ranks, rank 3 scheduled dead before the exchange: the survivors
    // must detect, shrink to 7, re-decompose, restore every subdomain from
    // checkpoint generation 0, and end up with exactly the grid a serial
    // computation of the 7-rank problem predicts.
    let plan = FaultPlan::parse("exit=3@10ms").unwrap();
    let cfg = WorldConfig::summit(8).with_faults(plan);
    let results = World::run(&cfg, |ctx| match recovering_rank(ctx, 4) {
        Ok(r) => Ok(Some(r)),
        Err(e) if e.is_comm_failure() => Ok(None),
        Err(e) => Err(e),
    })
    .unwrap();
    assert!(results[3].is_none(), "the killed rank must stand down");
    for (rank, r) in results.iter().enumerate() {
        if rank == 3 {
            continue;
        }
        let (out, got, want, size) = r.as_ref().expect("survivors must recover");
        assert_eq!(out.shrinks, 1, "rank {rank}");
        assert_eq!(out.excluded, vec![3], "rank {rank}");
        assert_eq!(out.epoch, 1, "rank {rank}");
        assert_eq!(out.restored, Some(0), "rank {rank} restores generation 0");
        assert_eq!(*size, 7, "rank {rank}");
        assert_eq!(
            got, want,
            "rank {rank} grid diverged from the serial oracle"
        );
    }
}

#[test]
fn agreement_is_identical_on_all_survivors_despite_coordinator_death() {
    // Rank 0 — the *first* coordinator candidate — is the dead one, and
    // the survivors' clocks are skewed so they observe the death at
    // different virtual instants. Every survivor must still decide the
    // same set, and a second agreement must reproduce it.
    let plan = FaultPlan::parse("exit=0@5us").unwrap();
    let cfg = WorldConfig::summit(4).with_faults(plan);
    let results = World::run(&cfg, |ctx| {
        ctx.clock
            .advance(SimTime::from_us(10 + 7 * ctx.rank as u64));
        if ctx.rank == 0 {
            assert_eq!(ctx.agree_on_failures(), Err(MpiError::PeerGone));
            return Ok(vec![usize::MAX]);
        }
        let first = ctx.agree_on_failures()?;
        let second = ctx.agree_on_failures()?;
        assert_eq!(first, second, "agreement must be stable");
        Ok(first)
    })
    .unwrap();
    assert_eq!(results[0], vec![usize::MAX]);
    for (rank, set) in results.iter().enumerate().skip(1) {
        assert_eq!(set, &vec![0], "rank {rank} must decide the same set");
    }
}

#[test]
fn revoked_comm_errors_blocked_ranks_then_shrink_restores_service() {
    // Ranks 1–3 park in receives that can never be satisfied; rank 0
    // revokes. The revocation must error the blocked ranks out (no hang),
    // poison new operations, and a collective shrink must then restore
    // full service on the next epoch.
    let cfg = WorldConfig::summit(4);
    let results = World::run(&cfg, |ctx| {
        let buf = ctx.gpu.host_alloc(8)?;
        if ctx.rank == 0 {
            ctx.revoke()?;
            assert_eq!(ctx.send_bytes(buf, 8, 1, 99), Err(MpiError::Revoked));
        } else {
            assert_eq!(
                ctx.recv_bytes(buf, 8, Some(0), Some(99)),
                Err(MpiError::Revoked)
            );
            assert!(ctx.is_revoked());
        }
        let dead = ctx.shrink()?;
        assert!(dead.is_empty(), "nobody actually died");
        assert_eq!(ctx.epoch(), 1);
        assert!(!ctx.is_revoked());
        // service restored: a ring exchange on the new epoch
        let peer = (ctx.rank + 1) % ctx.size;
        let from = (ctx.rank + ctx.size - 1) % ctx.size;
        ctx.send_bytes(buf, 8, peer, 5)?;
        let st = ctx.recv_bytes(buf, 8, Some(from), Some(5))?;
        Ok(st.bytes)
    })
    .unwrap();
    assert_eq!(results, vec![8; 4]);
}

#[test]
fn stale_prior_epoch_messages_are_rejected_after_shrink() {
    // A message posted before the shrink must never match a receive posted
    // after it, even with the same source and tag: the receiver gets the
    // post-shrink payload and counts the stale one as dropped.
    let cfg = WorldConfig::summit(2);
    let results = World::run(&cfg, |ctx| {
        let buf = ctx.gpu.host_alloc(8)?;
        if ctx.rank == 0 {
            ctx.gpu.memory().poke(buf, &[0xAA; 8])?;
            ctx.send_bytes(buf, 8, 1, 7)?;
        }
        let dead = ctx.shrink()?;
        assert!(dead.is_empty());
        assert_eq!(ctx.epoch(), 1);
        if ctx.rank == 0 {
            ctx.gpu.memory().poke(buf, &[0xBB; 8])?;
            ctx.send_bytes(buf, 8, 1, 7)?;
            Ok((0, Vec::new()))
        } else {
            let st = ctx.recv_bytes(buf, 8, Some(0), Some(7))?;
            assert_eq!(st.bytes, 8);
            let got = { ctx.gpu.memory().peek(buf, 8)? };
            Ok((ctx.faults.stats.stale_dropped, got))
        }
    })
    .unwrap();
    assert_eq!(
        results[1].1,
        vec![0xBB; 8],
        "the post-shrink payload, never the stale one"
    );
    assert!(
        results[1].0 >= 1,
        "the stale epoch-0 message must be counted dropped"
    );
}

#[test]
fn seeded_recovery_replays_identically() {
    // Transient link faults *and* a scheduled death, all seeded: two runs
    // must agree on the recovery outcome, the final grid bytes, the
    // virtual clock, and every injection counter.
    let run = |seed: u64| {
        let cfg = WorldConfig::summit(8).with_faults(
            FaultPlan::parse(&format!(
                "seed={seed},send=0.1,recv=0.05,retries=8,backoff=10us,exit=5@10ms"
            ))
            .unwrap(),
        );
        World::run(&cfg, |ctx| match recovering_rank(ctx, 4) {
            Ok((out, got, want, size)) => {
                assert_eq!(got, want, "recovered grid must match the serial oracle");
                Ok(Some((
                    out,
                    got,
                    size,
                    ctx.clock.now().as_ps(),
                    ctx.faults.stats.send_faults,
                    ctx.faults.stats.recv_faults,
                    ctx.faults.stats.retries,
                )))
            }
            Err(e) if e.is_comm_failure() => Ok(None),
            Err(e) => Err(e),
        })
        .unwrap()
    };
    // CI varies TEMPI_FAULT_SEED so replay holds for every seed, not one
    // lucky one
    let seed: u64 = std::env::var("TEMPI_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1337);
    let a = run(seed);
    let b = run(seed);
    assert_eq!(
        a, b,
        "same seed must replay the identical recovery schedule"
    );
    assert!(a[5].is_none(), "rank 5 is the scheduled death");
    let survivors: Vec<_> = a.iter().flatten().collect();
    assert_eq!(survivors.len(), 7);
    for s in &survivors {
        assert!(s.0.excluded.contains(&5));
        assert!(s.0.epoch >= 1 && s.0.shrinks >= 1);
    }
    // a different seed must still recover (the schedule may differ)
    let c = run(seed.wrapping_add(687));
    assert!(c[5].is_none());
    assert_eq!(c.iter().flatten().count(), 7);
}

#[test]
fn kill_plus_corruption_restores_from_checkpoints_and_replays() {
    // The headline scenario: a seeded rank kill AND in-transit payload
    // corruption in the same run. The survivors' NACK/retransmit path
    // absorbs the corruption, the shrink rebuilds every subdomain from
    // checkpoint generation 0 alone (there is no oracle refill left in the
    // recovery path), the final grid matches the serial oracle
    // byte-for-byte, and the whole schedule — fault counters, degradation
    // log, restored state, virtual clocks — replays identically under the
    // same seed.
    let run = |seed: u64| {
        // The watchdog turns any residual hang in this schedule into a
        // structured Deadlock error naming the stuck ranks — this test
        // used to wedge rarely (see the barrier note in
        // `recovering_rank`), and a silent hang is the one outcome a CI
        // run can't diagnose.
        let cfg = WorldConfig::summit(8)
            .with_faults(
                FaultPlan::parse(&format!(
                    "seed={seed},corrupt=0.2,retries=8,backoff=10us,exit=2@10ms"
                ))
                .unwrap(),
            )
            .with_watchdog(mpi_sim::WatchdogConfig::default());
        assert!(cfg.integrity, "an active corrupt site enables integrity");
        World::run(&cfg, |ctx| match recovering_rank(ctx, 4) {
            Ok((out, got, want, size)) => {
                assert_eq!(
                    got, want,
                    "rank {}: restored grid must match the serial oracle",
                    ctx.rank
                );
                Ok(Some((
                    out,
                    got,
                    size,
                    ctx.clock.now().as_ps(),
                    ctx.faults.stats.clone(),
                )))
            }
            Err(e) if e.is_comm_failure() => Ok(None),
            Err(e) => Err(e),
        })
        .unwrap()
    };
    let a = run(424_242);
    let b = run(424_242);
    assert_eq!(
        a, b,
        "same seed must replay the identical event log and restored state"
    );
    assert!(a[2].is_none(), "rank 2 is the scheduled death");
    let survivors: Vec<_> = a.iter().flatten().collect();
    assert_eq!(survivors.len(), 7);
    for s in &survivors {
        assert_eq!(s.0.shrinks, 1);
        assert_eq!(s.0.excluded, vec![2]);
        assert_eq!(s.0.restored, Some(0), "rebuilt from checkpoints alone");
    }
    // corruption actually happened somewhere and was absorbed by the
    // NACK/retransmit protocol, never surfacing to the application
    let corruptions: u64 = survivors.iter().map(|s| s.4.corruptions).sum();
    let nacks: u64 = survivors.iter().map(|s| s.4.nacks).sum();
    let retransmits: u64 = survivors.iter().map(|s| s.4.retransmits).sum();
    assert!(corruptions >= 1, "the corrupt site never fired");
    assert!(nacks >= 1 && retransmits >= 1, "corruption must be NACKed");
}

/// Block until `peer`'s death notice (or this rank's own scheduled exit)
/// has been sifted locally: receive on a tag nobody ever sends, which can
/// only end in an error once the death is known. Pinning failure
/// knowledge down *before* agreement runs makes a multi-death schedule
/// shrink in a single deterministic round on every thread interleaving.
fn await_death_notice(ctx: &mut RankCtx, peer: usize) {
    if let Ok(buf) = ctx.gpu.host_alloc(1) {
        let _ = ctx.recv_bytes(buf, 1, Some(peer), Some(913));
        let _ = ctx.gpu.free(buf);
    }
}

#[test]
fn restore_falls_back_to_spill_when_owner_and_buddy_both_die() {
    // 8 ranks decompose as [2,2,2]; the 6 survivors re-decompose as
    // [1,2,3], whose wrapped coordinates need old blocks {0, 2, 4, 6}.
    // Killing ranks 4 AND 5 removes both the owner and the buddy mirror
    // of block 4, so the survivor that rebuilds it (world rank 2) can only
    // get the bytes from the spill directory — the provider chain's last
    // resort. A byte-exact final grid therefore proves the disk path.
    let dir = std::env::temp_dir().join(format!("tempi-spill-fb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = FaultPlan::parse("exit=4@10ms,exit=5@10ms").unwrap();
    let cfg = WorldConfig::summit(8)
        .with_faults(plan)
        .with_watchdog(mpi_sim::WatchdogConfig::default());
    let spill = dir.clone();
    let results = World::run(&cfg, move |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
        ex.fill(ctx)?;
        let mut store = CheckpointStore::with_spill(spill.clone());
        ex.checkpoint(ctx, &mut mpi, &mut store)?;
        // Clock barrier: no rank may announce its death (at its first
        // post-exit operation below) before EVERY rank has committed the
        // snapshot — otherwise a fast survivor's revoke can reach a slow
        // rank still inside the checkpoint's message barrier, abort its
        // commit, and leave the world without a common generation.
        ctx.barrier();
        ctx.clock.advance(SimTime::from_ms(20));
        await_death_notice(ctx, 4);
        await_death_notice(ctx, 5);
        match ex.exchange_with_recovery(ctx, &mut mpi, &store, 4) {
            Ok(out) => {
                let got = ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())?;
                let want = ex.expected_grid(ctx);
                Ok(Some((out, got, want, ctx.size)))
            }
            Err(e) if e.is_comm_failure() => Ok(None),
            Err(e) => Err(e),
        }
    })
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(results[4].is_none() && results[5].is_none());
    for (rank, r) in results.iter().enumerate() {
        if rank == 4 || rank == 5 {
            continue;
        }
        let (out, got, want, size) = r.as_ref().expect("survivors must recover");
        assert_eq!(out.shrinks, 1, "rank {rank}: both deaths in one round");
        let mut excluded = out.excluded.clone();
        excluded.sort_unstable();
        assert_eq!(excluded, vec![4, 5], "rank {rank}");
        assert_eq!(out.restored, Some(0), "rank {rank}");
        assert_eq!(*size, 6, "rank {rank}");
        assert_eq!(
            got, want,
            "rank {rank} grid diverged from the serial oracle"
        );
    }
}

#[test]
fn corrupted_spill_surfaces_a_typed_error_instead_of_bad_data() {
    // Same double death as above, but the spill file of block 4 is
    // corrupted on its way to disk by BOTH of its writers (world 4 spills
    // it as its second write, world 5 mirrors it as its first), so the
    // last-resort read must fail frame verification with a typed error —
    // silently restoring flipped bytes would be far worse than failing.
    // Every other survivor restores its block from a live provider and
    // never touches the bad file.
    let dir = std::env::temp_dir().join(format!("tempi-spill-bad-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut plan = FaultPlan::parse("exit=4@10ms,exit=5@10ms").unwrap();
    plan.scoped.push(ScopedFault {
        rank: 4,
        site: FaultSite::Spill,
        at_call: 1,
    });
    plan.scoped.push(ScopedFault {
        rank: 5,
        site: FaultSite::Spill,
        at_call: 0,
    });
    let cfg = WorldConfig::summit(8)
        .with_faults(plan)
        .with_watchdog(mpi_sim::WatchdogConfig::default());
    let spill = dir.clone();
    let results = World::run(&cfg, move |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
        ex.fill(ctx)?;
        let mut store = CheckpointStore::with_spill(spill.clone());
        ex.checkpoint(ctx, &mut mpi, &mut store)?;
        ctx.barrier(); // commits must all land before any death announces
        ctx.clock.advance(SimTime::from_ms(20));
        await_death_notice(ctx, 4);
        await_death_notice(ctx, 5);
        let _ = mpi.comm_revoke(ctx);
        let mut dead = match mpi.comm_shrink(ctx) {
            Ok(d) => d,
            Err(e) if e.is_comm_failure() => return Ok(None),
            Err(e) => return Err(e),
        };
        dead.sort_unstable();
        assert_eq!(dead, vec![4, 5], "rank {}", ctx.rank);
        // Re-decompose over the survivors; the restore is the step under
        // test. (The first exchanger's buffers are intentionally left
        // allocated — this world tears down right after the restore.)
        let origin = ex.origin;
        let mut ex2 = HaloExchanger::new(ctx, &mut mpi, ex.cfg)?;
        ex2.origin = origin;
        Ok(Some(
            match ex2.restore_from_checkpoint(ctx, &mut mpi, &store) {
                Ok(generation) => Ok(generation),
                Err(e) => Err(e.to_string()),
            },
        ))
    })
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    for (rank, r) in results.iter().enumerate() {
        match (rank, r) {
            (4 | 5, None) => {}
            (2, Some(Err(msg))) => assert!(
                msg.contains("checkpoint frame"),
                "rank 2 must surface the frame verification failure, got: {msg}"
            ),
            (_, Some(Ok(generation))) => assert_eq!(*generation, 0, "rank {rank}"),
            other => panic!("unexpected outcome for rank {rank}: {other:?}"),
        }
    }
}

#[test]
fn stale_epoch_drop_and_corruption_nack_compose() {
    // Epoch hygiene and integrity interact on the same receive: a
    // pre-shrink in-flight message is dropped by the epoch filter *before*
    // any checksum work (it counts as stale, not as a corruption), and the
    // post-shrink message — whose first delivery attempt IS corrupted
    // (`corrupt@0`) — comes through the NACK/retransmit path byte-exact.
    let plan = FaultPlan::parse("seed=7,corrupt@0,retries=4,backoff=1us").unwrap();
    let cfg = WorldConfig::summit(2).with_faults(plan);
    assert!(cfg.integrity);
    let results = World::run(&cfg, |ctx| {
        let buf = ctx.gpu.host_alloc(8)?;
        if ctx.rank == 0 {
            // posted at epoch 0, will still be in flight across the shrink
            ctx.gpu.memory().poke(buf, &[0xAA; 8])?;
            ctx.send_bytes(buf, 8, 1, 7)?;
        }
        let dead = ctx.shrink()?;
        assert!(dead.is_empty());
        assert_eq!(ctx.epoch(), 1);
        if ctx.rank == 0 {
            ctx.gpu.memory().poke(buf, &[0xBB; 8])?;
            ctx.send_bytes(buf, 8, 1, 7)?;
            Ok((Vec::new(), ctx.faults.stats.clone()))
        } else {
            let st = ctx.recv_bytes(buf, 8, Some(0), Some(7))?;
            assert_eq!(st.bytes, 8);
            let got = { ctx.gpu.memory().peek(buf, 8)? };
            Ok((got, ctx.faults.stats.clone()))
        }
    })
    .unwrap();
    let (got, stats) = &results[1];
    assert_eq!(
        got,
        &vec![0xBB; 8],
        "the epoch-1 payload, delivered uncorrupted after the retransmit"
    );
    assert!(
        stats.stale_dropped >= 1,
        "the stale epoch-0 message must be dropped by the epoch filter"
    );
    assert_eq!(stats.corruptions, 1, "corrupt@0 fires once, on delivery");
    assert_eq!(stats.nacks, 1);
    assert_eq!(stats.retransmits, 1);
    // the stale message was never checksum-verified: had it been, its
    // corruption would have been counted too
    assert_eq!(results[0].1.corruptions, 0, "the sender never delivers");
}
