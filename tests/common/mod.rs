//! Shared helpers for the integration tests: a property-based generator of
//! random (bounded) MPI derived datatypes and buffer utilities.
//!
//! Each integration-test binary includes this module separately, and not
//! every binary uses every helper.
#![allow(dead_code)]

use mpi_sim::consts::*;
use mpi_sim::datatype::Order;
use mpi_sim::{Datatype, MpiResult, RankCtx};
use proptest::prelude::*;

/// A buildable description of a derived datatype (so proptest can shrink
/// structurally).
#[derive(Debug, Clone)]
pub enum TypeDesc {
    /// One of a few named types.
    Named(u8),
    /// `MPI_Type_contiguous`.
    Contig { count: u8, inner: Box<TypeDesc> },
    /// `MPI_Type_vector`.
    Vector {
        count: u8,
        blocklength: u8,
        stride_extra: u8,
        inner: Box<TypeDesc>,
    },
    /// `MPI_Type_create_hvector` with a byte stride ≥ the child extent.
    Hvector {
        count: u8,
        stride_extra: u8,
        inner: Box<TypeDesc>,
    },
    /// A 2-D subarray of bytes.
    Subarray2d {
        sizes: [u8; 2],
        frac: [u8; 2],
        inner: Box<TypeDesc>,
    },
    /// `MPI_Type_create_hindexed` with small displacements.
    Hindexed {
        blocks: Vec<(u8, u8)>,
        inner: Box<TypeDesc>,
    },
    /// `MPI_Type_create_indexed_block` with non-overlapping displacements.
    IndexedBlock {
        blocklength: u8,
        gaps: Vec<u8>,
        inner: Box<TypeDesc>,
    },
}

impl TypeDesc {
    /// Build the datatype in the rank's registry.
    pub fn build(&self, ctx: &mut RankCtx) -> MpiResult<Datatype> {
        match self {
            TypeDesc::Named(n) => {
                let named = [MPI_BYTE, MPI_INT, MPI_FLOAT, MPI_DOUBLE, MPI_SHORT];
                Ok(named[*n as usize % named.len()])
            }
            TypeDesc::Contig { count, inner } => {
                let old = inner.build(ctx)?;
                ctx.type_contiguous(1 + (*count as i32 % 6), old)
            }
            TypeDesc::Vector {
                count,
                blocklength,
                stride_extra,
                inner,
            } => {
                let old = inner.build(ctx)?;
                let bl = 1 + (*blocklength as i32 % 4);
                // stride ≥ blocklength keeps blocks non-overlapping
                ctx.type_vector(
                    1 + (*count as i32 % 5),
                    bl,
                    bl + (*stride_extra as i32 % 4),
                    old,
                )
            }
            TypeDesc::Hvector {
                count,
                stride_extra,
                inner,
            } => {
                let old = inner.build(ctx)?;
                let (_, ex) = ctx.attrs(old).map(|a| (a.lb, a.extent()))?;
                ctx.type_create_hvector(
                    1 + (*count as i32 % 5),
                    1,
                    ex + (*stride_extra as i64 % 16),
                    old,
                )
            }
            TypeDesc::Subarray2d { sizes, frac, inner } => {
                let old = inner.build(ctx)?;
                let s0 = 2 + (sizes[0] as i32 % 6);
                let s1 = 2 + (sizes[1] as i32 % 6);
                let sub0 = 1 + (frac[0] as i32 % s0);
                let sub1 = 1 + (frac[1] as i32 % s1);
                let st0 = (frac[1] as i32 % (s0 - sub0 + 1)).min(s0 - sub0);
                let st1 = (frac[0] as i32 % (s1 - sub1 + 1)).min(s1 - sub1);
                ctx.type_create_subarray(&[s0, s1], &[sub0, sub1], &[st0, st1], Order::C, old)
            }
            TypeDesc::Hindexed { blocks, inner } => {
                let old = inner.build(ctx)?;
                let (_, ex) = ctx.attrs(old).map(|a| (a.lb, a.extent()))?;
                // place blocks at non-overlapping, increasing displacements
                let mut bls = Vec::new();
                let mut displs = Vec::new();
                let mut at = 0i64;
                for (bl, gap) in blocks {
                    let bl = 1 + (*bl as i32 % 3);
                    displs.push(at);
                    bls.push(bl);
                    at += bl as i64 * ex + (*gap as i64 % 8);
                }
                ctx.type_create_hindexed(&bls, &displs, old)
            }
            TypeDesc::IndexedBlock {
                blocklength,
                gaps,
                inner,
            } => {
                let old = inner.build(ctx)?;
                let bl = 1 + (*blocklength as i32 % 3);
                // increasing element displacements with gaps
                let mut displs = Vec::new();
                let mut at = 0i32;
                for g in gaps {
                    displs.push(at);
                    at += bl + (*g as i32 % 4);
                }
                ctx.type_create_indexed_block(bl, &displs, old)
            }
        }
    }
}

/// Strategy for a random datatype description of bounded depth.
pub fn arb_typedesc() -> impl Strategy<Value = TypeDesc> {
    let leaf = any::<u8>().prop_map(TypeDesc::Named);
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (any::<u8>(), inner.clone()).prop_map(|(count, i)| TypeDesc::Contig {
                count,
                inner: Box::new(i)
            }),
            (any::<u8>(), any::<u8>(), any::<u8>(), inner.clone()).prop_map(
                |(count, blocklength, stride_extra, i)| TypeDesc::Vector {
                    count,
                    blocklength,
                    stride_extra,
                    inner: Box::new(i)
                }
            ),
            (any::<u8>(), any::<u8>(), inner.clone()).prop_map(|(count, stride_extra, i)| {
                TypeDesc::Hvector {
                    count,
                    stride_extra,
                    inner: Box::new(i),
                }
            }),
            (any::<[u8; 2]>(), any::<[u8; 2]>(), inner.clone()).prop_map(|(sizes, frac, i)| {
                TypeDesc::Subarray2d {
                    sizes,
                    frac,
                    inner: Box::new(i),
                }
            }),
            (
                proptest::collection::vec((any::<u8>(), any::<u8>()), 1..4),
                inner.clone()
            )
                .prop_map(|(blocks, i)| TypeDesc::Hindexed {
                    blocks,
                    inner: Box::new(i)
                }),
            (
                any::<u8>(),
                proptest::collection::vec(any::<u8>(), 1..4),
                inner
            )
                .prop_map(|(blocklength, gaps, i)| TypeDesc::IndexedBlock {
                    blocklength,
                    gaps,
                    inner: Box::new(i)
                }),
        ]
    })
}

/// Bytes a buffer must have so `incount` items of `dt` (placed at origin 0)
/// fit, including trailing slack.
pub fn span_of(ctx: &RankCtx, dt: Datatype, incount: usize) -> usize {
    let a = ctx.attrs(dt).expect("live type");
    let end = a.true_ub.max(a.ub) + (incount.max(1) as i64 - 1) * a.extent().max(0);
    (end.max(1) as usize) + 64
}

/// Deterministic fill pattern.
pub fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i % 249) as u8 ^ 0x3C).collect()
}
