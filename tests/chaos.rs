//! Chaos-engine integration tests: the committed reproducer corpus must
//! keep telling the truth, the shrinker must minimize deterministically,
//! and a slice of the random campaign must hold every invariant oracle.

use std::path::{Path, PathBuf};

use mpi_sim::{FaultSite, ScopedFault};
use tempi_chaos::corpus::{self, CorpusEntry};
use tempi_chaos::oracle::oracle;
use tempi_chaos::{run_scenario, shrink, ChaosEvent, Scenario, Workload};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("chaos/corpus")
}

/// The shrinker-demo scenario: one silent-corruption event buried under a
/// dozen innocuous faults the stack absorbs (kernel kills degrade to the
/// CPU path, transient send/recv failures are retried). Only the
/// corruption violates an oracle, and only because the integrity envelope
/// is off — so the minimal reproducer is exactly that one event.
fn buried_corruption() -> Scenario {
    let mut events = Vec::new();
    for rank in 0..4 {
        events.push(ChaosEvent::Fault(ScopedFault {
            rank,
            site: FaultSite::Kernel,
            at_call: rank as u64 % 3,
        }));
        events.push(ChaosEvent::Fault(ScopedFault {
            rank,
            site: FaultSite::Send,
            at_call: 0,
        }));
        events.push(ChaosEvent::Fault(ScopedFault {
            rank,
            site: FaultSite::Recv,
            at_call: 1,
        }));
    }
    events.insert(
        7,
        ChaosEvent::Fault(ScopedFault {
            rank: 2,
            site: FaultSite::Corrupt,
            at_call: 1,
        }),
    );
    Scenario {
        seed: 12,
        ranks: 4,
        workload: Workload::SendStorm { messages: 2 },
        events,
        integrity: false,
        max_retries: 3,
    }
}

/// The scale scenario: a full SendStorm ring at 256 ranks — a world size
/// the thread-per-rank backend could not schedule — with a sprinkle of
/// scripted faults the stack absorbs (a transient send, a transient
/// receive, a kernel kill degrading one rank to the CPU pack path). The
/// oracles this pins under the event scheduler: no-hang (every rank's
/// spans close), span-balance (B/E pairing survives 256-way fiber
/// interleaving), no-leak (per-rank allocations return to baseline).
fn scaled_send_storm() -> Scenario {
    Scenario {
        seed: 0x5CA1E,
        ranks: 256,
        workload: Workload::SendStorm { messages: 1 },
        events: vec![
            ChaosEvent::Fault(ScopedFault {
                rank: 17,
                site: FaultSite::Send,
                at_call: 0,
            }),
            ChaosEvent::Fault(ScopedFault {
                rank: 99,
                site: FaultSite::Recv,
                at_call: 1,
            }),
            ChaosEvent::Fault(ScopedFault {
                rank: 203,
                site: FaultSite::Kernel,
                at_call: 0,
            }),
        ],
        integrity: true,
        max_retries: 3,
    }
}

#[test]
fn the_256_rank_storm_holds_every_oracle() {
    let outcome = run_scenario(&scaled_send_storm());
    assert!(
        outcome.ok(),
        "256-rank storm violated: {:?}",
        outcome.violations
    );
    assert_eq!(outcome.reports.len(), 256, "every rank must report");
}

#[test]
fn every_corpus_entry_replays_true() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus must load");
    assert!(!entries.is_empty(), "the corpus must not be empty");
    for (path, entry) in entries {
        corpus::replay(&entry).unwrap_or_else(|e| panic!("{} failed replay: {e}", path.display()));
    }
}

#[test]
fn shrinker_minimizes_buried_corruption_to_one_event() {
    let sc = buried_corruption();
    assert!(sc.events.len() >= 12, "the demo needs a big haystack");
    let shrunk = shrink(&sc).expect("the scenario must fail");
    assert!(
        shrunk.scenario.events.len() <= 3,
        "expected a <=3-event reproducer, got {:?}",
        shrunk.scenario.events
    );
    assert_eq!(
        shrunk.scenario.events,
        vec![ChaosEvent::Fault(ScopedFault {
            rank: 2,
            site: FaultSite::Corrupt,
            at_call: 1,
        })],
        "the needle is the only event that matters"
    );
    assert!(
        shrunk
            .violations
            .iter()
            .any(|v| v.oracle == oracle::BYTE_EXACT),
        "the minimized scenario must still show the original symptom, got {:?}",
        shrunk.violations
    );
}

#[test]
fn shrinking_is_deterministic_to_the_byte() {
    let sc = buried_corruption();
    let a = shrink(&sc).expect("must fail");
    let b = shrink(&sc).expect("must fail");
    assert_eq!(
        serde_json::to_string(&a.scenario).unwrap(),
        serde_json::to_string(&b.scenario).unwrap(),
        "same seed must shrink to byte-identical JSON"
    );
}

#[test]
fn a_campaign_slice_holds_every_invariant() {
    for index in 0..6 {
        let sc = Scenario::generate(0xC4A05, index);
        let outcome = run_scenario(&sc);
        assert!(
            outcome.ok(),
            "generated scenario {index} ({:?}) violated: {:?}",
            sc.workload,
            outcome.violations
        );
    }
}

/// Regenerate the committed corpus from first principles. Run manually
/// after an intentional scenario/format change:
///
/// ```text
/// cargo test --test chaos regenerate_corpus -- --ignored
/// ```
#[test]
#[ignore = "writes chaos/corpus/ — run explicitly after intentional changes"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();

    // 1. Open gap: silent corruption when the integrity envelope is off.
    //    The committed scenario is the *shrunk* reproducer, so the file
    //    also documents what the shrinker produces.
    let shrunk = shrink(&buried_corruption()).expect("must fail");
    let violation = shrunk
        .violations
        .iter()
        .find(|v| v.oracle == oracle::BYTE_EXACT)
        .cloned();
    corpus::save(
        &dir.join("corrupt-no-integrity.json"),
        &CorpusEntry {
            name: "corrupt-no-integrity".into(),
            status: "open".into(),
            scenario: shrunk.scenario.clone(),
            violation,
        },
    )
    .unwrap();

    // 2. The fix for (1): the same corruption with integrity on is
    //    absorbed by the NACK/retransmit handshake.
    let fixed = Scenario {
        integrity: true,
        ..shrunk.scenario
    };
    assert!(run_scenario(&fixed).ok());
    corpus::save(
        &dir.join("corrupt-integrity-absorbed.json"),
        &CorpusEntry {
            name: "corrupt-integrity-absorbed".into(),
            status: "fixed".into(),
            scenario: fixed,
            violation: None,
        },
    )
    .unwrap();

    // 3. The revoke-vs-checkpoint schedule: killing a checkpoint block's
    //    owner *and* buddy forces the spill fallback, and early death
    //    detection once raced the checkpoint's commit barrier into a
    //    recovery deadlock. Green since the workload pinned a
    //    shared-memory barrier between the two phases.
    let recovery = Scenario {
        seed: 31,
        ranks: 8,
        workload: Workload::StencilRecovery { n: 6 },
        events: vec![
            ChaosEvent::Exit {
                rank: 4,
                at_us: 10_000,
            },
            ChaosEvent::Exit {
                rank: 5,
                at_us: 10_000,
            },
        ],
        integrity: true,
        max_retries: 3,
    };
    assert!(run_scenario(&recovery).ok());
    corpus::save(
        &dir.join("recovery-kill-owner-and-buddy.json"),
        &CorpusEntry {
            name: "recovery-kill-owner-and-buddy".into(),
            status: "fixed".into(),
            scenario: recovery,
            violation: None,
        },
    )
    .unwrap();

    // 4. The event-scheduler scale entry: 256 ranks of SendStorm with
    //    absorbed faults must hold no-hang, span-balance and no-leak.
    //    Committed so every future scheduler change replays it.
    let scale = scaled_send_storm();
    assert!(run_scenario(&scale).ok());
    corpus::save(
        &dir.join("scale-256-send-storm.json"),
        &CorpusEntry {
            name: "scale-256-send-storm".into(),
            status: "fixed".into(),
            scenario: scale,
            violation: None,
        },
    )
    .unwrap();
}
