//! The paper's central claim, tested end to end: *equivalent objects get
//! equal treatment*. Any composition of contiguous / vector / hvector /
//! subarray types that denotes the same bytes must canonicalize to the
//! identical kernel plan and must pack in the identical virtual time.

mod common;

use common::pattern;
use gpu_sim::SimTime;
use mpi_sim::consts::MPI_BYTE;
use mpi_sim::datatype::Order;
use mpi_sim::{Datatype, MpiResult, RankCtx, WorldConfig};
use proptest::prelude::*;
use tempi_core::config::TempiConfig;
use tempi_core::interpose::InterposedMpi;
use tempi_core::tempi::PlanKind;

fn ctx() -> RankCtx {
    RankCtx::standalone(&WorldConfig::summit(1))
}

/// Build all the Section-2 representations of one row of `e0` floats in an
/// allocation of `a0` floats.
fn row_constructions(ctx: &mut RankCtx, e0: i32, a0: i32) -> MpiResult<Vec<Datatype>> {
    use mpi_sim::consts::MPI_FLOAT;
    Ok(vec![
        ctx.type_contiguous(e0, MPI_FLOAT)?,
        ctx.type_contiguous(e0 * 4, MPI_BYTE)?,
        ctx.type_vector(e0, 1, 1, MPI_FLOAT)?,
        ctx.type_vector(1, e0, 1, MPI_FLOAT)?,
        ctx.type_vector(e0, 4, 4, MPI_BYTE)?,
        ctx.type_vector(1, e0 * 4, e0 * 4, MPI_BYTE)?,
        ctx.type_create_hvector(e0 * 4, 1, 1, MPI_BYTE)?,
        ctx.type_create_subarray(&[a0], &[e0], &[0], Order::C, MPI_FLOAT)?,
        ctx.type_create_subarray(&[a0 * 4], &[e0 * 4], &[0], Order::C, MPI_BYTE)?,
    ])
}

#[test]
fn section2_row_list_all_one_plan() {
    let mut ctx = ctx();
    let mut mpi = InterposedMpi::new(TempiConfig::default());
    let types = row_constructions(&mut ctx, 100, 256).unwrap();
    let mut plans = Vec::new();
    for dt in &types {
        mpi.type_commit(&mut ctx, *dt).unwrap();
        plans.push(mpi.tempi.plan(*dt).unwrap());
    }
    for (i, p) in plans.iter().enumerate() {
        assert_eq!(
            p.kind,
            plans[0].kind,
            "construction {i} ({}) diverged",
            ctx.describe(types[i])
        );
        // a row is contiguous: one Dense run of 400 bytes
        match &p.kind {
            PlanKind::Strided(kp) => {
                assert!(kp.sb.is_contiguous());
                assert_eq!(kp.sb.block_bytes(), 400);
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }
}

#[test]
fn fig2_constructions_one_plan_and_equal_pack_time() {
    let mut ctx = ctx();
    let mut mpi = InterposedMpi::new(TempiConfig::default());
    // the three constructions from Fig. 2
    let plane = ctx
        .type_create_subarray(&[512, 256], &[13, 100], &[0, 0], Order::C, MPI_BYTE)
        .unwrap();
    let c1 = ctx.type_vector(47, 1, 1, plane).unwrap();
    let row = ctx.type_vector(100, 1, 1, MPI_BYTE).unwrap();
    let p2 = ctx.type_create_hvector(13, 1, 256, row).unwrap();
    let c2 = ctx.type_create_hvector(47, 1, 256 * 512, p2).unwrap();
    let c3 = ctx
        .type_create_subarray(
            &[1024, 512, 256],
            &[47, 13, 100],
            &[0, 0, 0],
            Order::C,
            MPI_BYTE,
        )
        .unwrap();

    let span = 256 * 512 * 47 + 4096;
    let src = ctx.gpu.malloc(span).unwrap();
    ctx.gpu.memory().poke(src, &pattern(span)).unwrap();
    let size = 100 * 13 * 47;
    let dst = ctx.gpu.malloc(size).unwrap();

    let mut times: Vec<SimTime> = Vec::new();
    let mut outputs: Vec<Vec<u8>> = Vec::new();
    for dt in [c1, c2, c3] {
        mpi.type_commit(&mut ctx, dt).unwrap();
        // warm-up then measure
        let mut pos = 0;
        mpi.pack(&mut ctx, src, 1, dt, dst, size, &mut pos).unwrap();
        let t0 = ctx.clock.now();
        let mut pos = 0;
        mpi.pack(&mut ctx, src, 1, dt, dst, size, &mut pos).unwrap();
        times.push(ctx.clock.now() - t0);
        outputs.push(ctx.gpu.memory().peek(dst, size).unwrap());
    }
    assert_eq!(times[0], times[1], "vector-of-plane vs nested hvector");
    assert_eq!(times[1], times[2], "nested hvector vs 3-D subarray");
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}

#[test]
fn mvapich_baseline_is_construction_sensitive_tempi_is_not() {
    // the paper's fragility observation: mvapich handles a root vector
    // hundreds of times faster than the same object as a subarray; TEMPI
    // treats both identically.
    let pack_time = |interposed: bool, use_vector: bool| -> SimTime {
        let cfg = WorldConfig::workstation(1, mpi_sim::VendorProfile::mvapich());
        let mut ctx = RankCtx::standalone(&cfg);
        let mut mpi = if interposed {
            InterposedMpi::new(TempiConfig::default())
        } else {
            InterposedMpi::system_only()
        };
        let dt = if use_vector {
            ctx.type_vector(512, 64, 128, MPI_BYTE).unwrap()
        } else {
            ctx.type_create_subarray(&[512, 128], &[512, 64], &[0, 0], Order::C, MPI_BYTE)
                .unwrap()
        };
        mpi.type_commit(&mut ctx, dt).unwrap();
        let src = ctx.gpu.malloc(512 * 128).unwrap();
        let dst = ctx.gpu.malloc(512 * 64).unwrap();
        let mut pos = 0;
        mpi.pack(&mut ctx, src, 1, dt, dst, 512 * 64, &mut pos)
            .unwrap();
        let t0 = ctx.clock.now();
        let mut pos = 0;
        mpi.pack(&mut ctx, src, 1, dt, dst, 512 * 64, &mut pos)
            .unwrap();
        ctx.clock.now() - t0
    };
    // baseline: vector fast (specialized kernel), subarray slow
    let mv_vec = pack_time(false, true);
    let mv_sub = pack_time(false, false);
    assert!(
        mv_sub.as_ns_f64() > 50.0 * mv_vec.as_ns_f64(),
        "mvapich should collapse on subarray: vec {mv_vec}, sub {mv_sub}"
    );
    // TEMPI: identical either way
    let t_vec = pack_time(true, true);
    let t_sub = pack_time(true, false);
    assert_eq!(t_vec, t_sub);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For random 2-D geometry, the vector / hvector / subarray / (nested
    /// contiguous-hvector) constructions all produce the same committed
    /// plan.
    #[test]
    fn random_2d_objects_one_plan(
        count in 1i32..32,
        block in 1i32..64,
        gap in 0i32..32,
    ) {
        let stride = block + gap;
        let mut ctx = ctx();
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let v = ctx.type_vector(count, block, stride, MPI_BYTE).unwrap();
        let row = ctx.type_contiguous(block, MPI_BYTE).unwrap();
        let h = ctx.type_create_hvector(count, 1, stride as i64, row).unwrap();
        let s = ctx
            .type_create_subarray(&[count, stride], &[count, block], &[0, 0], Order::C, MPI_BYTE)
            .unwrap();
        let mut kinds = Vec::new();
        for dt in [v, h, s] {
            mpi.type_commit(&mut ctx, dt).unwrap();
            kinds.push(mpi.tempi.plan(dt).unwrap().kind.clone());
        }
        prop_assert_eq!(&kinds[0], &kinds[1]);
        prop_assert_eq!(&kinds[1], &kinds[2]);
    }

    /// Wrapping any type in `contiguous(1, ...)`, `vector(1,1,1, ...)` or
    /// `dup` never changes the committed plan.
    #[test]
    fn identity_wrappers_are_invisible(desc in common::arb_typedesc()) {
        let mut ctx = ctx();
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let base = desc.build(&mut ctx).unwrap();
        let c1 = ctx.type_contiguous(1, base).unwrap();
        let v1 = ctx.type_vector(1, 1, 1, base).unwrap();
        let d1 = ctx.type_dup(base).unwrap();
        mpi.type_commit(&mut ctx, base).unwrap();
        let want = mpi.tempi.plan(base).unwrap().kind.clone();
        for dt in [c1, v1, d1] {
            mpi.type_commit(&mut ctx, dt).unwrap();
            prop_assert_eq!(&mpi.tempi.plan(dt).unwrap().kind, &want);
        }
    }
}
