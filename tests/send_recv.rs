//! Multi-rank integration tests of datatype-accelerated communication:
//! TEMPI's send/recv against the system baseline, across methods,
//! mismatched-but-compatible types, wildcard receives, and error paths.

mod common;

use common::pattern;
use mpi_sim::consts::MPI_BYTE;
use mpi_sim::datatype::Order;
use mpi_sim::{MpiError, World, WorldConfig};
use tempi_core::config::{Method, TempiConfig};
use tempi_core::interpose::InterposedMpi;

fn two_node_cfg() -> WorldConfig {
    let mut cfg = WorldConfig::summit(2);
    cfg.net.ranks_per_node = 1;
    cfg
}

#[test]
fn strided_send_into_different_layout() {
    // sender uses a vector, receiver scatters the same bytes into a
    // subarray layout — MPI allows any type with matching signature
    let results = World::run(&two_node_cfg(), |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        if ctx.rank == 0 {
            let dt = ctx.type_vector(16, 8, 16, MPI_BYTE)?; // 128 bytes
            mpi.type_commit(ctx, dt)?;
            let span = 15 * 16 + 8 + 8;
            let buf = ctx.gpu.malloc(span)?;
            ctx.gpu.memory().poke(buf, &pattern(span))?;
            mpi.send(ctx, buf, 1, dt, 1, 0)?;
            Ok(Vec::new())
        } else {
            let dt = ctx.type_create_subarray(&[16, 16], &[16, 8], &[0, 4], Order::C, MPI_BYTE)?;
            mpi.type_commit(ctx, dt)?;
            let buf = ctx.gpu.malloc(16 * 16)?;
            let st = mpi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
            assert_eq!(st.bytes, 128);
            let got = ctx.gpu.memory().peek(buf, 256)?;
            Ok(got)
        }
    })
    .unwrap();
    // row r of the subarray (cols 4..12) carries sender blocks in order
    let got = &results[1];
    let src = pattern(16 * 16 + 8);
    for r in 0..16 {
        let want = &src[r * 16..r * 16 + 8];
        assert_eq!(&got[r * 16 + 4..r * 16 + 12], want, "row {r}");
    }
}

#[test]
fn methods_all_deliver_identical_bytes() {
    for method in [Method::Device, Method::OneShot, Method::Staged] {
        let results = World::run(&two_node_cfg(), |ctx| {
            let mut mpi = InterposedMpi::new(TempiConfig {
                force_method: Some(method),
                ..TempiConfig::default()
            });
            let dt = ctx.type_vector(128, 32, 64, MPI_BYTE)?;
            mpi.type_commit(ctx, dt)?;
            let span = 127 * 64 + 32 + 16;
            let buf = ctx.gpu.malloc(span)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &pattern(span))?;
                mpi.send(ctx, buf, 1, dt, 1, 3)?;
                Ok(Vec::new())
            } else {
                mpi.recv(ctx, buf, 1, dt, Some(0), Some(3))?;
                let got = ctx.gpu.memory().peek(buf, span)?;
                Ok(got)
            }
        })
        .unwrap();
        let got = &results[1];
        let src = pattern(127 * 64 + 32 + 16);
        for b in 0..128 {
            let o = b * 64;
            assert_eq!(&got[o..o + 32], &src[o..o + 32], "{method:?} block {b}");
        }
    }
}

#[test]
fn tempi_recv_matches_system_sender() {
    // one side interposed, the other not: the interposed receiver must
    // interoperate with a plain system sender (and vice versa)
    let results = World::run(&two_node_cfg(), |ctx| {
        let dt = ctx.type_vector(8, 4, 8, MPI_BYTE)?;
        if ctx.rank == 0 {
            // system sender
            let mut mpi = InterposedMpi::system_only();
            mpi.type_commit(ctx, dt)?;
            let buf = ctx.gpu.malloc(64)?;
            ctx.gpu.memory().poke(buf, &pattern(64))?;
            mpi.send(ctx, buf, 1, dt, 1, 9)?;
            Ok(0u8)
        } else {
            // TEMPI receiver
            let mut mpi = InterposedMpi::new(TempiConfig::default());
            mpi.type_commit(ctx, dt)?;
            let buf = ctx.gpu.malloc(64)?;
            mpi.recv(ctx, buf, 1, dt, Some(0), Some(9))?;
            let got = ctx.gpu.memory().peek(buf, 64)?;
            let src = pattern(64);
            for b in 0..8 {
                assert_eq!(&got[b * 8..b * 8 + 4], &src[b * 8..b * 8 + 4], "block {b}");
            }
            Ok(1u8)
        }
    })
    .unwrap();
    assert_eq!(results, vec![0, 1]);
}

#[test]
fn wildcard_recv_through_tempi() {
    let results = World::run(&two_node_cfg(), |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let dt = ctx.type_vector(4, 4, 8, MPI_BYTE)?;
        mpi.type_commit(ctx, dt)?;
        let buf = ctx.gpu.malloc(32)?;
        if ctx.rank == 0 {
            ctx.gpu.memory().poke(buf, &pattern(32))?;
            mpi.send(ctx, buf, 1, dt, 1, 77)?;
            Ok((0, 0))
        } else {
            let st = mpi.recv(ctx, buf, 1, dt, None, None)?;
            Ok((st.source, st.tag))
        }
    })
    .unwrap();
    assert_eq!(results[1], (0, 77));
}

#[test]
fn truncation_error_through_tempi() {
    let results = World::run(&two_node_cfg(), |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        if ctx.rank == 0 {
            let dt = ctx.type_vector(16, 8, 16, MPI_BYTE)?; // 128 data bytes
            mpi.type_commit(ctx, dt)?;
            let buf = ctx.gpu.malloc(16 * 16)?;
            mpi.send(ctx, buf, 1, dt, 1, 0)?;
            Ok(true)
        } else {
            let small = ctx.type_vector(4, 8, 16, MPI_BYTE)?; // capacity 32
            mpi.type_commit(ctx, small)?;
            let buf = ctx.gpu.malloc(64)?;
            let r = mpi.recv(ctx, buf, 1, small, Some(0), Some(0));
            Ok(matches!(
                r,
                Err(MpiError::Truncated {
                    sent: 128,
                    capacity: 32,
                    ..
                })
            ))
        }
    })
    .unwrap();
    assert!(results[1]);
}

#[test]
fn many_messages_in_flight_stay_ordered() {
    let results = World::run(&two_node_cfg(), |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let dt = ctx.type_vector(4, 8, 16, MPI_BYTE)?;
        mpi.type_commit(ctx, dt)?;
        let span = 3 * 16 + 8;
        let buf = ctx.gpu.malloc(span)?;
        if ctx.rank == 0 {
            for i in 0..10u8 {
                ctx.gpu.memory().poke(buf, &vec![i; span])?;
                mpi.send(ctx, buf, 1, dt, 1, 5)?;
            }
            Ok(vec![])
        } else {
            let mut seen = Vec::new();
            for _ in 0..10 {
                mpi.recv(ctx, buf, 1, dt, Some(0), Some(5))?;
                seen.push(ctx.gpu.memory().peek(buf, 1)?[0]);
            }
            Ok(seen)
        }
    })
    .unwrap();
    assert_eq!(results[1], (0..10u8).collect::<Vec<_>>());
}

#[test]
fn four_rank_ring_with_derived_types() {
    let mut cfg = WorldConfig::summit(4);
    cfg.net.ranks_per_node = 2;
    let results = World::run(&cfg, |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let dt = ctx.type_vector(8, 16, 32, MPI_BYTE)?;
        mpi.type_commit(ctx, dt)?;
        let span = 7 * 32 + 16;
        let buf = ctx.gpu.malloc(span)?;
        ctx.gpu
            .memory()
            .poke(buf, &vec![ctx.rank as u8 + 1; span])?;
        let next = (ctx.rank + 1) % ctx.size;
        let prev = (ctx.rank + ctx.size - 1) % ctx.size;
        mpi.send(ctx, buf, 1, dt, next, 0)?;
        let recv = ctx.gpu.malloc(span)?;
        mpi.recv(ctx, recv, 1, dt, Some(prev), Some(0))?;
        Ok(ctx.gpu.memory().peek(recv, 16)?[0])
    })
    .unwrap();
    assert_eq!(results, vec![4, 1, 2, 3]);
}

#[test]
fn model_selected_methods_match_expectation_per_size() {
    // integration-level check of §5: a fine-strided 4 MiB object goes
    // device, a coarse 256 KiB object goes one-shot
    let results = World::run(&two_node_cfg(), |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let fine = ctx.type_vector((4 << 20) / 16, 16, 32, MPI_BYTE)?;
        let coarse = ctx.type_vector(64, 4096, 8192, MPI_BYTE)?;
        mpi.type_commit(ctx, fine)?;
        mpi.type_commit(ctx, coarse)?;
        let buf_f = ctx.gpu.malloc((4 << 20) * 2 + 64)?;
        let buf_c = ctx.gpu.malloc(64 * 8192 + 64)?;
        if ctx.rank == 0 {
            let m1 = mpi.tempi.send(ctx, buf_f, 1, fine, 1, 1)?;
            let m2 = mpi.tempi.send(ctx, buf_c, 1, coarse, 1, 2)?;
            Ok((m1, m2))
        } else {
            let (_, m1) = mpi.tempi.recv(ctx, buf_f, 1, fine, Some(0), Some(1))?;
            let (_, m2) = mpi.tempi.recv(ctx, buf_c, 1, coarse, Some(0), Some(2))?;
            Ok((m1, m2))
        }
    })
    .unwrap();
    assert_eq!(results[0], (Some(Method::Device), Some(Method::OneShot)));
    // receiver inferred the same methods from the probed buffer spaces
    assert_eq!(results[1], (Some(Method::Device), Some(Method::OneShot)));
}
