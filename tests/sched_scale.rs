//! Event-scheduler scale and robustness tests: the discrete-event runtime
//! must carry a four-digit rank count through a real workload (the CI
//! smoke for the `bench_scale` sweep), surface one rank's panic as a
//! typed error without discarding the world, and keep send storms inside
//! the bounded-inbox high-water mark — parking senders instead of growing
//! memory, and reporting a *genuine* buffer-cycle deadlock structurally.

use mpi_sim::{MpiError, SchedMode, World, WorldConfig};
use tempi_core::config::TempiConfig;
use tempi_core::interpose::InterposedMpi;
use tempi_stencil::{HaloConfig, HaloExchanger};

#[test]
fn stencil_smoke_at_1024_ranks() {
    // The CI scale smoke: a full 26-direction halo exchange at 1,024
    // ranks — two orders of magnitude past what the thread-per-rank
    // backend could schedule — with every ghost cell verified.
    let cfg = WorldConfig::summit(1024);
    let results = World::run(&cfg, |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
        ex.fill(ctx)?;
        ex.exchange(ctx, &mut mpi)?;
        ex.verify_ghosts(ctx)
    })
    .expect("1,024-rank world");
    assert_eq!(results.len(), 1024);
    assert!(results.iter().all(|&bad| bad == 0), "corrupt ghost cells");
}

fn panicking_world(mode: SchedMode) -> MpiError {
    let cfg = WorldConfig::summit(4).with_sched_mode(mode);
    World::run(&cfg, |ctx| {
        if ctx.rank == 2 {
            panic!("rank 2 exploded");
        }
        Ok(ctx.rank)
    })
    .expect_err("a panicking rank must fail the world")
}

#[test]
fn one_rank_panic_reports_the_rank_in_both_backends() {
    for mode in [SchedMode::Auto, SchedMode::Threads] {
        match panicking_world(mode) {
            MpiError::RankPanicked { rank, message } => {
                assert_eq!(rank, 2, "{mode:?}");
                assert!(message.contains("exploded"), "{mode:?}: {message}");
            }
            other => panic!("{mode:?}: expected RankPanicked, got {other:?}"),
        }
    }
}

#[test]
fn send_storm_stays_inside_the_inbox_high_water_mark() {
    // Rank 0 fires 64 sends at a receiver that drains slowly; with the
    // high-water mark at 4 the sender must park instead of queueing, so
    // the receiver never observes a backlog past the mark.
    const HWM: usize = 4;
    const STORM: usize = 64;
    let cfg = WorldConfig::summit(2).with_inbox_hwm(HWM);
    let results = World::run(&cfg, |ctx| {
        let buf = ctx.gpu.host_alloc(8)?;
        if ctx.rank == 0 {
            for i in 0..STORM {
                ctx.send_bytes(buf, 8, 1, i as i32)?;
            }
            Ok(0)
        } else {
            let mut deepest = 0;
            for i in 0..STORM {
                deepest = deepest.max(ctx.inbox_backlog());
                ctx.recv_bytes(buf, 8, Some(0), Some(i as i32))?;
            }
            Ok(deepest)
        }
    })
    .expect("bounded storm world");
    assert!(
        results[1] <= HWM,
        "receiver saw a backlog of {} past the high-water mark {HWM}",
        results[1]
    );
}

#[cfg(target_arch = "x86_64")]
#[test]
fn mutual_storms_past_the_mark_are_a_structural_deadlock() {
    // Both ranks flood each other without ever receiving: with finite
    // buffers that is a true deadlock (each sender waits for inbox space
    // only the other's receive could create). The event scheduler sees it
    // structurally — every fiber parked, event heap empty — and names the
    // backpressure parks in the verdict.
    let cfg = WorldConfig::summit(2)
        .with_inbox_hwm(2)
        .with_sched_mode(SchedMode::Events);
    let err = World::run(&cfg, |ctx| {
        let buf = ctx.gpu.host_alloc(8)?;
        let peer = 1 - ctx.rank;
        for _ in 0..8 {
            ctx.send_bytes(buf, 8, peer, 7)?;
        }
        Ok(())
    })
    .expect_err("mutual send storms past finite buffers must deadlock");
    match err {
        MpiError::Deadlock { ranks, ops } => {
            assert_eq!(ranks, vec![0, 1]);
            for op in &ops {
                assert!(
                    op.contains("send backpressure"),
                    "expected a backpressure park, got {op:?}"
                );
            }
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}
