//! Shape regression tests: the qualitative findings each paper figure
//! rests on, asserted at small scale so CI catches any calibration or
//! logic change that would break the reproduction's conclusions.

mod common;

use tempi_bench::{
    commit_breakdown, pack_time, send_pair_time, Construction, Mode, Obj2d, Platform,
};
use tempi_core::config::{Method, TempiConfig};
use tempi_core::model::SendModel;

fn obj(total: usize, block: usize) -> Obj2d {
    Obj2d {
        incount: 1,
        block,
        count: total / block,
        stride: block * 2,
    }
}

fn speedup(platform: Platform, o: Obj2d, c: Construction) -> f64 {
    let t = pack_time(
        platform,
        Mode::Tempi,
        TempiConfig::default(),
        |ctx| o.build(ctx, c),
        o.incount,
        o.span(),
    )
    .expect("tempi");
    let s = pack_time(
        platform,
        Mode::System,
        TempiConfig::default(),
        |ctx| o.build(ctx, c),
        o.incount,
        o.span(),
    )
    .expect("system");
    s.as_ns_f64() / t.as_ns_f64()
}

// ---- Fig. 6 shapes -------------------------------------------------------

#[test]
fn fig6_commit_slowdown_ordering_mv_op_sp() {
    let o = obj(1 << 10, 64);
    let slow = |p: Platform| {
        commit_breakdown(p, |ctx| o.build(ctx, Construction::Subarray))
            .expect("breakdown")
            .slowdown()
    };
    let (mv, op, sp) = (
        slow(Platform::Mvapich),
        slow(Platform::OpenMpi),
        slow(Platform::Summit),
    );
    assert!(mv < op && op < sp, "mv {mv} < op {op} < sp {sp}");
    // the paper's outer envelope: 2.1x .. 11.6x
    assert!(mv > 1.5 && sp < 15.0, "mv {mv}, sp {sp}");
}

// ---- Fig. 7 shapes -------------------------------------------------------

#[test]
fn fig7_speedup_grows_as_blocks_shrink() {
    let mut last = 0.0f64;
    for block in [4096usize, 256, 16, 1] {
        let s = speedup(Platform::Summit, obj(1 << 20, block), Construction::Hvector);
        assert!(
            s > last,
            "block {block}: {s} should exceed larger-block speedup {last}"
        );
        last = s;
    }
}

#[test]
fn fig7_speedup_grows_with_object_size() {
    let small = speedup(Platform::Summit, obj(1 << 10, 16), Construction::Vector);
    let large = speedup(Platform::Summit, obj(1 << 20, 16), Construction::Vector);
    assert!(large > small * 5.0, "1 MiB {large} vs 1 KiB {small}");
}

#[test]
fn fig7_platform_ordering_spectrum_worst() {
    let o = obj(1 << 18, 32);
    let mv = speedup(Platform::Mvapich, o, Construction::Hvector);
    let op = speedup(Platform::OpenMpi, o, Construction::Hvector);
    let sp = speedup(Platform::Summit, o, Construction::Hvector);
    assert!(sp > op && op > mv, "sp {sp} > op {op} > mv {mv}");
}

#[test]
fn fig7_contiguous_speedup_near_one() {
    for platform in [Platform::OpenMpi, Platform::Summit] {
        let o = Obj2d {
            incount: 1,
            block: 1 << 16,
            count: 1,
            stride: 1 << 16,
        };
        let s = speedup(platform, o, Construction::Contiguous);
        assert!(s > 0.85 && s < 1.5, "{platform:?} contiguous speedup {s}");
    }
}

#[test]
fn fig7_mvapich_vector_near_one_but_subarray_huge() {
    let o = obj(1 << 18, 16);
    let vec = speedup(Platform::Mvapich, o, Construction::Vector);
    let sub = speedup(Platform::Mvapich, o, Construction::Subarray);
    assert!(vec > 0.85 && vec < 1.1, "specialized vector path {vec}");
    assert!(sub > 100.0, "subarray fallback {sub}");
}

// ---- Fig. 8 / §5 model shapes -------------------------------------------

#[test]
fn fig8_floors() {
    let m = SendModel::summit_internode();
    assert!((m.t_cpu_cpu(1).as_us_f64() - 2.6).abs() < 0.2);
    assert!((m.t_gpu_gpu(1).as_us_f64() - 11.4).abs() < 0.5);
    assert!((m.t_d2h(1).as_us_f64() - 11.0).abs() < 0.5);
}

#[test]
fn fig8_staged_never_wins_anywhere() {
    let m = SendModel::summit_internode();
    for p in 8..27 {
        let bytes = 1usize << p;
        for block in [16usize, 256, 4096] {
            let st = m.t_staged(bytes, block, 4).total();
            let dev = m.t_device(bytes, block, 4).total();
            let osh = m.t_oneshot(bytes, block, 4).total();
            assert!(
                st >= dev.min(osh),
                "staged won at 2^{p} B / {block} B blocks"
            );
        }
    }
}

// ---- Fig. 10 shapes ------------------------------------------------------

#[test]
fn fig10_crossover_oneshot_1mib_device_4mib() {
    let m = SendModel::summit_internode();
    // large blocks (the regime the paper's figure sweeps)
    assert_eq!(m.choose(1 << 20, 4096, 8), Method::OneShot);
    assert_eq!(m.choose(4 << 20, 4096, 8), Method::Device);
    // tiny blocks always device
    assert_eq!(m.choose(1 << 20, 8, 4), Method::Device);
}

// ---- Fig. 11 shapes ------------------------------------------------------

#[test]
fn fig11_send_speedup_far_below_pack_speedup() {
    let o = obj(1 << 20, 64);
    let pack = speedup(Platform::Summit, o, Construction::Vector);
    let t = send_pair_time(
        Platform::Summit,
        Mode::Tempi,
        TempiConfig::default(),
        |ctx| o.build(ctx, Construction::Vector),
        1,
        o.span(),
    )
    .expect("t");
    let s = send_pair_time(
        Platform::Summit,
        Mode::System,
        TempiConfig::default(),
        |ctx| o.build(ctx, Construction::Vector),
        1,
        o.span(),
    )
    .expect("s");
    let send = s.as_ns_f64() / t.as_ns_f64();
    assert!(send > 10.0, "send speedup {send} must still be large");
    assert!(
        send < pack / 2.0,
        "send speedup {send} must sit well below pack speedup {pack} \
         (the un-accelerated contiguous transfer dominates)"
    );
}

// ---- §8 pipelining shape -------------------------------------------------

#[test]
fn pipelining_beats_all_methods_at_16mib() {
    let o = obj(16 << 20, 4096);
    let run = |cfg: TempiConfig| {
        send_pair_time(
            Platform::Summit,
            Mode::Tempi,
            cfg,
            |ctx| o.build(ctx, Construction::Vector),
            1,
            o.span(),
        )
        .expect("send")
    };
    let pipe = run(TempiConfig {
        force_method: Some(Method::Pipelined),
        pipeline_chunk: Some(256 << 10),
        ..TempiConfig::default()
    });
    for m in [Method::OneShot, Method::Device, Method::Staged] {
        let t = run(TempiConfig {
            force_method: Some(m),
            ..TempiConfig::default()
        });
        assert!(pipe < t, "pipelined {pipe} must beat {m:?} {t}");
    }
}
