//! Integration tests of the Section-4 interposer architecture across the
//! whole stack: resolution behavior, fall-through, partial interposition,
//! and the invariant that interposition never changes observable bytes.

mod common;

use common::pattern;
use mpi_sim::consts::MPI_BYTE;
use mpi_sim::{MpiError, RankCtx, World, WorldConfig};
use tempi_core::config::TempiConfig;
use tempi_core::interpose::{InterposedMpi, Linker, MpiSymbol, Provider};

fn ctx() -> RankCtx {
    RankCtx::standalone(&WorldConfig::summit(1))
}

#[test]
fn resolution_log_reflects_link_order() {
    let mut ctx = ctx();
    let mut mpi = InterposedMpi::new(TempiConfig::default());
    let dt = ctx.type_vector(4, 4, 8, MPI_BYTE).unwrap();
    mpi.type_commit(&mut ctx, dt).unwrap();
    let src = ctx.gpu.malloc(64).unwrap();
    let dst = ctx.gpu.malloc(16).unwrap();
    let mut pos = 0;
    mpi.pack(&mut ctx, src, 1, dt, dst, 16, &mut pos).unwrap();
    let log: Vec<_> = mpi.log.iter().map(|(s, p)| (*s, *p)).collect();
    assert_eq!(log[0], (MpiSymbol::TypeCommit, Provider::Tempi));
    assert_eq!(log[1], (MpiSymbol::Pack, Provider::Tempi));
}

#[test]
fn partial_interposition_splits_providers() {
    let mut ctx = ctx();
    let mut mpi = InterposedMpi::with_linker(
        TempiConfig::default(),
        Linker::with_overrides([MpiSymbol::Pack]),
    );
    let dt = ctx.type_vector(4, 4, 8, MPI_BYTE).unwrap();
    // TypeCommit not overridden → system path, so no TEMPI plan exists...
    mpi.type_commit(&mut ctx, dt).unwrap();
    assert!(mpi.tempi.plan(dt).is_none());
    // ...but pack IS overridden, and lazily commits on first use
    let src = ctx.gpu.malloc(4 * 8).unwrap();
    let dst = ctx.gpu.malloc(16).unwrap();
    let mut pos = 0;
    mpi.pack(&mut ctx, src, 1, dt, dst, 16, &mut pos).unwrap();
    assert!(mpi.tempi.plan(dt).is_some());
    assert_eq!(
        mpi.log,
        vec![
            (MpiSymbol::TypeCommit, Provider::System),
            (MpiSymbol::Pack, Provider::Tempi)
        ]
    );
}

#[test]
fn interposition_preserves_bytes_everywhere() {
    // Full pipeline (commit → pack → send → recv → unpack) run three ways;
    // output bytes must be identical.
    let run = |mpi_factory: fn() -> InterposedMpi| -> Vec<u8> {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let mut mpi = mpi_factory();
            let dt = ctx.type_vector(16, 8, 24, MPI_BYTE)?;
            mpi.type_commit(ctx, dt)?;
            let span = 15 * 24 + 8 + 8;
            let buf = ctx.gpu.malloc(span)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &pattern(span))?;
                mpi.send(ctx, buf, 1, dt, 1, 0)?;
                Ok(Vec::new())
            } else {
                mpi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
                // repack locally to observe exactly the typed bytes
                let packed = ctx.gpu.malloc(128)?;
                let mut pos = 0;
                mpi.pack(ctx, buf, 1, dt, packed, 128, &mut pos)?;
                let out = ctx.gpu.memory().peek(packed, 128)?;
                Ok(out)
            }
        })
        .expect("world");
        results[1].clone()
    };
    let full = run(|| InterposedMpi::new(TempiConfig::default()));
    let none = run(InterposedMpi::system_only);
    let partial = run(|| {
        InterposedMpi::with_linker(
            TempiConfig::default(),
            Linker::with_overrides([MpiSymbol::Send, MpiSymbol::Recv]),
        )
    });
    assert_eq!(full, none);
    assert_eq!(full, partial);
}

#[test]
fn stats_attribute_work_to_the_right_layer() {
    let mut ctx = ctx();
    let mut mpi = InterposedMpi::new(TempiConfig::default());
    let v = ctx.type_vector(8, 8, 16, MPI_BYTE).unwrap();
    let s = ctx
        .type_create_struct(&[1], &[0], &[mpi_sim::consts::MPI_DOUBLE])
        .unwrap();
    mpi.type_commit(&mut ctx, v).unwrap();
    mpi.type_commit(&mut ctx, s).unwrap();
    let src = ctx.gpu.malloc(256).unwrap();
    let dst = ctx.gpu.malloc(256).unwrap();
    let mut pos = 0;
    mpi.pack(&mut ctx, src, 1, v, dst, 256, &mut pos).unwrap();
    let mut pos = 0;
    mpi.pack(&mut ctx, src, 1, s, dst, 256, &mut pos).unwrap();
    assert_eq!(mpi.tempi.stats.commits, 2);
    assert_eq!(mpi.tempi.stats.pack_calls, 2);
    // the struct pack fell through to baseline handling
    assert_eq!(mpi.tempi.stats.fallbacks, 1);
}

// ---- error paths through the interposer (both providers) -----------------
//
// The robustness contract: an application linked with TEMPI sees the same
// MPI error classes it would see from the system MPI alone.

type ProviderCase = (&'static str, fn() -> InterposedMpi);

fn providers() -> [ProviderCase; 2] {
    [
        (
            "tempi",
            (|| InterposedMpi::new(TempiConfig::default())) as fn() -> InterposedMpi,
        ),
        (
            "system",
            InterposedMpi::system_only as fn() -> InterposedMpi,
        ),
    ]
}

#[test]
fn uncommitted_type_is_rejected_by_both_providers() {
    for (name, factory) in providers() {
        let mut ctx = ctx();
        let mut mpi = factory();
        let dt = ctx.type_vector(4, 4, 8, MPI_BYTE).unwrap();
        // no type_commit
        let src = ctx.gpu.malloc(64).unwrap();
        let dst = ctx.gpu.malloc(16).unwrap();
        let mut pos = 0;
        let r = mpi.pack(&mut ctx, src, 1, dt, dst, 16, &mut pos);
        assert!(matches!(r, Err(MpiError::NotCommitted)), "{name}: {r:?}");
    }
}

#[test]
fn invalid_rank_is_rejected_by_both_providers() {
    for (name, factory) in providers() {
        let mut ctx = ctx(); // world of size 1
        let mut mpi = factory();
        let dt = ctx.type_vector(4, 4, 8, MPI_BYTE).unwrap();
        mpi.type_commit(&mut ctx, dt).unwrap();
        let buf = ctx.gpu.malloc(64).unwrap();
        let r = mpi.send(&mut ctx, buf, 1, dt, 5, 0);
        assert!(
            matches!(r, Err(MpiError::InvalidRank { rank: 5, size: 1 })),
            "{name}: {r:?}"
        );
    }
}

#[test]
fn truncation_is_reported_by_both_providers() {
    for (name, factory) in providers() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, move |ctx| {
            let mut mpi = factory();
            let big = ctx.type_vector(16, 8, 16, MPI_BYTE)?; // 128 data bytes
            let small = ctx.type_vector(4, 8, 16, MPI_BYTE)?; // capacity 32
            mpi.type_commit(ctx, big)?;
            mpi.type_commit(ctx, small)?;
            if ctx.rank == 0 {
                let buf = ctx.gpu.malloc(16 * 16)?;
                mpi.send(ctx, buf, 1, big, 1, 0)?;
                Ok(true)
            } else {
                let buf = ctx.gpu.malloc(64)?;
                let r = mpi.recv(ctx, buf, 1, small, Some(0), Some(0));
                Ok(matches!(
                    r,
                    Err(MpiError::Truncated {
                        sent: 128,
                        capacity: 32,
                        ..
                    })
                ))
            }
        })
        .unwrap();
        assert!(results[1], "{name}");
    }
}

#[test]
fn scheduled_peer_exit_surfaces_peer_gone_under_both_providers() {
    for (name, factory) in providers() {
        let cfg =
            WorldConfig::summit(1).with_faults(mpi_sim::FaultPlan::parse("exit=0@5us").unwrap());
        let mut ctx = RankCtx::standalone(&cfg);
        let mut mpi = factory();
        let dt = ctx.type_vector(4, 4, 8, MPI_BYTE).unwrap();
        mpi.type_commit(&mut ctx, dt).unwrap();
        let buf = ctx.gpu.malloc(64).unwrap();
        ctx.clock.advance(gpu_sim::SimTime::from_us(10)); // past the exit
        let r = mpi.send(&mut ctx, buf, 1, dt, 0, 0);
        assert!(matches!(r, Err(MpiError::PeerGone)), "{name}: {r:?}");
    }
}
