//! End-to-end stencil tests: TEMPI and the system baseline must produce
//! bit-identical grids after a halo exchange, across decompositions; the
//! exchange must survive repeated iterations; and TEMPI must be faster.

mod common;

use mpi_sim::{World, WorldConfig};
use tempi_core::config::TempiConfig;
use tempi_core::interpose::InterposedMpi;
use tempi_stencil::{apply_stencil, HaloConfig, HaloExchanger};

fn grids_after_exchange(p: usize, n: usize, interposed: bool) -> Vec<Vec<u8>> {
    let mut cfg = WorldConfig::summit(p);
    cfg.net.ranks_per_node = 2;
    World::run(&cfg, |ctx| {
        let mut mpi = if interposed {
            InterposedMpi::new(TempiConfig::default())
        } else {
            InterposedMpi::system_only()
        };
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(n))?;
        ex.fill(ctx)?;
        ex.exchange(ctx, &mut mpi)?;
        assert_eq!(ex.verify_ghosts(ctx)?, 0, "rank {}", ctx.rank);
        let bytes = ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())?;
        Ok(bytes)
    })
    .expect("world")
}

#[test]
fn tempi_and_system_grids_identical() {
    for p in [1usize, 2, 4, 8] {
        let a = grids_after_exchange(p, 6, true);
        let b = grids_after_exchange(p, 6, false);
        assert_eq!(a, b, "P = {p}");
    }
}

#[test]
fn larger_prime_friendly_decompositions() {
    for p in [3usize, 6, 12] {
        let grids = grids_after_exchange(p, 4, true);
        assert_eq!(grids.len(), p);
    }
}

#[test]
fn repeated_iterations_with_compute_stay_consistent() {
    let mut cfg = WorldConfig::summit(8);
    cfg.net.ranks_per_node = 2;
    let results = World::run(&cfg, |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(6))?;
        // constant field: averaging must keep it constant through 3
        // exchange+compute iterations, which requires correct halos each
        // time (the compute consumes ghost values)
        let n = ex.cfg.alloc_bytes() / 4;
        let bytes: Vec<u8> = std::iter::repeat_n(2.5f32.to_le_bytes(), n)
            .flatten()
            .collect();
        ctx.gpu.memory().poke(ex.grid, &bytes)?;
        for _ in 0..3 {
            ex.exchange(ctx, &mut mpi)?;
            apply_stencil(&ex, ctx)?;
        }
        // sample an interior cell
        let i = ex.cfg.cell_index(3, 3, 3) * 4;
        let data = ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())?;
        let v = f32::from_le_bytes(data[i..i + 4].try_into().unwrap());
        Ok((v - 2.5).abs())
    })
    .unwrap();
    for (r, d) in results.iter().enumerate() {
        assert!(*d < 1e-4, "rank {r} drift {d}");
    }
}

#[test]
fn tempi_total_exchange_is_far_faster_at_scale() {
    let mut cfg = WorldConfig::summit(8);
    cfg.net.ranks_per_node = 2;
    let run = |interposed: bool| {
        World::run(&cfg, |ctx| {
            let mut mpi = if interposed {
                InterposedMpi::new(TempiConfig::default())
            } else {
                InterposedMpi::system_only()
            };
            let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(12))?;
            ex.fill(ctx)?;
            let t = ex.exchange(ctx, &mut mpi)?;
            Ok(t.total().as_ps())
        })
        .expect("world")
        .into_iter()
        .max()
        .expect("ranks")
    };
    let tempi = run(true);
    let system = run(false);
    assert!(
        system > tempi * 50,
        "expected ≥50x: system {system} ps vs tempi {tempi} ps"
    );
}
