//! Cross-layer property tests: TEMPI's committed plans must denote exactly
//! the bytes the MPI typemap semantics define, for arbitrary datatypes.

mod common;

use common::{arb_typedesc, pattern};
use mpi_sim::datatype::pack_cpu;
use mpi_sim::datatype::typemap::segments;
use mpi_sim::{payload_checksum, RankCtx, WorldConfig};
use proptest::prelude::*;
use tempi_core::config::TempiConfig;
use tempi_core::tempi::{PlanKind, Tempi};
use tempi_stencil::Frame;

fn ctx() -> RankCtx {
    RankCtx::standalone(&WorldConfig::summit(1))
}

/// Merge adjacent-in-order contiguous runs (both the plan enumeration and
/// the typemap oracle are normalized this way before comparison).
fn normalize(runs: Vec<(i64, u64)>) -> Vec<(i64, u64)> {
    let mut out: Vec<(i64, u64)> = Vec::new();
    for (off, len) in runs {
        if len == 0 {
            continue;
        }
        if let Some(last) = out.last_mut() {
            if last.0 + last.1 as i64 == off {
                last.1 += len;
                continue;
            }
        }
        out.push((off, len));
    }
    out
}

/// Enumerate the byte runs a committed plan denotes, in plan order.
fn plan_runs(plan: &tempi_core::TypePlan) -> Option<Vec<(i64, u64)>> {
    match &plan.kind {
        PlanKind::Empty => Some(Vec::new()),
        PlanKind::Strided(kp) => {
            let mut v = Vec::new();
            let len = kp.sb.block_bytes() as u64;
            kp.sb.for_each_block(|off| v.push((off, len)));
            Some(v)
        }
        PlanKind::Blocks(bl) => Some(bl.blocks.clone()),
        PlanKind::Fallback(_) => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// THE invariant: for any datatype TEMPI accelerates, the committed
    /// plan's block enumeration covers exactly the typemap's byte runs, in
    /// the same order.
    #[test]
    fn committed_plan_equals_typemap_oracle(desc in arb_typedesc()) {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = desc.build(&mut ctx).unwrap();
        let plan = tempi.type_commit(&mut ctx, dt).unwrap();
        let Some(runs) = plan_runs(&plan) else {
            // fallback plans delegate to the system MPI, which walks the
            // typemap directly — nothing to compare
            return Ok(());
        };
        let oracle: Vec<(i64, u64)> = {
            let reg = ctx.registry().read();
            segments(&reg, dt)
                .unwrap()
                .into_iter()
                .map(|s| (s.off, s.len))
                .collect()
        };
        prop_assert_eq!(normalize(runs), normalize(oracle));
    }

    /// Plan metadata is consistent: size equals the denoted bytes, and the
    /// strided block geometry multiplies out.
    #[test]
    fn plan_metadata_consistent(desc in arb_typedesc()) {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = desc.build(&mut ctx).unwrap();
        let plan = tempi.type_commit(&mut ctx, dt).unwrap();
        let attrs = ctx.attrs(dt).unwrap();
        prop_assert_eq!(plan.size, attrs.size);
        prop_assert_eq!(plan.extent, attrs.extent());
        if let PlanKind::Strided(kp) = &plan.kind {
            prop_assert_eq!(kp.sb.data_bytes() as u64, plan.size);
            prop_assert_eq!(
                kp.sb.block_bytes() * kp.sb.block_count(),
                kp.sb.data_bytes()
            );
            // word divides the block and every outer stride
            let w = kp.word as i64;
            prop_assert_eq!(kp.sb.block_bytes() % w, 0);
            for &s in &kp.sb.strides[1..] {
                prop_assert_eq!(s % w, 0);
            }
            // block dims within device limits
            prop_assert!(kp.block.count() <= 1024);
        }
    }

    /// Canonicalization never changes what a type denotes: plans with and
    /// without it cover the same bytes (only the kernel parameterization
    /// differs).
    #[test]
    fn canonicalization_preserves_semantics(desc in arb_typedesc()) {
        let mut ctx = ctx();
        let dt = desc.build(&mut ctx).unwrap();
        let mut canon = Tempi::default();
        let mut raw = Tempi::new(TempiConfig {
            canonicalize: false,
            ..TempiConfig::default()
        });
        let p1 = canon.type_commit(&mut ctx, dt).unwrap();
        let p2 = raw.type_commit(&mut ctx, dt).unwrap();
        // raw trees may fail StridedBlock conversion and fall back; that
        // is allowed — semantics then come from the system MPI
        if let (Some(a), Some(b)) = (plan_runs(&p1), plan_runs(&p2)) {
            prop_assert_eq!(normalize(a), normalize(b));
        }
    }

    /// End-to-end integrity over the datatype zoo: pack any datatype, and
    /// the envelope checksum round-trips byte-exactly — every FNV-1a
    /// implementation in the stack (wire envelope, GPU region checksum,
    /// checkpoint frame) agrees on the packed bytes, and corrupting any
    /// single byte is always detected (each FNV-1a step is a bijection of
    /// the 64-bit state, so one changed byte must change the digest).
    #[test]
    fn checksum_roundtrips_over_packed_datatypes(
        desc in arb_typedesc(),
        flip_idx in any::<prop::sample::Index>(),
        mask in 1u8..,
    ) {
        let mut ctx = ctx();
        let dt = desc.build(&mut ctx).unwrap();
        let attrs = ctx.attrs(dt).unwrap();
        let span = attrs.true_ub.max(attrs.ub).max(1) as usize + 64;
        let src = pattern(span);
        let packed_len = attrs.size as usize;
        let mut packed = vec![0u8; packed_len];
        {
            let reg = ctx.registry().read();
            let mut pos = 0;
            pack_cpu::pack(&reg, &src, 0, 1, dt, &mut packed, &mut pos).unwrap();
        }
        let c = payload_checksum(&packed);
        prop_assert_eq!(payload_checksum(&packed.clone()), c, "deterministic");
        // the GPU-side region checksum agrees with the wire checksum
        let host = ctx.gpu.host_alloc(packed_len.max(1)).unwrap();
        ctx.gpu.memory().poke(host, &packed).unwrap();
        prop_assert_eq!(
            ctx.gpu.memory().checksum_region(host, packed_len).unwrap(),
            c
        );
        ctx.gpu.free(host).unwrap();
        // the checkpoint frame restates FNV-1a (so spilled frames verify
        // without a live runtime) and round-trips the payload byte-exactly
        let frame = Frame {
            generation: 7,
            epoch: 3,
            comm_rank: 1,
            world_rank: 2,
            dims: [1, 1, 1],
            local: [1, 1, 1],
            payload: packed.clone(),
        };
        let back = Frame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(&back.payload, &packed);
        // any single corrupted byte is detected
        if !packed.is_empty() {
            let i = flip_idx.index(packed.len());
            let mut bad = packed.clone();
            bad[i] ^= mask;
            prop_assert_ne!(payload_checksum(&bad), c);
        }
    }

    /// Committing twice (same handle) is idempotent and returns the same
    /// plan object.
    #[test]
    fn commit_idempotent(desc in arb_typedesc()) {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = desc.build(&mut ctx).unwrap();
        let a = tempi.type_commit(&mut ctx, dt).unwrap();
        let b = tempi.type_commit(&mut ctx, dt).unwrap();
        prop_assert!(std::sync::Arc::ptr_eq(&a, &b));
    }
}
