//! End-to-end test of the DDT performance-guidelines harness: runs the
//! expanded zoo on the Summit (Spectrum MPI) profile and pins the
//! verdict set the seed produces — the same facts the committed
//! `results/BENCH_guidelines.baseline.json` gates at full vendor
//! coverage in CI.

use tempi_bench::guidelines::{render_report, run_zoo_on, violations};
use tempi_bench::{GatedSuite, Platform, ZooPattern};

/// The default `TEMPI_GUIDELINE_TOL`.
const TOL: f64 = 0.10;

#[test]
fn summit_zoo_verdicts_are_pinned() {
    let rows = run_zoo_on(&[Platform::Summit], TOL).unwrap();
    assert_eq!(rows.len(), ZooPattern::zoo().len());

    for r in &rows {
        // G1: the typed send never loses to pack-then-send — in either
        // deployment, on any pattern (TEMPI's thesis, and even the
        // vendor baselines pack internally).
        assert!(r.g1_off && r.g1_on, "{}: G1 violated: {r:?}", r.row_key());
        // G3/G4: TEMPI never introduces a violation, and
        // canonicalization never regresses a normalized layout.
        assert!(r.g3, "{}: G3 violated: {r:?}", r.row_key());
        assert!(r.g4, "{}: G4 violated: {r:?}", r.row_key());
        // every zoo pattern routes through a TEMPI plan (no fallbacks:
        // the expanded zoo exercises the paper's canonical coverage)
        assert!(
            r.normalized,
            "{}: plan {} is not normalized",
            r.row_key(),
            r.plan
        );
    }

    // G2 status quo: the vendor's typed path loses to the naive
    // element-wise loop on every non-contiguous pattern (the
    // Hunold/Träff finding TEMPI attacks) and satisfies it only on the
    // contiguous row.
    for r in &rows {
        assert_eq!(
            r.g2_off,
            r.pattern.starts_with("row/"),
            "{}: unexpected off-side G2 verdict",
            r.row_key()
        );
    }

    // TEMPI-on fixes G2 everywhere except the two few-large-block
    // patterns where a hand loop of big contiguous messages is genuinely
    // competitive (blocks of 2 KiB+ ride the wire at full bandwidth
    // either way, and the loop skips the pack entirely).
    let g2_on_violators: Vec<&str> = rows
        .iter()
        .filter(|r| !r.g2_on)
        .map(|r| r.pattern.as_str())
        .collect();
    assert_eq!(
        g2_on_violators,
        ["soa/8x2048@65536", "fig2d/1|4096|64"],
        "the pinned G2[on] violation set changed"
    );

    // the worst surviving violation is the off-side status quo, and the
    // report names the build-failing count as zero
    let v = violations(&rows);
    assert!(!v.is_empty());
    assert!(v.iter().all(|x| x.guideline != "G3" && x.guideline != "G4"));
    assert!(v[0].guideline.starts_with("G2"));
    let report = render_report(&rows, TOL);
    assert!(report.contains("0 G3 violation(s)"), "{report}");
}

#[test]
fn guideline_measurements_are_deterministic() {
    // the whole gate rests on virtual-time reproducibility: two fresh
    // runs of one cell must agree to the picosecond
    let pattern = ZooPattern::Soa {
        fields: 4,
        take: 512,
        field_bytes: 4096,
    };
    let a = tempi_bench::guidelines::run_cell(Platform::Summit, pattern, TOL).unwrap();
    let b = tempi_bench::guidelines::run_cell(Platform::Summit, pattern, TOL).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn tolerance_knob_widens_the_gate() {
    // the fig2d/1|4096|64 G2[on] miss is ~1.5x: a 100%-tolerance run
    // (TEMPI_GUIDELINE_TOL=0.99...) must clear it, proving the knob
    // reaches the verdicts (0.99 is the largest valid tolerance).
    let pattern = ZooPattern::Fig2d(tempi_bench::Obj2d {
        incount: 1,
        block: 4096,
        count: 64,
        stride: 8192,
    });
    let tight = tempi_bench::guidelines::run_cell(Platform::Summit, pattern, TOL).unwrap();
    let loose = tempi_bench::guidelines::run_cell(Platform::Summit, pattern, 0.99).unwrap();
    assert!(!tight.g2_on && tight.worst_ratio > 1.0);
    assert!(loose.g2_on, "{loose:?}");
    assert!(loose.g1_on && loose.g3 && loose.g4);
}
