//! # tempi — an interposed MPI library with a canonical representation of CUDA-aware datatypes
//!
//! A simulation-backed, from-scratch Rust reproduction of
//! *TEMPI: An Interposed MPI Library with a Canonical Representation of
//! CUDA-aware Datatypes* (Pearson et al., HPDC 2021).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`gpu`] ([`gpu_sim`]) — the simulated CUDA runtime: address-spaced
//!   memory, streams, kernels, and a virtual-time cost model calibrated to
//!   the paper's Summit measurements.
//! * [`mpi`] ([`mpi_sim`]) — the simulated MPI runtime: the full derived-
//!   datatype engine, vendor baseline profiles (Spectrum MPI / OpenMPI /
//!   MVAPICH2), a network model, and a multi-rank world.
//! * [`core`] ([`tempi_core`]) — the paper's contribution: datatype
//!   translation (Algs. 1–4), canonicalization (Algs. 5–7), the
//!   `StridedBlock` kernel parameterization (Alg. 8), kernel selection,
//!   the Section-5 performance model, and the interposer architecture.
//! * [`stencil`] ([`tempi_stencil`]) — the paper's 3-D 26-point stencil
//!   halo-exchange case study.
//! * [`trace`] ([`tempi_trace`]) — the observability layer: virtual-time
//!   spans, a typed metrics registry, and the Chrome `trace_event`
//!   exporter, zero-overhead when off (`TEMPI_TRACE=off`).
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and the
//! hardware-substitution rationale, and `EXPERIMENTS.md` for
//! paper-vs-measured results of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use tempi::prelude::*;
//!
//! // A single simulated Summit rank with TEMPI interposed.
//! let mut ctx = RankCtx::standalone(&WorldConfig::summit(1));
//! let mut mpi = InterposedMpi::new(TempiConfig::default());
//!
//! // 13 rows of 100 bytes, 256 bytes apart — a 2-D strided object.
//! let dt = ctx.type_vector(13, 100, 256, MPI_BYTE).unwrap();
//! mpi.type_commit(&mut ctx, dt).unwrap();
//!
//! // Pack it on the (simulated) GPU.
//! let src = ctx.gpu.malloc(13 * 256).unwrap();
//! let dst = ctx.gpu.malloc(1300).unwrap();
//! let mut pos = 0;
//! mpi.pack(&mut ctx, src, 1, dt, dst, 1300, &mut pos).unwrap();
//! assert_eq!(pos, 1300);
//! ```

#![warn(missing_docs)]

pub use gpu_sim as gpu;
pub use mpi_sim as mpi;
pub use tempi_core as core;
pub use tempi_stencil as stencil;
pub use tempi_trace as trace;

/// The most common imports, for examples and applications.
pub mod prelude {
    pub use gpu_sim::{
        Dim3, GpuContext, GpuCostModel, GpuPtr, MemSpace, PackDir, PackTarget, SimClock, SimTime,
        Stream,
    };
    pub use mpi_sim::consts::*;
    pub use mpi_sim::datatype::Order;
    pub use mpi_sim::{
        Datatype, MpiError, MpiResult, NetModel, RankCtx, VendorProfile, World, WorldConfig,
    };
    pub use tempi_core::{
        config::{Method, TempiConfig},
        interpose::{InterposedMpi, Linker, MpiSymbol, Provider},
        model::SendModel,
        tempi::{PlanKind, Tempi},
    };
    pub use tempi_stencil::{HaloConfig, HaloExchanger};
    pub use tempi_trace::{TraceLevel, Tracer};
}
