//! Structured tracing and metrics for the TEMPI stack.
//!
//! Every layer of the reproduction — the simulated GPU runtime, the
//! simulated MPI world, the TEMPI interposer, and the stencil application —
//! emits into one shared schema defined here:
//!
//! * **Spans** (begin/end pairs on a rank's CPU lane, complete events on
//!   its GPU lane) stamped in *virtual* time, so a trace decomposes exactly
//!   the same `T_device`/`T_oneshot` phases the paper's model prices:
//!   translate → canonicalize → kernel select at commit, and
//!   pack → copy → wire → unpack per send.
//! * **Instants** for point decisions (tuner choices, pool traffic,
//!   recovery transitions).
//! * A typed **metrics registry** (counters, gauges, log2-bucket
//!   histograms) that library layers publish their counters into at export
//!   time.
//!
//! Exporters: Chrome `trace_event` JSON (load in `chrome://tracing` or
//! Perfetto; one process per rank, one thread lane per CPU/GPU timeline)
//! and a compact JSONL metrics dump.
//!
//! # Zero overhead when off
//!
//! A [`Tracer`] is an `Option<Arc<..>>`. The disabled tracer ([`Tracer::off`],
//! also `Default`) is `None`: every recording call starts with one branch on
//! that option and returns immediately — no allocation, no formatting, no
//! lock. Event names and argument lists are only materialized *after* the
//! enabled check, so the hot send path keeps its zero-allocation
//! steady-state property with tracing compiled in (asserted by the
//! `send_path` criterion bench).
//!
//! Timestamps are raw picosecond counts (`u64`), the same unit as the
//! simulator's `SimTime`, keeping this crate dependency-free of the
//! simulation layers so every crate in the workspace can emit into it.

#![warn(missing_docs)]

mod chrome;
mod metrics;

pub use chrome::chrome_trace_json;
pub use metrics::{Histogram, MetricsRegistry};

use std::sync::Arc;

use parking_lot::Mutex;

/// Lane (Chrome `tid`) for a rank's CPU/MPI timeline.
pub const LANE_CPU: u32 = 0;
/// Lane (Chrome `tid`) for a rank's GPU stream / copy-engine timeline.
pub const LANE_GPU: u32 = 1;

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum TraceLevel {
    /// Record nothing; every tracer call is a single branch.
    #[default]
    Off,
    /// Record spans (begin/end and GPU complete events) only.
    Spans,
    /// Record spans plus point instants (tuner decisions, pool traffic,
    /// wire departures) and live metrics.
    Full,
}

impl TraceLevel {
    /// Parse a `TEMPI_TRACE` value: `off`, `spans` or `full`.
    pub fn parse(s: &str) -> Result<TraceLevel, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" | "none" => Ok(TraceLevel::Off),
            "spans" | "1" => Ok(TraceLevel::Spans),
            "full" | "2" => Ok(TraceLevel::Full),
            other => Err(format!(
                "TEMPI_TRACE: unknown level {other:?} (expected off, spans or full)"
            )),
        }
    }

    /// Read the level from the `TEMPI_TRACE` environment variable
    /// (unset means [`TraceLevel::Off`]).
    pub fn from_env() -> Result<TraceLevel, String> {
        match std::env::var("TEMPI_TRACE") {
            Ok(v) => TraceLevel::parse(&v),
            Err(_) => Ok(TraceLevel::Off),
        }
    }
}

/// One typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument (e.g. the chosen send method).
    Str(String),
    /// An unsigned integer argument (byte counts, epochs, ordinals).
    U64(u64),
    /// A float argument (ratios, times in derived units).
    F64(f64),
    /// A boolean argument (probe vs memo, hit vs miss).
    Bool(bool),
}

impl From<&str> for ArgValue {
    fn from(s: &str) -> Self {
        ArgValue::Str(s.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(s: String) -> Self {
        ArgValue::Str(s)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// Argument list type produced by the `args` closures.
pub type Args = Vec<(&'static str, ArgValue)>;

/// The Chrome `trace_event` phase of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// Span open (`"B"`).
    Begin,
    /// Span close (`"E"`). Pairs with the innermost open `Begin` on the
    /// same `(pid, tid)` lane.
    End,
    /// Complete event (`"X"`): a span with a known duration, used for the
    /// GPU lane where start and duration are known at submit time.
    Complete,
    /// Instant event (`"i"`).
    Instant,
}

/// One recorded trace event, in virtual picoseconds.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Phase (begin / end / complete / instant).
    pub ph: EventPhase,
    /// Process lane: the MPI *world* rank.
    pub pid: u32,
    /// Thread lane within the rank: [`LANE_CPU`] or [`LANE_GPU`].
    pub tid: u32,
    /// Category (e.g. `tempi`, `mpi`, `gpu`, `stencil`).
    pub cat: &'static str,
    /// Event name (empty for `End` events; Chrome matches by nesting).
    pub name: String,
    /// Virtual timestamp in picoseconds (start, for `Complete`).
    pub ts_ps: u64,
    /// Duration in picoseconds (`Complete` events only, else 0).
    pub dur_ps: u64,
    /// Typed arguments.
    pub args: Args,
}

#[derive(Debug)]
struct Shared {
    level: TraceLevel,
    events: Mutex<Vec<TraceEvent>>,
    metrics: Mutex<MetricsRegistry>,
}

/// Handle used by every instrumented layer to record events and metrics.
///
/// Cheap to clone (it is an `Option<Arc<..>>`); the disabled tracer is
/// `None` and records nothing. All clones of one enabled tracer share a
/// single event buffer and metrics registry, so a multi-rank world traced
/// with one tracer exports one coherent file.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Shared>>,
}

impl Tracer {
    /// The disabled tracer: records nothing, costs one branch per call.
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer recording at `level` ([`TraceLevel::Off`] yields the
    /// disabled tracer).
    pub fn new(level: TraceLevel) -> Tracer {
        match level {
            TraceLevel::Off => Tracer::off(),
            _ => Tracer {
                inner: Some(Arc::new(Shared {
                    level,
                    events: Mutex::new(Vec::new()),
                    metrics: Mutex::new(MetricsRegistry::new()),
                })),
            },
        }
    }

    /// A tracer configured from `TEMPI_TRACE` (errors on an unknown level).
    pub fn from_env() -> Result<Tracer, String> {
        Ok(Tracer::new(TraceLevel::from_env()?))
    }

    /// Is any recording active?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Is verbose recording (instants + live metrics) active?
    #[inline]
    pub fn full(&self) -> bool {
        matches!(&self.inner, Some(s) if s.level == TraceLevel::Full)
    }

    /// The active level.
    pub fn level(&self) -> TraceLevel {
        self.inner.as_ref().map_or(TraceLevel::Off, |s| s.level)
    }

    fn push(&self, ev: TraceEvent) {
        if let Some(s) = &self.inner {
            s.events.lock().push(ev);
        }
    }

    /// Open a span on `(pid, tid)` at virtual instant `ts_ps`.
    #[inline]
    pub fn begin(&self, pid: u32, tid: u32, cat: &'static str, name: &str, ts_ps: u64) {
        if self.inner.is_none() {
            return;
        }
        self.push(TraceEvent {
            ph: EventPhase::Begin,
            pid,
            tid,
            cat,
            name: name.to_string(),
            ts_ps,
            dur_ps: 0,
            args: Vec::new(),
        });
    }

    /// Close the innermost open span on `(pid, tid)` at `ts_ps`.
    #[inline]
    pub fn end(&self, pid: u32, tid: u32, ts_ps: u64) {
        if self.inner.is_none() {
            return;
        }
        self.push(TraceEvent {
            ph: EventPhase::End,
            pid,
            tid,
            cat: "",
            name: String::new(),
            ts_ps,
            dur_ps: 0,
            args: Vec::new(),
        });
    }

    /// Close the innermost open span with arguments; the `args` closure
    /// runs only when recording is active.
    #[inline]
    pub fn end_args(&self, pid: u32, tid: u32, ts_ps: u64, args: impl FnOnce() -> Args) {
        if self.inner.is_none() {
            return;
        }
        self.push(TraceEvent {
            ph: EventPhase::End,
            pid,
            tid,
            cat: "",
            name: String::new(),
            ts_ps,
            dur_ps: 0,
            args: args(),
        });
    }

    /// Record a complete (`X`) event: a span whose start and duration are
    /// known at record time — the shape of GPU-lane work, where the stream
    /// model computes both at submit. The `args` closure runs only when
    /// recording is active.
    ///
    /// The parameter list mirrors the Chrome `trace_event` field set
    /// one-to-one; bundling them into a struct would just move the same
    /// seven names one level down at every call site.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn complete(
        &self,
        pid: u32,
        tid: u32,
        cat: &'static str,
        name: &str,
        ts_ps: u64,
        dur_ps: u64,
        args: impl FnOnce() -> Args,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(TraceEvent {
            ph: EventPhase::Complete,
            pid,
            tid,
            cat,
            name: name.to_string(),
            ts_ps,
            dur_ps,
            args: args(),
        });
    }

    /// Record an instant event (visible from [`TraceLevel::Spans`] up):
    /// rare point transitions such as communicator recovery.
    #[inline]
    pub fn instant(
        &self,
        pid: u32,
        tid: u32,
        cat: &'static str,
        name: &str,
        ts_ps: u64,
        args: impl FnOnce() -> Args,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(TraceEvent {
            ph: EventPhase::Instant,
            pid,
            tid,
            cat,
            name: name.to_string(),
            ts_ps,
            dur_ps: 0,
            args: args(),
        });
    }

    /// Record a verbose instant (only at [`TraceLevel::Full`]): per-call
    /// detail such as tuner decisions, pool takes and wire departures.
    #[inline]
    pub fn debug_instant(
        &self,
        pid: u32,
        tid: u32,
        cat: &'static str,
        name: &str,
        ts_ps: u64,
        args: impl FnOnce() -> Args,
    ) {
        if !self.full() {
            return;
        }
        self.push(TraceEvent {
            ph: EventPhase::Instant,
            pid,
            tid,
            cat,
            name: name.to_string(),
            ts_ps,
            dur_ps: 0,
            args: args(),
        });
    }

    // ---- metrics --------------------------------------------------------

    /// Add `delta` to the named counter (no-op when off).
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(s) = &self.inner {
            s.metrics.lock().count(name, delta);
        }
    }

    /// Set the named gauge (no-op when off).
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(s) = &self.inner {
            s.metrics.lock().gauge(name, value);
        }
    }

    /// Record one observation into the named log2-bucket histogram
    /// (no-op when off).
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(s) = &self.inner {
            s.metrics.lock().observe(name, value);
        }
    }

    // ---- export ---------------------------------------------------------

    /// Snapshot of all recorded events (empty when off).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(s) => s.events.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Number of recorded events (0 when off).
    pub fn event_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |s| s.events.lock().len())
    }

    /// Snapshot of the metrics registry (empty when off).
    pub fn metrics(&self) -> MetricsRegistry {
        match &self.inner {
            Some(s) => s.metrics.lock().clone(),
            None => MetricsRegistry::new(),
        }
    }

    /// Render the recorded events as a Chrome `trace_event` JSON document.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.events())
    }

    /// Render the metrics registry as compact JSONL (one metric per line).
    pub fn metrics_jsonl(&self) -> String {
        self.metrics().to_jsonl()
    }

    /// Write the Chrome trace to `path`.
    pub fn write_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }

    /// Write the JSONL metrics dump to `path`.
    pub fn write_metrics_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.metrics_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_records_nothing() {
        let t = Tracer::off();
        assert!(!t.enabled());
        t.begin(0, LANE_CPU, "tempi", "MPI_Send", 100);
        t.end(0, LANE_CPU, 200);
        t.complete(0, LANE_GPU, "gpu", "pack", 100, 50, Vec::new);
        t.instant(0, LANE_CPU, "mpi", "revoke", 150, Vec::new);
        t.count("sends", 1);
        t.observe("bytes", 4096);
        assert_eq!(t.event_count(), 0);
        assert!(t.events().is_empty());
        assert!(t.metrics().is_empty());
    }

    #[test]
    fn spans_level_skips_debug_instants() {
        let t = Tracer::new(TraceLevel::Spans);
        t.begin(0, LANE_CPU, "tempi", "MPI_Send", 100);
        t.debug_instant(0, LANE_CPU, "tempi", "tuner.decide", 120, Vec::new);
        t.instant(0, LANE_CPU, "mpi", "comm.revoke", 130, Vec::new);
        t.end(0, LANE_CPU, 200);
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert!(evs.iter().all(|e| e.name != "tuner.decide"));
        assert!(evs.iter().any(|e| e.name == "comm.revoke"));
    }

    #[test]
    fn full_level_records_debug_instants_and_args() {
        let t = Tracer::new(TraceLevel::Full);
        t.debug_instant(3, LANE_CPU, "tempi", "tuner.decide", 42, || {
            vec![("method", "Device".into()), ("probe", true.into())]
        });
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].pid, 3);
        assert_eq!(evs[0].args[0], ("method", ArgValue::Str("Device".into())));
        assert_eq!(evs[0].args[1], ("probe", ArgValue::Bool(true)));
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::new(TraceLevel::Spans);
        let t2 = t.clone();
        t.begin(0, LANE_CPU, "a", "x", 1);
        t2.end(0, LANE_CPU, 2);
        assert_eq!(t.event_count(), 2);
        assert_eq!(t2.event_count(), 2);
    }

    #[test]
    fn level_parse_accepts_documented_values() {
        assert_eq!(TraceLevel::parse("off").unwrap(), TraceLevel::Off);
        assert_eq!(TraceLevel::parse("Spans").unwrap(), TraceLevel::Spans);
        assert_eq!(TraceLevel::parse(" full ").unwrap(), TraceLevel::Full);
        let err = TraceLevel::parse("loud").unwrap_err();
        assert!(err.contains("TEMPI_TRACE"), "{err}");
    }
}
