//! Chrome `trace_event` JSON export.
//!
//! Produces the "JSON Array Format" wrapped in a `traceEvents` object, as
//! consumed by `chrome://tracing` and Perfetto. Mapping:
//!
//! * `pid` = MPI world rank (one process row per rank),
//! * `tid` = lane within the rank (0 = CPU/MPI timeline, 1 = GPU stream /
//!   copy engine),
//! * `ts`/`dur` = virtual time in **microseconds** (the format's unit),
//!   converted from the recorder's picoseconds as floats so sub-µs kernel
//!   costs survive.
//!
//! Metadata events name each process `rank N` and each thread lane, so the
//! viewer shows meaningful labels without any manual mapping.

use std::collections::BTreeSet;

use serde_json::{json, Map, Value};

use crate::{ArgValue, EventPhase, TraceEvent, LANE_CPU, LANE_GPU};

const PS_PER_US: f64 = 1e6;

fn args_object(args: &[(&'static str, ArgValue)]) -> Value {
    let mut m = Map::new();
    for (k, v) in args {
        let jv = match v {
            ArgValue::Str(s) => Value::from(s.clone()),
            ArgValue::U64(n) => Value::from(*n),
            ArgValue::F64(f) => Value::from(*f),
            ArgValue::Bool(b) => Value::from(*b),
        };
        m.insert((*k).to_string(), jv);
    }
    Value::Object(m)
}

fn lane_name(tid: u32) -> String {
    match tid {
        LANE_CPU => "cpu".to_string(),
        LANE_GPU => "gpu".to_string(),
        other => format!("lane {other}"),
    }
}

/// Render recorded events as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out: Vec<Value> = Vec::with_capacity(events.len() + 8);

    // Metadata: name every (pid, tid) pair that appears.
    let mut pids = BTreeSet::new();
    let mut lanes = BTreeSet::new();
    for e in events {
        pids.insert(e.pid);
        lanes.insert((e.pid, e.tid));
    }
    for pid in &pids {
        out.push(json!({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": format!("rank {pid}")},
        }));
    }
    for (pid, tid) in &lanes {
        out.push(json!({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": lane_name(*tid)},
        }));
        // Keep the CPU lane above the GPU lane within each rank.
        out.push(json!({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_sort_index",
            "args": {"sort_index": tid},
        }));
    }

    // Canonical event order: the shared buffer interleaves ranks in
    // wall-clock arrival order, which varies run to run (and with the
    // event scheduler's worker count). A stable sort by (pid, tid, ts)
    // makes the export a pure function of the recorded events: same-lane
    // ties keep their per-rank program order (appends within one rank are
    // sequential), so B/E nesting survives.
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| (e.pid, e.tid, e.ts_ps));

    for e in ordered {
        let ts = e.ts_ps as f64 / PS_PER_US;
        let mut obj = Map::new();
        let ph = match e.ph {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
            EventPhase::Complete => "X",
            EventPhase::Instant => "i",
        };
        obj.insert("ph".into(), ph.into());
        obj.insert("pid".into(), e.pid.into());
        obj.insert("tid".into(), e.tid.into());
        obj.insert("ts".into(), ts.into());
        if e.ph != EventPhase::End {
            obj.insert("name".into(), e.name.clone().into());
            if !e.cat.is_empty() {
                obj.insert("cat".into(), e.cat.into());
            }
        }
        if e.ph == EventPhase::Complete {
            obj.insert("dur".into(), (e.dur_ps as f64 / PS_PER_US).into());
        }
        if e.ph == EventPhase::Instant {
            // Thread-scoped instants render as small arrows on the lane.
            obj.insert("s".into(), "t".into());
        }
        if !e.args.is_empty() {
            obj.insert("args".into(), args_object(&e.args));
        }
        out.push(Value::Object(obj));
    }

    json!({
        "traceEvents": out,
        "displayTimeUnit": "ms",
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Args, TraceLevel, Tracer};

    fn sample() -> Tracer {
        let t = Tracer::new(TraceLevel::Full);
        t.begin(0, LANE_CPU, "tempi", "MPI_Send", 1_000_000);
        t.complete(0, LANE_GPU, "gpu", "pack_2d", 1_200_000, 500_000, || {
            vec![("bytes", 4096u64.into())] as Args
        });
        t.end_args(0, LANE_CPU, 2_000_000, || vec![("method", "Device".into())]);
        t.instant(1, LANE_CPU, "mpi", "comm.revoke", 1_500_000, || {
            vec![("epoch", 1u64.into())]
        });
        t
    }

    #[test]
    fn export_parses_and_has_required_fields() {
        let doc: serde_json::Value = serde_json::from_str(&sample().chrome_trace()).unwrap();
        let evs = doc["traceEvents"].as_array().unwrap();
        // 2 ranks: 2 process_name + (2 lanes for rank 0, 1 for rank 1) * 2
        // metadata each, plus 4 payload events.
        assert_eq!(evs.len(), 2 + 3 * 2 + 4);
        for e in evs {
            assert!(e.get("ph").is_some());
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
        }
        let b = evs.iter().find(|e| e["ph"] == "B").unwrap();
        assert_eq!(b["name"], "MPI_Send");
        assert_eq!(b["ts"], 1.0); // 1_000_000 ps = 1 µs
        let x = evs.iter().find(|e| e["ph"] == "X").unwrap();
        assert_eq!(x["dur"], 0.5);
        assert_eq!(x["tid"], 1);
        assert_eq!(x["args"]["bytes"], 4096);
        let e = evs.iter().find(|e| e["ph"] == "E").unwrap();
        assert_eq!(e["args"]["method"], "Device");
        let i = evs.iter().find(|e| e["ph"] == "i").unwrap();
        assert_eq!(i["s"], "t");
        assert_eq!(i["args"]["epoch"], 1);
    }

    #[test]
    fn metadata_names_ranks_and_lanes() {
        let doc: serde_json::Value = serde_json::from_str(&sample().chrome_trace()).unwrap();
        let evs = doc["traceEvents"].as_array().unwrap();
        assert!(evs
            .iter()
            .any(|e| e["name"] == "process_name" && e["args"]["name"] == "rank 0"));
        assert!(evs
            .iter()
            .any(|e| e["name"] == "thread_name" && e["args"]["name"] == "gpu" && e["tid"] == 1));
    }
}
