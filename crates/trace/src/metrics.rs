//! Typed metrics: counters, gauges, and fixed log2-bucket histograms.
//!
//! The registry subsumes the ad-hoc counter structs the library layers keep
//! for their own hot paths (`TempiStats`, `StreamStats`, fault statistics):
//! those stay plain fields — no atomics, no locks on the hot path — and are
//! *published* into a registry snapshot at export time.

use std::collections::BTreeMap;

/// A histogram over `u64` observations with one bucket per power of two.
///
/// Bucket `i` counts observations `v` with `2^(i-1) < v <= 2^i` (bucket 0
/// counts zeros and ones). 64 buckets cover the whole `u64` range — enough
/// for byte counts and picosecond durations alike — and the fixed layout
/// means merging and diffing histograms needs no bucket negotiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum: u64,
    /// Fixed log2 buckets; `buckets[i]` counts values in `(2^(i-1), 2^i]`.
    pub buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0 and 1, else `ceil(log2(v))`.
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(63)
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named collection of counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Add `delta` to the named counter (created at zero).
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named gauge to `value`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Render as compact JSONL: one metric per line, sorted by name within
    /// each kind so dumps diff cleanly. Histogram buckets are emitted
    /// sparsely as `[upper_bound, count]` pairs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(
                &serde_json::json!({"kind": "counter", "name": name, "value": v}).to_string(),
            );
            out.push('\n');
        }
        for (name, v) in &self.gauges {
            out.push_str(
                &serde_json::json!({"kind": "gauge", "name": name, "value": v}).to_string(),
            );
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<serde_json::Value> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| serde_json::json!([(1u128 << i).min(u64::MAX as u128) as u64, c]))
                .collect();
            out.push_str(
                &serde_json::json!({
                    "kind": "histogram",
                    "name": name,
                    "count": h.count,
                    "sum": h.sum,
                    "buckets": buckets,
                })
                .to_string(),
            );
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(1025), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1034);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[10], 1);
        assert!((h.mean() - 206.8).abs() < 1e-9);
    }

    #[test]
    fn registry_round_trips_to_jsonl() {
        let mut r = MetricsRegistry::new();
        r.count("tempi.sends", 3);
        r.count("tempi.sends", 2);
        r.gauge("pool.reuse_rate", 0.95);
        r.observe("send.bytes", 4096);
        assert_eq!(r.counter("tempi.sends"), 5);
        assert_eq!(r.gauge_value("pool.reuse_rate"), Some(0.95));
        assert_eq!(r.histogram("send.bytes").unwrap().count, 1);

        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("kind").is_some() && v.get("name").is_some());
        }
        let hist: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(hist["kind"], "histogram");
        assert_eq!(hist["buckets"][0][0], 4096);
        assert_eq!(hist["buckets"][0][1], 1);
    }
}
