//! The halo exchange (paper §6.4): each rank packs its 26 halo regions
//! with `MPI_Pack` into a single send buffer, exchanges with one
//! `MPI_Alltoallv`, and unpacks the 26 arriving regions with `MPI_Unpack`.
//!
//! Pack/unpack go through the interposed MPI, so the same code path runs
//! against plain system MPI (baseline) or TEMPI (accelerated) — exactly
//! the comparison of Fig. 12. `Alltoallv` is *not* a TEMPI symbol and
//! always falls through.

use gpu_sim::{GpuPtr, SimTime};
use mpi_sim::datatype::Order;
use mpi_sim::{AlltoallvBlock, Datatype, MpiError, MpiResult, RankCtx};
use serde::{Deserialize, Serialize};
use tempi_core::interpose::InterposedMpi;

use crate::checkpoint::{provider_for, CheckpointStore, Frame, GenRecord, HEADER_LEN};
use crate::decomp::{dir_index, opposite, Decomp, DIRS};
use crate::halo::{HaloConfig, HaloTypes};

/// User tag for mirroring a checkpoint frame at the buddy rank.
const TAG_CKPT_MIRROR: i32 = 2_000;
/// User tag for the restore-time generation min-agreement.
const TAG_CKPT_GEN: i32 = 2_001;
/// User tag for serving a checkpoint frame to a rebuilding rank.
const TAG_CKPT_FETCH: i32 = 2_002;

/// Outcome of a fault-tolerant exchange
/// ([`HaloExchanger::exchange_with_recovery`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Timing of the exchange round that finally succeeded.
    pub timing: ExchangeTiming,
    /// Revoke → agree → shrink → rebuild rounds that were needed.
    pub shrinks: u64,
    /// World ranks excluded across all shrinks, in exclusion order.
    pub excluded: Vec<usize>,
    /// Communicator epoch after the successful exchange.
    pub epoch: u64,
    /// The checkpoint generation the last rebuild restored from (`None`
    /// when no recovery round was needed).
    pub restored: Option<u64>,
}

/// Virtual-time split of one exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExchangeTiming {
    /// Time in the 26 `MPI_Pack` calls.
    pub pack: SimTime,
    /// Time in `MPI_Alltoallv`.
    pub comm: SimTime,
    /// Time in the 26 `MPI_Unpack` calls.
    pub unpack: SimTime,
}

impl ExchangeTiming {
    /// Total exchange time.
    pub fn total(&self) -> SimTime {
        self.pack + self.comm + self.unpack
    }
}

/// Deterministic cell value at global gridpoint `(gx, gy, gz)` — the
/// verification oracle all ranks share.
pub fn cell_value(gx: usize, gy: usize, gz: usize) -> f32 {
    let h = (gx as u64)
        .wrapping_mul(73_856_093)
        .wrapping_add((gy as u64).wrapping_mul(19_349_663))
        .wrapping_add((gz as u64).wrapping_mul(83_492_791));
    (h % 1_000_000) as f32
}

/// Send a host-side byte blob over the simulated wire: stage it into a
/// host allocation, send, free. Checkpoint traffic goes through the same
/// integrity-checked p2p path as application payloads.
fn send_blob(ctx: &mut RankCtx, bytes: &[u8], dest: usize, tag: i32) -> MpiResult<()> {
    let buf = ctx.gpu.host_alloc(bytes.len().max(1))?;
    let r = (|| {
        ctx.gpu.memory().poke(buf, bytes)?;
        ctx.send_bytes(buf, bytes.len(), dest, tag)
    })();
    ctx.gpu.free(buf)?;
    r
}

/// Receive exactly `len` bytes from `src` into a fresh `Vec`.
fn recv_blob(ctx: &mut RankCtx, len: usize, src: usize, tag: i32) -> MpiResult<Vec<u8>> {
    let buf = ctx.gpu.host_alloc(len.max(1))?;
    let r = (|| -> MpiResult<Vec<u8>> {
        let st = ctx.recv_bytes(buf, len, Some(src), Some(tag))?;
        Ok(ctx.gpu.memory().peek(buf, st.bytes)?)
    })();
    ctx.gpu.free(buf)?;
    r
}

/// Per-rank state of the halo exchange.
pub struct HaloExchanger {
    /// Geometry.
    pub cfg: HaloConfig,
    /// Process grid.
    pub decomp: Decomp,
    /// The 52 committed datatypes.
    pub types: HaloTypes,
    /// The committed interior subarray datatype — the region a checkpoint
    /// snapshots and a restore rebuilds.
    pub interior_dt: Datatype,
    /// Global extents of the grid at first decomposition. Restored state
    /// after shrinks is the periodic extension of this *original* grid, so
    /// oracles wrap positions into `origin` after wrapping into the
    /// current global extents (the two coincide until a shrink changes the
    /// process grid).
    pub origin: [usize; 3],
    /// The local grid allocation (device memory).
    pub grid: GpuPtr,
    sendbuf: GpuPtr,
    recvbuf: GpuPtr,
    /// Non-zero exchange blocks (≤ 26 each), ascending peer — the sparse
    /// `alltoallv` shape. O(degree) storage keeps a 10,000-rank world from
    /// holding 10,000-entry count arrays on every rank.
    send_plan: Vec<AlltoallvBlock>,
    recv_plan: Vec<AlltoallvBlock>,
    /// `(direction index)` in pack order (grouped by ascending dest).
    pack_schedule: Vec<usize>,
    /// `(recv-direction index)` in unpack order (grouped by ascending src,
    /// sender's direction order within a group).
    unpack_schedule: Vec<usize>,
}

impl HaloExchanger {
    /// Allocate the grid and buffers, create and commit the 52 datatypes
    /// (through the interposed `MPI_Type_commit`), and precompute the
    /// exchange schedules.
    pub fn new(
        ctx: &mut RankCtx,
        mpi: &mut InterposedMpi,
        cfg: HaloConfig,
    ) -> MpiResult<HaloExchanger> {
        let decomp = Decomp::new(ctx.size);
        let types = HaloTypes::create(ctx, &cfg)?;
        for i in 0..26 {
            mpi.type_commit(ctx, types.send[i])?;
            mpi.type_commit(ctx, types.recv[i])?;
        }
        let a = cfg.alloc_dims();
        let (isub, istart) = cfg.interior_region();
        let interior_dt = ctx.type_create_subarray(
            &[a[2] as i32, a[1] as i32, a[0] as i32],
            &[isub[2] as i32, isub[1] as i32, isub[0] as i32],
            &[istart[2] as i32, istart[1] as i32, istart[0] as i32],
            Order::C,
            mpi_sim::consts::MPI_FLOAT,
        )?;
        mpi.type_commit(ctx, interior_dt)?;
        let origin = [
            cfg.local[0] * decomp.dims[0],
            cfg.local[1] * decomp.dims[1],
            cfg.local[2] * decomp.dims[2],
        ];
        let me = ctx.rank;

        // Both plans are derived purely from this rank's own 26 neighbor
        // lookups — O(1) in the world size, where the former dense
        // construction walked every rank times every direction. Sorting by
        // (peer, direction index) reproduces the dense ordering exactly:
        // peers ascending, directions ascending within a peer. The recv
        // side uses the torus symmetry `neighbor(src, d) == me  ⇔
        // src == neighbor(me, opposite(d))`.
        let grouped = |pairs: &mut Vec<(usize, usize)>| -> (Vec<AlltoallvBlock>, Vec<usize>) {
            pairs.sort_unstable();
            let mut plan: Vec<AlltoallvBlock> = Vec::new();
            let mut schedule = Vec::with_capacity(26);
            let mut displ = 0usize;
            for &(peer, k) in pairs.iter() {
                schedule.push(k);
                match plan.last_mut() {
                    Some(b) if b.peer == peer => b.count += types.bytes[k],
                    _ => plan.push(AlltoallvBlock {
                        peer,
                        count: types.bytes[k],
                        displ,
                    }),
                }
                displ += types.bytes[k];
            }
            (plan, schedule)
        };
        let mut send_pairs: Vec<(usize, usize)> = DIRS
            .iter()
            .enumerate()
            .map(|(k, &d)| (decomp.neighbor(me, d), k))
            .collect();
        let (send_plan, pack_schedule) = grouped(&mut send_pairs);
        let mut recv_pairs: Vec<(usize, usize)> = DIRS
            .iter()
            .enumerate()
            .map(|(k, &d)| (decomp.neighbor(me, opposite(d)), k))
            .collect();
        let (recv_plan, recv_dirs) = grouped(&mut recv_pairs);
        // src's region for direction d fills my ghost shell on my
        // `opposite(d)` side
        let unpack_schedule = recv_dirs
            .into_iter()
            .map(|k| {
                dir_index(opposite(DIRS[k])).ok_or_else(|| {
                    MpiError::Internal(format!("{:?} is not a halo direction", DIRS[k]))
                })
            })
            .collect::<MpiResult<Vec<usize>>>()?;
        let total_send: usize = send_plan.iter().map(|b| b.count).sum();
        let total_recv: usize = recv_plan.iter().map(|b| b.count).sum();

        let grid = ctx.gpu.malloc(cfg.alloc_bytes())?;
        let sendbuf = ctx.gpu.malloc(total_send.max(1))?;
        let recvbuf = ctx.gpu.malloc(total_recv.max(1))?;

        Ok(HaloExchanger {
            cfg,
            decomp,
            types,
            interior_dt,
            origin,
            grid,
            sendbuf,
            recvbuf,
            send_plan,
            recv_plan,
            pack_schedule,
            unpack_schedule,
        })
    }

    /// Total bytes this rank packs per exchange.
    pub fn send_bytes(&self) -> usize {
        self.send_plan.iter().map(|b| b.count).sum()
    }

    /// Fill the interior with the global oracle values and the ghosts with
    /// a poison value (untimed setup).
    pub fn fill(&self, ctx: &mut RankCtx) -> MpiResult<()> {
        let a = self.cfg.alloc_dims();
        let r = self.cfg.radius;
        let c = self.decomp.coords(ctx.rank);
        let mut data = vec![0u8; self.cfg.alloc_bytes()];
        for z in 0..a[2] {
            for y in 0..a[1] {
                for x in 0..a[0] {
                    let interior = (r..r + self.cfg.local[0]).contains(&x)
                        && (r..r + self.cfg.local[1]).contains(&y)
                        && (r..r + self.cfg.local[2]).contains(&z);
                    let v: f32 = if interior {
                        cell_value(
                            c[0] * self.cfg.local[0] + (x - r),
                            c[1] * self.cfg.local[1] + (y - r),
                            c[2] * self.cfg.local[2] + (z - r),
                        )
                    } else {
                        -1.0
                    };
                    let i = self.cfg.cell_index(x, y, z) * 4;
                    data[i..i + 4].copy_from_slice(&v.to_le_bytes());
                }
            }
        }
        ctx.gpu.memory().poke(self.grid, &data)?;
        Ok(())
    }

    /// One full halo exchange; returns its virtual-time phase split.
    pub fn exchange(
        &mut self,
        ctx: &mut RankCtx,
        mpi: &mut InterposedMpi,
    ) -> MpiResult<ExchangeTiming> {
        ctx.with_span("stencil", "halo.exchange", |ctx| {
            self.exchange_body(ctx, mpi)
        })
    }

    fn exchange_body(
        &mut self,
        ctx: &mut RankCtx,
        mpi: &mut InterposedMpi,
    ) -> MpiResult<ExchangeTiming> {
        let total_send = self.send_bytes();
        let total_recv: usize = self.recv_plan.iter().map(|b| b.count).sum();

        let t0 = ctx.clock.now();
        let mut pos = 0usize;
        for &k in &self.pack_schedule {
            mpi.pack(
                ctx,
                self.grid,
                1,
                self.types.send[k],
                self.sendbuf,
                total_send,
                &mut pos,
            )?;
        }
        debug_assert_eq!(pos, total_send);
        let t1 = ctx.clock.now();

        mpi.alltoallv_sparse_bytes(
            ctx,
            self.sendbuf,
            &self.send_plan,
            self.recvbuf,
            &self.recv_plan,
        )?;
        let t2 = ctx.clock.now();

        let mut pos = 0usize;
        for &k in &self.unpack_schedule {
            mpi.unpack(
                ctx,
                self.recvbuf,
                total_recv,
                &mut pos,
                self.grid,
                1,
                self.types.recv[k],
            )?;
        }
        debug_assert_eq!(pos, total_recv);
        let t3 = ctx.clock.now();

        Ok(ExchangeTiming {
            pack: t1 - t0,
            comm: t2 - t1,
            unpack: t3 - t2,
        })
    }

    /// The same exchange with nonblocking point-to-point instead of
    /// `MPI_Alltoallv`: post all `Irecv`s, `Isend` each peer's chunk,
    /// `Waitall`, then unpack. (`MPI_Isend`/`MPI_Irecv` are not TEMPI
    /// symbols, so this path also demonstrates interposer fall-through for
    /// the communication while pack/unpack stay accelerated.)
    pub fn exchange_nonblocking(
        &mut self,
        ctx: &mut RankCtx,
        mpi: &mut InterposedMpi,
    ) -> MpiResult<ExchangeTiming> {
        ctx.with_span("stencil", "halo.exchange", |ctx| {
            self.exchange_nonblocking_body(ctx, mpi)
        })
    }

    fn exchange_nonblocking_body(
        &mut self,
        ctx: &mut RankCtx,
        mpi: &mut InterposedMpi,
    ) -> MpiResult<ExchangeTiming> {
        let total_send = self.send_bytes();
        let total_recv: usize = self.recv_plan.iter().map(|b| b.count).sum();

        let t0 = ctx.clock.now();
        let mut pos = 0usize;
        for &k in &self.pack_schedule {
            mpi.pack(
                ctx,
                self.grid,
                1,
                self.types.send[k],
                self.sendbuf,
                total_send,
                &mut pos,
            )?;
        }
        let t1 = ctx.clock.now();

        const TAG: i32 = 1_000;
        let mut reqs = Vec::new();
        for b in &self.recv_plan {
            reqs.push(ctx.irecv_bytes(
                self.recvbuf.add(b.displ),
                b.count,
                Some(b.peer),
                Some(TAG),
            )?);
        }
        for b in &self.send_plan {
            reqs.push(ctx.isend_bytes(self.sendbuf.add(b.displ), b.count, b.peer, TAG)?);
        }
        ctx.waitall(&reqs)?;
        let t2 = ctx.clock.now();

        let mut pos = 0usize;
        for &k in &self.unpack_schedule {
            mpi.unpack(
                ctx,
                self.recvbuf,
                total_recv,
                &mut pos,
                self.grid,
                1,
                self.types.recv[k],
            )?;
        }
        let t3 = ctx.clock.now();
        Ok(ExchangeTiming {
            pack: t1 - t0,
            comm: t2 - t1,
            unpack: t3 - t2,
        })
    }

    /// Free this rank's GPU allocations and the 52 datatypes (in place,
    /// leaving `self` hollow — callers immediately overwrite it).
    fn release(&mut self, ctx: &mut RankCtx) -> MpiResult<()> {
        ctx.gpu.free(self.grid)?;
        ctx.gpu.free(self.sendbuf)?;
        ctx.gpu.free(self.recvbuf)?;
        ctx.type_free(self.interior_dt)?;
        let types = std::mem::replace(
            &mut self.types,
            HaloTypes {
                send: Vec::new(),
                recv: Vec::new(),
                bytes: Vec::new(),
            },
        );
        types.free(ctx)
    }

    /// Tear the exchanger down: free the grid, both staging buffers and
    /// all 52 datatypes. Recovery rebuilds from scratch after a shrink,
    /// so nothing may leak per recovery round.
    pub fn destroy(mut self, ctx: &mut RankCtx) -> MpiResult<()> {
        self.release(ctx)
    }

    /// Take one coordinated checkpoint generation: pack the interior with
    /// the interposed `MPI_Pack`, stage it to the host, frame it with a
    /// content checksum, mirror it at the buddy rank `(rank + 1) % size`,
    /// and run the two-phase commit — stage, snapshot barrier, commit. A
    /// rank dying mid-snapshot fails the barrier on every survivor, so the
    /// generation is aborted everywhere and restore falls back to the
    /// previous one: a torn generation is never visible.
    pub fn checkpoint(
        &mut self,
        ctx: &mut RankCtx,
        mpi: &mut InterposedMpi,
        store: &mut CheckpointStore,
    ) -> MpiResult<u64> {
        ctx.with_span("stencil", "checkpoint", |ctx| {
            self.checkpoint_body(ctx, mpi, store)
        })
    }

    fn checkpoint_body(
        &mut self,
        ctx: &mut RankCtx,
        mpi: &mut InterposedMpi,
        store: &mut CheckpointStore,
    ) -> MpiResult<u64> {
        let generation = store.next_generation();
        let bytes = self.cfg.local[0] * self.cfg.local[1] * self.cfg.local[2] * 4;
        let stage = ctx.gpu.malloc(bytes)?;
        let host = ctx.gpu.host_alloc(bytes)?;
        let packed = (|| -> MpiResult<Vec<u8>> {
            let mut pos = 0usize;
            mpi.pack(ctx, self.grid, 1, self.interior_dt, stage, bytes, &mut pos)?;
            ctx.stream
                .memcpy_async(&mut ctx.clock, host, stage, bytes)
                .map_err(MpiError::Gpu)?;
            ctx.stream.synchronize(&mut ctx.clock);
            Ok(ctx.gpu.memory().peek(host, bytes)?)
        })();
        ctx.gpu.free(stage)?;
        ctx.gpu.free(host)?;
        let own = Frame {
            generation,
            epoch: ctx.epoch(),
            comm_rank: ctx.rank,
            world_rank: ctx.world_rank,
            dims: self.decomp.dims,
            local: self.cfg.local,
            payload: packed?,
        };
        let record = GenRecord {
            members: ctx.comm_members(),
            dims: self.decomp.dims,
            local: self.cfg.local,
        };
        // Mirror around the ring: my frame to (rank+1), (rank-1)'s to me.
        // Sends are eager, so send-before-receive cannot deadlock.
        let enc = own.encode();
        let mut frames = vec![own];
        if ctx.size > 1 {
            let dest = (ctx.rank + 1) % ctx.size;
            let src = (ctx.rank + ctx.size - 1) % ctx.size;
            send_blob(ctx, &enc, dest, TAG_CKPT_MIRROR)?;
            let got = recv_blob(ctx, enc.len(), src, TAG_CKPT_MIRROR)?;
            frames.push(Frame::decode(&got)?);
        }
        store.stage(generation, record, frames);
        if let Err(e) = mpi.barrier(ctx) {
            store.abort();
            return Err(e);
        }
        store.commit_faulted(generation, ctx.faults.injector.as_mut())?;
        mpi.tempi.stats.checkpoints += 1;
        Ok(generation)
    }

    /// Rebuild this rank's subdomain from the newest checkpoint generation
    /// *every* current member committed. Runs after a shrink has already
    /// re-decomposed the grid (or any time the in-memory grid is suspect).
    ///
    /// Uniform local blocks mean each post-shrink interior is exactly one
    /// pre-shrink block — the one at this rank's coordinates wrapped into
    /// the old process grid — so restore is: agree on the generation
    /// (p2p min over the shrunken communicator; the full-world allgather
    /// board is unusable once ranks are gone), fetch that one frame from
    /// its deterministic provider (owner, else buddy, else spill), verify
    /// its checksum, and unpack it with the interposed `MPI_Unpack`.
    pub fn restore_from_checkpoint(
        &mut self,
        ctx: &mut RankCtx,
        mpi: &mut InterposedMpi,
        store: &CheckpointStore,
    ) -> MpiResult<u64> {
        ctx.with_span("stencil", "restore", |ctx| {
            self.restore_from_checkpoint_body(ctx, mpi, store)
        })
    }

    fn restore_from_checkpoint_body(
        &mut self,
        ctx: &mut RankCtx,
        mpi: &mut InterposedMpi,
        store: &CheckpointStore,
    ) -> MpiResult<u64> {
        const NONE: u64 = u64::MAX;
        let mine = store.latest_committed().unwrap_or(NONE);
        let mut agreed = mine;
        for peer in 0..ctx.size {
            if peer != ctx.rank {
                send_blob(ctx, &mine.to_le_bytes(), peer, TAG_CKPT_GEN)?;
            }
        }
        for peer in 0..ctx.size {
            if peer != ctx.rank {
                let got = recv_blob(ctx, 8, peer, TAG_CKPT_GEN)?;
                let theirs = u64::from_le_bytes(got.try_into().map_err(|_| {
                    MpiError::Internal("generation agreement message not 8 bytes".into())
                })?);
                agreed = agreed.min(theirs);
            }
        }
        if agreed == NONE {
            return Err(MpiError::Internal(
                "no committed checkpoint generation to restore from".to_string(),
            ));
        }
        let record = store
            .record(agreed)
            .ok_or_else(|| {
                MpiError::Internal(format!(
                    "generation {agreed} agreed on but not committed locally"
                ))
            })?
            .clone();
        if record.local != self.cfg.local {
            return Err(MpiError::Internal(
                "checkpoint local extents do not match the current geometry".to_string(),
            ));
        }
        let old = Decomp { dims: record.dims };
        let alive = ctx.comm_members();
        let me = ctx.world_rank;
        // Which *old* comm rank's frame a new comm rank rebuilds from.
        let needed = |r: usize| -> usize {
            let c = self.decomp.coords(r);
            old.rank_of([
                c[0] % record.dims[0],
                c[1] % record.dims[1],
                c[2] % record.dims[2],
            ])
        };
        // The fetch plan is a pure function of (record, survivors), so
        // every rank computes the same one. Post all sends first (eager),
        // then satisfy own need.
        for r in 0..ctx.size {
            let q = needed(r);
            if r != ctx.rank && provider_for(&record, q, &alive) == Some(me) {
                let owner = record.members[q];
                let frame = store.frame(agreed, owner).ok_or_else(|| {
                    MpiError::Internal(format!(
                        "provider {me} lacks the frame of world rank {owner} \
                         at generation {agreed}"
                    ))
                })?;
                send_blob(ctx, &frame.encode(), r, TAG_CKPT_FETCH)?;
            }
        }
        let q = needed(ctx.rank);
        let owner = record.members[q];
        let bytes = record.local[0] * record.local[1] * record.local[2] * 4;
        let frame = match provider_for(&record, q, &alive) {
            Some(p) if p == me => store.frame(agreed, owner).cloned().ok_or_else(|| {
                MpiError::Internal(format!(
                    "rank {me} elected itself provider but lacks the frame of \
                     world rank {owner} at generation {agreed}"
                ))
            })?,
            Some(p) => {
                let src = alive.iter().position(|&w| w == p).ok_or_else(|| {
                    MpiError::Internal(format!("provider world rank {p} not in communicator"))
                })?;
                let enc = recv_blob(ctx, HEADER_LEN + bytes + 8, src, TAG_CKPT_FETCH)?;
                Frame::decode(&enc)?
            }
            // owner and buddy both died: the disk copy is the last resort
            None => store.load_spilled_faulted(agreed, owner, ctx.faults.injector.as_mut())?,
        };
        if frame.generation != agreed || frame.world_rank != owner || frame.payload.len() != bytes {
            return Err(MpiError::Internal(
                "restored frame does not match the agreed generation".to_string(),
            ));
        }
        let host = ctx.gpu.host_alloc(bytes)?;
        let unpacked = (|| -> MpiResult<()> {
            ctx.gpu.memory().poke(host, &frame.payload)?;
            let mut pos = 0usize;
            mpi.unpack(ctx, host, bytes, &mut pos, self.grid, 1, self.interior_dt)
        })();
        ctx.gpu.free(host)?;
        unpacked?;
        mpi.tempi.stats.restores += 1;
        Ok(agreed)
    }

    /// One halo exchange with ULFM-style recovery: on a communicator
    /// failure, revoke the communicator (so stragglers blocked in the
    /// exchange error out instead of hanging), agree on and shrink away
    /// the failed ranks, re-decompose the grid over the survivors, rebuild
    /// every subdomain — including the dead ranks' — from the newest
    /// checkpoint generation all survivors committed, and try again.
    /// Checkpoints are the *only* source of restored state: a world that
    /// never called [`HaloExchanger::checkpoint`] cannot recover.
    ///
    /// The happy path adds one `comm_barrier` per round: without it, a
    /// survivor whose `Alltoallv` traffic never touched the dead rank
    /// would return success while its peers enter recovery. The barrier
    /// makes failure detection collective — it either completes on every
    /// member or errors on every member.
    ///
    /// Returns `Err(PeerGone)` on a rank that is itself scheduled dead
    /// (its caller should stop using the communicator), and
    /// `Err(Internal)` if `max_rounds` recovery rounds were not enough.
    pub fn exchange_with_recovery(
        &mut self,
        ctx: &mut RankCtx,
        mpi: &mut InterposedMpi,
        store: &CheckpointStore,
        max_rounds: usize,
    ) -> MpiResult<RecoveryOutcome> {
        let mut shrinks = 0u64;
        let mut excluded = Vec::new();
        let mut restored = None;
        let mut rounds = 0;
        while rounds < max_rounds {
            rounds += 1;
            let failed = match self.exchange(ctx, mpi) {
                Ok(timing) => match ctx.comm_barrier() {
                    Ok(()) => {
                        return Ok(RecoveryOutcome {
                            timing,
                            shrinks,
                            excluded,
                            epoch: ctx.epoch(),
                            restored,
                        })
                    }
                    Err(e) => e,
                },
                Err(e) => e,
            };
            if !failed.is_comm_failure() {
                return Err(failed);
            }
            // Propagate the failure to every member, then agree + shrink.
            // revoke() may itself report this rank dead — shrink repeats
            // the verdict, so its error is the one we surface.
            let _ = mpi.comm_revoke(ctx);
            let dead = mpi.comm_shrink(ctx)?;
            shrinks += 1;
            let epoch = ctx.epoch();
            ctx.tracer.instant(
                ctx.world_rank as u32,
                tempi_trace::LANE_CPU,
                "stencil",
                "recovery.round",
                ctx.clock.now().as_ps(),
                || {
                    vec![
                        ("shrinks", shrinks.into()),
                        ("dead", dead.len().into()),
                        ("epoch", epoch.into()),
                    ]
                },
            );
            excluded.extend(dead);
            // Re-decompose over the survivors and restore from the last
            // globally-consistent checkpoint generation. The restored
            // state is the periodic extension of the original grid, so
            // `origin` survives the rebuild.
            let cfg = self.cfg;
            let origin = self.origin;
            self.release(ctx)?;
            *self = HaloExchanger::new(ctx, mpi, cfg)?;
            self.origin = origin;
            restored = Some(self.restore_from_checkpoint(ctx, mpi, store)?);
        }
        Err(MpiError::Internal(format!(
            "halo exchange still failing after {max_rounds} recovery rounds"
        )))
    }

    /// The full grid this rank should hold after a successful exchange —
    /// interior *and* ghosts at their (periodic) oracle values — computed
    /// serially from [`cell_value`] without any communication. Byte-exact
    /// comparison against this is the recovery acceptance check.
    pub fn expected_grid(&self, ctx: &RankCtx) -> Vec<u8> {
        let a = self.cfg.alloc_dims();
        let r = self.cfg.radius;
        let l = self.cfg.local;
        let c = self.decomp.coords(ctx.rank);
        let global = [
            l[0] * self.decomp.dims[0],
            l[1] * self.decomp.dims[1],
            l[2] * self.decomp.dims[2],
        ];
        let mut data = vec![0u8; self.cfg.alloc_bytes()];
        for z in 0..a[2] {
            for y in 0..a[1] {
                for x in 0..a[0] {
                    // the wrapped mapping is the identity on the interior
                    let gx = (c[0] * l[0] + x).wrapping_add(global[0] - r) % global[0];
                    let gy = (c[1] * l[1] + y).wrapping_add(global[1] - r) % global[1];
                    let gz = (c[2] * l[2] + z).wrapping_add(global[2] - r) % global[2];
                    // restored state after shrinks is the periodic
                    // extension of the *original* grid
                    let v = cell_value(
                        gx % self.origin[0],
                        gy % self.origin[1],
                        gz % self.origin[2],
                    );
                    let i = self.cfg.cell_index(x, y, z) * 4;
                    data[i..i + 4].copy_from_slice(&v.to_le_bytes());
                }
            }
        }
        data
    }

    /// Verify every ghost cell equals the oracle value of its (periodic)
    /// global gridpoint. Returns the number of mismatching cells.
    pub fn verify_ghosts(&self, ctx: &RankCtx) -> MpiResult<usize> {
        let a = self.cfg.alloc_dims();
        let r = self.cfg.radius;
        let l = self.cfg.local;
        let c = self.decomp.coords(ctx.rank);
        let global = [
            l[0] * self.decomp.dims[0],
            l[1] * self.decomp.dims[1],
            l[2] * self.decomp.dims[2],
        ];
        let data = ctx.gpu.memory().peek(self.grid, self.cfg.alloc_bytes())?;
        let mut bad = 0usize;
        for z in 0..a[2] {
            for y in 0..a[1] {
                for x in 0..a[0] {
                    let interior = (r..r + l[0]).contains(&x)
                        && (r..r + l[1]).contains(&y)
                        && (r..r + l[2]).contains(&z);
                    if interior {
                        continue;
                    }
                    // corner/edge ghosts touching more than one wrapped
                    // axis are only exchanged by the diagonal directions;
                    // all 26 are exchanged here, so every ghost is covered.
                    let gx = (c[0] * l[0] + x).wrapping_add(global[0] - r) % global[0];
                    let gy = (c[1] * l[1] + y).wrapping_add(global[1] - r) % global[1];
                    let gz = (c[2] * l[2] + z).wrapping_add(global[2] - r) % global[2];
                    let want = cell_value(
                        gx % self.origin[0],
                        gy % self.origin[1],
                        gz % self.origin[2],
                    );
                    let i = self.cfg.cell_index(x, y, z) * 4;
                    let got = data
                        .get(i..i + 4)
                        .and_then(|w| w.try_into().ok())
                        .map(f32::from_le_bytes)
                        .ok_or_else(|| {
                            MpiError::Internal(format!(
                                "ghost verification read past the grid at byte {i}"
                            ))
                        })?;
                    if got != want {
                        bad += 1;
                    }
                }
            }
        }
        Ok(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::{World, WorldConfig};
    use tempi_core::config::TempiConfig;

    fn run_exchange(p: usize, n: usize, interposed: bool) -> Vec<(usize, ExchangeTiming)> {
        let mut cfg = WorldConfig::summit(p);
        cfg.net.ranks_per_node = 2;
        World::run(&cfg, |ctx| {
            let mut mpi = if interposed {
                InterposedMpi::new(TempiConfig::default())
            } else {
                InterposedMpi::system_only()
            };
            let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(n))?;
            ex.fill(ctx)?;
            let t = ex.exchange(ctx, &mut mpi)?;
            let bad = ex.verify_ghosts(ctx)?;
            Ok((bad, t))
        })
        .unwrap()
    }

    #[test]
    fn single_rank_self_exchange_fills_all_ghosts() {
        for &(bad, _) in &run_exchange(1, 6, true) {
            assert_eq!(bad, 0);
        }
    }

    #[test]
    fn eight_ranks_tempi_ghosts_correct() {
        for (r, &(bad, _)) in run_exchange(8, 6, true).iter().enumerate() {
            assert_eq!(bad, 0, "rank {r}");
        }
    }

    #[test]
    fn eight_ranks_system_ghosts_correct() {
        for (r, &(bad, _)) in run_exchange(8, 6, false).iter().enumerate() {
            assert_eq!(bad, 0, "rank {r}");
        }
    }

    #[test]
    fn odd_decomposition_works() {
        // 12 = 2×2×3: uneven axes exercise the wrap logic differently per
        // dimension
        for (r, &(bad, _)) in run_exchange(12, 4, true).iter().enumerate() {
            assert_eq!(bad, 0, "rank {r}");
        }
    }

    #[test]
    fn two_ranks_wrap_on_one_axis() {
        for (r, &(bad, _)) in run_exchange(2, 4, true).iter().enumerate() {
            assert_eq!(bad, 0, "rank {r}");
        }
    }

    #[test]
    fn tempi_exchange_is_much_faster_than_system() {
        let sys = run_exchange(2, 8, false);
        let tmp = run_exchange(2, 8, true);
        for r in 0..2 {
            let (_, ts) = sys[r];
            let (_, tt) = tmp[r];
            assert!(
                tt.pack * 10 < ts.pack,
                "rank {r}: TEMPI pack {} vs system {}",
                tt.pack,
                ts.pack
            );
            assert!(tt.total() < ts.total());
        }
    }

    #[test]
    fn exchange_is_repeatable() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let mut mpi = InterposedMpi::new(TempiConfig::default());
            let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
            ex.fill(ctx)?;
            let t1 = ex.exchange(ctx, &mut mpi)?;
            let t2 = ex.exchange(ctx, &mut mpi)?;
            let bad = ex.verify_ghosts(ctx)?;
            Ok((bad, t1, t2))
        })
        .unwrap();
        for (bad, t1, t2) in results {
            assert_eq!(bad, 0);
            // the second exchange stays in the same ballpark (clock skew
            // accumulated from the first may shift the comm term a little)
            assert!(t2.total() <= t1.total() * 2, "{t1:?} vs {t2:?}");
            assert!(t1.total() <= t2.total() * 2, "{t1:?} vs {t2:?}");
        }
    }

    #[test]
    fn nonblocking_exchange_matches_alltoallv() {
        let mut cfg = WorldConfig::summit(8);
        cfg.net.ranks_per_node = 2;
        let run = |nonblocking: bool| -> Vec<Vec<u8>> {
            World::run(&cfg, |ctx| {
                let mut mpi = InterposedMpi::new(TempiConfig::default());
                let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(6))?;
                ex.fill(ctx)?;
                if nonblocking {
                    ex.exchange_nonblocking(ctx, &mut mpi)?;
                } else {
                    ex.exchange(ctx, &mut mpi)?;
                }
                assert_eq!(ex.verify_ghosts(ctx)?, 0, "rank {}", ctx.rank);
                let g = ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())?;
                Ok(g)
            })
            .unwrap()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn fault_free_recovery_wrapper_is_transparent() {
        let cfg = WorldConfig::summit(8);
        let results = World::run(&cfg, |ctx| {
            let mut mpi = InterposedMpi::new(TempiConfig::default());
            let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
            ex.fill(ctx)?;
            let store = CheckpointStore::new();
            let out = ex.exchange_with_recovery(ctx, &mut mpi, &store, 3)?;
            assert_eq!(out.shrinks, 0);
            assert!(out.excluded.is_empty());
            assert_eq!(out.epoch, 0);
            assert!(out.restored.is_none());
            // the full grid — interior and ghosts — is byte-identical to
            // the serial oracle
            let got = ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())?;
            assert_eq!(got, ex.expected_grid(ctx));
            ex.destroy(ctx)?;
            Ok(true)
        })
        .unwrap();
        assert_eq!(results, vec![true; 8]);
    }

    #[test]
    fn checkpoint_restore_rebuilds_scribbled_interiors() {
        let cfg = WorldConfig::summit(8);
        let results = World::run(&cfg, |ctx| {
            let mut mpi = InterposedMpi::new(TempiConfig::default());
            let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
            ex.fill(ctx)?;
            let mut store = CheckpointStore::new();
            let gen = ex.checkpoint(ctx, &mut mpi, &mut store)?;
            assert_eq!(gen, 0);
            // scribble over the whole allocation — interior and ghosts
            ctx.gpu
                .memory()
                .poke(ex.grid, &vec![0xEE; ex.cfg.alloc_bytes()])?;
            let restored = ex.restore_from_checkpoint(ctx, &mut mpi, &store)?;
            assert_eq!(restored, 0);
            // the interior is back; one exchange rebuilds the ghosts and
            // the grid is byte-identical to the serial oracle
            ex.exchange(ctx, &mut mpi)?;
            assert_eq!(ex.verify_ghosts(ctx)?, 0, "rank {}", ctx.rank);
            let got = ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())?;
            assert_eq!(got, ex.expected_grid(ctx));
            assert_eq!(mpi.tempi.stats.checkpoints, 1);
            assert_eq!(mpi.tempi.stats.restores, 1);
            ex.destroy(ctx)?;
            Ok(true)
        })
        .unwrap();
        assert_eq!(results, vec![true; 8]);
    }

    #[test]
    fn destroy_frees_grid_and_types() {
        let mut ctx = mpi_sim::RankCtx::standalone(&WorldConfig::summit(1));
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let ex = HaloExchanger::new(&mut ctx, &mut mpi, HaloConfig::small(4)).unwrap();
        let grid = ex.grid;
        let dt = ex.types.send[0];
        ex.destroy(&mut ctx).unwrap();
        assert!(ctx.gpu.memory().peek(grid, 4).is_err());
        assert!(ctx.attrs(dt).is_err());
    }

    #[test]
    fn send_bytes_counts_match_region_sum() {
        let cfg = WorldConfig::summit(8);
        let results = World::run(&cfg, |ctx| {
            let mut mpi = InterposedMpi::new(TempiConfig::default());
            let ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(6))?;
            Ok(ex.send_bytes())
        })
        .unwrap();
        // total = sum over 26 directions of region bytes (l=6, r=2):
        // 6 faces (2·6·6) + 12 edges (2·2·6) + 8 corners (2·2·2) cells
        let cells = 6 * (2 * 6 * 6) + 12 * (2 * 2 * 6) + 8 * 8;
        for s in results {
            assert_eq!(s, cells * 4);
        }
    }
}
