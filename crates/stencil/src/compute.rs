//! The 26-point stencil update itself.
//!
//! The paper's evaluation (Fig. 12) measures the halo *exchange*; the
//! compute step is included here so the example application is a complete
//! iteration loop, and because updating the interior from ghost values is
//! an end-to-end check that the exchanged halos are actually usable.

use gpu_sim::{Dim3, LaunchConfig, PackDir, PackTarget, SimTime};
use mpi_sim::{MpiError, MpiResult, RankCtx};

use crate::decomp::DIRS;
use crate::exchange::HaloExchanger;

/// One Jacobi-style update of the interior: each cell becomes the average
/// of itself and its 26 unit-offset neighbors. Runs as a simulated kernel
/// on the rank's GPU; returns the kernel's virtual duration.
pub fn apply_stencil(ex: &HaloExchanger, ctx: &mut RankCtx) -> MpiResult<SimTime> {
    let cfg = ex.cfg;
    let a = cfg.alloc_dims();
    let l = cfg.local;
    let r = cfg.radius;
    let grid = ex.grid;
    let bytes = cfg.alloc_bytes();
    // 27 reads + 1 write per cell; price it like a device-side kernel
    // moving that volume of data with fully coalesced rows.
    let cells = l[0] * l[1] * l[2];
    let cost = ctx.stream.cost_model().pack_kernel_time(
        PackDir::Pack,
        PackTarget::Device,
        cells * 4 * 28,
        l[0] * 4,
        4,
    );
    let cfg_launch = LaunchConfig {
        grid: Dim3::new(
            gpu_sim::div_ceil(l[0] as u64, 64).max(1) as u32,
            l[1].min(65_535) as u32,
            l[2].min(65_535) as u32,
        ),
        block: Dim3::new(64, 1, 1),
    };
    let t0 = ctx.clock.now();
    ctx.stream
        .launch(&mut ctx.clock, "stencil_26pt", cfg_launch, cost, |mem| {
            let data = mem.peek(grid, bytes)?;
            let field: Vec<f32> = data
                .chunks_exact(4)
                .map(|w| f32::from_le_bytes([w[0], w[1], w[2], w[3]]))
                .collect();
            let at = |x: usize, y: usize, z: usize| -> f32 { field[x + a[0] * (y + a[1] * z)] };
            let mut out = data.clone();
            for z in r..r + l[2] {
                for y in r..r + l[1] {
                    for x in r..r + l[0] {
                        let mut acc = at(x, y, z);
                        for &d in &DIRS {
                            acc += at(
                                (x as i64 + d[0] as i64) as usize,
                                (y as i64 + d[1] as i64) as usize,
                                (z as i64 + d[2] as i64) as usize,
                            );
                        }
                        let i = (x + a[0] * (y + a[1] * z)) * 4;
                        out[i..i + 4].copy_from_slice(&(acc / 27.0).to_le_bytes());
                    }
                }
            }
            mem.dev_write(grid, &out)
        })
        .map_err(MpiError::Gpu)?;
    ctx.stream.synchronize(&mut ctx.clock);
    Ok(ctx.clock.now() - t0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::HaloConfig;
    use mpi_sim::{World, WorldConfig};
    use tempi_core::config::TempiConfig;
    use tempi_core::interpose::InterposedMpi;

    #[test]
    fn stencil_update_consumes_exchanged_ghosts() {
        // With correct halos, a uniform global field stays uniform under
        // averaging — any ghost error would perturb boundary cells.
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let mut mpi = InterposedMpi::new(TempiConfig::default());
            let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
            // overwrite with a constant field
            let n = ex.cfg.alloc_bytes() / 4;
            let bytes: Vec<u8> = std::iter::repeat_n(7.5f32.to_le_bytes(), n)
                .flatten()
                .collect();
            ctx.gpu.memory().poke(ex.grid, &bytes)?;
            ex.exchange(ctx, &mut mpi)?;
            let dt = apply_stencil(&ex, ctx)?;
            assert!(dt > SimTime::ZERO);
            // check an interior corner cell stayed 7.5
            let i = ex.cfg.cell_index(2, 2, 2) * 4;
            let data = ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())?;
            let v = f32::from_le_bytes(data[i..i + 4].try_into().unwrap());
            Ok((v - 7.5).abs())
        })
        .unwrap();
        for d in results {
            assert!(d < 1e-5, "drift {d}");
        }
    }
}
