//! Halo region geometry and datatype construction.
//!
//! The local array on each rank is `(lx+2r) × (ly+2r) × (lz+2r)` floats
//! (interior plus a ghost shell of radius `r`). For each of the 26
//! directions the paper's stencil defines the *send* region (the interior
//! cells the neighbor's ghost shell needs) and the *recv* region (this
//! rank's ghost cells) — each "defined in a separate MPI derived datatype"
//! (§6.4), built here as `MPI_Type_create_subarray` over the local array.

use mpi_sim::datatype::Order;
use mpi_sim::{Datatype, MpiResult, RankCtx};
use serde::{Deserialize, Serialize};

use crate::decomp::DIRS;

/// Stencil geometry parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HaloConfig {
    /// Interior extent per rank (x, y, z) in gridpoints.
    pub local: [usize; 3],
    /// Ghost-shell radius (the paper uses 2).
    pub radius: usize,
}

impl HaloConfig {
    /// The paper's configuration: `512³` gridpoints per rank, radius 2.
    pub fn paper() -> Self {
        HaloConfig {
            local: [512, 512, 512],
            radius: 2,
        }
    }

    /// A scaled-down configuration for tests and CI-sized runs.
    pub fn small(n: usize) -> Self {
        HaloConfig {
            local: [n, n, n],
            radius: 2,
        }
    }

    /// Allocated extent per dimension (interior + ghosts).
    pub fn alloc_dims(&self) -> [usize; 3] {
        [
            self.local[0] + 2 * self.radius,
            self.local[1] + 2 * self.radius,
            self.local[2] + 2 * self.radius,
        ]
    }

    /// Bytes of the local allocation (f32 cells).
    pub fn alloc_bytes(&self) -> usize {
        let a = self.alloc_dims();
        a[0] * a[1] * a[2] * 4
    }

    /// Linear cell index of `(x, y, z)` in the local allocation
    /// (x fastest).
    pub fn cell_index(&self, x: usize, y: usize, z: usize) -> usize {
        let a = self.alloc_dims();
        x + a[0] * (y + a[1] * z)
    }

    /// The subarray `(subsizes, starts)` of the *send* region for
    /// direction `d` (per dimension: the first `r` interior cells for −1,
    /// the whole interior for 0, the last `r` interior cells for +1).
    pub fn send_region(&self, d: [i32; 3]) -> ([usize; 3], [usize; 3]) {
        let r = self.radius;
        let mut sub = [0usize; 3];
        let mut start = [0usize; 3];
        for i in 0..3 {
            match d[i] {
                -1 => {
                    sub[i] = r;
                    start[i] = r;
                }
                0 => {
                    sub[i] = self.local[i];
                    start[i] = r;
                }
                1 => {
                    sub[i] = r;
                    start[i] = self.local[i]; // last r interior cells
                }
                _ => unreachable!("directions are in {{-1,0,1}}"),
            }
        }
        (sub, start)
    }

    /// The subarray `(subsizes, starts)` of the *recv* (ghost) region for
    /// direction `d`.
    pub fn recv_region(&self, d: [i32; 3]) -> ([usize; 3], [usize; 3]) {
        let r = self.radius;
        let mut sub = [0usize; 3];
        let mut start = [0usize; 3];
        for i in 0..3 {
            match d[i] {
                -1 => {
                    sub[i] = r;
                    start[i] = 0;
                }
                0 => {
                    sub[i] = self.local[i];
                    start[i] = r;
                }
                1 => {
                    sub[i] = r;
                    start[i] = self.local[i] + r;
                }
                _ => unreachable!(),
            }
        }
        (sub, start)
    }

    /// The subarray `(subsizes, starts)` of the whole interior — the
    /// region a checkpoint snapshots (ghost cells are reconstructed by the
    /// next exchange, so they are never persisted).
    pub fn interior_region(&self) -> ([usize; 3], [usize; 3]) {
        let r = self.radius;
        (self.local, [r, r, r])
    }

    /// Number of cells in a region.
    pub fn region_cells(sub: [usize; 3]) -> usize {
        sub[0] * sub[1] * sub[2]
    }
}

/// The 26 send and 26 recv datatypes of one rank, committed through the
/// given context (`MPI_FLOAT` subarrays in C order: dimension 0 slowest,
/// so we pass (z, y, x)).
#[derive(Debug, Clone)]
pub struct HaloTypes {
    /// Send datatype per direction, in [`DIRS`] order.
    pub send: Vec<Datatype>,
    /// Recv datatype per direction, in [`DIRS`] order.
    pub recv: Vec<Datatype>,
    /// Packed bytes per direction (same for send and recv of a direction's
    /// opposite pair).
    pub bytes: Vec<usize>,
}

impl HaloTypes {
    /// Build and (natively) create all 52 datatypes; the caller commits
    /// them through whichever `MPI_Type_commit` is interposed.
    pub fn create(ctx: &mut RankCtx, cfg: &HaloConfig) -> MpiResult<HaloTypes> {
        let a = cfg.alloc_dims();
        let sizes = [a[2] as i32, a[1] as i32, a[0] as i32]; // z, y, x
        let mut send = Vec::with_capacity(26);
        let mut recv = Vec::with_capacity(26);
        let mut bytes = Vec::with_capacity(26);
        for &d in &DIRS {
            let (ssub, sstart) = cfg.send_region(d);
            let (rsub, rstart) = cfg.recv_region(d);
            let s = ctx.type_create_subarray(
                &sizes,
                &[ssub[2] as i32, ssub[1] as i32, ssub[0] as i32],
                &[sstart[2] as i32, sstart[1] as i32, sstart[0] as i32],
                Order::C,
                mpi_sim::consts::MPI_FLOAT,
            )?;
            let r = ctx.type_create_subarray(
                &sizes,
                &[rsub[2] as i32, rsub[1] as i32, rsub[0] as i32],
                &[rstart[2] as i32, rstart[1] as i32, rstart[0] as i32],
                Order::C,
                mpi_sim::consts::MPI_FLOAT,
            )?;
            send.push(s);
            recv.push(r);
            bytes.push(HaloConfig::region_cells(ssub) * 4);
        }
        Ok(HaloTypes { send, recv, bytes })
    }

    /// `MPI_Type_free` all 52 datatypes. Recovery code frees the types
    /// built against the old decomposition before rebuilding against the
    /// shrunken communicator, so repeated shrinks do not accumulate
    /// registry entries.
    pub fn free(self, ctx: &mut RankCtx) -> MpiResult<()> {
        for dt in self.send.into_iter().chain(self.recv) {
            ctx.type_free(dt)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::{dir_index, opposite};
    use mpi_sim::WorldConfig;

    #[test]
    fn regions_have_matching_sizes_for_opposite_dirs() {
        let cfg = HaloConfig::small(8);
        for &d in &DIRS {
            let (ssub, _) = cfg.send_region(d);
            let (rsub, _) = cfg.recv_region(opposite(d));
            assert_eq!(ssub, rsub, "send {d:?} must fill recv {:?}", opposite(d));
        }
    }

    #[test]
    fn face_edge_corner_cell_counts() {
        let cfg = HaloConfig::small(8); // 8³ interior, r=2
                                        // face (+x): 2×8×8 = 128 cells
        let (sub, _) = cfg.send_region([1, 0, 0]);
        assert_eq!(HaloConfig::region_cells(sub), 2 * 8 * 8);
        // edge (+x,+y): 2×2×8
        let (sub, _) = cfg.send_region([1, 1, 0]);
        assert_eq!(HaloConfig::region_cells(sub), 2 * 2 * 8);
        // corner: 2×2×2
        let (sub, _) = cfg.send_region([1, 1, 1]);
        assert_eq!(HaloConfig::region_cells(sub), 8);
    }

    #[test]
    fn send_and_recv_regions_are_disjoint_in_each_direction() {
        // send regions live in the interior, recv regions in the ghost
        let cfg = HaloConfig::small(4);
        let r = cfg.radius;
        for &d in &DIRS {
            let (ssub, sstart) = cfg.send_region(d);
            let (rsub, rstart) = cfg.recv_region(d);
            for i in 0..3 {
                // send entirely within interior
                assert!(sstart[i] >= r);
                assert!(sstart[i] + ssub[i] <= r + cfg.local[i]);
                // recv entirely within allocation
                assert!(rstart[i] + rsub[i] <= cfg.alloc_dims()[i]);
            }
            // recv region for a ±1 component lies in the ghost shell
            for i in 0..3 {
                if d[i] == -1 {
                    assert_eq!(rstart[i], 0);
                }
                if d[i] == 1 {
                    assert_eq!(rstart[i], cfg.local[i] + r);
                }
            }
        }
    }

    #[test]
    fn types_commit_and_have_right_sizes() {
        let mut ctx = mpi_sim::RankCtx::standalone(&WorldConfig::summit(1));
        let cfg = HaloConfig::small(4);
        let types = HaloTypes::create(&mut ctx, &cfg).unwrap();
        assert_eq!(types.send.len(), 26);
        for (i, &d) in DIRS.iter().enumerate() {
            let sz = ctx.attrs(types.send[i]).unwrap().size as usize;
            assert_eq!(sz, types.bytes[i], "direction {d:?}");
            let rz = ctx
                .attrs(types.recv[dir_index(opposite(d)).unwrap()])
                .unwrap()
                .size as usize;
            assert_eq!(rz, sz);
        }
        // +x face with l=4, r=2: 2×4×4 = 32 cells = 128 bytes
        assert_eq!(types.bytes[dir_index([1, 0, 0]).unwrap()], 32 * 4);
    }

    #[test]
    fn free_releases_all_types() {
        let mut ctx = mpi_sim::RankCtx::standalone(&WorldConfig::summit(1));
        let cfg = HaloConfig::small(4);
        let types = HaloTypes::create(&mut ctx, &cfg).unwrap();
        let probe = types.send[0];
        types.free(&mut ctx).unwrap();
        assert!(ctx.attrs(probe).is_err());
    }

    #[test]
    fn interior_region_covers_exactly_the_interior() {
        let cfg = HaloConfig::small(6);
        let (sub, start) = cfg.interior_region();
        assert_eq!(sub, [6, 6, 6]);
        assert_eq!(start, [2, 2, 2]);
        assert_eq!(HaloConfig::region_cells(sub), 216);
    }

    #[test]
    fn alloc_dims_and_indexing() {
        let cfg = HaloConfig::small(4);
        assert_eq!(cfg.alloc_dims(), [8, 8, 8]);
        assert_eq!(cfg.alloc_bytes(), 8 * 8 * 8 * 4);
        assert_eq!(cfg.cell_index(0, 0, 0), 0);
        assert_eq!(cfg.cell_index(1, 0, 0), 1);
        assert_eq!(cfg.cell_index(0, 1, 0), 8);
        assert_eq!(cfg.cell_index(0, 0, 1), 64);
    }

    #[test]
    fn paper_config_is_512_cubed_radius_2() {
        let p = HaloConfig::paper();
        assert_eq!(p.local, [512, 512, 512]);
        assert_eq!(p.radius, 2);
        assert_eq!(p.alloc_dims(), [516, 516, 516]);
    }
}
