//! # tempi-stencil — the paper's 3-D stencil case study (§6.4)
//!
//! A 26-point stencil over a `N³ × P` periodic grid: each rank owns an
//! `N³` interior with a ghost shell of radius 2. Every iteration, each
//! rank packs 26 halo regions (each a separate `MPI_Type_create_subarray`
//! datatype) into one buffer with `MPI_Pack`, exchanges with a single
//! `MPI_Alltoallv`, unpacks the 26 arriving regions with `MPI_Unpack`,
//! and applies the stencil. Pack/unpack run through the interposed MPI —
//! the same application code measures the system-MPI baseline and TEMPI
//! (Fig. 12's comparison).
//!
//! ```
//! use mpi_sim::{World, WorldConfig};
//! use tempi_core::{config::TempiConfig, interpose::InterposedMpi};
//! use tempi_stencil::{HaloConfig, HaloExchanger};
//!
//! let cfg = WorldConfig::summit(8);
//! let times = World::run(&cfg, |ctx| {
//!     let mut mpi = InterposedMpi::new(TempiConfig::default());
//!     let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(6))?;
//!     ex.fill(ctx)?;
//!     let t = ex.exchange(ctx, &mut mpi)?;
//!     assert_eq!(ex.verify_ghosts(ctx)?, 0);
//!     Ok(t.total())
//! }).unwrap();
//! assert_eq!(times.len(), 8);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod compute;
pub mod decomp;
pub mod exchange;
pub mod halo;

pub use checkpoint::{CheckpointStore, Frame, GenRecord};
pub use compute::apply_stencil;
pub use decomp::{dir_index, opposite, Decomp, DIRS};
pub use exchange::{cell_value, ExchangeTiming, HaloExchanger, RecoveryOutcome};
pub use halo::{HaloConfig, HaloTypes};
