//! 3-D Cartesian decomposition of ranks.
//!
//! Mirrors `MPI_Dims_create` + `MPI_Cart_create` with periodic boundaries:
//! `P` ranks are factored into a balanced 3-D grid; every rank has exactly
//! 26 logical neighbors (with wraparound, several directions may resolve
//! to the same rank — including self — when an axis has few ranks).

use serde::{Deserialize, Serialize};

/// The 26 halo directions, in the fixed global order both sender and
/// receiver iterate (x fastest). Excludes (0,0,0).
pub const DIRS: [[i32; 3]; 26] = {
    let mut dirs = [[0i32; 3]; 26];
    let mut n = 0;
    let mut dz = -1;
    while dz <= 1 {
        let mut dy = -1;
        while dy <= 1 {
            let mut dx = -1;
            while dx <= 1 {
                if !(dx == 0 && dy == 0 && dz == 0) {
                    dirs[n] = [dx, dy, dz];
                    n += 1;
                }
                dx += 1;
            }
            dy += 1;
        }
        dz += 1;
    }
    dirs
};

/// Index of a direction in [`DIRS`], or `None` if `d` is not one of the
/// 26 nonzero offsets.
pub fn dir_index(d: [i32; 3]) -> Option<usize> {
    DIRS.iter().position(|&x| x == d)
}

/// The opposite direction.
pub fn opposite(d: [i32; 3]) -> [i32; 3] {
    [-d[0], -d[1], -d[2]]
}

/// A balanced 3-D factorization of `size` ranks with periodic neighbor
/// lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomp {
    /// Ranks along x, y, z.
    pub dims: [usize; 3],
}

impl Decomp {
    /// Factor `size` into three dimensions as evenly as possible
    /// (`MPI_Dims_create` behavior: dims non-increasing from z to x is not
    /// required; we keep them as balanced as possible).
    pub fn new(size: usize) -> Decomp {
        assert!(size > 0);
        let mut best = [size, 1, 1];
        let mut best_score = usize::MAX;
        let mut a = 1;
        while a * a * a <= size {
            if size % a == 0 {
                let rest = size / a;
                let mut b = a;
                while b * b <= rest {
                    if rest % b == 0 {
                        let c = rest / b;
                        // minimize surface ~ spread of factors
                        let score = c - a;
                        if score < best_score {
                            best_score = score;
                            best = [a, b, c];
                        }
                    }
                    b += 1;
                }
            }
            a += 1;
        }
        Decomp { dims: best }
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Cartesian coordinates of a rank (x fastest).
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        let x = rank % self.dims[0];
        let y = (rank / self.dims[0]) % self.dims[1];
        let z = rank / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Rank at given coordinates.
    pub fn rank_of(&self, c: [usize; 3]) -> usize {
        c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])
    }

    /// Periodic neighbor of `rank` in direction `d`.
    pub fn neighbor(&self, rank: usize, d: [i32; 3]) -> usize {
        let c = self.coords(rank);
        let mut n = [0usize; 3];
        for i in 0..3 {
            let dim = self.dims[i] as i64;
            n[i] = ((c[i] as i64 + d[i] as i64).rem_euclid(dim)) as usize;
        }
        self.rank_of(n)
    }

    /// Global gridpoint of `rank`'s local cell `cell` (coordinates within
    /// the rank's interior, ghost shell excluded), for a decomposition of
    /// `local`-sized blocks per rank. The inverse mapping recovery code
    /// uses to re-derive oracle values after a shrink re-decomposes the
    /// grid.
    pub fn global(&self, rank: usize, local: [usize; 3], cell: [usize; 3]) -> [usize; 3] {
        let c = self.coords(rank);
        [
            c[0] * local[0] + cell[0],
            c[1] * local[1] + cell[1],
            c[2] * local[2] + cell[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_has_26_unique_nonzero_entries() {
        assert_eq!(DIRS.len(), 26);
        for (i, a) in DIRS.iter().enumerate() {
            assert_ne!(*a, [0, 0, 0]);
            for b in &DIRS[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn opposite_roundtrips() {
        for &d in &DIRS {
            assert_eq!(opposite(opposite(d)), d);
            assert!(dir_index(opposite(d)).unwrap() < 26);
        }
        // DIRS is symmetric: index i and 25-i are opposites
        for (i, &d) in DIRS.iter().enumerate() {
            assert_eq!(dir_index(opposite(d)), Some(25 - i));
        }
    }

    #[test]
    fn factorization_is_exact_and_balanced() {
        for p in [1usize, 2, 3, 4, 6, 8, 12, 16, 27, 32, 64, 100] {
            let d = Decomp::new(p);
            assert_eq!(d.size(), p, "dims {:?}", d.dims);
        }
        assert_eq!(Decomp::new(8).dims, [2, 2, 2]);
        assert_eq!(Decomp::new(64).dims, [4, 4, 4]);
        assert_eq!(Decomp::new(12).dims, [2, 2, 3]);
    }

    #[test]
    fn coords_roundtrip() {
        let d = Decomp::new(24);
        for r in 0..24 {
            assert_eq!(d.rank_of(d.coords(r)), r);
        }
    }

    #[test]
    fn neighbors_wrap_periodically() {
        let d = Decomp::new(8); // 2×2×2
                                // from rank 0 at (0,0,0), -x wraps to (1,0,0) = rank 1
        assert_eq!(d.neighbor(0, [-1, 0, 0]), 1);
        assert_eq!(d.neighbor(0, [1, 0, 0]), 1); // wraps the same place
        assert_eq!(d.neighbor(0, [0, 1, 0]), 2);
        assert_eq!(d.neighbor(0, [1, 1, 1]), 7);
    }

    #[test]
    fn single_rank_is_its_own_neighbor_everywhere() {
        let d = Decomp::new(1);
        for &dir in &DIRS {
            assert_eq!(d.neighbor(0, dir), 0);
        }
    }

    #[test]
    fn global_coordinates_offset_by_rank_block() {
        let d = Decomp::new(8); // 2×2×2
        assert_eq!(d.global(0, [4, 4, 4], [1, 2, 3]), [1, 2, 3]);
        let r = d.rank_of([1, 0, 1]);
        assert_eq!(d.global(r, [4, 4, 4], [0, 0, 0]), [4, 0, 4]);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let d = Decomp::new(12);
        for r in 0..12 {
            for &dir in &DIRS {
                let n = d.neighbor(r, dir);
                assert_eq!(d.neighbor(n, opposite(dir)), r);
            }
        }
    }
}
