//! Coordinated checkpoint/restart for the stencil recovery stack.
//!
//! Every `checkpoint_every` iterations the application takes a coordinated
//! snapshot: each rank packs its interior (through the interposed
//! `MPI_Pack`, so the same kernels that accelerate the halo exchange also
//! accelerate the snapshot), stages the bytes to the host, frames them
//! with a content checksum, and mirrors the frame at a *buddy* rank. A
//! two-phase commit on the generation number — stage, barrier, commit —
//! guarantees that a rank dying mid-snapshot never yields a torn restore:
//! either every survivor committed the generation, or nobody did and
//! recovery uses the previous one.
//!
//! After a revoke/agree/shrink, survivors re-decompose the grid and
//! rebuild every subdomain from the newest generation *all* survivors
//! committed (a p2p min-agreement over the shrunken communicator), served
//! by a deterministic provider rule: the frame's owner if it survived,
//! else its buddy, else the spill directory on disk.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use mpi_sim::{FaultInjector, MpiError, MpiResult};

/// Frame magic: `b"TPCKPT1\0"` as a little-endian u64.
pub const FRAME_MAGIC: u64 = u64::from_le_bytes(*b"TPCKPT1\0");

/// Encoded frame header length in bytes (12 little-endian u64 words:
/// magic, generation, epoch, comm_rank, world_rank, dims×3, local×3,
/// payload_len).
pub const HEADER_LEN: usize = 12 * 8;

/// One rank's snapshot of its interior at a checkpoint generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Checkpoint generation this frame belongs to.
    pub generation: u64,
    /// Communicator epoch at snapshot time.
    pub epoch: u64,
    /// The owner's rank in the communicator at snapshot time.
    pub comm_rank: usize,
    /// The owner's immutable world rank.
    pub world_rank: usize,
    /// Process-grid dimensions of the decomposition at snapshot time.
    pub dims: [usize; 3],
    /// Interior extent per rank (same on every rank).
    pub local: [usize; 3],
    /// The packed interior bytes (x fastest, `local[0]·local[1]·local[2]`
    /// f32 cells).
    pub payload: Vec<u8>,
}

/// FNV-1a 64 over `bytes` — the same algorithm as
/// [`mpi_sim::payload_checksum`], restated here so a frame read back from
/// disk verifies without a live runtime.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Frame {
    /// Serialize: header, payload, then an FNV-1a checksum over both.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + 8);
        for word in [
            FRAME_MAGIC,
            self.generation,
            self.epoch,
            self.comm_rank as u64,
            self.world_rank as u64,
            self.dims[0] as u64,
            self.dims[1] as u64,
            self.dims[2] as u64,
            self.local[0] as u64,
            self.local[1] as u64,
            self.local[2] as u64,
            self.payload.len() as u64,
        ] {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.extend_from_slice(&self.payload);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Deserialize and verify. Any mismatch — magic, length, checksum — is
    /// an error: a frame that fails verification must never be restored.
    pub fn decode(bytes: &[u8]) -> MpiResult<Frame> {
        let bad = |what: &str| MpiError::Internal(format!("checkpoint frame {what}"));
        if bytes.len() < HEADER_LEN + 8 {
            return Err(bad("too short"));
        }
        let word = |i: usize| -> MpiResult<u64> {
            let w: [u8; 8] = bytes
                .get(i * 8..(i + 1) * 8)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| bad("header is truncated"))?;
            Ok(u64::from_le_bytes(w))
        };
        if word(0)? != FRAME_MAGIC {
            return Err(bad("has bad magic"));
        }
        let payload_len = word(11)? as usize;
        if bytes.len() != HEADER_LEN + payload_len + 8 {
            return Err(bad("length does not match its header"));
        }
        let body = &bytes[..HEADER_LEN + payload_len];
        let stored: [u8; 8] = bytes[HEADER_LEN + payload_len..]
            .try_into()
            .map_err(|_| bad("trailer is malformed"))?;
        if fnv1a(body) != u64::from_le_bytes(stored) {
            return Err(bad("failed checksum verification"));
        }
        Ok(Frame {
            generation: word(1)?,
            epoch: word(2)?,
            comm_rank: word(3)? as usize,
            world_rank: word(4)? as usize,
            dims: [word(5)? as usize, word(6)? as usize, word(7)? as usize],
            local: [word(8)? as usize, word(9)? as usize, word(10)? as usize],
            payload: bytes[HEADER_LEN..HEADER_LEN + payload_len].to_vec(),
        })
    }
}

/// What the communicator looked like when a generation was taken —
/// everything restore needs to map a post-shrink subdomain back to the
/// frame that holds its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenRecord {
    /// World rank at each communicator rank at snapshot time (so comm rank
    /// `q`'s frame owner is `members[q]`, and its buddy mirror lives at
    /// world rank `members[(q + 1) % members.len()]`).
    pub members: Vec<usize>,
    /// Process-grid dimensions at snapshot time.
    pub dims: [usize; 3],
    /// Interior extent per rank.
    pub local: [usize; 3],
}

/// One committed generation: the record plus the frames this rank holds
/// (its own and its buddy's).
#[derive(Debug, Clone)]
struct GenEntry {
    record: GenRecord,
    /// Frames held in memory, keyed by owner world rank.
    frames: BTreeMap<usize, Frame>,
}

/// Per-rank checkpoint storage with two-phase generation commit.
///
/// `stage` parks a generation as *pending*; `commit` — called only after
/// the snapshot barrier succeeded on every member — promotes it to
/// *committed* (and spills it to disk when a spill directory is set).
/// A failure between the two leaves the pending generation to be dropped
/// by [`CheckpointStore::abort`], so [`CheckpointStore::latest_committed`]
/// never names a generation some survivor lacks... unless the failure hit
/// exactly between two `commit` calls, which the restore-time
/// min-agreement over survivors absorbs.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    pending: Option<(u64, GenEntry)>,
    committed: BTreeMap<u64, GenEntry>,
    spill_dir: Option<PathBuf>,
    next_generation: u64,
}

impl CheckpointStore {
    /// An in-memory-only store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// A store that also spills committed frames to `dir` (one file per
    /// frame), so restore can serve a frame even when both its owner and
    /// its buddy died.
    pub fn with_spill(dir: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore {
            spill_dir: Some(dir.into()),
            ..CheckpointStore::default()
        }
    }

    /// The spill directory, if spilling is enabled.
    pub fn spill_dir(&self) -> Option<&Path> {
        self.spill_dir.as_deref()
    }

    /// The generation number the next snapshot will use. Deterministic and
    /// identical on every rank because snapshots are collective.
    pub fn next_generation(&self) -> u64 {
        self.next_generation
    }

    /// Phase one: park `frames` (this rank's own and its buddy's) for
    /// `generation` as pending. Nothing is visible to restore yet.
    pub fn stage(&mut self, generation: u64, record: GenRecord, frames: Vec<Frame>) {
        let frames = frames.into_iter().map(|f| (f.world_rank, f)).collect();
        self.pending = Some((generation, GenEntry { record, frames }));
    }

    /// Drop a pending generation (the snapshot barrier failed — some rank
    /// died mid-snapshot, so *nobody* commits).
    pub fn abort(&mut self) {
        self.pending = None;
    }

    /// Phase two: promote the pending `generation` to committed and spill
    /// it if configured. Errors if no matching generation is pending.
    pub fn commit(&mut self, generation: u64) -> MpiResult<()> {
        self.commit_faulted(generation, None)
    }

    /// [`CheckpointStore::commit`] under fault injection: when the plan's
    /// `spill` site fires for a write, one deterministic byte of the frame
    /// flips on its way to disk. The in-memory copy stays intact — only a
    /// later [`CheckpointStore::load_spilled`] of that file notices, via
    /// the frame checksum, exactly like real silent disk corruption.
    pub fn commit_faulted(
        &mut self,
        generation: u64,
        mut faults: Option<&mut FaultInjector>,
    ) -> MpiResult<()> {
        match self.pending.take() {
            Some((g, entry)) if g == generation => {
                if let Some(dir) = &self.spill_dir {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| MpiError::Internal(format!("checkpoint spill dir: {e}")))?;
                    for frame in entry.frames.values() {
                        let path = Self::spill_path(dir, g, frame.world_rank);
                        let mut bytes = frame.encode();
                        if let Some(inj) = faults.as_deref_mut() {
                            if let Some((idx, mask)) = inj.spill_corrupt_io(bytes.len()) {
                                bytes[idx] ^= mask;
                            }
                        }
                        std::fs::write(&path, bytes).map_err(|e| {
                            MpiError::Internal(format!("checkpoint spill {}: {e}", path.display()))
                        })?;
                    }
                }
                self.committed.insert(g, entry);
                self.next_generation = self.next_generation.max(g + 1);
                Ok(())
            }
            other => {
                self.pending = other;
                Err(MpiError::Internal(format!(
                    "commit of generation {generation} without a matching stage"
                )))
            }
        }
    }

    /// The newest committed generation, if any.
    pub fn latest_committed(&self) -> Option<u64> {
        self.committed.keys().next_back().copied()
    }

    /// The communicator record of a committed generation.
    pub fn record(&self, generation: u64) -> Option<&GenRecord> {
        self.committed.get(&generation).map(|e| &e.record)
    }

    /// An in-memory frame of a committed generation, by owner world rank.
    pub fn frame(&self, generation: u64, world_rank: usize) -> Option<&Frame> {
        self.committed
            .get(&generation)
            .and_then(|e| e.frames.get(&world_rank))
    }

    /// Read a spilled frame back from disk, re-verifying its checksum.
    pub fn load_spilled(&self, generation: u64, world_rank: usize) -> MpiResult<Frame> {
        self.load_spilled_faulted(generation, world_rank, None)
    }

    /// [`CheckpointStore::load_spilled`] under fault injection: when the
    /// plan's `spill` site fires for a read, one deterministic byte flips
    /// between `fs::read` and decode, and the checksum turns it into a
    /// typed error instead of silently restoring bad data.
    pub fn load_spilled_faulted(
        &self,
        generation: u64,
        world_rank: usize,
        faults: Option<&mut FaultInjector>,
    ) -> MpiResult<Frame> {
        let dir = self.spill_dir.as_ref().ok_or_else(|| {
            MpiError::Internal("no spill directory configured for checkpoint restore".into())
        })?;
        let path = Self::spill_path(dir, generation, world_rank);
        let mut bytes = std::fs::read(&path)
            .map_err(|e| MpiError::Internal(format!("checkpoint read {}: {e}", path.display())))?;
        if let Some(inj) = faults {
            if let Some((idx, mask)) = inj.spill_corrupt_io(bytes.len()) {
                bytes[idx] ^= mask;
            }
        }
        Frame::decode(&bytes)
    }

    fn spill_path(dir: &Path, generation: u64, world_rank: usize) -> PathBuf {
        dir.join(format!("gen{generation:08}_rank{world_rank:04}.ckpt"))
    }
}

/// The deterministic provider rule: which *world rank* serves old comm
/// rank `q`'s frame during restore, given the survivors. The owner if it
/// survived, else the buddy that mirrors it, else `None` (spill or fail).
pub fn provider_for(record: &GenRecord, q: usize, alive: &[usize]) -> Option<usize> {
    let owner = record.members[q];
    if alive.contains(&owner) {
        return Some(owner);
    }
    let buddy = record.members[(q + 1) % record.members.len()];
    if alive.contains(&buddy) {
        return Some(buddy);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(generation: u64, world_rank: usize, fill: u8) -> Frame {
        Frame {
            generation,
            epoch: 0,
            comm_rank: world_rank,
            world_rank,
            dims: [2, 2, 2],
            local: [4, 4, 4],
            payload: vec![fill; 4 * 4 * 4 * 4],
        }
    }

    fn record() -> GenRecord {
        GenRecord {
            members: (0..8).collect(),
            dims: [2, 2, 2],
            local: [4, 4, 4],
        }
    }

    #[test]
    fn frame_roundtrips_byte_exactly() {
        let f = frame(3, 5, 0xAB);
        let enc = f.encode();
        assert_eq!(enc.len(), HEADER_LEN + f.payload.len() + 8);
        assert_eq!(Frame::decode(&enc).unwrap(), f);
    }

    #[test]
    fn frame_rejects_any_flipped_byte() {
        let enc = frame(1, 2, 7).encode();
        // header, payload and trailer corruption must all be caught
        for idx in [0, 8, HEADER_LEN + 10, enc.len() - 1] {
            let mut bad = enc.clone();
            bad[idx] ^= 0x40;
            assert!(Frame::decode(&bad).is_err(), "flip at {idx} undetected");
        }
        assert!(Frame::decode(&enc[..enc.len() - 1]).is_err(), "truncation");
        assert!(Frame::decode(&[]).is_err());
    }

    #[test]
    fn two_phase_commit_is_atomic() {
        let mut store = CheckpointStore::new();
        assert_eq!(store.latest_committed(), None);
        assert_eq!(store.next_generation(), 0);

        store.stage(0, record(), vec![frame(0, 1, 1), frame(0, 2, 2)]);
        // staged ≠ visible
        assert_eq!(store.latest_committed(), None);
        assert!(store.frame(0, 1).is_none());

        store.commit(0).unwrap();
        assert_eq!(store.latest_committed(), Some(0));
        assert_eq!(store.next_generation(), 1);
        assert_eq!(store.frame(0, 1).unwrap().payload[0], 1);
        assert_eq!(store.frame(0, 2).unwrap().payload[0], 2);
        assert!(store.frame(0, 3).is_none());

        // a mid-snapshot failure: stage then abort → prior generation wins
        store.stage(1, record(), vec![frame(1, 1, 9)]);
        store.abort();
        assert_eq!(store.latest_committed(), Some(0));
        // committing an aborted generation is an error
        assert!(store.commit(1).is_err());
    }

    #[test]
    fn spill_roundtrips_and_detects_disk_corruption() {
        let dir = std::env::temp_dir().join(format!("tempi-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::with_spill(&dir);
        store.stage(2, record(), vec![frame(2, 4, 0x5A)]);
        store.commit(2).unwrap();

        let loaded = store.load_spilled(2, 4).unwrap();
        assert_eq!(loaded, frame(2, 4, 0x5A));
        assert!(store.load_spilled(2, 5).is_err(), "never spilled");

        // flip one byte on disk: the reload must refuse it
        let path = dir.join("gen00000002_rank0004.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + 3] ^= 1;
        std::fs::write(&path, bytes).unwrap();
        assert!(store.load_spilled(2, 4).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scripted_write_corruption_is_caught_at_reload() {
        use mpi_sim::{FaultInjector, FaultPlan};
        let dir = std::env::temp_dir().join(format!("tempi-ckpt-wfault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Two frames spill in world-rank order (BTreeMap), so spill call
        // 0 writes rank 1's frame and call 1 writes rank 2's; the plan
        // corrupts only call 1.
        let (mut inj, _) = FaultInjector::new(FaultPlan::parse("spill@1").unwrap(), 0);
        let mut store = CheckpointStore::with_spill(&dir);
        store.stage(0, record(), vec![frame(0, 1, 1), frame(0, 2, 2)]);
        store.commit_faulted(0, Some(&mut inj)).unwrap();

        assert_eq!(store.load_spilled(0, 1).unwrap(), frame(0, 1, 1));
        let err = store.load_spilled(0, 2).unwrap_err();
        assert!(
            err.to_string().contains("checkpoint frame"),
            "corrupted spill must fail frame verification, got: {err}"
        );
        // the in-memory copy is untouched: only the disk byte flipped
        assert_eq!(store.frame(0, 2).unwrap(), &frame(0, 2, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scripted_read_corruption_is_caught_by_the_checksum() {
        use mpi_sim::{FaultInjector, FaultPlan};
        let dir = std::env::temp_dir().join(format!("tempi-ckpt-rfault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::with_spill(&dir);
        store.stage(0, record(), vec![frame(0, 3, 7)]);
        store.commit(0).unwrap(); // clean write: spill call 0 is the read
        let (mut inj, _) = FaultInjector::new(FaultPlan::parse("spill@0").unwrap(), 0);
        let err = store
            .load_spilled_faulted(0, 3, Some(&mut inj))
            .unwrap_err();
        assert!(err.to_string().contains("checkpoint frame"), "got: {err}");
        // the next read (spill call 1) is clean and verifies again
        assert_eq!(
            store.load_spilled_faulted(0, 3, Some(&mut inj)).unwrap(),
            frame(0, 3, 7)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn provider_rule_prefers_owner_then_buddy_then_none() {
        let rec = record();
        let all: Vec<usize> = (0..8).collect();
        assert_eq!(provider_for(&rec, 3, &all), Some(3));
        // owner 3 dead → buddy 4 mirrors it
        let no3: Vec<usize> = all.iter().copied().filter(|&r| r != 3).collect();
        assert_eq!(provider_for(&rec, 3, &no3), Some(4));
        // owner and buddy dead → spill territory
        let no34: Vec<usize> = all.iter().copied().filter(|&r| r != 3 && r != 4).collect();
        assert_eq!(provider_for(&rec, 3, &no34), None);
        // buddy wraps around the ring
        let only0: Vec<usize> = vec![0];
        assert_eq!(provider_for(&rec, 7, &only0), Some(0));
    }
}
