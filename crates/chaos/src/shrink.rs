//! Delta-debugging shrinker: minimize a failing scenario's event list.
//!
//! Classic ddmin (Zeller & Hildebrandt) over [`ChaosEvent`]s. Scoped
//! events are the right minimization unit because removing one never
//! perturbs the coins the surviving events flip — each event is keyed by
//! an absolute call ordinal, not by its position in a random stream — so
//! a subset of a failing plan replays the *same* schedule minus the
//! removed faults, and the search is sound, not heuristic.

use crate::engine::{run_scenario, Outcome};
use crate::oracle::Violation;
use crate::scenario::{ChaosEvent, Scenario};

/// Minimize `events` to a 1-minimal sublist for which `still_fails`
/// returns true. `still_fails(&events)` must hold on entry; the result is
/// 1-minimal: removing any single remaining event makes the test pass.
///
/// Deterministic: subset order is fixed, so the same input minimizes to
/// the same output, byte for byte.
pub fn ddmin<F>(events: &[ChaosEvent], mut still_fails: F) -> Vec<ChaosEvent>
where
    F: FnMut(&[ChaosEvent]) -> bool,
{
    let mut current: Vec<ChaosEvent> = events.to_vec();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        // Try each complement (drop one chunk at a time).
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    // Final 1-minimality pass: ddmin's complement loop guarantees it for
    // granularity == len, but an early exit can skip it; make it explicit.
    let mut i = 0;
    while current.len() > 1 && i < current.len() {
        let mut candidate = current.clone();
        candidate.remove(i);
        if still_fails(&candidate) {
            current = candidate;
        } else {
            i += 1;
        }
    }
    current
}

/// The result of shrinking a failing scenario.
pub struct Shrunk {
    /// The minimized scenario (same configuration, 1-minimal events).
    pub scenario: Scenario,
    /// The violations the minimized scenario still produces.
    pub violations: Vec<Violation>,
    /// How many scenario runs the search spent.
    pub runs: usize,
}

/// Shrink a failing scenario to a 1-minimal reproducer.
///
/// The failure *symptom* is pinned first — a candidate counts as failing
/// only if it violates the same oracle as the original run — so the
/// shrinker cannot wander from, say, a byte-exactness violation to an
/// unrelated leak and "minimize" to the wrong bug. Returns `None` when
/// the scenario does not fail at all.
pub fn shrink(sc: &Scenario) -> Option<Shrunk> {
    let full = run_scenario(sc);
    if full.ok() {
        return None;
    }
    let symptom = full.violations[0].oracle.clone();
    let mut runs = 1usize;
    let fails = |outcome: &Outcome| outcome.violations.iter().any(|v| v.oracle == symptom);
    let minimized = ddmin(&sc.events, |events| {
        runs += 1;
        fails(&run_scenario(&sc.with_events(events.to_vec())))
    });
    let scenario = sc.with_events(minimized);
    let replay = run_scenario(&scenario);
    runs += 1;
    Some(Shrunk {
        scenario,
        violations: replay.violations,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Workload;
    use mpi_sim::{FaultSite, ScopedFault};

    fn ev(rank: usize, site: FaultSite, at_call: u64) -> ChaosEvent {
        ChaosEvent::Fault(ScopedFault {
            rank,
            site,
            at_call,
        })
    }

    #[test]
    fn ddmin_finds_a_single_culprit() {
        // "Fails" iff the marker event (rank 9) is present.
        let mut events: Vec<ChaosEvent> = (0..12)
            .map(|i| ev(i % 4, FaultSite::Send, i as u64))
            .collect();
        events.insert(7, ev(9, FaultSite::Corrupt, 0));
        let min = ddmin(&events, |es| {
            es.iter()
                .any(|e| matches!(e, ChaosEvent::Fault(f) if f.rank == 9))
        });
        assert_eq!(min, vec![ev(9, FaultSite::Corrupt, 0)]);
    }

    #[test]
    fn ddmin_keeps_conjunctions_minimal() {
        // Needs BOTH rank-7 events; everything else is noise.
        let a = ev(7, FaultSite::Send, 0);
        let b = ev(7, FaultSite::Recv, 3);
        let mut events: Vec<ChaosEvent> = (0..10)
            .map(|i| ev(i % 3, FaultSite::Kernel, i as u64))
            .collect();
        events.insert(2, a);
        events.insert(8, b);
        let min = ddmin(&events, |es| es.contains(&a) && es.contains(&b));
        assert_eq!(min, vec![a, b]);
    }

    #[test]
    fn ddmin_is_deterministic() {
        let events: Vec<ChaosEvent> = (0..9)
            .map(|i| ev(i % 4, FaultSite::Send, i as u64))
            .collect();
        let f = |es: &[ChaosEvent]| {
            es.iter()
                .any(|e| matches!(e, ChaosEvent::Fault(f) if f.at_call >= 7))
        };
        assert_eq!(ddmin(&events, f), ddmin(&events, f));
    }

    #[test]
    fn shrink_returns_none_for_green_scenarios() {
        let sc = Scenario {
            seed: 5,
            ranks: 4,
            workload: Workload::SendStorm { messages: 1 },
            events: Vec::new(),
            integrity: true,
            max_retries: 3,
        };
        assert!(shrink(&sc).is_none());
    }
}
