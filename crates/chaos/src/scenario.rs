//! Scenario grammar: a seeded workload × a list of scripted fault events.
//!
//! A [`Scenario`] is the unit the chaos engine runs, the shrinker
//! minimizes and the corpus persists. Everything in it is plain data —
//! the same JSON replays the same virtual-time run byte for byte, which
//! is what makes a committed reproducer a regression test rather than a
//! flake.

use gpu_sim::SimTime;
use mpi_sim::{FaultPlan, FaultSite, RankExit, ScopedFault};

/// The application the scenario drives under faults.
///
/// Each workload exercises a different slice of the stack and therefore a
/// different set of invariants: `SendStorm` the datatype/method ladder and
/// the integrity envelope, `StencilRecovery` the ULFM
/// revoke/agree/shrink/restore machinery, `CheckpointCycle` the two-phase
/// commit and the spill path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Workload {
    /// A ring of datatype-accelerated sends: every rank sends `messages`
    /// rounds of the datatype zoo (contiguous, vector, subarray) to its
    /// successor and byte-checks what arrives from its predecessor.
    SendStorm {
        /// Rounds of the full zoo per rank.
        messages: u32,
    },
    /// Fill → checkpoint → (scheduled deaths) → halo exchange with
    /// ULFM-style recovery; survivors byte-check the recovered grid
    /// against the serial oracle.
    StencilRecovery {
        /// Local interior cells per dimension.
        n: usize,
    },
    /// Repeated fill → exchange → checkpoint commits with a spill
    /// directory; every cycle re-reads this rank's spilled frame and
    /// requires corruption, if injected, to surface as a typed error.
    CheckpointCycle {
        /// Number of checkpoint generations committed.
        cycles: u32,
    },
}

/// One schedulable fault event — the shrinker's unit of minimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ChaosEvent {
    /// A scripted single-shot fault: rank × site × call ordinal.
    Fault(ScopedFault),
    /// A scheduled rank death at a virtual time.
    Exit {
        /// The world rank that dies.
        rank: usize,
        /// Virtual time of death, in microseconds.
        at_us: u64,
    },
}

/// A complete, reproducible chaos run description.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Scenario {
    /// Seed: mixed into the fault plan and (for generated scenarios) the
    /// source of every other field.
    #[serde(default)]
    pub seed: u64,
    /// World size.
    #[serde(default)]
    pub ranks: usize,
    /// The workload under test.
    pub workload: Workload,
    /// Scripted fault events (the shrinker minimizes this list).
    #[serde(default)]
    pub events: Vec<ChaosEvent>,
    /// Run with the end-to-end integrity envelope enabled.
    #[serde(default)]
    pub integrity: bool,
    /// Transient-fault retry budget handed to the fault plan.
    #[serde(default)]
    pub max_retries: u32,
}

impl Scenario {
    /// Lower the scenario to the `mpi-sim` fault plan it runs under.
    pub fn to_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan {
            seed: self.seed,
            max_retries: self.max_retries,
            ..FaultPlan::default()
        };
        for ev in &self.events {
            match *ev {
                ChaosEvent::Fault(f) => plan.scoped.push(f),
                ChaosEvent::Exit { rank, at_us } => plan.rank_exits.push(RankExit {
                    rank,
                    at: SimTime::from_us(at_us),
                }),
            }
        }
        plan
    }

    /// World ranks with a scheduled death, deduplicated and sorted.
    pub fn scheduled_dead(&self) -> Vec<usize> {
        let mut dead: Vec<usize> = self
            .events
            .iter()
            .filter_map(|ev| match ev {
                ChaosEvent::Exit { rank, .. } => Some(*rank),
                _ => None,
            })
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// Latest scheduled death time, if any rank dies.
    pub fn last_exit_us(&self) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                ChaosEvent::Exit { at_us, .. } => Some(*at_us),
                _ => None,
            })
            .max()
    }

    /// A fresh scenario with the same configuration but a different event
    /// list — how the shrinker re-instantiates candidates.
    pub fn with_events(&self, events: Vec<ChaosEvent>) -> Scenario {
        Scenario {
            events,
            ..self.clone()
        }
    }

    /// Generate the `index`-th random scenario of a seeded campaign.
    ///
    /// Deterministic: `(seed, index)` fully determines the result. The
    /// generator is deliberately conservative about which sites it pairs
    /// with which workload — every generated scenario is *expected* to
    /// hold all invariants, so any violation the campaign finds is a real
    /// bug (scripted known-violating scenarios live in the corpus
    /// instead).
    pub fn generate(seed: u64, index: u64) -> Scenario {
        let mut rng = Rng::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let ranks: usize = [4, 6, 8][rng.below(3) as usize];
        let workload = match rng.below(3) {
            0 => Workload::SendStorm {
                messages: 2 + rng.below(3) as u32,
            },
            1 => Workload::StencilRecovery { n: 6 },
            _ => Workload::CheckpointCycle {
                cycles: 2 + rng.below(2) as u32,
            },
        };
        let mut events = Vec::new();
        let n_faults = 2 + rng.below(6) as usize;
        for _ in 0..n_faults {
            events.push(ChaosEvent::Fault(ScopedFault {
                rank: rng.below(ranks as u64) as usize,
                site: random_site(&mut rng, workload),
                at_call: rng.below(4),
            }));
        }
        // Deaths only where the workload recovers from them; keep at
        // least four survivors so every re-decomposition has room.
        let allowed_dead = ranks.saturating_sub(4).min(2) as u64;
        if let Workload::StencilRecovery { .. } = workload {
            if allowed_dead > 0 && rng.below(2) == 1 {
                let n_dead = 1 + rng.below(allowed_dead) as usize;
                let mut dead = Vec::new();
                while dead.len() < n_dead {
                    let r = rng.below(ranks as u64) as usize;
                    if !dead.contains(&r) {
                        dead.push(r);
                    }
                }
                // Deaths land well after the checkpoint commits (the
                // virtual clock is advanced past them before the
                // recovery exchange, so a death always fires).
                for rank in dead {
                    events.push(ChaosEvent::Exit {
                        rank,
                        at_us: 10_000 + rng.below(5_000),
                    });
                }
            }
        }
        Scenario {
            seed: seed ^ index,
            ranks,
            workload,
            events,
            integrity: true,
            max_retries: 3,
        }
    }
}

/// Sites that are survivable under the given workload: the generated
/// campaign only schedules faults the stack claims to absorb (degrade,
/// retry, NACK or surface as a typed error), so a violation is a bug.
/// `Alloc`/`Copy` faults can hit the *application's* own allocations and
/// copies, which nothing absorbs by contract — they stay available for
/// hand-scripted scenarios but out of the generated campaign.
fn random_site(rng: &mut Rng, workload: Workload) -> FaultSite {
    use FaultSite::*;
    let sites = match workload {
        // Corrupt is survivable here because generated scenarios run
        // with the integrity envelope on.
        Workload::SendStorm { .. } => [Kernel, Send, Recv, Corrupt],
        Workload::StencilRecovery { .. } => [Kernel, Send, Recv, Corrupt],
        Workload::CheckpointCycle { .. } => [Kernel, Send, Recv, Spill],
    };
    sites[rng.below(4) as usize]
}

/// Splitmix64: the deterministic generator behind `Scenario::generate`.
///
/// Self-contained on purpose — scenario generation must never depend on
/// an external RNG's version-to-version stream stability.
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(42, 7);
        let b = Scenario::generate(42, 7);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = Scenario::generate(42, 8);
        assert_ne!(a, c, "different indices must differ");
    }

    #[test]
    fn scenarios_roundtrip_through_json() {
        for i in 0..20 {
            let sc = Scenario::generate(1337, i);
            let json = serde_json::to_string(&sc).unwrap();
            let back: Scenario = serde_json::from_str(&json).unwrap();
            assert_eq!(sc, back, "index {i}");
        }
    }

    #[test]
    fn plan_lowering_carries_every_event() {
        let sc = Scenario {
            seed: 9,
            ranks: 8,
            workload: Workload::StencilRecovery { n: 6 },
            events: vec![
                ChaosEvent::Fault(ScopedFault {
                    rank: 3,
                    site: FaultSite::Corrupt,
                    at_call: 1,
                }),
                ChaosEvent::Exit {
                    rank: 5,
                    at_us: 7_500,
                },
            ],
            integrity: true,
            max_retries: 5,
        };
        let plan = sc.to_plan();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.max_retries, 5);
        assert_eq!(plan.scoped.len(), 1);
        assert_eq!(plan.rank_exits.len(), 1);
        assert_eq!(plan.rank_exits[0].rank, 5);
        assert_eq!(plan.rank_exits[0].at, SimTime::from_us(7_500));
        assert!(plan.is_active());
        assert_eq!(sc.scheduled_dead(), vec![5]);
        assert_eq!(sc.last_exit_us(), Some(7_500));
    }

    #[test]
    fn generated_scenarios_keep_enough_survivors() {
        for i in 0..200 {
            let sc = Scenario::generate(7, i);
            let dead = sc.scheduled_dead();
            assert!(
                sc.ranks - dead.len() >= 4,
                "index {i}: {} ranks, {} deaths",
                sc.ranks,
                dead.len()
            );
            for ev in &sc.events {
                if let ChaosEvent::Fault(f) = ev {
                    assert!(f.rank < sc.ranks);
                }
            }
        }
    }
}
