//! `tempi-chaos` — a deterministic chaos engine for the TEMPI
//! reproduction.
//!
//! The fault-tolerance layers (degradation ladder, integrity envelope,
//! ULFM recovery, checkpoint/restart) are each tested in isolation; this
//! crate tests their *composition*. A seeded [`Scenario`] pairs a
//! workload (a datatype send storm, a stencil with recovery, a
//! checkpoint cycle) with a randomized multi-site fault plan, runs it in
//! a virtual-time world under the deadlock watchdog, and judges the run
//! with invariant [`oracle`]s: byte-exactness against a serial oracle,
//! no hangs, balanced trace spans, monotone ULFM epochs, and nothing
//! leaked at teardown.
//!
//! When a scenario violates an invariant, the [`mod@shrink`] module
//! delta-debugs its event list down to a 1-minimal reproducer —
//! deterministically, so the same seed always shrinks to the same bytes
//! — and the [`corpus`] module persists it under `chaos/corpus/` where
//! it replays forever as a regression test.
//!
//! Everything is virtual-time and single-process: a "hang" costs
//! milliseconds of wall clock and comes back as a typed
//! [`mpi_sim::MpiError::Deadlock`] naming the stuck ranks and their
//! pending operations.

pub mod corpus;
pub mod engine;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use corpus::CorpusEntry;
pub use engine::{dump_failure, run_scenario, Outcome};
pub use oracle::{RankReport, Violation};
pub use scenario::{ChaosEvent, Rng, Scenario, Workload};
pub use shrink::{ddmin, shrink, Shrunk};
