//! The chaos engine: run one [`Scenario`] in a virtual-time world and
//! judge it with every invariant oracle.
//!
//! The engine never trusts a run to terminate on its own — every world
//! gets the virtual-time watchdog, so a schedule that deadlocks comes
//! back as a typed [`MpiError::Deadlock`] naming the stuck ranks instead
//! of hanging the campaign. Closures never return `Err`: each rank folds
//! what happened into a [`RankReport`] so one rank's failure cannot hide
//! another's evidence.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use gpu_sim::{GpuPtr, SimTime};
use mpi_sim::consts::MPI_BYTE;
use mpi_sim::datatype::Order;
use mpi_sim::{Datatype, MpiError, MpiResult, RankCtx, World, WorldConfig};
use tempi_core::config::TempiConfig;
use tempi_core::interpose::InterposedMpi;
use tempi_stencil::{CheckpointStore, HaloConfig, HaloExchanger};
use tempi_trace::{TraceLevel, Tracer};

use crate::oracle::{self, oracle as oracle_names, RankReport, Violation};
use crate::scenario::{Rng, Scenario, Workload};

/// Everything one scenario run produced: the oracle verdicts, the
/// per-rank evidence, and the trace (for Chrome-trace failure dumps).
pub struct Outcome {
    /// Invariant violations, empty when the run held every oracle.
    pub violations: Vec<Violation>,
    /// Per-rank evidence the verdicts were computed from.
    pub reports: Vec<RankReport>,
    /// The run's shared tracer (spans level).
    pub tracer: Tracer,
}

impl Outcome {
    /// Did the run hold every invariant?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Distinguishes concurrently-running scenarios' spill directories within
/// one process (the directory name carries no entropy requirement — runs
/// are deterministic regardless of where they spill).
static SPILL_SERIAL: AtomicU64 = AtomicU64::new(0);

fn spill_dir(sc: &Scenario) -> PathBuf {
    let serial = SPILL_SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tempi-chaos-{}-{}-{serial}",
        std::process::id(),
        sc.seed
    ))
}

/// Run one scenario to completion and judge it.
pub fn run_scenario(sc: &Scenario) -> Outcome {
    let tracer = Tracer::new(TraceLevel::Spans);
    let mut cfg = WorldConfig::summit(sc.ranks);
    cfg.net.ranks_per_node = 2;
    let mut cfg = cfg
        .with_faults(sc.to_plan())
        .with_watchdog(mpi_sim::WatchdogConfig::default())
        .with_tracer(tracer.clone());
    if sc.integrity {
        cfg = cfg.with_integrity();
    }
    let spill = spill_dir(sc);
    let dead = sc.scheduled_dead();
    let last_exit = sc.last_exit_us();
    let run = World::run(&cfg, |ctx| Ok(run_rank(ctx, sc, &spill, &dead, last_exit)));
    let _ = std::fs::remove_dir_all(&spill);
    match run {
        Ok(reports) => Outcome {
            violations: oracle::check_all(&reports, &tracer.events()),
            reports,
            tracer,
        },
        Err(e) => Outcome {
            violations: vec![Violation::global(
                oracle_names::HARNESS,
                format!("world failed to run: {e}"),
            )],
            reports: Vec::new(),
            tracer,
        },
    }
}

/// Write a failing scenario and its Chrome trace next to each other so a
/// human can open the exact virtual-time schedule that violated an
/// invariant. Returns the two paths written.
pub fn dump_failure(
    sc: &Scenario,
    outcome: &Outcome,
    dir: &Path,
    name: &str,
) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let entry = crate::corpus::CorpusEntry {
        name: name.to_string(),
        status: "open".to_string(),
        scenario: sc.clone(),
        violation: outcome.violations.first().cloned(),
    };
    let scenario_path = dir.join(format!("{name}.json"));
    crate::corpus::save(&scenario_path, &entry)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let trace_path = dir.join(format!("{name}.trace.json"));
    outcome
        .tracer
        .write_chrome_trace(&trace_path.to_string_lossy())?;
    Ok((scenario_path, trace_path))
}

/// One rank's whole life under the scenario, folded into a report.
fn run_rank(
    ctx: &mut RankCtx,
    sc: &Scenario,
    spill: &Path,
    dead: &[usize],
    last_exit: Option<u64>,
) -> RankReport {
    let mut rep = RankReport {
        rank: ctx.rank,
        ..RankReport::default()
    };
    rep.epochs.push(ctx.epoch());
    let mut mpi = InterposedMpi::new(TempiConfig::default());
    // GPU allocations made before the workload (none today, but cheap
    // insurance) are not the workload's to free.
    let baseline = ctx.gpu.memory().live_allocations();
    let result = match sc.workload {
        Workload::SendStorm { messages } => send_storm(ctx, &mut mpi, sc, messages, &mut rep),
        Workload::StencilRecovery { n } => {
            stencil_recovery(ctx, &mut mpi, n, spill, dead, last_exit, &mut rep)
        }
        Workload::CheckpointCycle { cycles } => {
            checkpoint_cycle(ctx, &mut mpi, cycles, spill, &mut rep)
        }
    };
    rep.epochs.push(ctx.epoch());
    if let Err(e) = result {
        rep.deadlock = matches!(e, MpiError::Deadlock { .. });
        rep.died = dead.contains(&ctx.rank) && e.is_comm_failure();
        rep.error = Some(e.to_string());
    }
    rep.pool_outstanding = mpi.tempi.pool.outstanding();
    rep.undrained_requests = ctx.undrained_requests();
    // Everything the workload allocated must be freed, except the scratch
    // buffers the pool deliberately retains for reuse.
    let live = ctx.gpu.memory().live_allocations();
    rep.live_allocations = live.saturating_sub(baseline + mpi.tempi.pool.pooled());
    rep
}

/// Block until `peer`'s death notice arrives (a receive on a tag nobody
/// sends — the sift of the notice turns it into `PeerGone`). Pins failure
/// knowledge deterministically before collective recovery starts; on a
/// rank that is itself scheduled dead, the receive is what observes the
/// death, and the error is equally swallowed.
fn await_death_notice(ctx: &mut RankCtx, peer: usize) {
    if let Ok(buf) = ctx.gpu.host_alloc(1) {
        let _ = ctx.recv_bytes(buf, 1, Some(peer), Some(913));
        let _ = ctx.gpu.free(buf);
    }
}

// ---------------------------------------------------------------------
// Workload: SendStorm
// ---------------------------------------------------------------------

/// One committed datatype plus the byte regions it touches in a buffer of
/// `span` bytes — enough to build the serial oracle for any receive.
struct ZooEntry {
    dt: Datatype,
    span: usize,
    blocks: Vec<(usize, usize)>,
}

/// The datatype zoo: one dense, one strided, one 2-D subarray — the three
/// canonical shapes of the paper's datatype taxonomy.
fn build_zoo(ctx: &mut RankCtx, mpi: &mut InterposedMpi) -> MpiResult<Vec<ZooEntry>> {
    let mut zoo = Vec::new();

    let dt = ctx.type_contiguous(512, MPI_BYTE)?;
    mpi.type_commit(ctx, dt)?;
    zoo.push(ZooEntry {
        dt,
        span: 512,
        blocks: vec![(0, 512)],
    });

    let (count, blocklen, stride) = (16usize, 8usize, 32usize);
    let dt = ctx.type_vector(count as i32, blocklen as i32, stride as i32, MPI_BYTE)?;
    mpi.type_commit(ctx, dt)?;
    zoo.push(ZooEntry {
        dt,
        span: (count - 1) * stride + blocklen,
        blocks: (0..count).map(|i| (i * stride, blocklen)).collect(),
    });

    let (rows, cols, sub_r, sub_c, r0, c0) = (32usize, 32usize, 16usize, 8usize, 4usize, 4usize);
    let dt = ctx.type_create_subarray(
        &[rows as i32, cols as i32],
        &[sub_r as i32, sub_c as i32],
        &[r0 as i32, c0 as i32],
        Order::C,
        MPI_BYTE,
    )?;
    mpi.type_commit(ctx, dt)?;
    zoo.push(ZooEntry {
        dt,
        span: rows * cols,
        blocks: (0..sub_r).map(|r| ((r0 + r) * cols + c0, sub_c)).collect(),
    });
    Ok(zoo)
}

/// Deterministic payload for `(sender, round, zoo index)`.
fn storm_pattern(seed: u64, sender: usize, round: u32, zi: usize, len: usize) -> Vec<u8> {
    let mut rng = Rng::new(seed ^ ((sender as u64) << 40) ^ ((round as u64) << 20) ^ zi as u64);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Ring storm: every round, each rank sends the full zoo to its successor
/// and byte-checks the zoo arriving from its predecessor against the
/// serial oracle — received blocks carry the sender's pattern, everything
/// between them stays untouched.
fn send_storm(
    ctx: &mut RankCtx,
    mpi: &mut InterposedMpi,
    sc: &Scenario,
    messages: u32,
    rep: &mut RankReport,
) -> MpiResult<()> {
    let n = ctx.size;
    let next = (ctx.rank + 1) % n;
    let prev = (ctx.rank + n - 1) % n;
    let zoo = build_zoo(ctx, mpi)?;
    let bufs: Vec<(GpuPtr, GpuPtr)> = zoo
        .iter()
        .map(|z| Ok((ctx.gpu.malloc(z.span)?, ctx.gpu.malloc(z.span)?)))
        .collect::<MpiResult<_>>()?;
    let result = (|| {
        for round in 0..messages {
            for (zi, z) in zoo.iter().enumerate() {
                let (sendbuf, recvbuf) = bufs[zi];
                let tag = (round as i32) * zoo.len() as i32 + zi as i32;
                let outgoing = storm_pattern(sc.seed, ctx.rank, round, zi, z.span);
                ctx.gpu.memory().poke(sendbuf, &outgoing)?;
                ctx.gpu.memory().poke(recvbuf, &vec![0u8; z.span])?;
                // Rank 0 opens the ring; everyone else forwards after
                // receiving, so the round is deadlock-free for any size.
                if ctx.rank == 0 {
                    mpi.send(ctx, sendbuf, 1, z.dt, next, tag)?;
                    mpi.recv(ctx, recvbuf, 1, z.dt, Some(prev), Some(tag))?;
                } else {
                    mpi.recv(ctx, recvbuf, 1, z.dt, Some(prev), Some(tag))?;
                    mpi.send(ctx, sendbuf, 1, z.dt, next, tag)?;
                }
                if rep.bytes_mismatch.is_none() {
                    let got = ctx.gpu.memory().peek(recvbuf, z.span)?;
                    let sent = storm_pattern(sc.seed, prev, round, zi, z.span);
                    let mut want = vec![0u8; z.span];
                    for &(off, len) in &z.blocks {
                        want[off..off + len].copy_from_slice(&sent[off..off + len]);
                    }
                    if got != want {
                        let at = got.iter().zip(&want).position(|(a, b)| a != b);
                        rep.bytes_mismatch = Some(format!(
                            "round {round} zoo {zi} from rank {prev}: byte {at:?} \
                             diverges from the serial oracle"
                        ));
                    }
                }
            }
        }
        Ok(())
    })();
    for (s, r) in bufs {
        let _ = ctx.gpu.free(s);
        let _ = ctx.gpu.free(r);
    }
    result
}

// ---------------------------------------------------------------------
// Workload: StencilRecovery
// ---------------------------------------------------------------------

/// Fill → checkpoint → scheduled deaths → halo exchange with ULFM-style
/// recovery; survivors byte-check the recovered grid against the serial
/// oracle.
fn stencil_recovery(
    ctx: &mut RankCtx,
    mpi: &mut InterposedMpi,
    n: usize,
    spill: &Path,
    dead: &[usize],
    last_exit: Option<u64>,
    rep: &mut RankReport,
) -> MpiResult<()> {
    let mut ex = HaloExchanger::new(ctx, mpi, HaloConfig::small(n))?;
    ex.fill(ctx)?;
    let mut store = CheckpointStore::with_spill(spill);
    ex.checkpoint(ctx, mpi, &mut store)?;
    // Shared-memory barrier between the checkpoint and the fault window:
    // a survivor that detects the deaths early must not revoke while a
    // slower rank is still inside the checkpoint's message-based commit
    // barrier (the revoke would abort its commit and leave no commonly
    // committed generation to restore from).
    ctx.barrier();
    if let Some(us) = last_exit {
        ctx.clock.advance(SimTime::from_us(us + 2_000));
        for &d in dead {
            if d != ctx.rank {
                await_death_notice(ctx, d);
            }
        }
    }
    ex.exchange_with_recovery(ctx, mpi, &store, 4)?;
    rep.epochs.push(ctx.epoch());
    let got = ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())?;
    let want = ex.expected_grid(ctx);
    if got != want {
        let at = got.iter().zip(&want).position(|(a, b)| a != b);
        rep.bytes_mismatch = Some(format!(
            "recovered grid diverges from the serial oracle at byte {at:?}"
        ));
    }
    ex.destroy(ctx)
}

// ---------------------------------------------------------------------
// Workload: CheckpointCycle
// ---------------------------------------------------------------------

/// Repeated exchange → checkpoint commits; every cycle re-reads this
/// rank's spilled frame, requiring spill corruption (if injected) to
/// surface as a typed decode error and never as silently different bytes.
fn checkpoint_cycle(
    ctx: &mut RankCtx,
    mpi: &mut InterposedMpi,
    cycles: u32,
    spill: &Path,
    rep: &mut RankReport,
) -> MpiResult<()> {
    let mut ex = HaloExchanger::new(ctx, mpi, HaloConfig::small(6))?;
    let mut store = CheckpointStore::with_spill(spill);
    ex.fill(ctx)?;
    for cycle in 0..cycles {
        ex.exchange(ctx, mpi)?;
        if rep.bytes_mismatch.is_none() {
            let got = ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())?;
            if got != ex.expected_grid(ctx) {
                rep.bytes_mismatch = Some(format!(
                    "cycle {cycle}: grid diverges from the serial oracle"
                ));
            }
        }
        let generation = ex.checkpoint(ctx, mpi, &mut store)?;
        match store.load_spilled(generation, ctx.world_rank) {
            Ok(frame) => {
                // An undetected spill flip would surface here as a frame
                // that decodes fine but carries the wrong interior.
                if rep.bytes_mismatch.is_none() && frame.payload != pack_interior(ctx, mpi, &ex)? {
                    rep.bytes_mismatch = Some(format!(
                        "cycle {cycle}: spilled frame diverges from the interior it snapshots"
                    ));
                }
            }
            // A detected corruption is the contract working; anything
            // else (missing file, I/O failure) is a real error.
            Err(e) if e.to_string().contains("checkpoint frame") => {}
            Err(e) => return Err(e),
        }
    }
    ex.destroy(ctx)
}

/// Pack the exchanger's interior exactly the way a checkpoint does, so a
/// decoded frame can be compared byte-for-byte.
fn pack_interior(
    ctx: &mut RankCtx,
    mpi: &mut InterposedMpi,
    ex: &HaloExchanger,
) -> MpiResult<Vec<u8>> {
    let bytes = ex.cfg.local[0] * ex.cfg.local[1] * ex.cfg.local[2] * 4;
    let stage = ctx.gpu.malloc(bytes)?;
    let host = ctx.gpu.host_alloc(bytes)?;
    let packed = (|| {
        let mut pos = 0usize;
        mpi.pack(ctx, ex.grid, 1, ex.interior_dt, stage, bytes, &mut pos)?;
        ctx.stream
            .memcpy_async(&mut ctx.clock, host, stage, bytes)
            .map_err(MpiError::Gpu)?;
        ctx.stream.synchronize(&mut ctx.clock);
        Ok(ctx.gpu.memory().peek(host, bytes)?)
    })();
    ctx.gpu.free(stage)?;
    ctx.gpu.free(host)?;
    packed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ChaosEvent;
    use mpi_sim::{FaultSite, ScopedFault};

    fn storm(seed: u64, integrity: bool, events: Vec<ChaosEvent>) -> Scenario {
        Scenario {
            seed,
            ranks: 4,
            workload: Workload::SendStorm { messages: 2 },
            events,
            integrity,
            max_retries: 3,
        }
    }

    #[test]
    fn clean_send_storm_holds_every_oracle() {
        let out = run_scenario(&storm(11, true, Vec::new()));
        assert!(out.ok(), "violations: {:?}", out.violations);
        assert_eq!(out.reports.len(), 4);
        assert!(out.tracer.event_count() > 0, "spans must be recorded");
    }

    #[test]
    fn corruption_with_integrity_is_absorbed() {
        let events = vec![ChaosEvent::Fault(ScopedFault {
            rank: 2,
            site: FaultSite::Corrupt,
            at_call: 1,
        })];
        let out = run_scenario(&storm(12, true, events));
        assert!(out.ok(), "violations: {:?}", out.violations);
    }

    #[test]
    fn corruption_without_integrity_violates_byte_exactness() {
        let events = vec![ChaosEvent::Fault(ScopedFault {
            rank: 2,
            site: FaultSite::Corrupt,
            at_call: 1,
        })];
        let out = run_scenario(&storm(12, false, events));
        assert!(!out.ok());
        assert_eq!(out.violations[0].oracle, oracle_names::BYTE_EXACT);
        assert_eq!(out.violations[0].rank, Some(2));
    }

    #[test]
    fn runs_are_deterministic() {
        let sc = storm(
            13,
            false,
            vec![ChaosEvent::Fault(ScopedFault {
                rank: 1,
                site: FaultSite::Corrupt,
                at_call: 0,
            })],
        );
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn stencil_recovery_with_deaths_holds_every_oracle() {
        let sc = Scenario {
            seed: 31,
            ranks: 8,
            workload: Workload::StencilRecovery { n: 6 },
            events: vec![
                ChaosEvent::Exit {
                    rank: 4,
                    at_us: 10_000,
                },
                ChaosEvent::Exit {
                    rank: 5,
                    at_us: 10_000,
                },
                ChaosEvent::Fault(ScopedFault {
                    rank: 1,
                    site: FaultSite::Kernel,
                    at_call: 2,
                }),
            ],
            integrity: true,
            max_retries: 3,
        };
        let out = run_scenario(&sc);
        assert!(out.ok(), "violations: {:?}", out.violations);
        let died: Vec<usize> = out
            .reports
            .iter()
            .filter(|r| r.died)
            .map(|r| r.rank)
            .collect();
        assert_eq!(died, vec![4, 5]);
        // survivors moved to a later epoch after the shrink
        let survivor = &out.reports[0];
        assert!(survivor.epochs.last().unwrap() > &0);
    }

    #[test]
    fn checkpoint_cycle_detects_spill_corruption_as_typed_error() {
        let sc = Scenario {
            seed: 21,
            ranks: 4,
            workload: Workload::CheckpointCycle { cycles: 2 },
            events: vec![ChaosEvent::Fault(ScopedFault {
                rank: 1,
                site: FaultSite::Spill,
                at_call: 1,
            })],
            integrity: true,
            max_retries: 3,
        };
        let out = run_scenario(&sc);
        assert!(out.ok(), "violations: {:?}", out.violations);
    }
}
