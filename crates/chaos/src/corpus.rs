//! The reproducer corpus: minimized failing scenarios committed to the
//! repository and replayed as regression tests.
//!
//! Every entry is one JSON file under `chaos/corpus/`. Two statuses:
//!
//! * `"fixed"` — the scenario used to violate an invariant and was fixed;
//!   replay must now hold **every** oracle.
//! * `"open"` — the scenario documents a known, accepted gap (e.g. what
//!   corruption does when the integrity envelope is off); replay must
//!   still reproduce the recorded violation, so the corpus notices the
//!   day the gap closes — or silently reopens under a different symptom.

use std::path::{Path, PathBuf};

use crate::engine::run_scenario;
use crate::oracle::Violation;
use crate::scenario::Scenario;

/// One corpus file: a scenario plus what we expect of it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CorpusEntry {
    /// Stable name (also the file stem).
    pub name: String,
    /// `"fixed"` or `"open"` (see module docs).
    pub status: String,
    /// The minimized scenario to replay.
    pub scenario: Scenario,
    /// For `"open"` entries: the violation replay must reproduce (matched
    /// by oracle name and rank).
    #[serde(default)]
    pub violation: Option<Violation>,
}

/// Write one entry as pretty JSON (stable field order — the shrinker's
/// determinism guarantee extends to the committed artifact).
pub fn save(path: &Path, entry: &CorpusEntry) -> Result<(), String> {
    let json = serde_json::to_string_pretty(entry).map_err(|e| e.to_string())?;
    std::fs::write(path, json + "\n").map_err(|e| format!("{}: {e}", path.display()))
}

/// Load one entry.
pub fn load(path: &Path) -> Result<CorpusEntry, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load every `*.json` corpus entry under `dir` (trace dumps are
/// `*.trace.json` and are skipped), sorted by file name for stable
/// replay order.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    let mut entries = Vec::new();
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && !p
                    .file_name()
                    .is_some_and(|n| n.to_string_lossy().ends_with(".trace.json"))
        })
        .collect();
    paths.sort();
    for p in paths {
        let entry = load(&p)?;
        entries.push((p, entry));
    }
    Ok(entries)
}

/// Replay one corpus entry under its recorded seed and check the
/// expectation its status encodes. `Ok(())` means the corpus still tells
/// the truth; `Err` explains the regression.
pub fn replay(entry: &CorpusEntry) -> Result<(), String> {
    let outcome = run_scenario(&entry.scenario);
    match entry.status.as_str() {
        "fixed" => {
            if outcome.ok() {
                Ok(())
            } else {
                Err(format!(
                    "fixed reproducer `{}` regressed: {}",
                    entry.name,
                    outcome
                        .violations
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ))
            }
        }
        "open" => {
            let Some(expected) = &entry.violation else {
                return Err(format!(
                    "open entry `{}` records no violation to reproduce",
                    entry.name
                ));
            };
            let reproduced = outcome
                .violations
                .iter()
                .any(|v| v.oracle == expected.oracle && v.rank == expected.rank);
            if reproduced {
                Ok(())
            } else if outcome.ok() {
                Err(format!(
                    "open entry `{}` no longer violates [{}] — the gap closed; \
                     promote it to status \"fixed\"",
                    entry.name, expected.oracle
                ))
            } else {
                Err(format!(
                    "open entry `{}` changed symptom: expected [{}] on rank {:?}, got {}",
                    entry.name,
                    expected.oracle,
                    expected.rank,
                    outcome
                        .violations
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ))
            }
        }
        other => Err(format!(
            "entry `{}` has unknown status `{other}` (use \"fixed\" or \"open\")",
            entry.name
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ChaosEvent, Workload};
    use mpi_sim::{FaultSite, ScopedFault};

    fn entry(status: &str) -> CorpusEntry {
        CorpusEntry {
            name: "test-entry".into(),
            status: status.into(),
            scenario: Scenario {
                seed: 1,
                ranks: 4,
                workload: Workload::SendStorm { messages: 1 },
                events: vec![ChaosEvent::Fault(ScopedFault {
                    rank: 1,
                    site: FaultSite::Corrupt,
                    at_call: 0,
                })],
                integrity: false,
                max_retries: 3,
            },
            violation: Some(Violation {
                oracle: crate::oracle::oracle::BYTE_EXACT.into(),
                rank: Some(1),
                detail: String::new(),
            }),
        }
    }

    #[test]
    fn entries_roundtrip_through_files() {
        let dir = std::env::temp_dir().join(format!("tempi-chaos-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let e = entry("open");
        let path = dir.join("test-entry.json");
        save(&path, &e).unwrap();
        // a trace dump must not be picked up as an entry
        std::fs::write(dir.join("test-entry.trace.json"), "[]").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, e);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_entries_must_reproduce_their_violation() {
        assert!(replay(&entry("open")).is_ok());
        // the same scenario as "fixed" must fail replay
        let err = replay(&entry("fixed")).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn unknown_status_is_rejected() {
        assert!(replay(&entry("wontfix"))
            .unwrap_err()
            .contains("unknown status"));
    }
}
