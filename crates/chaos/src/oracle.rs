//! Invariant oracles: the properties every chaos run must hold.
//!
//! The engine collects one [`RankReport`] per rank plus the shared trace
//! buffer, and the oracles turn those into [`Violation`]s. Oracles are
//! deliberately symptom-oriented — each names *what* broke ("bytes
//! diverged from the serial oracle"), never *why*; the why is the
//! shrinker's and the human's job.

use tempi_trace::{EventPhase, TraceEvent};

/// One invariant failure, serializable so a corpus entry can record the
/// symptom a committed reproducer is expected to reproduce.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    /// The oracle that fired (one of the [`oracle`] name constants).
    pub oracle: String,
    /// The world rank the violation was observed on, if rank-local.
    #[serde(default)]
    pub rank: Option<usize>,
    /// Human-readable symptom.
    #[serde(default)]
    pub detail: String,
}

impl Violation {
    /// Construct a rank-local violation.
    pub fn on_rank(oracle: &str, rank: usize, detail: impl Into<String>) -> Violation {
        Violation {
            oracle: oracle.to_string(),
            rank: Some(rank),
            detail: detail.into(),
        }
    }

    /// Construct a world-global violation.
    pub fn global(oracle: &str, detail: impl Into<String>) -> Violation {
        Violation {
            oracle: oracle.to_string(),
            rank: None,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.rank {
            Some(r) => write!(f, "[{}] rank {}: {}", self.oracle, r, self.detail),
            None => write!(f, "[{}] {}", self.oracle, self.detail),
        }
    }
}

/// Oracle name constants — the stable vocabulary corpus entries match on.
/// Named after its parent on purpose: call sites read `oracle::BYTE_EXACT`.
#[allow(clippy::module_inception)]
pub mod oracle {
    /// Payload bytes must equal the communication-free serial oracle.
    pub const BYTE_EXACT: &str = "byte-exactness";
    /// No run may quiesce with pending operations (watchdog verdict).
    pub const NO_HANG: &str = "no-hang";
    /// Every rank not scheduled to die must finish without an error.
    pub const NO_UNEXPECTED_ERROR: &str = "no-unexpected-error";
    /// Trace spans must balance: every `Begin` has its `End`, depth never
    /// goes negative, no lane ends mid-span.
    pub const SPAN_BALANCE: &str = "span-balance";
    /// ULFM epochs only move forward, and survivors agree on the final
    /// epoch.
    pub const EPOCH_MONOTONE: &str = "epoch-monotone";
    /// At teardown nothing is leaked: no outstanding pooled buffers, no
    /// undrained nonblocking requests, no live device allocations.
    pub const NO_LEAK: &str = "no-leak";
    /// The harness itself must complete (a failure here is a simulator
    /// bug, not an application one).
    pub const HARNESS: &str = "harness";
}

/// What one rank's workload closure observed, collected at teardown.
///
/// The closure never returns `Err` — a rank error would tear down the
/// whole `World::run` and hide every other rank's evidence — so
/// everything the oracles need is folded into this report instead.
#[derive(Debug, Clone, Default)]
pub struct RankReport {
    /// World rank.
    pub rank: usize,
    /// This rank had a scheduled death and observed it (self `PeerGone`).
    pub died: bool,
    /// Terminal error text, if the workload ended in an error.
    pub error: Option<String>,
    /// The terminal error was a watchdog deadlock verdict.
    pub deadlock: bool,
    /// First byte-exactness mismatch, if any.
    pub bytes_mismatch: Option<String>,
    /// Epoch observations in program order (at least start and end).
    pub epochs: Vec<u64>,
    /// `BufferPool::outstanding()` at teardown.
    pub pool_outstanding: u64,
    /// Undrained nonblocking requests at teardown.
    pub undrained_requests: usize,
    /// Live device/host allocations at teardown (after workload cleanup).
    pub live_allocations: usize,
}

/// Run every oracle over the per-rank reports and the trace buffer.
///
/// `events` is the shared trace of the whole world (empty slice when
/// tracing was off — the span oracle then vacuously holds).
pub fn check_all(reports: &[RankReport], events: &[TraceEvent]) -> Vec<Violation> {
    let mut v = Vec::new();
    check_ranks(reports, &mut v);
    check_epochs(reports, &mut v);
    check_spans(events, &mut v);
    v
}

/// Rank-local oracles: hang, unexpected error, byte-exactness, leaks.
fn check_ranks(reports: &[RankReport], out: &mut Vec<Violation>) {
    for r in reports {
        if r.deadlock {
            out.push(Violation::on_rank(
                oracle::NO_HANG,
                r.rank,
                r.error.clone().unwrap_or_default(),
            ));
            continue;
        }
        if let Some(m) = &r.bytes_mismatch {
            out.push(Violation::on_rank(oracle::BYTE_EXACT, r.rank, m.clone()));
        }
        if let Some(e) = &r.error {
            if !r.died {
                out.push(Violation::on_rank(
                    oracle::NO_UNEXPECTED_ERROR,
                    r.rank,
                    e.clone(),
                ));
            }
        }
        // Leak accounting only applies to ranks that completed cleanly:
        // a dying or erroring rank abandons state by design (ULFM keeps
        // its *peers* consistent, not its corpse).
        if !r.died && r.error.is_none() {
            if r.pool_outstanding != 0 {
                out.push(Violation::on_rank(
                    oracle::NO_LEAK,
                    r.rank,
                    format!("{} pooled buffers never returned", r.pool_outstanding),
                ));
            }
            if r.undrained_requests != 0 {
                out.push(Violation::on_rank(
                    oracle::NO_LEAK,
                    r.rank,
                    format!("{} nonblocking requests undrained", r.undrained_requests),
                ));
            }
            if r.live_allocations != 0 {
                out.push(Violation::on_rank(
                    oracle::NO_LEAK,
                    r.rank,
                    format!("{} device allocations live at teardown", r.live_allocations),
                ));
            }
        }
    }
}

/// Epoch oracle: per-rank monotone, and all clean survivors agree on the
/// final epoch (an agreement that shrank the world on some ranks but not
/// others would split the communicator silently).
fn check_epochs(reports: &[RankReport], out: &mut Vec<Violation>) {
    for r in reports {
        if r.epochs.windows(2).any(|w| w[0] > w[1]) {
            out.push(Violation::on_rank(
                oracle::EPOCH_MONOTONE,
                r.rank,
                format!("epoch went backwards: {:?}", r.epochs),
            ));
        }
    }
    let finals: Vec<(usize, u64)> = reports
        .iter()
        .filter(|r| !r.died && r.error.is_none() && !r.deadlock)
        .filter_map(|r| r.epochs.last().map(|&e| (r.rank, e)))
        .collect();
    if let Some(&(_, first)) = finals.first() {
        if finals.iter().any(|&(_, e)| e != first) {
            out.push(Violation::global(
                oracle::EPOCH_MONOTONE,
                format!("survivors disagree on the final epoch: {finals:?}"),
            ));
        }
    }
}

/// Span-balance oracle over the shared trace buffer.
///
/// Per `(pid, tid)` lane, `Begin` pushes and `End` pops; an `End` with
/// nothing open or a lane left open at the end of the run is a violation.
/// `with_span` closes its span on the error path too, so even a rank
/// that died mid-operation must balance.
fn check_spans(events: &[TraceEvent], out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    let mut depth: BTreeMap<(u32, u32), i64> = BTreeMap::new();
    for ev in events {
        let d = depth.entry((ev.pid, ev.tid)).or_insert(0);
        match ev.ph {
            EventPhase::Begin => *d += 1,
            EventPhase::End => {
                *d -= 1;
                if *d < 0 {
                    out.push(Violation::on_rank(
                        oracle::SPAN_BALANCE,
                        ev.pid as usize,
                        format!("End with no open span on lane {}", ev.tid),
                    ));
                    return;
                }
            }
            EventPhase::Complete | EventPhase::Instant => {}
        }
    }
    for ((pid, tid), d) in depth {
        if d != 0 {
            out.push(Violation::on_rank(
                oracle::SPAN_BALANCE,
                pid as usize,
                format!("{d} span(s) left open on lane {tid}"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempi_trace::{TraceLevel, Tracer, LANE_CPU};

    fn clean(rank: usize) -> RankReport {
        RankReport {
            rank,
            epochs: vec![0, 0],
            ..RankReport::default()
        }
    }

    #[test]
    fn clean_reports_pass_every_oracle() {
        let reports: Vec<RankReport> = (0..4).map(clean).collect();
        assert!(check_all(&reports, &[]).is_empty());
    }

    #[test]
    fn each_symptom_maps_to_its_oracle() {
        let mut deadlocked = clean(0);
        deadlocked.deadlock = true;
        deadlocked.error = Some("deadlock: 4 ranks stuck".into());
        let mut corrupt = clean(1);
        corrupt.bytes_mismatch = Some("byte 17 differs".into());
        let mut errored = clean(2);
        errored.error = Some("send failed".into());
        let mut leaky = clean(3);
        leaky.pool_outstanding = 2;
        let v = check_all(&[deadlocked, corrupt, errored, leaky], &[]);
        let names: Vec<&str> = v.iter().map(|x| x.oracle.as_str()).collect();
        assert_eq!(
            names,
            vec![
                oracle::NO_HANG,
                oracle::BYTE_EXACT,
                oracle::NO_UNEXPECTED_ERROR,
                oracle::NO_LEAK
            ]
        );
    }

    #[test]
    fn dead_ranks_are_exempt_from_error_and_leak_oracles() {
        let mut dead = clean(1);
        dead.died = true;
        dead.error = Some("peer gone".into());
        dead.pool_outstanding = 3;
        dead.live_allocations = 7;
        assert!(check_all(&[clean(0), dead], &[]).is_empty());
    }

    #[test]
    fn epoch_regression_and_divergence_are_caught() {
        let mut back = clean(0);
        back.epochs = vec![1, 0];
        let v = check_all(&[back], &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, oracle::EPOCH_MONOTONE);

        let mut a = clean(0);
        a.epochs = vec![0, 1];
        let b = clean(1); // final epoch 0
        let v = check_all(&[a, b], &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].rank.is_none(), "divergence is a global violation");
    }

    #[test]
    fn unbalanced_spans_are_caught() {
        let t = Tracer::new(TraceLevel::Spans);
        t.begin(0, LANE_CPU, "test", "outer", 0);
        t.begin(0, LANE_CPU, "test", "inner", 10);
        t.end(0, LANE_CPU, 20);
        // "outer" never ends
        let v = check_all(&[], &t.events());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, oracle::SPAN_BALANCE);
        assert_eq!(v[0].rank, Some(0));
    }

    #[test]
    fn balanced_spans_pass() {
        let t = Tracer::new(TraceLevel::Spans);
        for rank in 0..3u32 {
            t.begin(rank, LANE_CPU, "test", "op", 0);
            t.end(rank, LANE_CPU, 5);
        }
        assert!(check_all(&[], &t.events()).is_empty());
    }
}
