//! ULFM-style communicator recovery: revoke / agree / shrink.
//!
//! The model follows MPI's User-Level Failure Mitigation chapter:
//!
//! * **Detection** — any operation against a dead rank returns
//!   [`MpiError::PeerGone`] instead of hanging (clock-based fault gates,
//!   plus death notices that wake receivers already blocked on the dying
//!   rank; see `p2p.rs`).
//! * **Propagation** — [`RankCtx::revoke`] poisons the communicator on
//!   every member: stragglers blocked in recv/wait observe the revocation
//!   control message and error out with [`MpiError::Revoked`], and every
//!   new operation fails fast at entry.
//! * **Agreement** — [`RankCtx::agree_on_failures`] runs a
//!   coordinator-based two-phase protocol that returns the *identical*
//!   failure set on every surviving member, tolerating coordinator death
//!   mid-protocol.
//! * **Recovery** — [`RankCtx::shrink`] densely renumbers the survivors
//!   into a new communicator epoch on which all p2p, collective and
//!   nonblocking operations work again.
//!
//! # The agreement protocol
//!
//! Members try coordinator candidates in communicator-rank order. In round
//! `k` every participant ships its locally-known failure set to candidate
//! `k` (`AGREE_GATHER`) — *even when it already believes the candidate
//! dead*, because a candidate whose virtual clock lags its scheduled exit
//! still acts alive and would otherwise wait forever on the skipping
//! participant. The candidate unions every gathered set with its own
//! observations (a member's death mid-collection contributes that member),
//! then **floods** the decision (`AGREE_DECIDE`) to all members in one
//! uninterruptible burst before returning. Flooding is what makes the
//! decision unique: a candidate either floods to everyone or to no one,
//! and per-channel FIFO guarantees any member that later observes the
//! candidate's death has already seen its decision. A participant that
//! observes candidate `k`'s death moves to candidate `k + 1` and re-ships
//! its gather; a decision from *any* source ends its wait.
//!
//! Every completed agreement charges one fixed [`agree_cost`](crate::net::NetModel::agree_cost)
//! to the virtual clock — never a per-round cost — so virtual time stays
//! independent of how many wall-clock-racy protocol steps were executed.
//!
//! # Epochs
//!
//! Every message envelope carries the sender's communicator epoch. A
//! shrink bumps the epoch, so late traffic from before the shrink can
//! never match a post-shrink receive: it is counted in
//! `FaultStats::stale_dropped` and discarded. Messages from a *future*
//! epoch (a peer that finished shrinking first) are queued until the
//! local shrink catches up.
//!
//! # Contract
//!
//! `agree_on_failures` and `shrink` are collective over the current
//! members: every live member must call them. Call [`RankCtx::revoke`]
//! first unless every member independently enters recovery — revocation is
//! what unblocks members still parked in data receives.

use std::collections::BTreeSet;

use gpu_sim::{MemSpace, SimTime};
use tempi_trace::LANE_CPU;

use crate::error::{MpiError, MpiResult};
use crate::p2p::{Message, Sifted, TAG_AGREE_DECIDE, TAG_AGREE_GATHER, TAG_BARRIER, TAG_REVOKE};
use crate::runtime::RankCtx;

/// Encode a set of world ranks as little-endian `u64`s.
fn encode_ranks<'a>(ranks: impl IntoIterator<Item = &'a usize>) -> Vec<u8> {
    let mut out = Vec::new();
    for &r in ranks {
        out.extend_from_slice(&(r as u64).to_le_bytes());
    }
    out
}

/// Decode a rank set encoded by [`encode_ranks`].
fn decode_ranks(bytes: &[u8]) -> Vec<usize> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")) as usize)
        .collect()
}

/// What ended one wait step of the agreement protocol.
enum AgreeEvent {
    /// A participant's failure set arrived (already decoded).
    Gather(Vec<usize>),
    /// A decision arrived (from any member).
    Decide(Vec<usize>),
    /// The watched world rank is dead.
    Dead,
}

impl RankCtx {
    /// Fail fast when the current communicator epoch has been revoked.
    /// A single branch on the fault-free hot path.
    pub(crate) fn check_comm(&self) -> MpiResult<()> {
        if self.revoked {
            return Err(MpiError::Revoked);
        }
        Ok(())
    }

    /// Is the current communicator revoked (locally observed)?
    #[must_use]
    pub fn is_revoked(&self) -> bool {
        self.revoked
    }

    /// The current communicator epoch (0 until the first shrink).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current membership: `comm_members()[comm_rank]` is the world rank at
    /// that position. The identity map until the first shrink.
    /// Materialized per call — the runtime stores the pre-shrink identity
    /// map symbolically so a 10,000-rank world doesn't carry an N-entry
    /// table per rank.
    #[must_use]
    pub fn comm_members(&self) -> Vec<usize> {
        self.comm_members.to_vec()
    }

    /// World ranks this rank currently knows to be dead (sorted).
    #[must_use]
    pub fn known_failures(&self) -> Vec<usize> {
        self.known_dead.keys().copied().collect()
    }

    /// World ranks of every current member except this rank.
    fn other_members(&self) -> Vec<usize> {
        self.comm_members
            .iter()
            .filter(|&w| w != self.world_rank)
            .collect()
    }

    /// Raw control-plane send: no clock advance, no fault gating, errors
    /// ignored (an unreachable peer is exactly what the control plane is
    /// there to survive).
    pub(crate) fn control_send(&mut self, dest_world: usize, tag: i32, payload: Vec<u8>) {
        let msg = Message {
            src: self.rank,
            src_world: self.world_rank,
            epoch: self.epoch,
            tag,
            payload,
            sender_space: MemSpace::Host,
            depart: self.clock.now(),
            part: None,
            // control traffic never carries an integrity envelope: it is
            // consumed by the control plane, not delivered through
            // `deliver_payload`
            checksum: None,
        };
        // Charge the in-flight account before the delivery (router pushes
        // never fail). Control traffic is exempt from backpressure: the
        // recovery protocol's progress guarantees are built on it.
        if let Some(wd) = &self.watchdog {
            wd.note_send(dest_world);
        }
        self.router.push(dest_world, msg, self.sched.as_deref());
    }

    /// ULFM `MPI_Comm_revoke`: poison the current communicator epoch on
    /// every member. Idempotent; errors [`MpiError::PeerGone`] only when
    /// this rank's own scheduled death has passed.
    pub fn revoke(&mut self) -> MpiResult<()> {
        self.self_exit_check()?;
        if self.revoked {
            return Ok(());
        }
        self.revoked = true;
        self.faults.stats.revocations += 1;
        let epoch = self.epoch;
        self.tracer.instant(
            self.world_rank as u32,
            LANE_CPU,
            "mpi",
            "comm.revoke",
            self.clock.now().as_ps(),
            || vec![("epoch", epoch.into())],
        );
        for w in self.other_members() {
            self.control_send(w, TAG_REVOKE, Vec::new());
        }
        Ok(())
    }

    /// One wait step of the agreement protocol at `epoch`: block until a
    /// gather from comm rank `gather_from` arrives (when requested), a
    /// decision arrives from anyone, or world rank `watch_world` is known
    /// dead. Control traffic is absorbed; unrelated data is queued.
    fn agree_wait(
        &mut self,
        epoch: u64,
        gather_from: Option<usize>,
        watch_world: usize,
    ) -> MpiResult<AgreeEvent> {
        loop {
            // Decisions take priority: once one exists, it is *the* answer.
            if let Some(i) = self
                .pending
                .iter()
                .position(|m| m.epoch == epoch && m.tag == TAG_AGREE_DECIDE)
            {
                let m = self.pending.remove(i).expect("index valid");
                return Ok(AgreeEvent::Decide(decode_ranks(&m.payload)));
            }
            if let Some(j) = gather_from {
                if let Some(i) = self
                    .pending
                    .iter()
                    .position(|m| m.epoch == epoch && m.tag == TAG_AGREE_GATHER && m.src == j)
                {
                    let m = self.pending.remove(i).expect("index valid");
                    return Ok(AgreeEvent::Gather(decode_ranks(&m.payload)));
                }
            }
            if self.known_dead.contains_key(&watch_world) {
                return Ok(AgreeEvent::Dead);
            }
            let msg = self.wd_blocking_recv(|| format!("agree(epoch={epoch})"))?;
            match self.sift(msg) {
                Sifted::Keep(m) => self.pending.push_back(m),
                // Deaths update `known_dead` inside sift; revocations of a
                // communicator already in recovery carry no new information.
                Sifted::Death(..) | Sifted::Revoke | Sifted::Absorbed => {}
            }
        }
    }

    /// Flood a decision to every member (except self) in one
    /// uninterruptible burst, then adopt it locally.
    fn adopt_decision(&mut self, decided: Vec<usize>, flood: bool) -> MpiResult<Vec<usize>> {
        if flood {
            let payload = encode_ranks(decided.iter());
            for w in self.other_members() {
                self.control_send(w, TAG_AGREE_DECIDE, payload.clone());
            }
        }
        for &w in &decided {
            let at = self
                .faults
                .injector
                .as_ref()
                .and_then(|i| i.exit_time(w))
                .unwrap_or_else(|| self.clock.now());
            self.known_dead.entry(w).or_insert(at);
        }
        self.clock.advance(self.net.agree_cost());
        self.faults.stats.agreements += 1;
        let epoch = self.epoch;
        self.tracer.instant(
            self.world_rank as u32,
            LANE_CPU,
            "mpi",
            "comm.agree",
            self.clock.now().as_ps(),
            || vec![("epoch", epoch.into()), ("dead", decided.len().into())],
        );
        Ok(decided)
    }

    /// ULFM `MPI_Comm_agree` over failures: collective over the current
    /// members; returns the identical sorted set of dead world ranks on
    /// every surviving member, tolerating failures (including coordinator
    /// death) mid-protocol. Charges one fixed [`crate::NetModel`] agreement
    /// cost to the virtual clock regardless of rounds executed.
    ///
    /// A rank whose own scheduled death has passed broadcasts its notice
    /// and returns [`MpiError::PeerGone`]; a rank the group decides is dead
    /// (its exit passed in the survivors' frame while its own clock lagged)
    /// receives the decision like everyone else and sees itself in the set.
    pub fn agree_on_failures(&mut self) -> MpiResult<Vec<usize>> {
        self.self_exit_check()?;
        let epoch = self.epoch;
        let n = self.size;
        let me = self.rank;
        for k in 0..n {
            if k == me {
                // Coordinator: union every participant's set with my own.
                let members: BTreeSet<usize> = self.comm_members.iter().collect();
                let mut union: BTreeSet<usize> = self
                    .known_dead
                    .keys()
                    .copied()
                    .filter(|w| members.contains(w))
                    .collect();
                for j in 0..n {
                    if j == me {
                        continue;
                    }
                    let jw = self.comm_members.world(j);
                    if union.contains(&jw) {
                        continue;
                    }
                    match self.agree_wait(epoch, Some(j), jw)? {
                        AgreeEvent::Gather(set) => {
                            union.extend(set.into_iter().filter(|w| members.contains(w)));
                        }
                        AgreeEvent::Decide(d) => return self.adopt_decision(d, false),
                        AgreeEvent::Dead => {
                            union.insert(jw);
                        }
                    }
                }
                let decided: Vec<usize> = union.into_iter().collect();
                return self.adopt_decision(decided, true);
            }
            // Participant: ship my set to candidate k even when I believe
            // it dead — a candidate whose clock lags its scheduled exit
            // still acts alive and must not wait on me forever.
            let cand_world = self.comm_members.world(k);
            let payload = encode_ranks(self.known_dead.keys());
            self.control_send(cand_world, TAG_AGREE_GATHER, payload);
            if self.known_dead.contains_key(&cand_world) {
                continue;
            }
            match self.agree_wait(epoch, None, cand_world)? {
                AgreeEvent::Decide(d) => return self.adopt_decision(d, false),
                AgreeEvent::Dead => continue,
                AgreeEvent::Gather(_) => {
                    return Err(MpiError::Internal(
                        "agreement participant matched a gather".into(),
                    ))
                }
            }
        }
        Err(MpiError::Internal(
            "agreement ran out of coordinator candidates".into(),
        ))
    }

    /// ULFM `MPI_Comm_shrink`: agree on the failure set, densely renumber
    /// the survivors, bump the communicator epoch, un-revoke, and purge
    /// late traffic from the old epoch. Returns the agreed dead set.
    ///
    /// Errors [`MpiError::PeerGone`] when the group's decision includes
    /// this rank itself (it is scheduled dead in the survivors' frame and
    /// must stand down).
    pub fn shrink(&mut self) -> MpiResult<Vec<usize>> {
        let dead = self.agree_on_failures()?;
        if dead.contains(&self.world_rank) {
            self.faults.stats.peer_gone += 1;
            return Err(MpiError::PeerGone);
        }
        let survivors: Vec<usize> = self
            .comm_members
            .iter()
            .filter(|w| !dead.contains(w))
            .collect();
        let me = survivors
            .iter()
            .position(|&w| w == self.world_rank)
            .ok_or_else(|| MpiError::Internal("survivor missing from shrunk group".into()))?;
        self.comm_members = crate::runtime::Members::Explicit(survivors);
        self.rank = me;
        self.size = self.comm_members.len();
        self.epoch += 1;
        self.revoked = false;
        let epoch = self.epoch;
        let before = self.pending.len();
        self.pending.retain(|m| m.epoch >= epoch);
        self.faults.stats.stale_dropped += (before - self.pending.len()) as u64;
        let new_size = self.size;
        self.tracer.instant(
            self.world_rank as u32,
            LANE_CPU,
            "mpi",
            "comm.shrink",
            self.clock.now().as_ps(),
            || {
                vec![
                    ("epoch", epoch.into()),
                    ("size", new_size.into()),
                    ("dead", dead.len().into()),
                ]
            },
        );
        // Synchronize the survivors on the new epoch (also a smoke test of
        // p2p on the shrunk communicator).
        self.comm_barrier()?;
        Ok(dead)
    }

    /// A fault-aware dissemination barrier over the *current* communicator.
    ///
    /// Unlike [`RankCtx::barrier`] (which synchronizes the full world
    /// through a shared in-process barrier and cannot tolerate dead or
    /// shrunk membership), this one runs on epoch-stamped messages: it
    /// works after a shrink, and a member death or revocation mid-barrier
    /// surfaces as an error instead of a hang. Virtual clocks converge to
    /// at least the max of all participants' entry instants plus one
    /// [`crate::NetModel`] barrier cost.
    pub fn comm_barrier(&mut self) -> MpiResult<()> {
        self.check_comm()?;
        self.self_exit_check()?;
        let n = self.size;
        if n > 1 {
            let epoch = self.epoch;
            let me = self.rank;
            let mut round: u32 = 0;
            let mut dist = 1usize;
            while dist < n {
                let to = self.comm_members.world((me + dist) % n);
                let from = (me + n - dist) % n;
                self.control_send(to, TAG_BARRIER, round.to_le_bytes().to_vec());
                let depart = self.barrier_recv(epoch, from, round)?;
                self.clock.advance_to(depart);
                dist <<= 1;
                round += 1;
            }
        }
        self.clock.advance(self.net.barrier_cost);
        Ok(())
    }

    /// Wait for the round-`round` barrier message from comm rank `from`;
    /// returns its departure instant for the max-merge.
    fn barrier_recv(&mut self, epoch: u64, from: usize, round: u32) -> MpiResult<SimTime> {
        let want = round.to_le_bytes();
        loop {
            if let Some(i) = self.pending.iter().position(|m| {
                m.epoch == epoch && m.tag == TAG_BARRIER && m.src == from && m.payload == want
            }) {
                let m = self.pending.remove(i).expect("index valid");
                return Ok(m.depart);
            }
            let from_world = self.comm_members.world(from);
            if let Some(&at) = self.known_dead.get(&from_world) {
                self.clock.advance_to(at);
                self.faults.stats.peer_gone += 1;
                return Err(MpiError::PeerGone);
            }
            let msg =
                self.wd_blocking_recv(|| format!("comm_barrier(from={from}, round={round})"))?;
            match self.sift(msg) {
                Sifted::Keep(m) => self.pending.push_back(m),
                Sifted::Revoke => return Err(MpiError::Revoked),
                Sifted::Death(..) | Sifted::Absorbed => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::runtime::{World, WorldConfig};

    #[test]
    fn rank_codec_roundtrips() {
        let set: BTreeSet<usize> = [3usize, 0, 7].into_iter().collect();
        let enc = encode_ranks(set.iter());
        assert_eq!(decode_ranks(&enc), vec![0, 3, 7]);
        assert!(decode_ranks(&[]).is_empty());
    }

    #[test]
    fn revoke_is_idempotent_and_poisons_ops() {
        let cfg = WorldConfig::summit(1);
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        assert!(!ctx.is_revoked());
        ctx.revoke().unwrap();
        ctx.revoke().unwrap();
        assert!(ctx.is_revoked());
        assert_eq!(ctx.faults.stats.revocations, 1);
        let buf = ctx.gpu.host_alloc(8).unwrap();
        assert_eq!(ctx.send_bytes(buf, 8, 0, 0), Err(MpiError::Revoked));
        assert_eq!(
            ctx.recv_bytes(buf, 8, Some(0), Some(0)),
            Err(MpiError::Revoked)
        );
        assert_eq!(ctx.probe(None, None), Err(MpiError::Revoked));
    }

    #[test]
    fn fault_free_agree_and_shrink_keep_everyone() {
        let cfg = WorldConfig::summit(4);
        let results = World::run(&cfg, |ctx| {
            let dead = ctx.agree_on_failures()?;
            assert!(dead.is_empty(), "{dead:?}");
            let dead = ctx.shrink()?;
            assert!(dead.is_empty());
            assert_eq!(ctx.size, 4);
            assert_eq!(ctx.epoch(), 1);
            assert!(!ctx.is_revoked());
            // p2p still works on the new epoch
            let buf = ctx.gpu.host_alloc(8)?;
            let peer = (ctx.rank + 1) % ctx.size;
            let from = (ctx.rank + ctx.size - 1) % ctx.size;
            ctx.send_bytes(buf, 8, peer, 5)?;
            ctx.recv_bytes(buf, 8, Some(from), Some(5))?;
            Ok(ctx.rank)
        })
        .unwrap();
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn shrink_removes_scheduled_dead_rank() {
        let plan = FaultPlan::parse("exit=1@5us").unwrap();
        let cfg = WorldConfig::summit(3).with_faults(plan);
        let results = World::run(&cfg, |ctx| {
            ctx.clock.advance(SimTime::from_us(10));
            if ctx.rank == 1 {
                // the dead rank: every recovery call reports its own death
                assert_eq!(ctx.revoke(), Err(MpiError::PeerGone));
                return Ok((usize::MAX, vec![]));
            }
            ctx.revoke()?;
            let dead = ctx.shrink()?;
            assert_eq!(ctx.size, 2);
            assert_eq!(ctx.epoch(), 1);
            Ok((ctx.rank, dead))
        })
        .unwrap();
        assert_eq!(results[0], (0, vec![1]));
        assert_eq!(results[1].0, usize::MAX);
        assert_eq!(results[2], (1, vec![1]), "rank 2 renumbered to 1");
    }

    #[test]
    fn comm_barrier_merges_clocks_without_world_barrier() {
        let cfg = WorldConfig::summit(4);
        let results = World::run(&cfg, |ctx| {
            ctx.clock.advance(SimTime::from_us(ctx.rank as u64 * 10));
            ctx.comm_barrier()?;
            Ok(ctx.clock.now())
        })
        .unwrap();
        let floor = SimTime::from_us(30);
        assert!(
            results.iter().all(|&t| t >= floor),
            "all clocks reach the max entry instant: {results:?}"
        );
        assert!(
            results.iter().all(|&t| t == results[0]),
            "dissemination barrier converges clocks: {results:?}"
        );
    }
}
