//! The simulated multi-rank world.
//!
//! [`World::run`] executes `body` on every MPI rank; each rank receives a
//! [`RankCtx`] — its window onto the simulation: a private virtual clock, a
//! private simulated GPU (one GPU per rank, as on Summit), a shared
//! datatype registry, and a shared delivery `Router`. Virtual time
//! composes across ranks Lamport-style: messages carry their departure
//! instant, and a receive completes at `max(local now, departure + wire
//! time)`.
//!
//! Two scheduling backends exist (see [`SchedMode`]): the default
//! event-driven scheduler runs ranks as cooperatively-yielding fibers on an
//! M-worker pool (M ≈ cores) and scales past 10,000 ranks; the legacy
//! thread backend spawns one OS thread per rank. Wall-clock scheduling
//! never affects results under either: all reported times are virtual, and
//! matching is deterministic for the directed (source-specified) receives
//! used throughout the experiments.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use gpu_sim::{DeviceProps, GpuContext, GpuCostModel, SimClock, SimTime, Stream, Tracer};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::datatype::{Combiner, Contents, Datatype, Envelope, Order, TypeAttrs, TypeRegistry};
use crate::error::{MpiError, MpiResult};
use crate::fault::{FaultPlan, FaultState};
use crate::net::NetModel;
use crate::p2p::Message;
use crate::sched::{Router, SchedCore, SchedMode, DEFAULT_INBOX_HWM};
use crate::vendor::VendorProfile;
use crate::watchdog::{DeadlockInfo, Watchdog, WatchdogConfig};

/// Everything that parameterizes a simulated platform.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of ranks.
    pub size: usize,
    /// Which system MPI the world emulates.
    pub vendor: VendorProfile,
    /// Fabric model.
    pub net: NetModel,
    /// GPU cost model (one per rank; all identical).
    pub gpu_cost: GpuCostModel,
    /// GPU hardware model.
    pub device: DeviceProps,
    /// Deterministic fault plan; `None` (the default) runs fault-free with
    /// zero hot-path cost.
    pub faults: Option<FaultPlan>,
    /// End-to-end payload integrity: senders stamp envelopes with a content
    /// checksum and receivers verify deliveries, NACKing corrupted ones.
    /// Auto-enabled by [`WorldConfig::with_faults`] when the plan's
    /// `corrupt` site is active (set it back to `false` to study silent
    /// corruption).
    pub integrity: bool,
    /// Observability sink shared by every rank of this world (the default,
    /// [`Tracer::off`], records nothing and costs one branch per hook).
    pub tracer: Tracer,
    /// Deadlock watchdog. Under the event scheduler deadlocks are detected
    /// structurally and this only contributes the virtual-time budget
    /// folded into the verdict's timestamp; under the thread backend,
    /// `None` (the default) keeps every blocking point a plain blocking
    /// condvar wait with zero added cost.
    pub watchdog: Option<WatchdogConfig>,
    /// Scheduling backend (default [`SchedMode::Auto`]: the event
    /// scheduler where fibers are supported, honoring `TEMPI_SCHED`).
    pub sched: SchedMode,
    /// Worker threads for the event scheduler; `None` (the default) uses
    /// `TEMPI_SCHED_WORKERS` or the machine's available parallelism.
    /// Results are byte-identical regardless of this value.
    pub sched_workers: Option<usize>,
    /// Per-rank inbox high-water mark in messages; `None` uses
    /// `TEMPI_INBOX_HWM` or the default (8192). `Some(0)` disables
    /// backpressure entirely (unbounded inboxes, the old behavior).
    pub inbox_hwm: Option<usize>,
}

impl WorldConfig {
    /// An OLCF-Summit-like platform: Spectrum MPI, V100s, 6 ranks/node.
    pub fn summit(size: usize) -> Self {
        WorldConfig {
            size,
            vendor: VendorProfile::spectrum(),
            net: NetModel::summit(),
            gpu_cost: GpuCostModel::summit_v100(),
            device: DeviceProps::v100(),
            faults: None,
            integrity: false,
            tracer: Tracer::off(),
            watchdog: None,
            sched: SchedMode::Auto,
            sched_workers: None,
            inbox_hwm: None,
        }
    }

    /// The paper's single-node workstation with the given MPI (openmpi or
    /// mvapich profiles).
    pub fn workstation(size: usize, vendor: VendorProfile) -> Self {
        WorldConfig {
            size,
            vendor,
            net: NetModel::workstation(),
            gpu_cost: GpuCostModel::workstation_gtx1070(),
            device: DeviceProps::gtx1070(),
            faults: None,
            integrity: false,
            tracer: Tracer::off(),
            watchdog: None,
            sched: SchedMode::Auto,
            sched_workers: None,
            inbox_hwm: None,
        }
    }

    /// Builder-style: run this world under `plan`. If the plan can corrupt
    /// payloads in transit, integrity envelopes are switched on so receivers
    /// can detect it (override by clearing `integrity` afterwards).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.integrity |= plan.corrupt.is_active();
        self.faults = Some(plan);
        self
    }

    /// Builder-style: stamp every payload-bearing envelope with a content
    /// checksum and verify on delivery, even without a fault plan.
    #[must_use]
    pub fn with_integrity(mut self) -> Self {
        self.integrity = true;
        self
    }

    /// Builder-style: record this world's activity into `tracer`. All ranks
    /// share the one event buffer, so a single export covers the world.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Builder-style: run this world under a deadlock watchdog, so a
    /// quiesced world with operations pending surfaces as
    /// [`MpiError::Deadlock`] instead of hanging the process.
    #[must_use]
    pub fn with_watchdog(mut self, wd: WatchdogConfig) -> Self {
        self.watchdog = Some(wd);
        self
    }

    /// Builder-style: force a specific scheduling backend (the default,
    /// [`SchedMode::Auto`], picks per platform).
    #[must_use]
    pub fn with_sched_mode(mut self, mode: SchedMode) -> Self {
        self.sched = mode;
        self
    }

    /// Builder-style: pin the event scheduler's worker-pool size (the
    /// determinism tests run the same world at `M=1` and `M=8`).
    #[must_use]
    pub fn with_sched_workers(mut self, workers: usize) -> Self {
        self.sched_workers = Some(workers.max(1));
        self
    }

    /// Builder-style: set the per-rank inbox high-water mark (0 =
    /// unbounded).
    #[must_use]
    pub fn with_inbox_hwm(mut self, hwm: usize) -> Self {
        self.inbox_hwm = Some(hwm);
        self
    }

    /// The inbox high-water mark after environment fallback.
    fn resolve_hwm(&self) -> usize {
        self.inbox_hwm
            .or_else(|| {
                std::env::var("TEMPI_INBOX_HWM")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(DEFAULT_INBOX_HWM)
    }

    /// The event scheduler's worker count after environment fallback,
    /// clamped to `[1, size]` (more workers than ranks is pure waste).
    fn resolve_workers(&self) -> usize {
        self.sched_workers
            .or_else(|| {
                std::env::var("TEMPI_SCHED_WORKERS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .clamp(1, self.size.max(1))
    }
}

/// Instantiate the per-rank fault state for `cfg`, installing the GPU-side
/// injector on `gpu` when the plan has active GPU sites.
fn init_faults(cfg: &WorldConfig, rank: usize, gpu: &GpuContext) -> FaultState {
    match &cfg.faults {
        None => FaultState::disabled(),
        Some(plan) => {
            let (state, gpu_inj) = FaultState::from_plan(plan, rank);
            if gpu_inj.is_some() {
                gpu.set_fault_injector(gpu_inj);
            }
            state
        }
    }
}

/// A barrier that also merges virtual clocks: every participant leaves at
/// `max(arrival clocks) + barrier_cost`.
pub(crate) struct ClockBarrier {
    size: usize,
    cost: SimTime,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: usize,
    max_time: SimTime,
    release: SimTime,
    generation: u64,
    /// Watchdog-tracked ranks currently parked in this barrier. The
    /// releaser clears their `Blocked` slots *under the barrier lock*
    /// before notifying: a released-but-still-parked waiter must not look
    /// blocked to the watchdog, or a fast rank re-entering the next
    /// barrier would observe a quiescent (all-blocked) world and report a
    /// false deadlock.
    waiters: Vec<usize>,
}

impl ClockBarrier {
    fn new(size: usize, cost: SimTime) -> Self {
        ClockBarrier {
            size,
            cost,
            state: Mutex::new(BarrierState {
                arrived: 0,
                max_time: SimTime::ZERO,
                release: SimTime::ZERO,
                generation: 0,
                waiters: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Enter with the caller's current virtual instant; returns the common
    /// release instant, or `None` if the watchdog declared the world
    /// deadlocked while this caller was parked (the caller withdraws its
    /// arrival so the barrier accounting stays coherent).
    ///
    /// With a watchdog, waiters park on a timed condvar and re-evaluate
    /// the quiescence predicate each interval — this is what detects a
    /// world where the last live ranks are all stuck in a barrier a dead
    /// rank will never reach. Lock ordering is safe: watchdog methods
    /// never take the barrier mutex.
    fn wait(&self, now: SimTime, wd: Option<(&Watchdog, usize)>) -> Option<SimTime> {
        let mut s = self.state.lock();
        let gen = s.generation;
        s.max_time = s.max_time.max(now);
        s.arrived += 1;
        if s.arrived == self.size {
            s.arrived = 0;
            s.release = s.max_time + self.cost;
            s.max_time = SimTime::ZERO;
            s.generation += 1;
            if let Some((wd, _)) = wd {
                for w in s.waiters.drain(..) {
                    wd.unblock(w);
                }
            }
            self.cv.notify_all();
            return Some(s.release);
        }
        match wd {
            None => {
                while s.generation == gen {
                    self.cv.wait(&mut s);
                }
                Some(s.release)
            }
            Some((wd, rank)) => {
                wd.block(rank, "barrier".to_string(), now);
                s.waiters.push(rank);
                loop {
                    if s.generation != gen {
                        // The releaser already cleared this rank's
                        // watchdog slot (and drained `waiters`).
                        return Some(s.release);
                    }
                    if wd.poll_detect().is_some() {
                        s.arrived -= 1;
                        s.waiters.retain(|&w| w != rank);
                        wd.unblock(rank);
                        return None;
                    }
                    self.cv.wait_for(&mut s, wd.poll_interval());
                }
            }
        }
    }

    /// Event-mode entry: same clock-merging contract as
    /// [`ClockBarrier::wait`], but waiters park their fiber instead of an
    /// OS thread. The releaser drains `waiters` under the barrier lock and
    /// wakes each parked fiber; a waiter woken by a deadlock verdict
    /// withdraws its arrival (decrementing `arrived` and delisting itself)
    /// and returns `None`, exactly like the watchdog path.
    fn wait_sched(&self, now: SimTime, sched: &SchedCore, rank: usize) -> Option<SimTime> {
        let mut s = self.state.lock();
        let gen = s.generation;
        s.max_time = s.max_time.max(now);
        s.arrived += 1;
        if s.arrived == self.size {
            s.arrived = 0;
            s.release = s.max_time + self.cost;
            s.max_time = SimTime::ZERO;
            s.generation += 1;
            let waiters = std::mem::take(&mut s.waiters);
            let release = s.release;
            drop(s);
            for w in waiters {
                sched.wake(w);
            }
            return Some(release);
        }
        if sched.verdict().is_some() {
            // Arrived into an already-condemned world: withdraw
            // immediately rather than parking forever.
            s.arrived -= 1;
            return None;
        }
        s.waiters.push(rank);
        loop {
            // Park protocol: announce Parking before dropping the barrier
            // lock, so the releaser (which drains `waiters` under that
            // lock) always finds this task in Parking/Parked and its wake
            // is latched rather than lost.
            sched.begin_park(rank, now, "barrier".to_string());
            drop(s);
            sched.park_switch(rank);
            s = self.state.lock();
            if s.generation != gen {
                return Some(s.release);
            }
            if sched.verdict().is_some() {
                s.arrived -= 1;
                s.waiters.retain(|&w| w != rank);
                return None;
            }
            // Spurious wake (e.g. a verdict raced with a release that
            // then happened anyway): loop and re-park.
        }
    }
}

/// Shared all-gather board (see [`RankCtx::allgather_u64`]).
pub(crate) struct Board {
    slots: Mutex<Vec<u64>>,
}

/// Communicator membership map: position `i` holds the world rank sitting
/// at comm rank `i`.
///
/// Pre-shrink worlds use the identity map — represented symbolically
/// because materializing it would put an N-entry table in every rank,
/// O(N²) memory across the world (with 10,000 ranks, the second scaling
/// blocker after thread-per-rank). Only a [`RankCtx::shrink`] allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Members {
    /// The identity map over `0..n` (no shrink has happened).
    Identity(usize),
    /// Explicit survivor list after one or more shrinks.
    Explicit(Vec<usize>),
}

impl Members {
    /// Communicator size.
    pub(crate) fn len(&self) -> usize {
        match self {
            Members::Identity(n) => *n,
            Members::Explicit(v) => v.len(),
        }
    }

    /// World rank at comm rank `i`, if in range.
    pub(crate) fn get(&self, i: usize) -> Option<usize> {
        match self {
            Members::Identity(n) => (i < *n).then_some(i),
            Members::Explicit(v) => v.get(i).copied(),
        }
    }

    /// World rank at comm rank `i`; panics when out of range.
    pub(crate) fn world(&self, i: usize) -> usize {
        self.get(i).expect("comm rank within communicator")
    }

    /// Comm rank of world rank `w`, if a member.
    pub(crate) fn position(&self, w: usize) -> Option<usize> {
        match self {
            Members::Identity(n) => (w < *n).then_some(w),
            Members::Explicit(v) => v.iter().position(|&x| x == w),
        }
    }

    /// Is world rank `w` a member?
    pub(crate) fn contains(&self, w: usize) -> bool {
        self.position(w).is_some()
    }

    /// Iterate the members' world ranks in comm-rank order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(move |i| self.world(i))
    }

    /// Materialize the membership (API boundary / shrink bookkeeping).
    pub(crate) fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

/// One rank's handle on the simulated world. All MPI-facing operations in
/// the repository go through this type (directly for "system MPI"
/// semantics, or via the TEMPI interposer in `tempi-core`).
pub struct RankCtx {
    /// This rank's index *in the current communicator*. Before any
    /// [`RankCtx::shrink`] this equals the world rank; each shrink densely
    /// renumbers the survivors.
    pub rank: usize,
    /// Size of the current communicator (shrinks after recovery).
    pub size: usize,
    /// This rank's index in the original world — stable across shrinks;
    /// indexes the channel table and the network model's locality map.
    pub world_rank: usize,
    /// Size of the original world.
    pub world_size: usize,
    /// This rank's virtual clock.
    pub clock: SimClock,
    /// This rank's simulated GPU.
    pub gpu: GpuContext,
    /// The default stream on this rank's GPU.
    pub stream: Stream,
    /// The system-MPI vendor this world emulates.
    pub vendor: VendorProfile,
    /// The fabric model. Shared (`Arc`), not owned: per-send cost
    /// estimators hold a handle to it, and cloning the model's tables on
    /// the hot path would dwarf the work being priced.
    pub net: Arc<NetModel>,
    /// Fault-injection state for this rank: the (optional) injector plus
    /// the statistics and degradation-event log accumulated so far.
    pub faults: FaultState,
    /// Are integrity envelopes enabled? When true, sends stamp payloads
    /// with a content checksum and receives verify it, NACKing mismatches.
    pub integrity: bool,
    /// Observability sink (cheap clone of the world's tracer; off by
    /// default). Layers above record spans against `world_rank`.
    pub tracer: Tracer,
    pub(crate) registry: Arc<RwLock<TypeRegistry>>,
    /// Shared delivery fabric: one bounded FIFO inbox per rank.
    pub(crate) router: Arc<Router>,
    /// Event-mode scheduler core; `None` under the thread backend (and in
    /// standalone contexts), where blocking points use condvars instead.
    pub(crate) sched: Option<Arc<SchedCore>>,
    pub(crate) pending: VecDeque<Message>,
    pub(crate) requests: Vec<Option<crate::nonblocking::PendingOp>>,
    pub(crate) barrier: Arc<ClockBarrier>,
    pub(crate) board: Arc<Board>,
    /// Current communicator membership (world rank per comm rank). Starts
    /// as the (symbolic) identity map.
    pub(crate) comm_members: Members,
    /// Communicator generation; bumped by every shrink and stamped into
    /// message envelopes so late traffic from a prior epoch is rejected.
    pub(crate) epoch: u64,
    /// Has the current epoch been revoked (locally observed)?
    pub(crate) revoked: bool,
    /// World ranks known dead, with their scheduled exit instants —
    /// populated by clock-based fault gates and absorbed death notices.
    pub(crate) known_dead: BTreeMap<usize, SimTime>,
    /// Has this rank already broadcast its own death notice?
    pub(crate) death_sent: bool,
    /// Shared deadlock detector, when the world runs one.
    pub(crate) watchdog: Option<Arc<Watchdog>>,
}

impl RankCtx {
    /// A standalone single-rank context — used by the non-communication
    /// experiments (type commit, `MPI_Pack`) and by unit tests.
    pub fn standalone(cfg: &WorldConfig) -> RankCtx {
        let gpu = GpuContext::new(cfg.device.clone());
        let faults = init_faults(cfg, 0, &gpu);
        let mut stream = Stream::new(gpu.clone(), cfg.gpu_cost.clone());
        stream.set_tracer(cfg.tracer.clone(), 0);
        RankCtx {
            rank: 0,
            size: 1,
            world_rank: 0,
            world_size: 1,
            clock: SimClock::new(),
            gpu,
            stream,
            vendor: cfg.vendor.clone(),
            net: Arc::new(cfg.net.clone()),
            faults,
            integrity: cfg.integrity,
            tracer: cfg.tracer.clone(),
            registry: Arc::new(RwLock::new(TypeRegistry::new())),
            router: Arc::new(Router::new(1, cfg.resolve_hwm())),
            sched: None,
            pending: VecDeque::new(),
            requests: Vec::new(),
            barrier: Arc::new(ClockBarrier::new(1, cfg.net.barrier_cost)),
            board: Arc::new(Board {
                slots: Mutex::new(vec![0]),
            }),
            comm_members: Members::Identity(1),
            epoch: 0,
            revoked: false,
            known_dead: BTreeMap::new(),
            death_sent: false,
            watchdog: None,
        }
    }

    /// Run `body` inside a tracing span named `name` on this rank's CPU
    /// lane. The span closes on success and error alike (with an `ok` arg),
    /// so traced error paths never leave a dangling `B` event. When the
    /// tracer is off this is a single branch plus the call.
    pub fn with_span<T>(
        &mut self,
        cat: &'static str,
        name: &str,
        body: impl FnOnce(&mut Self) -> MpiResult<T>,
    ) -> MpiResult<T> {
        if !self.tracer.enabled() {
            return body(self);
        }
        let tracer = self.tracer.clone();
        let pid = self.world_rank as u32;
        tracer.begin(
            pid,
            tempi_trace::LANE_CPU,
            cat,
            name,
            self.clock.now().as_ps(),
        );
        let r = body(self);
        tracer.end_args(pid, tempi_trace::LANE_CPU, self.clock.now().as_ps(), || {
            vec![("ok", r.is_ok().into())]
        });
        r
    }

    /// Validate a peer rank.
    pub fn check_rank(&self, rank: usize) -> MpiResult<()> {
        if rank >= self.size {
            Err(MpiError::InvalidRank {
                rank,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    /// `MPI_Barrier`: synchronize all ranks (and their virtual clocks).
    ///
    /// Deliberately infallible even under a watchdog: if the world is
    /// declared deadlocked while this rank is parked here, the barrier
    /// simply returns without advancing the clock — the structured
    /// [`MpiError::Deadlock`] surfaces from the ranks blocked in receives
    /// (and any later receive this rank attempts), which is where the
    /// diagnostic context lives.
    pub fn barrier(&mut self) {
        let release = if let Some(sched) = self.sched.clone() {
            self.barrier
                .wait_sched(self.clock.now(), &sched, self.world_rank)
        } else {
            let wd = self.watchdog.clone();
            self.barrier.wait(
                self.clock.now(),
                wd.as_deref().map(|w| (w, self.world_rank)),
            )
        };
        if let Some(release) = release {
            self.clock.advance_to(release);
        }
    }

    /// Number of nonblocking requests posted and never completed by a
    /// wait/test (a teardown invariant: a clean run drains every request).
    #[must_use]
    pub fn undrained_requests(&self) -> usize {
        self.requests.iter().filter(|r| r.is_some()).count()
    }

    /// Depth of the unexpected-message queue: messages pulled from the
    /// inbox that no receive ever matched (a teardown invariant for
    /// quiescent protocols).
    #[must_use]
    pub fn pending_messages(&self) -> usize {
        self.pending.len()
    }

    /// Messages sitting in this rank's router inbox, delivered but never
    /// pulled (the companion teardown invariant to
    /// [`RankCtx::pending_messages`]).
    #[must_use]
    pub fn inbox_backlog(&self) -> usize {
        self.router.inbox_depth(self.world_rank)
    }

    /// The world's per-rank inbox high-water mark in messages (0 =
    /// unbounded; see [`WorldConfig::with_inbox_hwm`]).
    #[must_use]
    pub fn inbox_hwm(&self) -> usize {
        self.router.hwm()
    }

    /// All-gather one `u64` per rank (harness utility for collecting
    /// per-rank timings; costs a barrier's worth of synchronization).
    pub fn allgather_u64(&mut self, v: u64) -> Vec<u64> {
        self.board.slots.lock()[self.rank] = v;
        self.barrier();
        let all = self.board.slots.lock().clone();
        self.barrier();
        all
    }

    /// Reset this rank's virtual clock *and its GPU stream timeline*
    /// (between benchmark repetitions; in multi-rank worlds pair it with a
    /// barrier so no in-flight message carries a pre-reset timestamp).
    pub fn reset_clock(&mut self) {
        self.clock.reset();
        self.stream.reset_timeline();
    }

    // ---- datatype API (vendor-priced wrappers over the registry) -------

    /// Run `f` with write access to the shared type registry, charging one
    /// type-constructor call's CPU cost.
    fn create_priced<T>(
        &mut self,
        f: impl FnOnce(&mut TypeRegistry) -> MpiResult<T>,
    ) -> MpiResult<T> {
        self.clock.advance(self.vendor.type_create_cost);
        f(&mut self.registry.write())
    }

    /// `MPI_Type_contiguous`.
    pub fn type_contiguous(&mut self, count: i32, oldtype: Datatype) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_contiguous(count, oldtype))
    }

    /// `MPI_Type_vector`.
    pub fn type_vector(
        &mut self,
        count: i32,
        blocklength: i32,
        stride: i32,
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_vector(count, blocklength, stride, oldtype))
    }

    /// `MPI_Type_create_hvector`.
    pub fn type_create_hvector(
        &mut self,
        count: i32,
        blocklength: i32,
        stride_bytes: i64,
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_hvector(count, blocklength, stride_bytes, oldtype))
    }

    /// `MPI_Type_create_subarray`.
    pub fn type_create_subarray(
        &mut self,
        sizes: &[i32],
        subsizes: &[i32],
        starts: &[i32],
        order: Order,
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_subarray(sizes, subsizes, starts, order, oldtype))
    }

    /// `MPI_Type_indexed`.
    pub fn type_indexed(
        &mut self,
        blocklengths: &[i32],
        displacements: &[i32],
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_indexed(blocklengths, displacements, oldtype))
    }

    /// `MPI_Type_create_indexed_block`.
    pub fn type_create_indexed_block(
        &mut self,
        blocklength: i32,
        displacements: &[i32],
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_indexed_block(blocklength, displacements, oldtype))
    }

    /// `MPI_Type_create_hindexed`.
    pub fn type_create_hindexed(
        &mut self,
        blocklengths: &[i32],
        displacements_bytes: &[i64],
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_hindexed(blocklengths, displacements_bytes, oldtype))
    }

    /// `MPI_Type_create_struct`.
    pub fn type_create_struct(
        &mut self,
        blocklengths: &[i32],
        displacements_bytes: &[i64],
        types: &[Datatype],
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_struct(blocklengths, displacements_bytes, types))
    }

    /// `MPI_Type_create_resized`.
    pub fn type_create_resized(
        &mut self,
        oldtype: Datatype,
        lb: i64,
        extent: i64,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_resized(oldtype, lb, extent))
    }

    /// `MPI_Type_dup`.
    pub fn type_dup(&mut self, oldtype: Datatype) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_dup(oldtype))
    }

    /// `MPI_Type_free`.
    pub fn type_free(&mut self, dt: Datatype) -> MpiResult<()> {
        self.registry.write().free(dt)
    }

    /// The *system MPI's* `MPI_Type_commit` (native work only; the TEMPI
    /// layer in `tempi-core` adds its translation/transformation on top).
    pub fn type_commit_native(&mut self, dt: Datatype) -> MpiResult<()> {
        self.clock.advance(self.vendor.type_commit_cost);
        self.registry.write().commit(dt)
    }

    // ---- priced introspection (what TEMPI's translation calls) ---------

    /// `MPI_Type_get_envelope`, priced per the vendor.
    pub fn get_envelope(&mut self, dt: Datatype) -> MpiResult<Envelope> {
        self.clock.advance(self.vendor.introspection_call_cost);
        self.registry.read().get_envelope(dt)
    }

    /// `MPI_Type_get_contents`, priced per the vendor.
    pub fn get_contents(&mut self, dt: Datatype) -> MpiResult<Contents> {
        self.clock.advance(self.vendor.introspection_call_cost);
        self.registry.read().get_contents(dt)
    }

    /// `MPI_Type_get_extent`, priced per the vendor.
    pub fn get_extent(&mut self, dt: Datatype) -> MpiResult<(i64, i64)> {
        self.clock.advance(self.vendor.introspection_call_cost);
        self.registry.read().extent(dt)
    }

    /// `MPI_Type_size`, priced per the vendor.
    pub fn type_size(&mut self, dt: Datatype) -> MpiResult<u64> {
        self.clock.advance(self.vendor.introspection_call_cost);
        self.registry.read().size(dt)
    }

    // ---- unpriced registry access (simulator-internal) ------------------

    /// Unpriced attribute lookup (for the simulator's own bookkeeping —
    /// *not* for code modeling real MPI calls).
    pub fn attrs(&self, dt: Datatype) -> MpiResult<TypeAttrs> {
        self.registry.read().attrs(dt)
    }

    /// Unpriced combiner lookup.
    pub fn combiner(&self, dt: Datatype) -> MpiResult<Combiner> {
        Ok(self.registry.read().get_envelope(dt)?.combiner)
    }

    /// Unpriced committed check.
    pub fn is_committed(&self, dt: Datatype) -> MpiResult<bool> {
        self.registry.read().is_committed(dt)
    }

    /// Shared registry handle (read-mostly; the TEMPI layer caches per
    /// committed type).
    pub fn registry(&self) -> &Arc<RwLock<TypeRegistry>> {
        &self.registry
    }

    /// A human-readable description of a type (figure labels).
    pub fn describe(&self, dt: Datatype) -> String {
        self.registry.read().describe(dt)
    }
}

/// The simulated MPI world.
pub struct World;

/// Build the per-rank contexts for one world run. `sched` is set in event
/// mode, `watchdog` in thread mode — never both: event mode detects
/// deadlocks structurally, so its blocking points must not also feed the
/// polling watchdog's accounting.
fn build_ctxs(
    cfg: &WorldConfig,
    router: &Arc<Router>,
    sched: Option<&Arc<SchedCore>>,
    watchdog: Option<&Arc<Watchdog>>,
) -> Vec<RankCtx> {
    let size = cfg.size;
    let registry = Arc::new(RwLock::new(TypeRegistry::new()));
    let net = Arc::new(cfg.net.clone());
    let barrier = Arc::new(ClockBarrier::new(size, cfg.net.barrier_cost));
    let board = Arc::new(Board {
        slots: Mutex::new(vec![0; size]),
    });
    (0..size)
        .map(|rank| {
            let gpu = GpuContext::new(cfg.device.clone());
            let faults = init_faults(cfg, rank, &gpu);
            let mut stream = Stream::new(gpu.clone(), cfg.gpu_cost.clone());
            stream.set_tracer(cfg.tracer.clone(), rank as u32);
            RankCtx {
                rank,
                size,
                world_rank: rank,
                world_size: size,
                clock: SimClock::new(),
                gpu,
                stream,
                vendor: cfg.vendor.clone(),
                net: Arc::clone(&net),
                faults,
                integrity: cfg.integrity,
                tracer: cfg.tracer.clone(),
                registry: Arc::clone(&registry),
                router: Arc::clone(router),
                sched: sched.map(Arc::clone),
                pending: VecDeque::new(),
                requests: Vec::new(),
                barrier: Arc::clone(&barrier),
                board: Arc::clone(&board),
                comm_members: Members::Identity(size),
                epoch: 0,
                revoked: false,
                known_dead: BTreeMap::new(),
                death_sent: false,
                watchdog: watchdog.map(Arc::clone),
            }
        })
        .collect()
}

/// Run one rank's body with panic isolation and the standard epilogue.
fn run_rank<F, T>(body: &F, ctx: &mut RankCtx) -> MpiResult<T>
where
    F: Fn(&mut RankCtx) -> MpiResult<T> + Sync,
{
    let rank = ctx.world_rank;
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(ctx)));
    let r = match r {
        Ok(r) => r,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            // To its peers a panicked rank is simply dead: broadcast a
            // death notice at its last virtual instant so blocked
            // receivers unwind through the recovery path instead of
            // hanging.
            ctx.announce_death(ctx.clock.now());
            Err(MpiError::RankPanicked { rank, message })
        }
    };
    // A rank with a scheduled exit might return without ever tripping
    // over its own death (its clock never reached the instant).
    // Broadcast the notice now so peers blocked on it are woken instead
    // of hanging.
    if let Some(at) = ctx
        .faults
        .injector
        .as_ref()
        .and_then(|i| i.exit_time(ctx.world_rank))
    {
        ctx.announce_death(at);
    }
    // Done only after the death notices above: a notice counts as
    // in-flight traffic and must not race a quiescence check against a
    // `Done` mark.
    if let Some(wd) = &ctx.watchdog {
        wd.mark_done(ctx.world_rank);
    }
    r
}

/// Collapse per-rank results and a scheduler/watchdog verdict into the
/// run's result. A panic is the primary failure (any `Deadlock`/`PeerGone`
/// on other ranks is fallout); otherwise the first rank error wins; a
/// verdict only surfaces when every rank returned `Ok` (a deadlock whose
/// blocked ranks were all parked in barriers produces no per-rank error —
/// the barrier withdraws silently — and must not be lost).
fn merge_results<T>(
    results: Vec<MpiResult<T>>,
    verdict: Option<DeadlockInfo>,
) -> MpiResult<Vec<T>> {
    let mut results = results;
    if let Some(i) = results
        .iter()
        .position(|r| matches!(r, Err(MpiError::RankPanicked { .. })))
    {
        results.swap_remove(i)?;
        unreachable!("position() matched an Err");
    }
    let out: MpiResult<Vec<T>> = results.into_iter().collect();
    match (out, verdict) {
        (Ok(_), Some(v)) => Err(MpiError::Deadlock {
            ranks: v.ranks,
            ops: v.ops,
        }),
        (out, _) => out,
    }
}

impl World {
    /// Run `body` on every rank of a world configured by `cfg`; returns the
    /// per-rank results in rank order. A panicking rank surfaces as
    /// [`MpiError::RankPanicked`] naming it (peers see it die like a
    /// fault-injected exit).
    pub fn run<F, T>(cfg: &WorldConfig, body: F) -> MpiResult<Vec<T>>
    where
        F: Fn(&mut RankCtx) -> MpiResult<T> + Sync,
        T: Send,
    {
        assert!(cfg.size > 0, "world size must be positive");
        if cfg.sched.use_events() {
            Self::run_events(cfg, &body)
        } else {
            Self::run_threads(cfg, &body)
        }
    }

    /// Legacy backend: one OS thread per rank, condvar blocking, optional
    /// wall-clock polling watchdog. Caps at a few hundred ranks but
    /// exercises real preemption.
    fn run_threads<F, T>(cfg: &WorldConfig, body: &F) -> MpiResult<Vec<T>>
    where
        F: Fn(&mut RankCtx) -> MpiResult<T> + Sync,
        T: Send,
    {
        let size = cfg.size;
        let watchdog = cfg
            .watchdog
            .as_ref()
            .map(|wd| Arc::new(Watchdog::new(wd, size)));
        let router = Arc::new(Router::new(size, cfg.resolve_hwm()));
        let mut ctxs = build_ctxs(cfg, &router, None, watchdog.as_ref());
        let results: Vec<MpiResult<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ctxs
                .iter_mut()
                .map(|ctx| scope.spawn(move || run_rank(body, ctx)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panics are caught in run_rank"))
                .collect()
        });
        merge_results(results, watchdog.as_ref().and_then(|w| w.verdict()))
    }

    /// Event backend: every rank is a fiber on an M-worker pool; blocking
    /// points park the fiber and deadlocks are detected structurally (see
    /// [`crate::sched`]).
    fn run_events<F, T>(cfg: &WorldConfig, body: &F) -> MpiResult<Vec<T>>
    where
        F: Fn(&mut RankCtx) -> MpiResult<T> + Sync,
        T: Send,
    {
        let size = cfg.size;
        // The watchdog config contributes only its virtual-time budget
        // (stamped into verdicts for parity with thread mode); no watchdog
        // runs, so ctxs carry `watchdog: None` and every blocking point
        // takes its sched path.
        let budget = cfg.watchdog.as_ref().map_or(SimTime::ZERO, |w| w.budget);
        let core = Arc::new(SchedCore::new(size, budget));
        let router = Arc::new(Router::new(size, cfg.resolve_hwm()));
        let ctxs = build_ctxs(cfg, &router, Some(&core), None);
        let slots: Vec<Mutex<Option<MpiResult<T>>>> = (0..size).map(|_| Mutex::new(None)).collect();
        {
            let slots = &slots;
            for (rank, mut ctx) in ctxs.into_iter().enumerate() {
                let entry: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let r = run_rank(body, &mut ctx);
                    *slots[rank].lock() = Some(r);
                });
                // SAFETY: the scheduler stores entries as 'static, but
                // every fiber is driven to completion before this block
                // ends — the worker scope below only joins once all tasks
                // are Finished, and a deadlock verdict wakes every parked
                // fiber so blocking points unwind and bodies return. The
                // borrows of `body` and `slots` therefore never outlive
                // this frame.
                let entry: Box<dyn FnOnce() + Send + 'static> =
                    unsafe { std::mem::transmute(entry) };
                core.spawn(rank, entry);
            }
            let workers = cfg.resolve_workers();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let core = &core;
                    scope.spawn(move || core.worker_loop());
                }
            });
        }
        let results: Vec<MpiResult<T>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every rank fiber runs to completion")
            })
            .collect();
        merge_results(results, core.verdict())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::consts::*;

    #[test]
    fn standalone_rank_builds_types() {
        let mut ctx = RankCtx::standalone(&WorldConfig::summit(1));
        let t = ctx.type_vector(4, 2, 8, MPI_FLOAT).unwrap();
        ctx.type_commit_native(t).unwrap();
        assert!(ctx.is_committed(t).unwrap());
        // create + commit charged virtual time
        let expect = ctx.vendor.type_create_cost + ctx.vendor.type_commit_cost;
        assert_eq!(ctx.clock.now(), expect);
    }

    #[test]
    fn introspection_is_priced() {
        let mut ctx = RankCtx::standalone(&WorldConfig::summit(1));
        let t = ctx.type_contiguous(8, MPI_INT).unwrap();
        let before = ctx.clock.now();
        let env = ctx.get_envelope(t).unwrap();
        assert_eq!(env.combiner, Combiner::Contiguous);
        let _ = ctx.get_contents(t).unwrap();
        let _ = ctx.get_extent(t).unwrap();
        let _ = ctx.type_size(t).unwrap();
        assert_eq!(
            ctx.clock.now() - before,
            ctx.vendor.introspection_call_cost * 4
        );
    }

    #[test]
    fn world_runs_all_ranks() {
        let cfg = WorldConfig::summit(4);
        let results = World::run(&cfg, |ctx| Ok(ctx.rank * 10)).unwrap();
        assert_eq!(results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn barrier_merges_clocks() {
        let cfg = WorldConfig::summit(3);
        let results = World::run(&cfg, |ctx| {
            // rank r works for r*10 µs, then all meet at a barrier
            ctx.clock.advance(SimTime::from_us(ctx.rank as u64 * 10));
            ctx.barrier();
            Ok(ctx.clock.now())
        })
        .unwrap();
        let expect = SimTime::from_us(20) + NetModel::summit().barrier_cost;
        assert!(results.iter().all(|&t| t == expect), "{results:?}");
    }

    #[test]
    fn allgather_collects_values() {
        let cfg = WorldConfig::summit(4);
        let results = World::run(&cfg, |ctx| Ok(ctx.allgather_u64(ctx.rank as u64 * 7))).unwrap();
        for r in results {
            assert_eq!(r, vec![0, 7, 14, 21]);
        }
    }

    #[test]
    fn shared_registry_across_ranks() {
        // all ranks create the same type concurrently; handles may differ
        // but each rank's own handle must be valid
        let cfg = WorldConfig::summit(4);
        let results = World::run(&cfg, |ctx| {
            let t = ctx.type_vector(4, 1, 2, MPI_INT)?;
            ctx.type_commit_native(t)?;
            ctx.type_size(t)
        })
        .unwrap();
        assert!(results.iter().all(|&s| s == 16));
    }

    fn test_watchdog() -> WatchdogConfig {
        WatchdogConfig {
            budget: SimTime::from_ms(1),
            poll: std::time::Duration::from_millis(1),
        }
    }

    #[test]
    fn watchdog_converts_synthetic_deadlock_into_structured_error() {
        // Rank 1 returns without ever sending; rank 0 blocks on a receive
        // that can never match. Without the watchdog this hangs forever.
        let cfg = WorldConfig::summit(2).with_watchdog(test_watchdog());
        let err = World::run(&cfg, |ctx| {
            if ctx.rank == 0 {
                let buf = ctx.gpu.host_alloc(64)?;
                ctx.recv_bytes(buf, 64, Some(1), Some(7))?;
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            MpiError::Deadlock { ranks, ops } => {
                assert_eq!(ranks, vec![0]);
                assert_eq!(ops, vec!["recv(src=1, tag=7)".to_string()]);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_detects_barrier_deadlock() {
        // Rank 1 never reaches the barrier; rank 0 parks there forever.
        // The verdict surfaces as the run's result because the barrier
        // itself withdraws silently.
        let cfg = WorldConfig::summit(2).with_watchdog(test_watchdog());
        let err = World::run(&cfg, |ctx| {
            if ctx.rank == 0 {
                ctx.barrier();
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            MpiError::Deadlock { ranks, ops } => {
                assert_eq!(ranks, vec![0]);
                assert_eq!(ops, vec!["barrier".to_string()]);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_leaves_healthy_runs_and_their_timing_untouched() {
        let body = |ctx: &mut RankCtx| {
            ctx.clock.advance(SimTime::from_us(ctx.rank as u64 * 3));
            ctx.barrier();
            let all = ctx.allgather_u64(ctx.rank as u64 + 1);
            ctx.barrier();
            Ok((ctx.clock.now(), all))
        };
        let plain = World::run(&WorldConfig::summit(3), body).unwrap();
        let watched =
            World::run(&WorldConfig::summit(3).with_watchdog(test_watchdog()), body).unwrap();
        assert_eq!(
            plain, watched,
            "virtual time must not depend on the watchdog"
        );
    }

    #[test]
    fn check_rank_bounds() {
        let ctx = RankCtx::standalone(&WorldConfig::summit(1));
        assert!(ctx.check_rank(0).is_ok());
        assert_eq!(
            ctx.check_rank(1),
            Err(MpiError::InvalidRank { rank: 1, size: 1 })
        );
    }
}
