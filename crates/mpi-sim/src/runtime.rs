//! The simulated multi-rank world.
//!
//! [`World::run`] spawns one OS thread per MPI rank; each thread receives a
//! [`RankCtx`] — its window onto the simulation: a private virtual clock, a
//! private simulated GPU (one GPU per rank, as on Summit), a shared
//! datatype registry, and channels to every peer. Virtual time composes
//! across ranks Lamport-style: messages carry their departure instant, and
//! a receive completes at `max(local now, departure + wire time)`.
//!
//! Wall-clock thread scheduling never affects results: all reported times
//! are virtual, and matching is deterministic for the directed
//! (source-specified) receives used throughout the experiments.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use gpu_sim::{DeviceProps, GpuContext, GpuCostModel, SimClock, SimTime, Stream, Tracer};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::datatype::{Combiner, Contents, Datatype, Envelope, Order, TypeAttrs, TypeRegistry};
use crate::error::{MpiError, MpiResult};
use crate::fault::{FaultPlan, FaultState};
use crate::net::NetModel;
use crate::p2p::Message;
use crate::vendor::VendorProfile;
use crate::watchdog::{Watchdog, WatchdogConfig};

/// Everything that parameterizes a simulated platform.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of ranks.
    pub size: usize,
    /// Which system MPI the world emulates.
    pub vendor: VendorProfile,
    /// Fabric model.
    pub net: NetModel,
    /// GPU cost model (one per rank; all identical).
    pub gpu_cost: GpuCostModel,
    /// GPU hardware model.
    pub device: DeviceProps,
    /// Deterministic fault plan; `None` (the default) runs fault-free with
    /// zero hot-path cost.
    pub faults: Option<FaultPlan>,
    /// End-to-end payload integrity: senders stamp envelopes with a content
    /// checksum and receivers verify deliveries, NACKing corrupted ones.
    /// Auto-enabled by [`WorldConfig::with_faults`] when the plan's
    /// `corrupt` site is active (set it back to `false` to study silent
    /// corruption).
    pub integrity: bool,
    /// Observability sink shared by every rank of this world (the default,
    /// [`Tracer::off`], records nothing and costs one branch per hook).
    pub tracer: Tracer,
    /// Deadlock watchdog; `None` (the default) keeps every blocking point
    /// a plain blocking channel/condvar wait with zero added cost.
    pub watchdog: Option<WatchdogConfig>,
}

impl WorldConfig {
    /// An OLCF-Summit-like platform: Spectrum MPI, V100s, 6 ranks/node.
    pub fn summit(size: usize) -> Self {
        WorldConfig {
            size,
            vendor: VendorProfile::spectrum(),
            net: NetModel::summit(),
            gpu_cost: GpuCostModel::summit_v100(),
            device: DeviceProps::v100(),
            faults: None,
            integrity: false,
            tracer: Tracer::off(),
            watchdog: None,
        }
    }

    /// The paper's single-node workstation with the given MPI (openmpi or
    /// mvapich profiles).
    pub fn workstation(size: usize, vendor: VendorProfile) -> Self {
        WorldConfig {
            size,
            vendor,
            net: NetModel::workstation(),
            gpu_cost: GpuCostModel::workstation_gtx1070(),
            device: DeviceProps::gtx1070(),
            faults: None,
            integrity: false,
            tracer: Tracer::off(),
            watchdog: None,
        }
    }

    /// Builder-style: run this world under `plan`. If the plan can corrupt
    /// payloads in transit, integrity envelopes are switched on so receivers
    /// can detect it (override by clearing `integrity` afterwards).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.integrity |= plan.corrupt.is_active();
        self.faults = Some(plan);
        self
    }

    /// Builder-style: stamp every payload-bearing envelope with a content
    /// checksum and verify on delivery, even without a fault plan.
    #[must_use]
    pub fn with_integrity(mut self) -> Self {
        self.integrity = true;
        self
    }

    /// Builder-style: record this world's activity into `tracer`. All ranks
    /// share the one event buffer, so a single export covers the world.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Builder-style: run this world under a deadlock watchdog, so a
    /// quiesced world with operations pending surfaces as
    /// [`MpiError::Deadlock`] instead of hanging the process.
    #[must_use]
    pub fn with_watchdog(mut self, wd: WatchdogConfig) -> Self {
        self.watchdog = Some(wd);
        self
    }
}

/// Instantiate the per-rank fault state for `cfg`, installing the GPU-side
/// injector on `gpu` when the plan has active GPU sites.
fn init_faults(cfg: &WorldConfig, rank: usize, gpu: &GpuContext) -> FaultState {
    match &cfg.faults {
        None => FaultState::disabled(),
        Some(plan) => {
            let (state, gpu_inj) = FaultState::from_plan(plan, rank);
            if gpu_inj.is_some() {
                gpu.set_fault_injector(gpu_inj);
            }
            state
        }
    }
}

/// A barrier that also merges virtual clocks: every participant leaves at
/// `max(arrival clocks) + barrier_cost`.
pub(crate) struct ClockBarrier {
    size: usize,
    cost: SimTime,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: usize,
    max_time: SimTime,
    release: SimTime,
    generation: u64,
    /// Watchdog-tracked ranks currently parked in this barrier. The
    /// releaser clears their `Blocked` slots *under the barrier lock*
    /// before notifying: a released-but-still-parked waiter must not look
    /// blocked to the watchdog, or a fast rank re-entering the next
    /// barrier would observe a quiescent (all-blocked) world and report a
    /// false deadlock.
    waiters: Vec<usize>,
}

impl ClockBarrier {
    fn new(size: usize, cost: SimTime) -> Self {
        ClockBarrier {
            size,
            cost,
            state: Mutex::new(BarrierState {
                arrived: 0,
                max_time: SimTime::ZERO,
                release: SimTime::ZERO,
                generation: 0,
                waiters: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Enter with the caller's current virtual instant; returns the common
    /// release instant, or `None` if the watchdog declared the world
    /// deadlocked while this caller was parked (the caller withdraws its
    /// arrival so the barrier accounting stays coherent).
    ///
    /// With a watchdog, waiters park on a timed condvar and re-evaluate
    /// the quiescence predicate each interval — this is what detects a
    /// world where the last live ranks are all stuck in a barrier a dead
    /// rank will never reach. Lock ordering is safe: watchdog methods
    /// never take the barrier mutex.
    fn wait(&self, now: SimTime, wd: Option<(&Watchdog, usize)>) -> Option<SimTime> {
        let mut s = self.state.lock();
        let gen = s.generation;
        s.max_time = s.max_time.max(now);
        s.arrived += 1;
        if s.arrived == self.size {
            s.arrived = 0;
            s.release = s.max_time + self.cost;
            s.max_time = SimTime::ZERO;
            s.generation += 1;
            if let Some((wd, _)) = wd {
                for w in s.waiters.drain(..) {
                    wd.unblock(w);
                }
            }
            self.cv.notify_all();
            return Some(s.release);
        }
        match wd {
            None => {
                while s.generation == gen {
                    self.cv.wait(&mut s);
                }
                Some(s.release)
            }
            Some((wd, rank)) => {
                wd.block(rank, "barrier".to_string(), now);
                s.waiters.push(rank);
                loop {
                    if s.generation != gen {
                        // The releaser already cleared this rank's
                        // watchdog slot (and drained `waiters`).
                        return Some(s.release);
                    }
                    if wd.poll_detect().is_some() {
                        s.arrived -= 1;
                        s.waiters.retain(|&w| w != rank);
                        wd.unblock(rank);
                        return None;
                    }
                    self.cv.wait_for(&mut s, wd.poll_interval());
                }
            }
        }
    }
}

/// Shared all-gather board (see [`RankCtx::allgather_u64`]).
pub(crate) struct Board {
    slots: Mutex<Vec<u64>>,
}

/// One rank's handle on the simulated world. All MPI-facing operations in
/// the repository go through this type (directly for "system MPI"
/// semantics, or via the TEMPI interposer in `tempi-core`).
pub struct RankCtx {
    /// This rank's index *in the current communicator*. Before any
    /// [`RankCtx::shrink`] this equals the world rank; each shrink densely
    /// renumbers the survivors.
    pub rank: usize,
    /// Size of the current communicator (shrinks after recovery).
    pub size: usize,
    /// This rank's index in the original world — stable across shrinks;
    /// indexes the channel table and the network model's locality map.
    pub world_rank: usize,
    /// Size of the original world.
    pub world_size: usize,
    /// This rank's virtual clock.
    pub clock: SimClock,
    /// This rank's simulated GPU.
    pub gpu: GpuContext,
    /// The default stream on this rank's GPU.
    pub stream: Stream,
    /// The system-MPI vendor this world emulates.
    pub vendor: VendorProfile,
    /// The fabric model. Shared (`Arc`), not owned: per-send cost
    /// estimators hold a handle to it, and cloning the model's tables on
    /// the hot path would dwarf the work being priced.
    pub net: Arc<NetModel>,
    /// Fault-injection state for this rank: the (optional) injector plus
    /// the statistics and degradation-event log accumulated so far.
    pub faults: FaultState,
    /// Are integrity envelopes enabled? When true, sends stamp payloads
    /// with a content checksum and receives verify it, NACKing mismatches.
    pub integrity: bool,
    /// Observability sink (cheap clone of the world's tracer; off by
    /// default). Layers above record spans against `world_rank`.
    pub tracer: Tracer,
    pub(crate) registry: Arc<RwLock<TypeRegistry>>,
    pub(crate) inbox: Receiver<Message>,
    pub(crate) peers: Vec<Sender<Message>>,
    pub(crate) pending: VecDeque<Message>,
    pub(crate) requests: Vec<Option<crate::nonblocking::PendingOp>>,
    pub(crate) barrier: Arc<ClockBarrier>,
    pub(crate) board: Arc<Board>,
    /// Current communicator membership: `comm_members[comm_rank]` is the
    /// world rank sitting at that position. Starts as the identity map.
    pub(crate) comm_members: Vec<usize>,
    /// Communicator generation; bumped by every shrink and stamped into
    /// message envelopes so late traffic from a prior epoch is rejected.
    pub(crate) epoch: u64,
    /// Has the current epoch been revoked (locally observed)?
    pub(crate) revoked: bool,
    /// World ranks known dead, with their scheduled exit instants —
    /// populated by clock-based fault gates and absorbed death notices.
    pub(crate) known_dead: BTreeMap<usize, SimTime>,
    /// Has this rank already broadcast its own death notice?
    pub(crate) death_sent: bool,
    /// Shared deadlock detector, when the world runs one.
    pub(crate) watchdog: Option<Arc<Watchdog>>,
}

impl RankCtx {
    /// A standalone single-rank context — used by the non-communication
    /// experiments (type commit, `MPI_Pack`) and by unit tests.
    pub fn standalone(cfg: &WorldConfig) -> RankCtx {
        let (tx, rx) = unbounded();
        let gpu = GpuContext::new(cfg.device.clone());
        let faults = init_faults(cfg, 0, &gpu);
        let mut stream = Stream::new(gpu.clone(), cfg.gpu_cost.clone());
        stream.set_tracer(cfg.tracer.clone(), 0);
        RankCtx {
            rank: 0,
            size: 1,
            world_rank: 0,
            world_size: 1,
            clock: SimClock::new(),
            gpu,
            stream,
            vendor: cfg.vendor.clone(),
            net: Arc::new(cfg.net.clone()),
            faults,
            integrity: cfg.integrity,
            tracer: cfg.tracer.clone(),
            registry: Arc::new(RwLock::new(TypeRegistry::new())),
            inbox: rx,
            peers: vec![tx],
            pending: VecDeque::new(),
            requests: Vec::new(),
            barrier: Arc::new(ClockBarrier::new(1, cfg.net.barrier_cost)),
            board: Arc::new(Board {
                slots: Mutex::new(vec![0]),
            }),
            comm_members: vec![0],
            epoch: 0,
            revoked: false,
            known_dead: BTreeMap::new(),
            death_sent: false,
            watchdog: None,
        }
    }

    /// Run `body` inside a tracing span named `name` on this rank's CPU
    /// lane. The span closes on success and error alike (with an `ok` arg),
    /// so traced error paths never leave a dangling `B` event. When the
    /// tracer is off this is a single branch plus the call.
    pub fn with_span<T>(
        &mut self,
        cat: &'static str,
        name: &str,
        body: impl FnOnce(&mut Self) -> MpiResult<T>,
    ) -> MpiResult<T> {
        if !self.tracer.enabled() {
            return body(self);
        }
        let tracer = self.tracer.clone();
        let pid = self.world_rank as u32;
        tracer.begin(
            pid,
            tempi_trace::LANE_CPU,
            cat,
            name,
            self.clock.now().as_ps(),
        );
        let r = body(self);
        tracer.end_args(pid, tempi_trace::LANE_CPU, self.clock.now().as_ps(), || {
            vec![("ok", r.is_ok().into())]
        });
        r
    }

    /// Validate a peer rank.
    pub fn check_rank(&self, rank: usize) -> MpiResult<()> {
        if rank >= self.size {
            Err(MpiError::InvalidRank {
                rank,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    /// `MPI_Barrier`: synchronize all ranks (and their virtual clocks).
    ///
    /// Deliberately infallible even under a watchdog: if the world is
    /// declared deadlocked while this rank is parked here, the barrier
    /// simply returns without advancing the clock — the structured
    /// [`MpiError::Deadlock`] surfaces from the ranks blocked in receives
    /// (and any later receive this rank attempts), which is where the
    /// diagnostic context lives.
    pub fn barrier(&mut self) {
        let wd = self.watchdog.clone();
        if let Some(release) = self.barrier.wait(
            self.clock.now(),
            wd.as_deref().map(|w| (w, self.world_rank)),
        ) {
            self.clock.advance_to(release);
        }
    }

    /// Number of nonblocking requests posted and never completed by a
    /// wait/test (a teardown invariant: a clean run drains every request).
    #[must_use]
    pub fn undrained_requests(&self) -> usize {
        self.requests.iter().filter(|r| r.is_some()).count()
    }

    /// Depth of the unexpected-message queue: messages pulled from the
    /// inbox that no receive ever matched (a teardown invariant for
    /// quiescent protocols).
    #[must_use]
    pub fn pending_messages(&self) -> usize {
        self.pending.len()
    }

    /// All-gather one `u64` per rank (harness utility for collecting
    /// per-rank timings; costs a barrier's worth of synchronization).
    pub fn allgather_u64(&mut self, v: u64) -> Vec<u64> {
        self.board.slots.lock()[self.rank] = v;
        self.barrier();
        let all = self.board.slots.lock().clone();
        self.barrier();
        all
    }

    /// Reset this rank's virtual clock *and its GPU stream timeline*
    /// (between benchmark repetitions; in multi-rank worlds pair it with a
    /// barrier so no in-flight message carries a pre-reset timestamp).
    pub fn reset_clock(&mut self) {
        self.clock.reset();
        self.stream.reset_timeline();
    }

    // ---- datatype API (vendor-priced wrappers over the registry) -------

    /// Run `f` with write access to the shared type registry, charging one
    /// type-constructor call's CPU cost.
    fn create_priced<T>(
        &mut self,
        f: impl FnOnce(&mut TypeRegistry) -> MpiResult<T>,
    ) -> MpiResult<T> {
        self.clock.advance(self.vendor.type_create_cost);
        f(&mut self.registry.write())
    }

    /// `MPI_Type_contiguous`.
    pub fn type_contiguous(&mut self, count: i32, oldtype: Datatype) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_contiguous(count, oldtype))
    }

    /// `MPI_Type_vector`.
    pub fn type_vector(
        &mut self,
        count: i32,
        blocklength: i32,
        stride: i32,
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_vector(count, blocklength, stride, oldtype))
    }

    /// `MPI_Type_create_hvector`.
    pub fn type_create_hvector(
        &mut self,
        count: i32,
        blocklength: i32,
        stride_bytes: i64,
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_hvector(count, blocklength, stride_bytes, oldtype))
    }

    /// `MPI_Type_create_subarray`.
    pub fn type_create_subarray(
        &mut self,
        sizes: &[i32],
        subsizes: &[i32],
        starts: &[i32],
        order: Order,
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_subarray(sizes, subsizes, starts, order, oldtype))
    }

    /// `MPI_Type_indexed`.
    pub fn type_indexed(
        &mut self,
        blocklengths: &[i32],
        displacements: &[i32],
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_indexed(blocklengths, displacements, oldtype))
    }

    /// `MPI_Type_create_indexed_block`.
    pub fn type_create_indexed_block(
        &mut self,
        blocklength: i32,
        displacements: &[i32],
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_indexed_block(blocklength, displacements, oldtype))
    }

    /// `MPI_Type_create_hindexed`.
    pub fn type_create_hindexed(
        &mut self,
        blocklengths: &[i32],
        displacements_bytes: &[i64],
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_hindexed(blocklengths, displacements_bytes, oldtype))
    }

    /// `MPI_Type_create_struct`.
    pub fn type_create_struct(
        &mut self,
        blocklengths: &[i32],
        displacements_bytes: &[i64],
        types: &[Datatype],
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_struct(blocklengths, displacements_bytes, types))
    }

    /// `MPI_Type_create_resized`.
    pub fn type_create_resized(
        &mut self,
        oldtype: Datatype,
        lb: i64,
        extent: i64,
    ) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_create_resized(oldtype, lb, extent))
    }

    /// `MPI_Type_dup`.
    pub fn type_dup(&mut self, oldtype: Datatype) -> MpiResult<Datatype> {
        self.create_priced(|r| r.type_dup(oldtype))
    }

    /// `MPI_Type_free`.
    pub fn type_free(&mut self, dt: Datatype) -> MpiResult<()> {
        self.registry.write().free(dt)
    }

    /// The *system MPI's* `MPI_Type_commit` (native work only; the TEMPI
    /// layer in `tempi-core` adds its translation/transformation on top).
    pub fn type_commit_native(&mut self, dt: Datatype) -> MpiResult<()> {
        self.clock.advance(self.vendor.type_commit_cost);
        self.registry.write().commit(dt)
    }

    // ---- priced introspection (what TEMPI's translation calls) ---------

    /// `MPI_Type_get_envelope`, priced per the vendor.
    pub fn get_envelope(&mut self, dt: Datatype) -> MpiResult<Envelope> {
        self.clock.advance(self.vendor.introspection_call_cost);
        self.registry.read().get_envelope(dt)
    }

    /// `MPI_Type_get_contents`, priced per the vendor.
    pub fn get_contents(&mut self, dt: Datatype) -> MpiResult<Contents> {
        self.clock.advance(self.vendor.introspection_call_cost);
        self.registry.read().get_contents(dt)
    }

    /// `MPI_Type_get_extent`, priced per the vendor.
    pub fn get_extent(&mut self, dt: Datatype) -> MpiResult<(i64, i64)> {
        self.clock.advance(self.vendor.introspection_call_cost);
        self.registry.read().extent(dt)
    }

    /// `MPI_Type_size`, priced per the vendor.
    pub fn type_size(&mut self, dt: Datatype) -> MpiResult<u64> {
        self.clock.advance(self.vendor.introspection_call_cost);
        self.registry.read().size(dt)
    }

    // ---- unpriced registry access (simulator-internal) ------------------

    /// Unpriced attribute lookup (for the simulator's own bookkeeping —
    /// *not* for code modeling real MPI calls).
    pub fn attrs(&self, dt: Datatype) -> MpiResult<TypeAttrs> {
        self.registry.read().attrs(dt)
    }

    /// Unpriced combiner lookup.
    pub fn combiner(&self, dt: Datatype) -> MpiResult<Combiner> {
        Ok(self.registry.read().get_envelope(dt)?.combiner)
    }

    /// Unpriced committed check.
    pub fn is_committed(&self, dt: Datatype) -> MpiResult<bool> {
        self.registry.read().is_committed(dt)
    }

    /// Shared registry handle (read-mostly; the TEMPI layer caches per
    /// committed type).
    pub fn registry(&self) -> &Arc<RwLock<TypeRegistry>> {
        &self.registry
    }

    /// A human-readable description of a type (figure labels).
    pub fn describe(&self, dt: Datatype) -> String {
        self.registry.read().describe(dt)
    }
}

/// The simulated MPI world.
pub struct World;

impl World {
    /// Run `body` on every rank of a world configured by `cfg`; returns the
    /// per-rank results in rank order. Panics in any rank propagate.
    pub fn run<F, T>(cfg: &WorldConfig, body: F) -> MpiResult<Vec<T>>
    where
        F: Fn(&mut RankCtx) -> MpiResult<T> + Sync,
        T: Send,
    {
        let size = cfg.size;
        assert!(size > 0, "world size must be positive");
        let registry = Arc::new(RwLock::new(TypeRegistry::new()));
        let net = Arc::new(cfg.net.clone());
        let barrier = Arc::new(ClockBarrier::new(size, cfg.net.barrier_cost));
        let board = Arc::new(Board {
            slots: Mutex::new(vec![0; size]),
        });
        let watchdog = cfg
            .watchdog
            .as_ref()
            .map(|wd| Arc::new(Watchdog::new(wd, size)));
        let mut txs = Vec::with_capacity(size);
        let mut rxs = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let mut ctxs: Vec<RankCtx> = rxs
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                let gpu = GpuContext::new(cfg.device.clone());
                let faults = init_faults(cfg, rank, &gpu);
                let mut stream = Stream::new(gpu.clone(), cfg.gpu_cost.clone());
                stream.set_tracer(cfg.tracer.clone(), rank as u32);
                RankCtx {
                    rank,
                    size,
                    world_rank: rank,
                    world_size: size,
                    clock: SimClock::new(),
                    gpu,
                    stream,
                    vendor: cfg.vendor.clone(),
                    net: Arc::clone(&net),
                    faults,
                    integrity: cfg.integrity,
                    tracer: cfg.tracer.clone(),
                    registry: Arc::clone(&registry),
                    inbox,
                    peers: txs.clone(),
                    pending: VecDeque::new(),
                    requests: Vec::new(),
                    barrier: Arc::clone(&barrier),
                    board: Arc::clone(&board),
                    comm_members: (0..size).collect(),
                    epoch: 0,
                    revoked: false,
                    known_dead: BTreeMap::new(),
                    death_sent: false,
                    watchdog: watchdog.clone(),
                }
            })
            .collect();

        let body = &body;
        let results: Vec<MpiResult<T>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ctxs
                .iter_mut()
                .map(|ctx| {
                    scope.spawn(move |_| {
                        let r = body(ctx);
                        // A rank with a scheduled exit might return without
                        // ever tripping over its own death (its clock never
                        // reached the instant). Broadcast the notice now so
                        // peers blocked on it are woken instead of hanging.
                        if let Some(at) = ctx
                            .faults
                            .injector
                            .as_ref()
                            .and_then(|i| i.exit_time(ctx.world_rank))
                        {
                            ctx.announce_death(at);
                        }
                        // Done only after the death notice above: the
                        // notice counts as in-flight traffic and must not
                        // race a quiescence check against a `Done` mark.
                        if let Some(wd) = &ctx.watchdog {
                            wd.mark_done(ctx.world_rank);
                        }
                        r
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("a rank thread panicked");

        let out: MpiResult<Vec<T>> = results.into_iter().collect();
        // A deadlock whose blocked ranks were all parked in barriers
        // produces no per-rank error (the barrier withdraws silently);
        // surface the verdict as the run's result so it is never lost.
        match (out, watchdog.as_ref().and_then(|w| w.verdict())) {
            (Ok(_), Some(v)) => Err(MpiError::Deadlock {
                ranks: v.ranks,
                ops: v.ops,
            }),
            (out, _) => out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::consts::*;

    #[test]
    fn standalone_rank_builds_types() {
        let mut ctx = RankCtx::standalone(&WorldConfig::summit(1));
        let t = ctx.type_vector(4, 2, 8, MPI_FLOAT).unwrap();
        ctx.type_commit_native(t).unwrap();
        assert!(ctx.is_committed(t).unwrap());
        // create + commit charged virtual time
        let expect = ctx.vendor.type_create_cost + ctx.vendor.type_commit_cost;
        assert_eq!(ctx.clock.now(), expect);
    }

    #[test]
    fn introspection_is_priced() {
        let mut ctx = RankCtx::standalone(&WorldConfig::summit(1));
        let t = ctx.type_contiguous(8, MPI_INT).unwrap();
        let before = ctx.clock.now();
        let env = ctx.get_envelope(t).unwrap();
        assert_eq!(env.combiner, Combiner::Contiguous);
        let _ = ctx.get_contents(t).unwrap();
        let _ = ctx.get_extent(t).unwrap();
        let _ = ctx.type_size(t).unwrap();
        assert_eq!(
            ctx.clock.now() - before,
            ctx.vendor.introspection_call_cost * 4
        );
    }

    #[test]
    fn world_runs_all_ranks() {
        let cfg = WorldConfig::summit(4);
        let results = World::run(&cfg, |ctx| Ok(ctx.rank * 10)).unwrap();
        assert_eq!(results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn barrier_merges_clocks() {
        let cfg = WorldConfig::summit(3);
        let results = World::run(&cfg, |ctx| {
            // rank r works for r*10 µs, then all meet at a barrier
            ctx.clock.advance(SimTime::from_us(ctx.rank as u64 * 10));
            ctx.barrier();
            Ok(ctx.clock.now())
        })
        .unwrap();
        let expect = SimTime::from_us(20) + NetModel::summit().barrier_cost;
        assert!(results.iter().all(|&t| t == expect), "{results:?}");
    }

    #[test]
    fn allgather_collects_values() {
        let cfg = WorldConfig::summit(4);
        let results = World::run(&cfg, |ctx| Ok(ctx.allgather_u64(ctx.rank as u64 * 7))).unwrap();
        for r in results {
            assert_eq!(r, vec![0, 7, 14, 21]);
        }
    }

    #[test]
    fn shared_registry_across_ranks() {
        // all ranks create the same type concurrently; handles may differ
        // but each rank's own handle must be valid
        let cfg = WorldConfig::summit(4);
        let results = World::run(&cfg, |ctx| {
            let t = ctx.type_vector(4, 1, 2, MPI_INT)?;
            ctx.type_commit_native(t)?;
            ctx.type_size(t)
        })
        .unwrap();
        assert!(results.iter().all(|&s| s == 16));
    }

    fn test_watchdog() -> WatchdogConfig {
        WatchdogConfig {
            budget: SimTime::from_ms(1),
            poll: std::time::Duration::from_millis(1),
        }
    }

    #[test]
    fn watchdog_converts_synthetic_deadlock_into_structured_error() {
        // Rank 1 returns without ever sending; rank 0 blocks on a receive
        // that can never match. Without the watchdog this hangs forever.
        let cfg = WorldConfig::summit(2).with_watchdog(test_watchdog());
        let err = World::run(&cfg, |ctx| {
            if ctx.rank == 0 {
                let buf = ctx.gpu.host_alloc(64)?;
                ctx.recv_bytes(buf, 64, Some(1), Some(7))?;
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            MpiError::Deadlock { ranks, ops } => {
                assert_eq!(ranks, vec![0]);
                assert_eq!(ops, vec!["recv(src=1, tag=7)".to_string()]);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_detects_barrier_deadlock() {
        // Rank 1 never reaches the barrier; rank 0 parks there forever.
        // The verdict surfaces as the run's result because the barrier
        // itself withdraws silently.
        let cfg = WorldConfig::summit(2).with_watchdog(test_watchdog());
        let err = World::run(&cfg, |ctx| {
            if ctx.rank == 0 {
                ctx.barrier();
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            MpiError::Deadlock { ranks, ops } => {
                assert_eq!(ranks, vec![0]);
                assert_eq!(ops, vec!["barrier".to_string()]);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_leaves_healthy_runs_and_their_timing_untouched() {
        let body = |ctx: &mut RankCtx| {
            ctx.clock.advance(SimTime::from_us(ctx.rank as u64 * 3));
            ctx.barrier();
            let all = ctx.allgather_u64(ctx.rank as u64 + 1);
            ctx.barrier();
            Ok((ctx.clock.now(), all))
        };
        let plain = World::run(&WorldConfig::summit(3), body).unwrap();
        let watched =
            World::run(&WorldConfig::summit(3).with_watchdog(test_watchdog()), body).unwrap();
        assert_eq!(
            plain, watched,
            "virtual time must not depend on the watchdog"
        );
    }

    #[test]
    fn check_rank_bounds() {
        let ctx = RankCtx::standalone(&WorldConfig::summit(1));
        assert!(ctx.check_rank(0).is_ok());
        assert_eq!(
            ctx.check_rank(1),
            Err(MpiError::InvalidRank { rank: 1, size: 1 })
        );
    }
}
