//! Virtual-time deadlock watchdog.
//!
//! A wedged MPI program is the worst possible test outcome: the binary
//! hangs until an external timeout kills it and all diagnostic context is
//! lost. The watchdog converts that outcome into a structured
//! [`MpiError::Deadlock`](crate::MpiError::Deadlock) naming the stuck
//! ranks and their pending operations.
//!
//! ## How detection works
//!
//! Every blocking point in the runtime (message receive, request wait,
//! clock barrier) registers itself as *blocked* with a description of what
//! it waits for, and every channel send/receive updates a per-destination
//! in-flight message count. The watchdog declares **quiescence** when:
//!
//! * every rank is either blocked or done (its body returned), and
//! * at least one rank is blocked, and
//! * no message is in flight toward any *blocked* rank.
//!
//! Under those conditions no rank can ever make progress: nothing will
//! arrive to wake a blocked receiver, and nobody is running to produce
//! new messages. Messages queued toward a rank that already returned are
//! ignored — they will never be received and must not mask a real
//! deadlock (the classic case: a survivor blocks on a rank that exited).
//!
//! The predicate is *stable*: once true it stays true, so it does not
//! matter at which wall-clock instant a poller evaluates it — every
//! schedule reaches the same verdict, keeping the simulation
//! deterministic even though detection runs on OS threads. It is also
//! conservative in one direction only: a reported deadlock is always
//! real, while a blocked rank with undeliverable traffic still queued to
//! it is (harmlessly) not reported until that traffic is drained.
//!
//! Blocking points poll the watchdog on a short wall-clock interval
//! ([`WatchdogConfig::poll`]); the verdict itself is stamped in *virtual*
//! time — the latest blocked rank's clock plus the configured budget —
//! so traces show the hang where it happened on the modeled timeline.

use std::time::Duration;

use gpu_sim::SimTime;
use parking_lot::Mutex;

/// Configuration for the deadlock watchdog, installed via
/// [`WorldConfig::with_watchdog`](crate::WorldConfig::with_watchdog).
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogConfig {
    /// Virtual-time budget added to the last blocked rank's clock when
    /// stamping the verdict: "the world made no progress for this long".
    pub budget: SimTime,
    /// Wall-clock interval at which blocked ranks re-evaluate the
    /// quiescence predicate. Purely an engineering knob — it bounds
    /// detection latency, never the verdict.
    pub poll: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            budget: SimTime::from_ms(100),
            poll: Duration::from_millis(5),
        }
    }
}

/// The watchdog's verdict: which ranks were stuck, on what, and when (in
/// virtual time) the world was declared deadlocked.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockInfo {
    /// World ranks blocked at quiescence, in rank order.
    pub ranks: Vec<usize>,
    /// Description of each stuck rank's pending operation, parallel to
    /// [`DeadlockInfo::ranks`].
    pub ops: Vec<String>,
    /// Virtual instant of the verdict: the latest blocked clock plus the
    /// configured budget.
    pub at: SimTime,
}

/// What one rank is doing, from the watchdog's point of view.
#[derive(Debug, Clone)]
enum Slot {
    /// Executing its body (or between blocking points).
    Running,
    /// Parked at a blocking point.
    Blocked {
        /// Human-readable description of the pending operation.
        desc: String,
        /// The rank's virtual clock when it blocked.
        clock: SimTime,
    },
    /// Its body returned; it will never send or receive again.
    Done,
}

#[derive(Debug)]
struct WdState {
    slots: Vec<Slot>,
    /// Messages sent toward each world rank's inbox and not yet pulled
    /// out by it. Per-destination so traffic queued to a `Done` rank
    /// (which will never drain it) cannot mask a deadlock.
    in_flight: Vec<u64>,
    /// Set once, on the first poll that observes quiescence; sticky.
    verdict: Option<DeadlockInfo>,
}

/// Shared deadlock detector for one [`World`](crate::World) run. One
/// instance is shared by every rank; all methods are thread-safe.
#[derive(Debug)]
pub struct Watchdog {
    budget: SimTime,
    poll: Duration,
    state: Mutex<WdState>,
}

impl Watchdog {
    /// A watchdog for `size` ranks under `cfg`.
    #[must_use]
    pub fn new(cfg: &WatchdogConfig, size: usize) -> Watchdog {
        Watchdog {
            budget: cfg.budget,
            poll: cfg.poll,
            state: Mutex::new(WdState {
                slots: vec![Slot::Running; size],
                in_flight: vec![0; size],
                verdict: None,
            }),
        }
    }

    /// The wall-clock interval blocking points should poll at.
    #[must_use]
    pub fn poll_interval(&self) -> Duration {
        self.poll
    }

    /// Account one message departing toward `dest`'s inbox. Must be
    /// called *before* the router push so the checker can never observe
    /// the message as neither in flight nor queued.
    pub(crate) fn note_send(&self, dest: usize) {
        self.state.lock().in_flight[dest] += 1;
    }

    /// Account `rank` pulling one message out of its own inbox (the
    /// non-blocking `try_recv` path).
    pub(crate) fn note_recv(&self, rank: usize) {
        self.state.lock().in_flight[rank] -= 1;
    }

    /// `rank` is parked at a blocking point described by `desc`, with its
    /// virtual clock at `clock`.
    pub(crate) fn block(&self, rank: usize, desc: String, clock: SimTime) {
        self.state.lock().slots[rank] = Slot::Blocked { desc, clock };
    }

    /// `rank` left its blocking point without consuming a message (e.g. a
    /// barrier released it).
    pub(crate) fn unblock(&self, rank: usize) {
        self.state.lock().slots[rank] = Slot::Running;
    }

    /// `rank` left its blocking point because a message arrived: clear
    /// the slot *and* decrement its in-flight count under one lock, so
    /// the checker can never see the rank still blocked with the message
    /// already missing from the in-flight account (a false quiescence).
    pub(crate) fn unblock_after_recv(&self, rank: usize) {
        let mut s = self.state.lock();
        s.in_flight[rank] -= 1;
        s.slots[rank] = Slot::Running;
    }

    /// `rank`'s body returned; it will never block or send again.
    pub(crate) fn mark_done(&self, rank: usize) {
        self.state.lock().slots[rank] = Slot::Done;
    }

    /// The sticky verdict, if quiescence was already declared.
    #[must_use]
    pub fn verdict(&self) -> Option<DeadlockInfo> {
        self.state.lock().verdict.clone()
    }

    /// Evaluate the quiescence predicate; on the first true evaluation,
    /// record (and thereafter always return) the verdict. Called by every
    /// blocking point on its poll interval.
    pub fn poll_detect(&self) -> Option<DeadlockInfo> {
        let mut s = self.state.lock();
        if let Some(v) = &s.verdict {
            return Some(v.clone());
        }
        let mut ranks = Vec::new();
        let mut ops = Vec::new();
        let mut latest = SimTime::ZERO;
        for (rank, slot) in s.slots.iter().enumerate() {
            match slot {
                Slot::Running => return None,
                Slot::Done => {}
                Slot::Blocked { desc, clock } => {
                    if s.in_flight[rank] > 0 {
                        // Something is on its way to wake this rank.
                        return None;
                    }
                    ranks.push(rank);
                    ops.push(desc.clone());
                    latest = latest.max(*clock);
                }
            }
        }
        if ranks.is_empty() {
            return None; // everyone finished; nothing is stuck
        }
        let verdict = DeadlockInfo {
            ranks,
            ops,
            at: latest + self.budget,
        };
        s.verdict = Some(verdict.clone());
        Some(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wd(size: usize) -> Watchdog {
        Watchdog::new(&WatchdogConfig::default(), size)
    }

    #[test]
    fn no_verdict_while_anyone_runs() {
        let w = wd(2);
        w.block(0, "recv".into(), SimTime::from_us(3));
        assert_eq!(w.poll_detect(), None, "rank 1 still running");
    }

    #[test]
    fn all_blocked_and_quiet_is_a_deadlock() {
        let w = wd(2);
        w.block(0, "recv(src=1, tag=7)".into(), SimTime::from_us(3));
        w.block(1, "barrier".into(), SimTime::from_us(5));
        let v = w.poll_detect().expect("quiescent world");
        assert_eq!(v.ranks, vec![0, 1]);
        assert_eq!(v.ops[1], "barrier");
        assert_eq!(v.at, SimTime::from_us(5) + WatchdogConfig::default().budget);
    }

    #[test]
    fn in_flight_message_toward_a_blocked_rank_suppresses_the_verdict() {
        let w = wd(2);
        w.note_send(0);
        w.block(0, "recv".into(), SimTime::ZERO);
        w.mark_done(1);
        assert_eq!(w.poll_detect(), None, "a wake-up is on its way");
        w.unblock_after_recv(0);
        w.block(0, "recv".into(), SimTime::from_us(1));
        assert!(w.poll_detect().is_some(), "inbox drained, peer done");
    }

    #[test]
    fn traffic_queued_to_a_done_rank_does_not_mask_the_deadlock() {
        let w = wd(2);
        w.note_send(1); // message toward rank 1, which then returns
        w.mark_done(1);
        w.block(0, "recv(src=1)".into(), SimTime::from_us(2));
        let v = w.poll_detect().expect("rank 1 will never drain its inbox");
        assert_eq!(v.ranks, vec![0]);
    }

    #[test]
    fn everyone_done_is_not_a_deadlock() {
        let w = wd(2);
        w.mark_done(0);
        w.mark_done(1);
        assert_eq!(w.poll_detect(), None);
    }

    #[test]
    fn verdict_is_sticky() {
        let w = wd(1);
        w.block(0, "recv".into(), SimTime::ZERO);
        let first = w.poll_detect().unwrap();
        w.unblock(0); // too late: the world was already declared dead
        assert_eq!(w.poll_detect(), Some(first.clone()));
        assert_eq!(w.verdict(), Some(first));
    }

    #[test]
    fn consumed_send_rebalances_accounting() {
        let w = wd(2);
        w.note_send(0);
        w.note_recv(0); // rank 0 pulled the message via try_recv
        w.mark_done(1);
        w.block(0, "recv".into(), SimTime::ZERO);
        assert!(w.poll_detect().is_some(), "drained send leaves quiet");
    }
}
