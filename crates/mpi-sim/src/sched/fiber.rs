//! Minimal stackful fibers for the event-driven scheduler.
//!
//! A fiber is a heap-allocated stack plus a saved stack pointer. Switching
//! fibers is a handful of instructions: push the callee-saved registers,
//! store the old stack pointer, load the new one, pop, return. Everything
//! else — who runs when, parking, waking — lives in [`super`]; this module
//! only knows how to cut a thread of control loose from the OS stack.
//!
//! Safety model:
//!
//! * A fiber is only ever *running* on one OS thread at a time; the
//!   scheduler's task state machine guarantees exclusive access.
//! * Unwinding never crosses a switch: the scheduler wraps every fiber
//!   body in `catch_unwind` *inside* the fiber, so a panic is converted to
//!   a value before control returns to the worker.
//! * Stacks are allocated uninitialized (so a 1 MiB stack costs only the
//!   pages actually touched, letting 10,000 fibers coexist) and carry a
//!   canary word pattern at their low end that the scheduler checks when
//!   the fiber finishes. There is no guard page — an overflow corrupts
//!   heap memory — so the default stack size is deliberately generous and
//!   tunable via `TEMPI_SCHED_STACK_KIB`.
//!
//! Supported targets: x86_64 (SysV ABI — Linux, macOS, BSDs) and aarch64
//! (AAPCS64). Windows is unsupported (its ABI pins stack bounds in the
//! TEB); the runtime falls back to thread-per-rank there.

use std::alloc::{alloc, dealloc, Layout};
use std::ptr::NonNull;

/// Is the fiber backend implemented for this target?
pub const fn supported() -> bool {
    cfg!(all(
        any(target_arch = "x86_64", target_arch = "aarch64"),
        not(target_os = "windows")
    ))
}

/// Pattern stamped into the lowest words of every stack; checked when the
/// fiber finishes to detect (after the fact) that the stack overflowed.
const CANARY: u64 = 0x5AFE_57AC_F1BE_F00D;
const CANARY_WORDS: usize = 8;

/// A heap-allocated fiber stack.
///
/// The allocation is uninitialized on purpose: for megabyte-class sizes
/// the allocator serves it from fresh `mmap`ed pages, so physical memory
/// is committed lazily as the fiber actually recurses into it.
pub struct FiberStack {
    ptr: NonNull<u8>,
    size: usize,
}

// The stack is owned by exactly one task and only touched by whichever
// worker thread currently runs (or finishes) that task.
unsafe impl Send for FiberStack {}

impl FiberStack {
    /// Allocate a stack of (at least) `size` bytes, 16-aligned, with the
    /// canary pattern written at its low end.
    pub fn new(size: usize) -> FiberStack {
        let size = size.max(16 * 1024) & !15;
        let layout = Layout::from_size_align(size, 16).expect("fiber stack layout");
        let raw = unsafe { alloc(layout) };
        let ptr = NonNull::new(raw).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        unsafe {
            let words = ptr.as_ptr() as *mut u64;
            for i in 0..CANARY_WORDS {
                words.add(i).write(CANARY);
            }
        }
        FiberStack { ptr, size }
    }

    /// Highest address of the stack, rounded down to 16 bytes (stacks grow
    /// downward from here).
    fn top(&self) -> usize {
        (self.ptr.as_ptr() as usize + self.size) & !15
    }

    /// Is the low-end canary pattern still intact?
    pub fn canary_intact(&self) -> bool {
        unsafe {
            let words = self.ptr.as_ptr() as *const u64;
            (0..CANARY_WORDS).all(|i| words.add(i).read() == CANARY)
        }
    }
}

impl Drop for FiberStack {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.size, 16).expect("fiber stack layout");
        unsafe { dealloc(self.ptr.as_ptr(), layout) };
    }
}

/// The C entry signature every fiber starts in. Must never return — it
/// hands control back by switching to the worker's saved context.
pub type Entry = unsafe extern "C" fn(*mut u8) -> !;

// macOS prefixes C symbols with an underscore.
#[cfg(target_vendor = "apple")]
macro_rules! csym {
    ($name:literal) => {
        concat!("_", $name)
    };
}
#[cfg(not(target_vendor = "apple"))]
macro_rules! csym {
    ($name:literal) => {
        $name
    };
}

// ---------------------------------------------------------------- x86_64
//
// SysV: rbx, rbp, r12-r15 are callee-saved (plus rsp). `tempi_fiber_switch`
// pushes them, parks rsp in *save_sp, adopts target_sp, pops, and `ret`s
// into whatever return address the target stack holds. A brand-new fiber's
// stack is forged so that `ret` lands in `tempi_fiber_start`, which moves
// the payload pointer (parked in the fake r12 slot) into rdi and calls the
// Rust entry (parked in the fake rbx slot). The fake frame leaves rsp
// 16-aligned at `tempi_fiber_start`, so the `call` gives the Rust entry a
// conformant (rsp % 16 == 8) frame.
#[cfg(all(target_arch = "x86_64", not(target_os = "windows")))]
core::arch::global_asm!(
    ".balign 16",
    concat!(".globl ", csym!("tempi_fiber_switch")),
    concat!(csym!("tempi_fiber_switch"), ":"),
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".balign 16",
    concat!(".globl ", csym!("tempi_fiber_start")),
    concat!(csym!("tempi_fiber_start"), ":"),
    "mov rdi, r12",
    "call rbx",
    "ud2",
);

// ---------------------------------------------------------------- aarch64
//
// AAPCS64: x19-x28, fp (x29), lr (x30) and d8-d15 are callee-saved. The
// forged first frame parks the payload in x19, the Rust entry in x20 and
// `tempi_fiber_start` in the lr slot, so the switch's `ret` lands in the
// trampoline with sp 16-aligned (every offset below is a multiple of 16).
#[cfg(all(target_arch = "aarch64", not(target_os = "windows")))]
core::arch::global_asm!(
    ".balign 16",
    concat!(".globl ", csym!("tempi_fiber_switch")),
    concat!(csym!("tempi_fiber_switch"), ":"),
    "sub sp, sp, #160",
    "stp x19, x20, [sp, #0]",
    "stp x21, x22, [sp, #16]",
    "stp x23, x24, [sp, #32]",
    "stp x25, x26, [sp, #48]",
    "stp x27, x28, [sp, #64]",
    "stp x29, x30, [sp, #80]",
    "stp d8,  d9,  [sp, #96]",
    "stp d10, d11, [sp, #112]",
    "stp d12, d13, [sp, #128]",
    "stp d14, d15, [sp, #144]",
    "mov x9, sp",
    "str x9, [x0]",
    "mov sp, x1",
    "ldp x19, x20, [sp, #0]",
    "ldp x21, x22, [sp, #16]",
    "ldp x23, x24, [sp, #32]",
    "ldp x25, x26, [sp, #48]",
    "ldp x27, x28, [sp, #64]",
    "ldp x29, x30, [sp, #80]",
    "ldp d8,  d9,  [sp, #96]",
    "ldp d10, d11, [sp, #112]",
    "ldp d12, d13, [sp, #128]",
    "ldp d14, d15, [sp, #144]",
    "add sp, sp, #160",
    "ret",
    ".balign 16",
    concat!(".globl ", csym!("tempi_fiber_start")),
    concat!(csym!("tempi_fiber_start"), ":"),
    "mov x0, x19",
    "blr x20",
    "brk #1",
);

#[cfg(all(
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(target_os = "windows")
))]
extern "C" {
    fn tempi_fiber_switch(save_sp: *mut usize, target_sp: usize);
    fn tempi_fiber_start();
}

/// Switch contexts: save the current stack pointer (and callee-saved
/// registers) into `*save_sp`, resume execution at the context whose stack
/// pointer is `target_sp`. Returns when something later switches back.
///
/// # Safety
///
/// `target_sp` must be a stack pointer previously produced by this module
/// (either saved by a switch or forged by [`init_frame`]), and the stack
/// it points into must be live and not currently executing anywhere.
#[cfg(all(
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(target_os = "windows")
))]
#[inline]
pub unsafe fn switch(save_sp: *mut usize, target_sp: usize) {
    tempi_fiber_switch(save_sp, target_sp);
}

#[cfg(not(all(
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(target_os = "windows")
)))]
pub unsafe fn switch(_save_sp: *mut usize, _target_sp: usize) {
    unreachable!("fiber backend not supported on this target");
}

/// Forge the initial frame for a new fiber on `stack` so that the first
/// [`switch`] into the returned stack pointer calls `entry(payload)`.
///
/// # Safety
///
/// The stack must outlive every switch into the frame, and `payload` must
/// be valid for the entry's whole run.
#[cfg(all(target_arch = "x86_64", not(target_os = "windows")))]
pub unsafe fn init_frame(stack: &FiberStack, entry: Entry, payload: *mut u8) -> usize {
    let top = stack.top();
    let slot = |off: usize| (top - off) as *mut u64;
    // Return address: `ret` pops it leaving rsp == top (16-aligned) at
    // `tempi_fiber_start`, whose `call` then produces a conformant frame.
    slot(8).write(tempi_fiber_start as *const () as usize as u64);
    slot(16).write(0); // rbp
    slot(24).write(entry as usize as u64); // rbx -> Rust entry
    slot(32).write(payload as usize as u64); // r12 -> payload
    slot(40).write(0); // r13
    slot(48).write(0); // r14
    slot(56).write(0); // r15
    top - 56
}

#[cfg(all(target_arch = "aarch64", not(target_os = "windows")))]
pub unsafe fn init_frame(stack: &FiberStack, entry: Entry, payload: *mut u8) -> usize {
    let top = stack.top();
    let sp = top - 160;
    let base = sp as *mut u64;
    for i in 0..20 {
        base.add(i).write(0);
    }
    base.write(payload as usize as u64); // x19 -> payload
    base.add(1).write(entry as usize as u64); // x20 -> Rust entry
    base.add(11)
        .write(tempi_fiber_start as *const () as usize as u64); // x30 -> trampoline
    sp
}

#[cfg(not(all(
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(target_os = "windows")
)))]
pub unsafe fn init_frame(_stack: &FiberStack, _entry: Entry, _payload: *mut u8) -> usize {
    unreachable!("fiber backend not supported on this target");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    // A scratch context pair for driving a fiber by hand.
    struct Ctx {
        fiber_sp: Cell<usize>,
        main_sp: Cell<usize>,
        steps: Cell<u32>,
    }

    thread_local! {
        static CTX: Cell<*const Ctx> = const { Cell::new(std::ptr::null()) };
    }

    unsafe extern "C" fn test_entry(payload: *mut u8) -> ! {
        let ctx = &*(payload as *const Ctx);
        for _ in 0..3 {
            ctx.steps.set(ctx.steps.get() + 1);
            switch(ctx.fiber_sp.as_ptr(), ctx.main_sp.get());
        }
        ctx.steps.set(100);
        loop {
            switch(ctx.fiber_sp.as_ptr(), ctx.main_sp.get());
        }
    }

    #[test]
    fn fiber_round_trips_and_preserves_state() {
        if !supported() {
            return;
        }
        let stack = FiberStack::new(64 * 1024);
        let ctx = Ctx {
            fiber_sp: Cell::new(0),
            main_sp: Cell::new(0),
            steps: Cell::new(0),
        };
        let sp = unsafe { init_frame(&stack, test_entry, &ctx as *const Ctx as *mut u8) };
        ctx.fiber_sp.set(sp);
        for expect in 1..=3u32 {
            unsafe { switch(ctx.main_sp.as_ptr(), ctx.fiber_sp.get()) };
            assert_eq!(ctx.steps.get(), expect);
        }
        unsafe { switch(ctx.main_sp.as_ptr(), ctx.fiber_sp.get()) };
        assert_eq!(ctx.steps.get(), 100);
        assert!(stack.canary_intact());
    }

    #[test]
    fn canary_detects_scribbles() {
        let stack = FiberStack::new(32 * 1024);
        assert!(stack.canary_intact());
        unsafe { (stack.ptr.as_ptr() as *mut u64).write(0) };
        assert!(!stack.canary_intact());
    }
}
