//! Message delivery with bounded inboxes.
//!
//! The old runtime wired every rank to every other rank with its own
//! unbounded channel sender — an O(N²) table (~800 MB of channel handles
//! at 10,000 ranks) whose queues a send storm could grow without bound.
//! The router replaces all of that with one locked FIFO inbox per rank,
//! shared by both scheduler backends:
//!
//! * **per-pair FIFO**: a rank's sends are sequential and each push takes
//!   the destination's lock, so the non-overtaking guarantee is exactly
//!   the old per-channel one;
//! * **receiver wakes**: a push wakes a parked fiber (event mode) or
//!   notifies a condvar (thread mode);
//! * **backpressure**: user-payload traffic to a remote rank parks the
//!   *sender* while the destination inbox sits at its high-water mark
//!   (default [`DEFAULT_INBOX_HWM`], tunable via `TEMPI_INBOX_HWM`, 0 =
//!   unbounded), so a 4,096-rank send storm holds O(ranks · HWM) messages
//!   instead of growing forever. Control traffic (negative tags: death
//!   notices, revocations, agreement, barriers, collective protocol) and
//!   self-sends are exempt — their progress guarantees are what recovery
//!   correctness is built on. A world that wedges on full inboxes is a
//!   real deadlock under finite buffering and is reported as one
//!   (`send backpressure(dest=N)` ops in the verdict).
//!
//! Sends never fail: unlike channels, an inbox has no "disconnected"
//! state, so traffic to a rank whose body already returned simply sits in
//! its queue (the watchdog's per-destination accounting already handles
//! that case).

use std::collections::VecDeque;
use std::time::Duration;

use gpu_sim::SimTime;
use parking_lot::{Condvar, Mutex, MutexGuard};

use super::SchedCore;
use crate::p2p::Message;
use crate::watchdog::Watchdog;

/// Default per-rank inbox high-water mark, in messages.
pub(crate) const DEFAULT_INBOX_HWM: usize = 8192;

#[derive(Default)]
struct InboxQ {
    msgs: VecDeque<Message>,
    /// Event mode: the owning fiber is parked waiting for a push.
    recv_parked: bool,
    /// Event mode: sender ranks parked on this inbox's high-water mark.
    send_parked: Vec<usize>,
}

struct InboxSlot {
    q: Mutex<InboxQ>,
    /// Thread mode: the owning rank waits here for a push.
    recv_cv: Condvar,
    /// Thread mode: backpressured senders wait here for a drain.
    send_cv: Condvar,
}

/// Shared delivery fabric for one world: a bounded FIFO inbox per rank.
pub(crate) struct Router {
    slots: Vec<InboxSlot>,
    hwm: usize,
}

impl Router {
    /// A router for `n` ranks with the given high-water mark (0 =
    /// unbounded).
    pub(crate) fn new(n: usize, hwm: usize) -> Router {
        Router {
            slots: (0..n)
                .map(|_| InboxSlot {
                    q: Mutex::new(InboxQ::default()),
                    recv_cv: Condvar::new(),
                    send_cv: Condvar::new(),
                })
                .collect(),
            hwm,
        }
    }

    /// The configured high-water mark (0 = unbounded).
    pub(crate) fn hwm(&self) -> usize {
        self.hwm
    }

    /// Push under the queue lock and wake the receiver.
    fn deliver_locked(
        &self,
        dest: usize,
        mut q: MutexGuard<'_, InboxQ>,
        msg: Message,
        sched: Option<&SchedCore>,
    ) {
        q.msgs.push_back(msg);
        let wake = q.recv_parked;
        if wake {
            q.recv_parked = false;
        }
        drop(q);
        self.slots[dest].recv_cv.notify_one();
        if wake {
            sched
                .expect("recv_parked is only ever set in event mode")
                .wake(dest);
        }
    }

    /// Deliver unconditionally (control traffic, self-sends): never
    /// blocks, never fails.
    pub(crate) fn push(&self, dest: usize, msg: Message, sched: Option<&SchedCore>) {
        let q = self.slots[dest].q.lock();
        self.deliver_locked(dest, q, msg, sched);
    }

    /// Deliver subject to the high-water mark: while `dest`'s inbox is
    /// full, park the sending fiber (event mode) or wait on the drain
    /// condvar (thread mode, re-evaluating the watchdog's quiescence
    /// predicate on its poll interval). Once a deadlock verdict exists
    /// the message is force-delivered so the world can drain.
    ///
    /// `me` is the sending world rank, `now` its virtual clock (the wait
    /// is wall-clock machinery only — virtual time is never advanced by
    /// backpressure).
    pub(crate) fn push_bounded(
        &self,
        me: usize,
        dest: usize,
        msg: Message,
        now: SimTime,
        sched: Option<&SchedCore>,
        wd: Option<&Watchdog>,
    ) {
        if self.hwm == 0 {
            self.push(dest, msg, sched);
            return;
        }
        let slot = &self.slots[dest];
        if let Some(sched) = sched {
            loop {
                if sched.verdict().is_some() {
                    break;
                }
                let mut q = slot.q.lock();
                // A spurious wake can leave this sender still registered.
                q.send_parked.retain(|&r| r != me);
                if q.msgs.len() < self.hwm {
                    self.deliver_locked(dest, q, msg, Some(sched));
                    return;
                }
                sched.begin_park(me, now, format!("send backpressure(dest={dest})"));
                q.send_parked.push(me);
                drop(q);
                sched.park_switch(me);
            }
            self.push(dest, msg, Some(sched));
            return;
        }
        let mut q = slot.q.lock();
        match wd {
            None => {
                while q.msgs.len() >= self.hwm {
                    slot.send_cv.wait(&mut q);
                }
            }
            Some(wd) => {
                if q.msgs.len() >= self.hwm {
                    wd.block(me, format!("send backpressure(dest={dest})"), now);
                    while q.msgs.len() >= self.hwm {
                        if wd.poll_detect().is_some() {
                            break; // force-deliver so the world drains
                        }
                        slot.send_cv.wait_for(&mut q, wd.poll_interval());
                    }
                    wd.unblock(me);
                }
            }
        }
        self.deliver_locked(dest, q, msg, sched);
    }

    /// After a pop: once the queue drops below the high-water mark, wake
    /// every backpressured sender (each re-checks and re-parks if the
    /// mark is hit again).
    fn after_pop(&self, me: usize, mut q: MutexGuard<'_, InboxQ>, sched: Option<&SchedCore>) {
        if self.hwm == 0 || q.msgs.len() >= self.hwm {
            return;
        }
        let to_wake = if q.send_parked.is_empty() {
            Vec::new()
        } else {
            std::mem::take(&mut q.send_parked)
        };
        drop(q);
        self.slots[me].send_cv.notify_all();
        if let Some(sched) = sched {
            for r in to_wake {
                sched.wake(r);
            }
        }
    }

    /// Non-blocking pop of `me`'s inbox.
    pub(crate) fn try_recv(&self, me: usize, sched: Option<&SchedCore>) -> Option<Message> {
        let mut q = self.slots[me].q.lock();
        let msg = q.msgs.pop_front();
        if msg.is_some() {
            self.after_pop(me, q, sched);
        }
        msg
    }

    /// Thread mode: block until a message arrives.
    pub(crate) fn recv_thread(&self, me: usize) -> Message {
        let slot = &self.slots[me];
        let mut q = slot.q.lock();
        loop {
            if let Some(m) = q.msgs.pop_front() {
                self.after_pop(me, q, None);
                return m;
            }
            slot.recv_cv.wait(&mut q);
        }
    }

    /// Thread mode: block until a message arrives or `dur` elapses (the
    /// watchdog poll loop).
    pub(crate) fn recv_thread_timeout(&self, me: usize, dur: Duration) -> Option<Message> {
        let slot = &self.slots[me];
        let mut q = slot.q.lock();
        if let Some(m) = q.msgs.pop_front() {
            self.after_pop(me, q, None);
            return Some(m);
        }
        slot.recv_cv.wait_for(&mut q, dur);
        match q.msgs.pop_front() {
            Some(m) => {
                self.after_pop(me, q, None);
                Some(m)
            }
            None => None,
        }
    }

    /// Event mode: pop `me`'s inbox, parking the fiber while it is empty.
    /// Returns `None` only when the world was declared deadlocked while
    /// (or before) this receiver was parked. `desc` renders the pending
    /// operation for the verdict; it is only invoked if the receiver
    /// actually parks (callers cache the rendering, so re-parks after a
    /// spurious wake stay cheap).
    pub(crate) fn recv_sched(
        &self,
        me: usize,
        sched: &SchedCore,
        now: SimTime,
        desc: &mut dyn FnMut() -> String,
    ) -> Option<Message> {
        let slot = &self.slots[me];
        loop {
            if sched.verdict().is_some() {
                return None;
            }
            let mut q = slot.q.lock();
            // Clear a stale flag from a verdict wake or a racing push.
            q.recv_parked = false;
            if let Some(m) = q.msgs.pop_front() {
                self.after_pop(me, q, Some(sched));
                return Some(m);
            }
            // Order matters: announce Parking *before* publishing the
            // parked flag, so a deliverer that observes the flag always
            // finds the task in Parking/Parked and its wake is never
            // lost (a racing wake latches `wake_pending`).
            sched.begin_park(me, now, desc());
            q.recv_parked = true;
            drop(q);
            sched.park_switch(me);
        }
    }

    /// Messages currently queued in `rank`'s inbox (teardown/test
    /// accounting).
    pub(crate) fn inbox_depth(&self, rank: usize) -> usize {
        self.slots[rank].q.lock().msgs.len()
    }
}
