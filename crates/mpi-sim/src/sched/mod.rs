//! Event-driven virtual-time scheduler: ranks as fibers on an M-worker pool.
//!
//! The thread-per-rank runtime capped worlds at a few hundred ranks (an OS
//! thread each). This module runs every rank as a cooperatively-yielding
//! *fiber* (see the `fiber` submodule) multiplexed onto M worker threads (M ≈ cores),
//! so a 10,000-rank world costs 10,000 lazily-committed stacks and M
//! threads. Blocking points — receive waits, barrier entry, send
//! backpressure — park the fiber instead of an OS thread; delivery of a
//! message (or a barrier release) wakes it.
//!
//! ## Ready ordering and determinism
//!
//! Runnable tasks sit in one global heap ordered by `(virtual_time, seq)`
//! where `seq` is a global monotonic enqueue counter: the task with the
//! earliest virtual clock runs first, FIFO among equals. (The design
//! issue proposed `(virtual_time, rank, seq)`; rank-before-seq is *not*
//! used because it starves spin-polling tasks — a low rank polling
//! `test()` at a constant virtual time would always outrank the sender it
//! is waiting on, livelocking an M=1 world. With `seq` in the middle, a
//! yielded spinner goes to the back of its virtual instant and its peers
//! run.) Results are *byte-identical* across M — and identical to thread
//! mode — because all timing is virtual and Lamport-composed at receives,
//! matching is deterministic, and per-pair delivery order is FIFO; the
//! heap order affects wall-clock interleaving only.
//!
//! ## Structural deadlock detection
//!
//! The thread runtime needs a wall-clock polling watchdog to notice a
//! wedged world. Here the scheduler *knows*: every unfinished task is
//! ready, running, or parked, so when a worker finds the ready heap empty
//! with nothing running and not everything finished, every live rank is
//! parked with no wake in flight — a deadlock, by construction, with zero
//! false positives and zero polling. The verdict (ranks, operations,
//! virtual instant) is stamped once, sticky, and every parked task is
//! woken to unwind: receives return a structured
//! [`Deadlock`](crate::MpiError::Deadlock) error, barriers withdraw, and
//! backpressured senders proceed — so the world always drains and the
//! process never hangs.

pub(crate) mod fiber;
mod router;

pub(crate) use router::{Router, DEFAULT_INBOX_HWM};

use std::cell::UnsafeCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gpu_sim::SimTime;
use parking_lot::{Condvar, Mutex};

use crate::watchdog::DeadlockInfo;

/// How [`World::run`](crate::World::run) schedules its ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Pick per platform (and honor `TEMPI_SCHED=threads|events`): the
    /// event scheduler on x86_64, threads elsewhere (the aarch64 fiber
    /// backend exists but is opt-in until it has seen native CI).
    #[default]
    Auto,
    /// One OS thread per rank (the legacy runtime; caps at ~hundreds of
    /// ranks but exercises real preemption).
    Threads,
    /// Fibers on an M-worker pool; scales to 10,000+ ranks.
    Events,
}

impl SchedMode {
    /// Resolve to a concrete backend choice.
    pub(crate) fn use_events(self) -> bool {
        let check = |wanted: bool| {
            assert!(
                !wanted || fiber::supported(),
                "event scheduler requested but fibers are unsupported on this target"
            );
            wanted
        };
        match self {
            SchedMode::Threads => false,
            SchedMode::Events => check(true),
            SchedMode::Auto => match std::env::var("TEMPI_SCHED").ok().as_deref() {
                Some("threads") => false,
                Some("events") => check(true),
                _ => cfg!(all(target_arch = "x86_64", not(target_os = "windows"))),
            },
        }
    }
}

/// Default fiber stack size; override with `TEMPI_SCHED_STACK_KIB`.
/// Generous because there is no guard page — but lazily committed, so an
/// idle fiber only pays for the pages it has actually touched.
const DEFAULT_STACK_KIB: usize = 2048;

/// Fiber stack size in bytes, after the environment override.
pub(crate) fn stack_bytes() -> usize {
    std::env::var("TEMPI_SCHED_STACK_KIB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&k| k > 0)
        .unwrap_or(DEFAULT_STACK_KIB)
        * 1024
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// In the ready heap (or being pushed to it).
    Ready,
    /// Executing on some worker.
    Running,
    /// Announced intent to park; its worker has not yet completed the
    /// handoff (the fiber may still be switching out).
    Parking,
    /// Parked; only a [`SchedCore::wake`] can make it runnable again.
    Parked,
    /// Its body returned; its stack has been freed.
    Finished,
}

struct TaskInner {
    state: TaskState,
    /// A wake arrived while the task was `Running`/`Parking`: consume it
    /// at the next park-handoff instead of losing it.
    wake_pending: bool,
    /// What the task is blocked on (rendered at park time; feeds the
    /// deadlock verdict's `ops`).
    park_desc: Option<String>,
    /// The task's virtual clock when it parked (feeds the verdict's `at`
    /// and orders the re-enqueue on wake).
    park_clock: SimTime,
}

const EXIT_PARK: u8 = 0;
const EXIT_YIELD: u8 = 1;

/// Mutable per-task machinery touched only by whichever thread currently
/// *is* the task (its fiber) or runs it (its worker) — exclusivity is
/// guaranteed by the [`TaskState`] machine, so no lock guards it.
struct TaskCell {
    stack: Option<fiber::FiberStack>,
    /// Saved stack pointer of the suspended fiber.
    sp: usize,
    /// Saved stack pointer of the worker that resumed this fiber.
    worker_sp: usize,
    entry: Option<Box<dyn FnOnce() + Send + 'static>>,
    exit: u8,
    /// Virtual time to key the next ready-heap entry with.
    resume_vtime: u64,
    finished: bool,
}

struct Task {
    inner: Mutex<TaskInner>,
    cell: UnsafeCell<TaskCell>,
}

// SAFETY: `cell` is only accessed by the fiber itself or the worker
// currently running/parking it; the state machine in `inner` makes those
// accesses mutually exclusive.
unsafe impl Sync for Task {}

struct RunState {
    /// Min-heap of runnable tasks keyed `(virtual_time_ps, seq)`.
    ready: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Tasks currently executing on workers (includes `Parking` tasks
    /// whose handoff is not yet complete — crucial: `running == 0`
    /// implies every park has fully settled and nobody can be mid-wake).
    running: usize,
    parked: usize,
    finished: usize,
}

/// The scheduler shared by every rank and worker of one world run.
pub(crate) struct SchedCore {
    tasks: Vec<Task>,
    state: Mutex<RunState>,
    cv: Condvar,
    seq: AtomicU64,
    verdict_flag: AtomicBool,
    verdict: Mutex<Option<DeadlockInfo>>,
    /// Virtual-time budget folded into the verdict's `at` stamp (taken
    /// from the watchdog config when one is set, for parity with thread
    /// mode).
    budget: SimTime,
    stack_bytes: usize,
}

unsafe extern "C" fn task_entry(payload: *mut u8) -> ! {
    let cell = payload as *mut TaskCell;
    let f = (*cell).entry.take().expect("fiber entry installed");
    // The closure is panic-proof by construction (the runtime wraps the
    // rank body in catch_unwind), so unwinding never reaches the asm
    // switch below.
    f();
    (*cell).finished = true;
    let mut scratch = 0usize;
    let target = (*cell).worker_sp;
    fiber::switch(&mut scratch, target);
    // The worker never resumes a finished fiber.
    std::process::abort();
}

impl SchedCore {
    pub(crate) fn new(total: usize, budget: SimTime) -> SchedCore {
        SchedCore {
            tasks: (0..total)
                .map(|_| Task {
                    inner: Mutex::new(TaskInner {
                        state: TaskState::Ready,
                        wake_pending: false,
                        park_desc: None,
                        park_clock: SimTime::ZERO,
                    }),
                    cell: UnsafeCell::new(TaskCell {
                        stack: None,
                        sp: 0,
                        worker_sp: 0,
                        entry: None,
                        exit: EXIT_PARK,
                        resume_vtime: 0,
                        finished: false,
                    }),
                })
                .collect(),
            state: Mutex::new(RunState {
                ready: BinaryHeap::with_capacity(total),
                running: 0,
                parked: 0,
                finished: 0,
            }),
            cv: Condvar::new(),
            // Initial enqueues use seq == rank, so a fresh world starts in
            // rank order at virtual time zero.
            seq: AtomicU64::new(total as u64),
            verdict_flag: AtomicBool::new(false),
            verdict: Mutex::new(None),
            budget,
            stack_bytes: stack_bytes(),
        }
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Install `entry` as rank `rank`'s body and mark it runnable at
    /// virtual time zero. Must be called before any worker starts.
    pub(crate) fn spawn(&self, rank: usize, entry: Box<dyn FnOnce() + Send + 'static>) {
        let cell = self.tasks[rank].cell.get();
        unsafe {
            let stack = fiber::FiberStack::new(self.stack_bytes);
            let sp = fiber::init_frame(&stack, task_entry, cell as *mut u8);
            (*cell).stack = Some(stack);
            (*cell).sp = sp;
            (*cell).entry = Some(entry);
        }
        self.state
            .lock()
            .ready
            .push(Reverse((0, rank as u64, rank)));
    }

    /// One worker's life: pop the earliest runnable task, run its fiber
    /// until it parks/yields/finishes, repeat. When the heap runs dry
    /// with nothing running and tasks still unfinished, the world is
    /// structurally deadlocked (see module docs).
    pub(crate) fn worker_loop(&self) {
        loop {
            let rank = {
                let mut s = self.state.lock();
                loop {
                    if let Some(Reverse((_, _, r))) = s.ready.pop() {
                        s.running += 1;
                        break r;
                    }
                    if s.finished == self.tasks.len() {
                        return;
                    }
                    if s.running == 0 {
                        drop(s);
                        self.declare_deadlock();
                        s = self.state.lock();
                        continue;
                    }
                    self.cv.wait(&mut s);
                }
            };
            self.run_task(rank);
        }
    }

    /// Resume `rank`'s fiber and complete whatever transition it exits
    /// with.
    fn run_task(&self, rank: usize) {
        let task = &self.tasks[rank];
        {
            let mut inner = task.inner.lock();
            debug_assert_eq!(inner.state, TaskState::Ready);
            inner.state = TaskState::Running;
        }
        let cell = task.cell.get();
        unsafe {
            let target = (*cell).sp;
            fiber::switch(std::ptr::addr_of_mut!((*cell).worker_sp), target);
        }
        if unsafe { (*cell).finished } {
            if let Some(stack) = unsafe { (*cell).stack.take() } {
                if !stack.canary_intact() {
                    // The overflow already scribbled on the heap;
                    // continuing (or unwinding) would only smear the
                    // evidence.
                    eprintln!(
                        "fatal: fiber stack overflow on rank {rank} \
                         (raise TEMPI_SCHED_STACK_KIB, default {DEFAULT_STACK_KIB})"
                    );
                    std::process::abort();
                }
            }
            task.inner.lock().state = TaskState::Finished;
            let mut s = self.state.lock();
            s.running -= 1;
            s.finished += 1;
            let all_done = s.finished == self.tasks.len();
            drop(s);
            if all_done {
                self.cv.notify_all();
            }
            return;
        }
        let exit = unsafe { (*cell).exit };
        let vtime = unsafe { (*cell).resume_vtime };
        if exit == EXIT_YIELD {
            task.inner.lock().state = TaskState::Ready;
            let mut s = self.state.lock();
            s.running -= 1;
            s.ready.push(Reverse((vtime, self.next_seq(), rank)));
            drop(s);
            self.cv.notify_one();
            return;
        }
        // EXIT_PARK: complete the Parking -> Parked handoff. A wake that
        // raced in while the fiber was switching out left `wake_pending`;
        // honor it by re-enqueueing instead of parking — this is what
        // makes a deliver-vs-park race lose no wakeups and never run one
        // fiber on two workers.
        let mut inner = task.inner.lock();
        debug_assert_eq!(inner.state, TaskState::Parking);
        if inner.wake_pending {
            inner.wake_pending = false;
            inner.state = TaskState::Ready;
            drop(inner);
            let mut s = self.state.lock();
            s.running -= 1;
            s.ready.push(Reverse((vtime, self.next_seq(), rank)));
            drop(s);
            self.cv.notify_one();
        } else {
            inner.state = TaskState::Parked;
            drop(inner);
            let mut s = self.state.lock();
            s.running -= 1;
            s.parked += 1;
        }
    }

    /// Fiber-side: announce intent to park on an operation described by
    /// `desc`, with the caller's virtual clock at `now`. The caller then
    /// publishes its wake condition (e.g. an inbox "receiver parked"
    /// flag) and calls [`SchedCore::park_switch`].
    pub(crate) fn begin_park(&self, rank: usize, now: SimTime, desc: String) {
        let mut inner = self.tasks[rank].inner.lock();
        debug_assert!(matches!(
            inner.state,
            TaskState::Running | TaskState::Parking
        ));
        inner.state = TaskState::Parking;
        inner.park_desc = Some(desc);
        inner.park_clock = now;
        drop(inner);
        unsafe { (*self.tasks[rank].cell.get()).resume_vtime = now.as_ps() };
    }

    /// Fiber-side: hand control to the worker; returns when woken.
    pub(crate) fn park_switch(&self, rank: usize) {
        let cell = self.tasks[rank].cell.get();
        unsafe {
            (*cell).exit = EXIT_PARK;
            let target = (*cell).worker_sp;
            fiber::switch(std::ptr::addr_of_mut!((*cell).sp), target);
        }
    }

    /// Fiber-side cooperative yield: go to the back of the ready heap at
    /// the current virtual instant so peers can run. This is what keeps
    /// spin-polling (`test()` loops) live on a single worker.
    pub(crate) fn yield_now(&self, rank: usize, now: SimTime) {
        let cell = self.tasks[rank].cell.get();
        unsafe {
            (*cell).exit = EXIT_YIELD;
            (*cell).resume_vtime = now.as_ps();
            let target = (*cell).worker_sp;
            fiber::switch(std::ptr::addr_of_mut!((*cell).sp), target);
        }
    }

    /// Make `rank` runnable again (message delivered, barrier released,
    /// inbox drained, verdict declared). Safe to call redundantly and
    /// from any state: a wake racing a park is latched via
    /// `wake_pending`, a wake of a ready/finished task is a no-op.
    pub(crate) fn wake(&self, rank: usize) {
        let task = &self.tasks[rank];
        let mut inner = task.inner.lock();
        match inner.state {
            TaskState::Parked => {
                inner.state = TaskState::Ready;
                let vtime = inner.park_clock.as_ps();
                drop(inner);
                let mut s = self.state.lock();
                s.parked -= 1;
                s.ready.push(Reverse((vtime, self.next_seq(), rank)));
                drop(s);
                self.cv.notify_one();
            }
            TaskState::Parking | TaskState::Running => inner.wake_pending = true,
            TaskState::Ready | TaskState::Finished => {}
        }
    }

    /// The sticky deadlock verdict, if one was declared. One atomic load
    /// on the happy path.
    pub(crate) fn verdict(&self) -> Option<DeadlockInfo> {
        if self.verdict_flag.load(Ordering::Acquire) {
            self.verdict.lock().clone()
        } else {
            None
        }
    }

    /// Declare the world deadlocked: stamp the verdict from the parked
    /// tasks' descriptions and clocks, then wake everything so blocking
    /// points unwind and the run drains. Called only when `running == 0`
    /// and the ready heap is empty, so the parked set is stable.
    fn declare_deadlock(&self) {
        {
            let mut v = self.verdict.lock();
            if v.is_none() {
                let mut ranks = Vec::new();
                let mut ops = Vec::new();
                let mut latest = SimTime::ZERO;
                for (rank, task) in self.tasks.iter().enumerate() {
                    let inner = task.inner.lock();
                    if inner.state == TaskState::Parked {
                        ranks.push(rank);
                        ops.push(
                            inner
                                .park_desc
                                .clone()
                                .unwrap_or_else(|| "blocked".to_string()),
                        );
                        latest = latest.max(inner.park_clock);
                    }
                }
                if ranks.is_empty() {
                    return;
                }
                *v = Some(DeadlockInfo {
                    ranks,
                    ops,
                    at: latest + self.budget,
                });
                self.verdict_flag.store(true, Ordering::Release);
            }
        }
        for rank in 0..self.tasks.len() {
            self.wake(rank);
        }
    }
}
