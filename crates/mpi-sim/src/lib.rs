//! # mpi-sim — a simulated multi-rank MPI runtime with a full derived-datatype engine
//!
//! This crate is the MPI substrate for the TEMPI reproduction (see
//! `DESIGN.md` at the repository root). It provides:
//!
//! * a **derived-datatype engine** ([`datatype`]) — named / contiguous /
//!   vector / hvector / indexed / hindexed / subarray / struct / resized
//!   types with MPI-standard attribute semantics (size, extent, true
//!   extent), full `get_envelope`/`get_contents` introspection (the face
//!   TEMPI's translation consumes), typemap flattening to contiguous
//!   segments (the semantics oracle), and reference CPU pack/unpack;
//! * **vendor profiles** ([`vendor`]) reproducing the baseline GPU datatype
//!   behavior of Spectrum MPI 10.3.1.2, OpenMPI 4.0.5 and MVAPICH2 2.3.4 —
//!   copy-per-block packing, MVAPICH's specialized root-vector kernel and
//!   its contiguous-pack synchronization bug, Spectrum's chunked transfers;
//! * a **network model** ([`net`]) encoding the paper's Fig. 8a
//!   measurements (2.2 µs CPU floor, 11 µs CUDA-aware floor); and
//! * a **multi-rank runtime** ([`runtime`], [`p2p`], [`collective`]) — an
//!   event-driven virtual-time scheduler ([`sched`]) running each rank as
//!   a fiber with one simulated GPU (10,000+ ranks on a laptop; a legacy
//!   thread-per-rank backend remains selectable), Lamport-style virtual
//!   clocks, blocking send/recv with MPI matching rules, `Alltoallv`,
//!   barriers, and ULFM-style communicator recovery ([`comm`]: revoke /
//!   agree / shrink with epoch-stamped envelopes); and
//! * a **deterministic fault-injection subsystem** ([`fault`]) — seeded,
//!   replayable GPU/network fault schedules with bounded retry + backoff
//!   in virtual time, and the degradation-event log the TEMPI layer
//!   appends to when it downgrades a send path; and
//! * an **end-to-end integrity envelope** — senders stamp payloads with a
//!   content checksum ([`payload_checksum`]), the fault injector can flip
//!   bytes in transit (`corrupt=` site), and receivers verify and run a
//!   bounded NACK/retransmit handshake in virtual time before surfacing
//!   [`MpiError::Corrupted`].
//!
//! All timing is virtual and deterministic; all data movement is real bytes
//! verified against the typemap oracle.

#![warn(missing_docs)]

pub mod collective;
pub mod comm;
pub mod datatype;
pub mod error;
pub mod fault;
pub mod net;
pub mod nonblocking;
pub mod p2p;
pub mod runtime;
pub mod sched;
pub mod vendor;
pub mod watchdog;

pub use collective::AlltoallvBlock;
pub use datatype::{consts, Combiner, Contents, Datatype, Envelope, Named, Order, TypeRegistry};
pub use error::{MpiError, MpiResult};
pub use fault::{
    DegradeEvent, DelaySpec, FaultInjector, FaultPlan, FaultSite, FaultState, FaultStats, RankExit,
    ScopedFault,
};
pub use net::{NetModel, Transport};
pub use nonblocking::Request;
pub use p2p::{payload_checksum, Message, PartInfo, ProbeInfo, Status};
pub use runtime::{RankCtx, World, WorldConfig};
pub use sched::SchedMode;
pub use tempi_trace::{TraceLevel, Tracer};
pub use vendor::{BaselineMethod, VendorId, VendorProfile};
pub use watchdog::{DeadlockInfo, Watchdog, WatchdogConfig};
