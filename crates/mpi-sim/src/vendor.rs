//! Vendor profiles: the three system-MPI implementations of Table 1 and
//! their baseline GPU derived-datatype handling.
//!
//! The paper measures TEMPI against Spectrum MPI 10.3.1.2 (Summit),
//! OpenMPI 4.0.5 and MVAPICH2 2.3.4. All three handle a non-contiguous GPU
//! datatype the same basic way — **one `cudaMemcpyAsync` per contiguous
//! block** — with vendor-specific behaviors the figures depend on:
//!
//! * **MVAPICH2** "tends to perform best … due to minimal synchronization"
//!   and has a **specialized kernel when the root combiner is a vector**
//!   (speedup ≈ 1 in Figs. 7a/7b for vector constructions, and the fast
//!   vector-of-subarray case of Fig. 7c) — but falls back to copy-per-block
//!   for the *same object* expressed as hvector or subarray. It also has a
//!   **contiguous-pack synchronization bug** (`cudaMemcpy` D2D is async;
//!   `MPI_Pack` can return early), which is why mvapich contiguous results
//!   are omitted from the paper's comparison.
//! * **Spectrum MPI** is worst: extra per-block bookkeeping + per-block
//!   synchronization, and it splits large contiguous transfers into
//!   multiple chunked copies.
//! * **OpenMPI** sits between.

use gpu_sim::{Dim3, GpuPtr, LaunchConfig, PackDir, PackTarget, SimClock, SimTime, Stream};
use serde::{Deserialize, Serialize};

use crate::datatype::typemap::{max_block, Segment};
use crate::error::{MpiError, MpiResult};

/// Which system MPI a simulated world emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VendorId {
    /// IBM Spectrum MPI 10.3.1.2 (the Summit deployment).
    SpectrumMpi,
    /// OpenMPI 4.0.5.
    OpenMpi,
    /// MVAPICH2 2.3.4 (not MVAPICH2-GDR).
    Mvapich,
}

impl VendorId {
    /// Stable lowercase label used as a row key in bench/guideline JSON
    /// (`"mvapich"` / `"openmpi"` / `"spectrum"`).
    pub fn label(self) -> &'static str {
        match self {
            VendorId::SpectrumMpi => "spectrum",
            VendorId::OpenMpi => "openmpi",
            VendorId::Mvapich => "mvapich",
        }
    }
}

/// How the baseline handled one pack/unpack call (for reporting and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineMethod {
    /// Single (possibly chunked) `cudaMemcpyAsync` of a contiguous type.
    Contiguous,
    /// MVAPICH's specialized vector kernel.
    SpecializedVector,
    /// One `cudaMemcpyAsync` per contiguous block.
    CopyPerBlock,
}

/// Calibrated behavior of one system MPI implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VendorProfile {
    /// Which vendor this is.
    pub id: VendorId,
    /// Display name for Table 1.
    pub mpi_name: &'static str,
    /// Version string for Table 1.
    pub version: &'static str,
    /// CPU cost of one `MPI_Type_*` constructor call (Fig. 6 "create").
    pub type_create_cost: SimTime,
    /// CPU cost of the native `MPI_Type_commit` work (Fig. 6 "commit").
    pub type_commit_cost: SimTime,
    /// CPU cost of one introspection call (`MPI_Type_get_envelope`,
    /// `get_contents`, `get_extent`, `size`) — what TEMPI's translation
    /// pays, and why Fig. 6 commit overhead differs per vendor.
    pub introspection_call_cost: SimTime,
    /// Extra CPU bookkeeping per block in the copy-per-block loop, on top
    /// of the driver's own `cudaMemcpyAsync` overhead.
    pub per_block_extra: SimTime,
    /// Does the pack loop synchronize the stream after every block?
    pub sync_per_block: bool,
    /// Does a root-vector type get the specialized kernel?
    pub specialized_vector_kernel: bool,
    /// If set, contiguous transfers are split into chunks of this many
    /// bytes, each synchronized (Spectrum's "multiple transfers").
    pub contiguous_chunk_bytes: Option<usize>,
    /// MVAPICH's bug: contiguous `MPI_Pack` issues the copy but returns
    /// without synchronizing.
    pub contiguous_pack_skips_sync: bool,
    /// Host-side pack: per-segment loop overhead.
    pub host_pack_per_seg: SimTime,
    /// Host-side pack: copy bandwidth, bytes/ns.
    pub host_pack_bpns: f64,
}

impl VendorProfile {
    /// Spectrum MPI 10.3.1.2 as deployed on Summit.
    pub fn spectrum() -> Self {
        VendorProfile {
            id: VendorId::SpectrumMpi,
            mpi_name: "Spectrum MPI",
            version: "10.3.1.2",
            type_create_cost: SimTime::from_ns(800),
            type_commit_cost: SimTime::from_ns(900),
            introspection_call_cost: SimTime::from_ns(800),
            per_block_extra: SimTime::from_us(35),
            sync_per_block: true,
            specialized_vector_kernel: false,
            contiguous_chunk_bytes: Some(128 << 10),
            contiguous_pack_skips_sync: false,
            host_pack_per_seg: SimTime::from_ns(60),
            host_pack_bpns: 18.0,
        }
    }

    /// OpenMPI 4.0.5.
    pub fn openmpi() -> Self {
        VendorProfile {
            id: VendorId::OpenMpi,
            mpi_name: "OpenMPI",
            version: "4.0.5",
            type_create_cost: SimTime::from_ns(500),
            type_commit_cost: SimTime::from_ns(1000),
            introspection_call_cost: SimTime::from_ns(450),
            per_block_extra: SimTime::from_us(5),
            sync_per_block: false,
            specialized_vector_kernel: false,
            contiguous_chunk_bytes: None,
            contiguous_pack_skips_sync: false,
            host_pack_per_seg: SimTime::from_ns(50),
            host_pack_bpns: 20.0,
        }
    }

    /// MVAPICH2 2.3.4.
    pub fn mvapich() -> Self {
        VendorProfile {
            id: VendorId::Mvapich,
            mpi_name: "MVAPICH2",
            version: "2.3.4",
            type_create_cost: SimTime::from_ns(300),
            type_commit_cost: SimTime::from_ns(1200),
            introspection_call_cost: SimTime::from_ns(300),
            per_block_extra: SimTime::ZERO,
            sync_per_block: false,
            specialized_vector_kernel: true,
            contiguous_chunk_bytes: None,
            contiguous_pack_skips_sync: true,
            host_pack_per_seg: SimTime::from_ns(40),
            host_pack_bpns: 22.0,
        }
    }

    /// All three profiles, in the paper's reporting order (mv, op, sp).
    pub fn all() -> [VendorProfile; 3] {
        [Self::mvapich(), Self::openmpi(), Self::spectrum()]
    }

    /// CPU time to pack/unpack `bytes` across `nsegs` segments on the host.
    pub fn host_pack_time(&self, bytes: usize, nsegs: usize) -> SimTime {
        self.host_pack_per_seg * nsegs as u64
            + SimTime::from_ns_f64(bytes as f64 / self.host_pack_bpns)
    }
}

/// Is the segment list a single contiguous run (so the baseline can use one
/// plain copy)?
pub fn is_contiguous(segs: &[Segment]) -> bool {
    segs.len() <= 1
}

/// Baseline vendor `MPI_Pack` on GPU buffers: the behavior TEMPI's speedups
/// are measured against.
///
/// `segs` is the type's segment list, `extent` its extent (items of a
/// repeated pack are `extent` apart), `root_is_vector` whether the
/// outermost combiner is `MPI_Type_vector` (MVAPICH's fast-path trigger).
/// Packs `incount` items from `inbuf` into `outbuf` at `*position`,
/// advancing it. Returns which method was used.
#[allow(clippy::too_many_arguments)]
pub fn baseline_gpu_pack(
    profile: &VendorProfile,
    stream: &mut Stream,
    clock: &mut SimClock,
    segs: &[Segment],
    extent: i64,
    root_is_vector: bool,
    inbuf: GpuPtr,
    incount: usize,
    outbuf: GpuPtr,
    position: &mut usize,
) -> MpiResult<BaselineMethod> {
    baseline_gpu_xfer(
        profile,
        stream,
        clock,
        segs,
        extent,
        root_is_vector,
        inbuf,
        incount,
        outbuf,
        position,
        PackDir::Pack,
    )
}

/// Baseline vendor `MPI_Unpack` on GPU buffers (mirror of
/// [`baseline_gpu_pack`]: `inbuf` is the packed buffer at `*position`,
/// `outbuf` the strided destination).
#[allow(clippy::too_many_arguments)]
pub fn baseline_gpu_unpack(
    profile: &VendorProfile,
    stream: &mut Stream,
    clock: &mut SimClock,
    segs: &[Segment],
    extent: i64,
    root_is_vector: bool,
    inbuf: GpuPtr,
    position: &mut usize,
    outbuf: GpuPtr,
    outcount: usize,
) -> MpiResult<BaselineMethod> {
    baseline_gpu_xfer(
        profile,
        stream,
        clock,
        segs,
        extent,
        root_is_vector,
        outbuf,
        outcount,
        inbuf,
        position,
        PackDir::Unpack,
    )
}

/// Shared pack/unpack implementation. For `Pack`, `strided` is the source
/// and `packed` the destination; for `Unpack` the reverse.
#[allow(clippy::too_many_arguments)]
fn baseline_gpu_xfer(
    profile: &VendorProfile,
    stream: &mut Stream,
    clock: &mut SimClock,
    segs: &[Segment],
    extent: i64,
    root_is_vector: bool,
    strided: GpuPtr,
    incount: usize,
    packed: GpuPtr,
    position: &mut usize,
    dir: PackDir,
) -> MpiResult<BaselineMethod> {
    let item_bytes: u64 = segs.iter().map(|s| s.len).sum();
    let total = item_bytes as usize * incount;

    // Contiguous fast path: one (possibly chunked) plain copy.
    if is_contiguous(segs) && (incount <= 1 || item_bytes as i64 == extent) {
        let base_off = segs.first().map(|s| s.off).unwrap_or(0);
        let strided_at = offset_ptr(strided, base_off)?;
        let packed_at = packed.add(*position);
        let (dst, src) = match dir {
            PackDir::Pack => (packed_at, strided_at),
            PackDir::Unpack => (strided_at, packed_at),
        };
        match profile.contiguous_chunk_bytes {
            Some(chunk) if total > chunk => {
                let mut done = 0;
                while done < total {
                    let n = chunk.min(total - done);
                    stream.memcpy_async(clock, dst.add(done), src.add(done), n)?;
                    stream.synchronize(clock);
                    done += n;
                }
            }
            _ => {
                stream.memcpy_async(clock, dst, src, total)?;
                // MVAPICH's bug: MPI_Pack returns without synchronizing.
                // (Functionally the simulator has already moved the bytes;
                // the *timing* reflects the early return, which is exactly
                // the hazard the paper describes.)
                if !(dir == PackDir::Pack && profile.contiguous_pack_skips_sync) {
                    stream.synchronize(clock);
                }
            }
        }
        *position += total;
        return Ok(BaselineMethod::Contiguous);
    }

    // MVAPICH specialized vector kernel: only when the root combiner is a
    // vector; hvector/subarray descriptions of the same object fall through
    // to copy-per-block (the fragility Fig. 7 highlights).
    if profile.specialized_vector_kernel && root_is_vector {
        move_segments(
            stream, clock, segs, extent, strided, incount, packed, *position, dir,
        )?;
        let block = max_block(segs) as usize;
        let cost = stream.cost_model().pack_kernel_time(
            dir,
            PackTarget::Device,
            total,
            block,
            kernel_word(segs, strided, packed.add(*position)),
        );
        let cfg = LaunchConfig {
            grid: Dim3::new(
                gpu_sim::div_ceil(total as u64, 256).clamp(1, 65_535) as u32,
                1,
                1,
            ),
            block: Dim3::new(256, 1, 1),
        };
        // functional effect already applied by move_segments; the launch
        // body is a no-op carrying only geometry + cost
        stream.launch(clock, "mvapich_vector_kernel", cfg, cost, |_| Ok(()))?;
        stream.synchronize(clock);
        *position += total;
        return Ok(BaselineMethod::SpecializedVector);
    }

    // Copy-per-block: the universal baseline.
    let mut pos = *position;
    for item in 0..incount {
        let item_base = item as i64 * extent;
        for seg in segs {
            let strided_at = offset_ptr(strided, item_base + seg.off)?;
            let packed_at = packed.add(pos);
            let (dst, src) = match dir {
                PackDir::Pack => (packed_at, strided_at),
                PackDir::Unpack => (strided_at, packed_at),
            };
            stream.memcpy_async(clock, dst, src, seg.len as usize)?;
            clock.advance(profile.per_block_extra);
            if profile.sync_per_block {
                stream.synchronize(clock);
            }
            pos += seg.len as usize;
        }
    }
    stream.synchronize(clock);
    *position = pos;
    Ok(BaselineMethod::CopyPerBlock)
}

/// Apply a segment walk functionally in one go (used where the timing is
/// modeled as a kernel rather than per-copy API calls).
#[allow(clippy::too_many_arguments)]
fn move_segments(
    stream: &mut Stream,
    _clock: &mut SimClock,
    segs: &[Segment],
    extent: i64,
    strided: GpuPtr,
    incount: usize,
    packed: GpuPtr,
    mut pos: usize,
    dir: PackDir,
) -> MpiResult<()> {
    let ctx = stream.context().clone();
    let mut mem = ctx.memory();
    for item in 0..incount {
        let item_base = item as i64 * extent;
        for seg in segs {
            let strided_at = offset_ptr(strided, item_base + seg.off)?;
            let packed_at = packed.add(pos);
            let (dst, src) = match dir {
                PackDir::Pack => (packed_at, strided_at),
                PackDir::Unpack => (strided_at, packed_at),
            };
            mem.dev_copy(dst, src, seg.len as usize)?;
            pos += seg.len as usize;
        }
    }
    Ok(())
}

/// Word size heuristic for the specialized kernel's cost (same rule as
/// TEMPI's, applied to the baseline kernel for fairness).
fn kernel_word(segs: &[Segment], a: GpuPtr, b: GpuPtr) -> usize {
    let block = max_block(segs) as usize;
    for w in [16usize, 8, 4, 2] {
        if block % w == 0 && a.alignment() % w == 0 && b.alignment() % w == 0 {
            return w;
        }
    }
    1
}

fn offset_ptr(p: GpuPtr, off: i64) -> MpiResult<GpuPtr> {
    p.offset_by(off).ok_or_else(|| {
        MpiError::InvalidArg(format!(
            "datatype reaches {off} bytes before the buffer start"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::registry::consts::*;
    use crate::datatype::typemap::segments;
    use crate::datatype::TypeRegistry;
    use gpu_sim::{DeviceProps, GpuContext, GpuCostModel};

    fn setup() -> (GpuContext, Stream, SimClock, TypeRegistry) {
        let ctx = GpuContext::new(DeviceProps::v100());
        let stream = Stream::new(ctx.clone(), GpuCostModel::summit_v100());
        (ctx, stream, SimClock::new(), TypeRegistry::new())
    }

    fn filled_device(ctx: &GpuContext, n: usize) -> GpuPtr {
        let p = ctx.malloc(n).unwrap();
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        ctx.memory().poke(p, &data).unwrap();
        p
    }

    #[test]
    fn copy_per_block_is_functionally_correct() {
        let (ctx, mut stream, mut clock, mut reg) = setup();
        let t = reg.type_vector(3, 2, 4, MPI_BYTE).unwrap();
        let segs = segments(&reg, t).unwrap();
        let (_, extent) = reg.extent(t).unwrap();
        let src = filled_device(&ctx, 12);
        let dst = ctx.malloc(6).unwrap();
        let mut pos = 0;
        let method = baseline_gpu_pack(
            &VendorProfile::openmpi(),
            &mut stream,
            &mut clock,
            &segs,
            extent,
            false,
            src,
            1,
            dst,
            &mut pos,
        )
        .unwrap();
        assert_eq!(method, BaselineMethod::CopyPerBlock);
        assert_eq!(pos, 6);
        assert_eq!(ctx.memory().peek(dst, 6).unwrap(), vec![0, 1, 4, 5, 8, 9]);
        // one memcpy per block
        assert_eq!(stream.stats().memcpys, 3);
    }

    #[test]
    fn unpack_inverts_pack() {
        let (ctx, mut stream, mut clock, mut reg) = setup();
        let t = reg.type_vector(4, 8, 16, MPI_BYTE).unwrap();
        let segs = segments(&reg, t).unwrap();
        let (_, extent) = reg.extent(t).unwrap();
        let src = filled_device(&ctx, 64);
        let packed = ctx.malloc(32).unwrap();
        let out = ctx.malloc(64).unwrap();
        let p = VendorProfile::openmpi();
        let mut pos = 0;
        baseline_gpu_pack(
            &p,
            &mut stream,
            &mut clock,
            &segs,
            extent,
            false,
            src,
            1,
            packed,
            &mut pos,
        )
        .unwrap();
        let mut pos = 0;
        baseline_gpu_unpack(
            &p,
            &mut stream,
            &mut clock,
            &segs,
            extent,
            false,
            packed,
            &mut pos,
            out,
            1,
        )
        .unwrap();
        // every byte covered by the type matches the source
        let want = ctx.memory().peek(src, 64).unwrap();
        let got = ctx.memory().peek(out, 64).unwrap();
        for seg in &segs {
            let o = seg.off as usize;
            assert_eq!(
                &got[o..o + seg.len as usize],
                &want[o..o + seg.len as usize]
            );
        }
    }

    #[test]
    fn spectrum_is_slower_than_mvapich_per_block() {
        let (ctx, _, _, mut reg) = setup();
        let t = reg.type_vector(64, 4, 64, MPI_BYTE).unwrap();
        let segs = segments(&reg, t).unwrap();
        let (_, extent) = reg.extent(t).unwrap();
        let src = filled_device(&ctx, 64 * 64);
        let dst = ctx.malloc(256).unwrap();

        let mut times = Vec::new();
        // use hvector-equivalent flag (root_is_vector = false) so mvapich
        // also takes copy-per-block
        for p in [
            VendorProfile::mvapich(),
            VendorProfile::openmpi(),
            VendorProfile::spectrum(),
        ] {
            let mut stream = Stream::new(ctx.clone(), GpuCostModel::summit_v100());
            let mut clock = SimClock::new();
            let mut pos = 0;
            baseline_gpu_pack(
                &p,
                &mut stream,
                &mut clock,
                &segs,
                extent,
                false,
                src,
                1,
                dst,
                &mut pos,
            )
            .unwrap();
            times.push(clock.now());
        }
        assert!(
            times[0] < times[1],
            "mvapich {} < openmpi {}",
            times[0],
            times[1]
        );
        assert!(
            times[1] < times[2],
            "openmpi {} < spectrum {}",
            times[1],
            times[2]
        );
    }

    #[test]
    fn mvapich_vector_uses_specialized_kernel() {
        let (ctx, mut stream, mut clock, mut reg) = setup();
        let t = reg.type_vector(256, 4, 64, MPI_BYTE).unwrap();
        let segs = segments(&reg, t).unwrap();
        let (_, extent) = reg.extent(t).unwrap();
        let src = filled_device(&ctx, 64 * 256);
        let dst = ctx.malloc(1024).unwrap();
        let mut pos = 0;
        let method = baseline_gpu_pack(
            &VendorProfile::mvapich(),
            &mut stream,
            &mut clock,
            &segs,
            extent,
            true, // root is a vector
            src,
            1,
            dst,
            &mut pos,
        )
        .unwrap();
        assert_eq!(method, BaselineMethod::SpecializedVector);
        assert_eq!(stream.stats().kernel_launches, 1);
        assert_eq!(stream.stats().memcpys, 0);
        // functional check: first block
        assert_eq!(ctx.memory().peek(dst, 4).unwrap(), vec![0, 1, 2, 3]);
        // far faster than copy-per-block would be (256 blocks × ≥5 µs)
        assert!(clock.now().as_us_f64() < 100.0);
    }

    #[test]
    fn contiguous_single_copy_and_spectrum_chunks() {
        let (ctx, _, _, mut reg) = setup();
        let t = reg.type_contiguous(1 << 20, MPI_BYTE).unwrap();
        let segs = segments(&reg, t).unwrap();
        let (_, extent) = reg.extent(t).unwrap();
        let src = filled_device(&ctx, 1 << 20);
        let dst = ctx.malloc(1 << 20).unwrap();

        let mut stream = Stream::new(ctx.clone(), GpuCostModel::summit_v100());
        let mut clock = SimClock::new();
        let mut pos = 0;
        let m = baseline_gpu_pack(
            &VendorProfile::openmpi(),
            &mut stream,
            &mut clock,
            &segs,
            extent,
            false,
            src,
            1,
            dst,
            &mut pos,
        )
        .unwrap();
        assert_eq!(m, BaselineMethod::Contiguous);
        assert_eq!(stream.stats().memcpys, 1);

        let mut stream = Stream::new(ctx.clone(), GpuCostModel::summit_v100());
        let mut clock2 = SimClock::new();
        let mut pos = 0;
        baseline_gpu_pack(
            &VendorProfile::spectrum(),
            &mut stream,
            &mut clock2,
            &segs,
            extent,
            false,
            src,
            1,
            dst,
            &mut pos,
        )
        .unwrap();
        // 1 MiB / 128 KiB chunks = 8 copies, each synchronized
        assert_eq!(stream.stats().memcpys, 8);
        assert_eq!(stream.stats().syncs, 8);
        assert!(clock2.now() > clock.now());
    }

    #[test]
    fn mvapich_contiguous_pack_returns_early() {
        let (ctx, mut stream, mut clock, mut reg) = setup();
        let t = reg.type_contiguous(4096, MPI_BYTE).unwrap();
        let segs = segments(&reg, t).unwrap();
        let (_, extent) = reg.extent(t).unwrap();
        let src = filled_device(&ctx, 4096);
        let dst = ctx.malloc(4096).unwrap();
        let mut pos = 0;
        baseline_gpu_pack(
            &VendorProfile::mvapich(),
            &mut stream,
            &mut clock,
            &segs,
            extent,
            false,
            src,
            1,
            dst,
            &mut pos,
        )
        .unwrap();
        // the bug: no synchronize issued, stream still busy at return
        assert_eq!(stream.stats().syncs, 0);
        assert!(!stream.query(&clock));
    }

    #[test]
    fn incount_repeats_at_extent() {
        let (ctx, mut stream, mut clock, mut reg) = setup();
        let t = reg.type_vector(2, 2, 4, MPI_BYTE).unwrap(); // extent 6
        let segs = segments(&reg, t).unwrap();
        let (_, extent) = reg.extent(t).unwrap();
        assert_eq!(extent, 6);
        let src = filled_device(&ctx, 16);
        let dst = ctx.malloc(8).unwrap();
        let mut pos = 0;
        baseline_gpu_pack(
            &VendorProfile::openmpi(),
            &mut stream,
            &mut clock,
            &segs,
            extent,
            false,
            src,
            2,
            dst,
            &mut pos,
        )
        .unwrap();
        assert_eq!(
            ctx.memory().peek(dst, 8).unwrap(),
            vec![0, 1, 4, 5, 6, 7, 10, 11]
        );
    }

    #[test]
    fn host_pack_time_scales() {
        let p = VendorProfile::openmpi();
        let small = p.host_pack_time(1024, 1);
        let many_segs = p.host_pack_time(1024, 256);
        assert!(many_segs > small);
    }

    #[test]
    fn table1_profiles() {
        let all = VendorProfile::all();
        assert_eq!(all[0].id, VendorId::Mvapich);
        assert_eq!(all[1].id, VendorId::OpenMpi);
        assert_eq!(all[2].id, VendorId::SpectrumMpi);
        assert_eq!(all[2].version, "10.3.1.2");
        let labels: Vec<&str> = all.iter().map(|p| p.id.label()).collect();
        assert_eq!(labels, ["mvapich", "openmpi", "spectrum"]);
    }
}
