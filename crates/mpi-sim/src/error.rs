//! Error type for the simulated MPI runtime.

use std::fmt;

use gpu_sim::GpuError;

/// Errors raised by the simulated MPI runtime — the moral equivalents of
/// MPI error classes (`MPI_ERR_TYPE`, `MPI_ERR_ARG`, `MPI_ERR_TRUNCATE`,
/// ...), plus propagation of simulated-GPU faults.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiError {
    /// A datatype handle does not name a live datatype (`MPI_ERR_TYPE`).
    InvalidDatatype,
    /// A datatype was used in communication before `MPI_Type_commit`.
    NotCommitted,
    /// An argument violated a precondition (`MPI_ERR_ARG`); the string says
    /// which.
    InvalidArg(String),
    /// A receive matched a message longer than the posted buffer
    /// (`MPI_ERR_TRUNCATE`).
    Truncated {
        /// Bytes the sender shipped.
        sent: usize,
        /// Bytes the receive buffer could hold.
        capacity: usize,
    },
    /// Rank out of range for the communicator (`MPI_ERR_RANK`).
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// Pack/unpack output buffer too small (`MPI_ERR_BUFFER`).
    BufferTooSmall {
        /// Bytes required.
        required: usize,
        /// Bytes available after the current position.
        available: usize,
    },
    /// A simulated GPU operation failed.
    Gpu(GpuError),
    /// The peer rank exited before matching a pending operation.
    PeerGone,
    /// Internal invariant violation (a bug in the simulator, not the
    /// application).
    Internal(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidDatatype => write!(f, "invalid datatype handle"),
            MpiError::NotCommitted => write!(f, "datatype used before MPI_Type_commit"),
            MpiError::InvalidArg(s) => write!(f, "invalid argument: {s}"),
            MpiError::Truncated { sent, capacity } => {
                write!(
                    f,
                    "message truncated: {sent} bytes sent, buffer holds {capacity}"
                )
            }
            MpiError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::BufferTooSmall {
                required,
                available,
            } => write!(
                f,
                "buffer too small: {required} bytes required, {available} available"
            ),
            MpiError::Gpu(e) => write!(f, "GPU error: {e}"),
            MpiError::PeerGone => write!(f, "peer rank exited with operations pending"),
            MpiError::Internal(s) => write!(f, "internal simulator error: {s}"),
        }
    }
}

impl std::error::Error for MpiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpiError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for MpiError {
    fn from(e: GpuError) -> Self {
        MpiError::Gpu(e)
    }
}

/// Result alias for MPI-runtime operations.
pub type MpiResult<T> = Result<T, MpiError>;
