//! Error type for the simulated MPI runtime.
//!
//! Since the fault-injection work the taxonomy is split into *transient*
//! errors (worth retrying or degrading around: injected link faults,
//! GPU resource pressure) and *fatal* ones (program errors that must
//! propagate); see [`MpiError::is_transient`].

use std::fmt;

use gpu_sim::GpuError;

use crate::datatype::Envelope;

/// Errors raised by the simulated MPI runtime — the moral equivalents of
/// MPI error classes (`MPI_ERR_TYPE`, `MPI_ERR_ARG`, `MPI_ERR_TRUNCATE`,
/// ...), plus propagation of simulated-GPU faults and the transient
/// communication failures produced by the fault injector.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum MpiError {
    /// A datatype handle does not name a live datatype (`MPI_ERR_TYPE`).
    InvalidDatatype,
    /// A datatype was used in communication before `MPI_Type_commit`.
    NotCommitted,
    /// An argument violated a precondition (`MPI_ERR_ARG`); the string says
    /// which.
    InvalidArg(String),
    /// A receive matched a message longer than the posted buffer
    /// (`MPI_ERR_TRUNCATE`).
    Truncated {
        /// Bytes the sender shipped.
        sent: usize,
        /// Bytes the receive buffer could hold.
        capacity: usize,
        /// Envelope of the receiving datatype, when one was involved
        /// (raw-bytes receives carry `None`).
        envelope: Option<Envelope>,
    },
    /// Rank out of range for the communicator (`MPI_ERR_RANK`).
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// Pack/unpack output buffer too small (`MPI_ERR_BUFFER`).
    BufferTooSmall {
        /// Bytes required.
        required: usize,
        /// Bytes available after the current position.
        available: usize,
        /// Envelope of the datatype being packed/unpacked, when known.
        envelope: Option<Envelope>,
    },
    /// A simulated GPU operation failed.
    Gpu(GpuError),
    /// The peer rank exited before matching a pending operation.
    PeerGone,
    /// The communicator was revoked (ULFM `MPI_Comm_revoke`): a rank that
    /// observed a failure poisoned the communicator so every member blocked
    /// in an operation errors out instead of hanging. Only
    /// `agree_on_failures` and `shrink` are legal until recovery completes.
    Revoked,
    /// A transient communication failure on the link to `peer` — the
    /// retryable condition the fault injector produces. Callers normally
    /// never see this: the p2p layer retries with backoff and surfaces
    /// [`MpiError::CommFailed`] only once the budget is exhausted.
    CommTransient {
        /// The peer rank on the failing link.
        peer: usize,
    },
    /// The link to `peer` still failed after `attempts` tries (the
    /// retry budget was exhausted).
    CommFailed {
        /// The peer rank on the failing link.
        peer: usize,
        /// Total attempts made (1 initial + retries).
        attempts: u32,
    },
    /// Every delivery attempt from `peer` failed its payload checksum: the
    /// NACK/retransmit handshake exhausted its budget without a clean copy.
    /// Like [`MpiError::CommFailed`] this is a *communicator* failure —
    /// the link is lying, not the program — so recovery paths treat it as
    /// repairable by revoke/agree/shrink.
    Corrupted {
        /// The peer rank whose payloads kept failing verification.
        peer: usize,
        /// Total delivery attempts made (1 initial + retransmits).
        attempts: u32,
    },
    /// The world quiesced with operations still pending: every live rank is
    /// blocked (in a receive, a wait or a barrier) and no message is in
    /// flight toward any blocked rank, so no rank can ever make progress.
    ///
    /// Produced by the virtual-time watchdog (see [`crate::Watchdog`])
    /// instead of letting the test binary hang. Named after the condition,
    /// not a peer: a deadlock is a property of the whole world.
    Deadlock {
        /// World ranks that were blocked when quiescence was detected.
        ranks: Vec<usize>,
        /// Human-readable description of each stuck rank's pending
        /// operation, parallel to `ranks`.
        ops: Vec<String>,
    },
    /// A rank's body panicked. The runtime catches the unwind at the rank
    /// boundary so one crashing rank cannot discard every other rank's
    /// result (or tear down the whole world scope) — the panic surfaces
    /// as this typed error carrying the panicking rank's id and message,
    /// and the run's other results stay observable.
    RankPanicked {
        /// World rank whose body panicked.
        rank: usize,
        /// The panic payload, when it was a string (the common case);
        /// `"<non-string panic payload>"` otherwise.
        message: String,
    },
    /// Internal invariant violation (a bug in the simulator, not the
    /// application).
    Internal(String),
}

impl MpiError {
    /// Is this error *transient* — a condition that bounded retry or a
    /// degraded path may recover from — rather than a program error?
    ///
    /// Transient: [`MpiError::CommTransient`] and any [`MpiError::Gpu`]
    /// whose GPU error is itself transient ([`GpuError::is_transient`]:
    /// out-of-memory and stream faults). Everything else — bad arguments,
    /// truncation, uncommitted types, exhausted retries, dead peers — is
    /// fatal to the operation that observed it.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            MpiError::CommTransient { .. } => true,
            MpiError::Gpu(e) => e.is_transient(),
            _ => false,
        }
    }

    /// Is this a *communicator* failure — the class of errors a ULFM-style
    /// recovery path (revoke → agree → shrink) can repair, as opposed to a
    /// program error in the operation itself?
    ///
    /// Covers dead peers ([`MpiError::PeerGone`]), revoked communicators
    /// ([`MpiError::Revoked`]), exhausted link retries
    /// ([`MpiError::CommFailed`]) and exhausted corruption retransmits
    /// ([`MpiError::Corrupted`]).
    #[must_use]
    pub fn is_comm_failure(&self) -> bool {
        matches!(
            self,
            MpiError::PeerGone
                | MpiError::Revoked
                | MpiError::CommFailed { .. }
                | MpiError::Corrupted { .. }
        )
    }
}

/// Render the combiner of an optional envelope for error messages.
fn envelope_suffix(envelope: &Option<Envelope>) -> String {
    match envelope {
        Some(env) => format!(" (datatype combiner {:?})", env.combiner),
        None => String::new(),
    }
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidDatatype => write!(f, "invalid datatype handle"),
            MpiError::NotCommitted => write!(f, "datatype used before MPI_Type_commit"),
            MpiError::InvalidArg(s) => write!(f, "invalid argument: {s}"),
            MpiError::Truncated {
                sent,
                capacity,
                envelope,
            } => {
                write!(
                    f,
                    "message truncated: {sent} bytes sent, buffer holds {capacity}{}",
                    envelope_suffix(envelope)
                )
            }
            MpiError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::BufferTooSmall {
                required,
                available,
                envelope,
            } => write!(
                f,
                "buffer too small: {required} bytes required, {available} available{}",
                envelope_suffix(envelope)
            ),
            MpiError::Gpu(e) => write!(f, "GPU error: {e}"),
            MpiError::PeerGone => write!(f, "peer rank exited with operations pending"),
            MpiError::Revoked => write!(
                f,
                "communicator revoked; agree on failures and shrink before new operations"
            ),
            MpiError::CommTransient { peer } => {
                write!(f, "transient communication failure on link to rank {peer}")
            }
            MpiError::CommFailed { peer, attempts } => {
                write!(
                    f,
                    "communication with rank {peer} failed after {attempts} attempts"
                )
            }
            MpiError::Corrupted { peer, attempts } => {
                write!(
                    f,
                    "payload from rank {peer} failed checksum verification on all {attempts} delivery attempts"
                )
            }
            MpiError::Deadlock { ranks, ops } => {
                write!(f, "deadlock: world quiesced with operations pending [")?;
                for (i, (r, op)) in ranks.iter().zip(ops.iter()).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "rank {r}: {op}")?;
                }
                write!(f, "]")
            }
            MpiError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            MpiError::Internal(s) => write!(f, "internal simulator error: {s}"),
        }
    }
}

impl std::error::Error for MpiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpiError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for MpiError {
    fn from(e: GpuError) -> Self {
        MpiError::Gpu(e)
    }
}

/// Result alias for MPI-runtime operations.
pub type MpiResult<T> = Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_taxonomy() {
        assert!(MpiError::CommTransient { peer: 1 }.is_transient());
        assert!(MpiError::Gpu(GpuError::OutOfMemory {
            requested: 8,
            available: 0
        })
        .is_transient());
        assert!(MpiError::Gpu(GpuError::StreamFault { op: "pack".into() }).is_transient());
        assert!(!MpiError::Gpu(GpuError::NotHostAccessible).is_transient());
        assert!(!MpiError::CommFailed {
            peer: 1,
            attempts: 4
        }
        .is_transient());
        assert!(!MpiError::PeerGone.is_transient());
        assert!(!MpiError::Revoked.is_transient());
        assert!(!MpiError::NotCommitted.is_transient());
        assert!(!MpiError::Truncated {
            sent: 2,
            capacity: 1,
            envelope: None
        }
        .is_transient());
    }

    #[test]
    fn comm_failure_taxonomy() {
        assert!(MpiError::PeerGone.is_comm_failure());
        assert!(MpiError::Revoked.is_comm_failure());
        assert!(MpiError::CommFailed {
            peer: 2,
            attempts: 4
        }
        .is_comm_failure());
        assert!(MpiError::Corrupted {
            peer: 2,
            attempts: 4
        }
        .is_comm_failure());
        assert!(!MpiError::CommTransient { peer: 2 }.is_comm_failure());
        assert!(!MpiError::NotCommitted.is_comm_failure());
        assert!(!MpiError::Internal("x".into()).is_comm_failure());
    }

    #[test]
    fn deadlock_is_neither_transient_nor_repairable() {
        // A quiesced world cannot be retried into progress and revoking
        // the communicator cannot un-stick ranks that already blocked, so
        // the watchdog verdict sits outside both recovery taxonomies.
        let dl = MpiError::Deadlock {
            ranks: vec![0, 2],
            ops: vec!["recv(src=1, tag=5)".into(), "barrier".into()],
        };
        assert!(!dl.is_transient());
        assert!(!dl.is_comm_failure());
        let msg = format!("{dl}");
        assert!(msg.contains("rank 0: recv(src=1, tag=5)"), "{msg}");
        assert!(msg.contains("rank 2: barrier"), "{msg}");
    }

    #[test]
    fn rank_panic_is_fatal_and_names_the_rank() {
        // A panic is a program error: not retryable, and not something
        // revoke/shrink can repair (the rank's state is gone).
        let e = MpiError::RankPanicked {
            rank: 3,
            message: "index out of bounds".into(),
        };
        assert!(!e.is_transient());
        assert!(!e.is_comm_failure());
        let msg = format!("{e}");
        assert!(msg.contains("rank 3"), "{msg}");
        assert!(msg.contains("index out of bounds"), "{msg}");
    }

    #[test]
    fn messages_carry_envelope_context() {
        use crate::datatype::Combiner;
        let env = Envelope {
            num_integers: 3,
            num_addresses: 0,
            num_datatypes: 1,
            combiner: Combiner::Vector,
        };
        let msg = format!(
            "{}",
            MpiError::Truncated {
                sent: 128,
                capacity: 32,
                envelope: Some(env),
            }
        );
        assert!(msg.contains("Vector"), "{msg}");
        let msg = format!(
            "{}",
            MpiError::BufferTooSmall {
                required: 64,
                available: 16,
                envelope: None,
            }
        );
        assert!(!msg.contains("combiner"), "{msg}");
    }
}
