//! Point-to-point messaging with system-MPI datatype semantics.
//!
//! `send`/`recv` here behave like the *system MPI* of the emulated vendor:
//! CUDA-aware (device buffers allowed), with non-contiguous GPU datatypes
//! handled by the vendor's baseline copy-per-block machinery
//! ([`crate::vendor`]). TEMPI's accelerated path in `tempi-core` is built
//! *on top of* the raw-bytes entry points ([`RankCtx::send_bytes`] /
//! [`RankCtx::recv_bytes`]), exactly as the real interposer can only invoke
//! the underlying implementation through its public interface.
//!
//! Timing: a send deposits a message stamped with its departure instant;
//! the wire time is charged on the receive side as
//! `completion = max(local now, depart + transfer_time)`. Message order per
//! (source, destination) pair is preserved (MPI's non-overtaking rule).

use gpu_sim::{GpuPtr, MemSpace, SimTime};

use crate::datatype::typemap::{segments, Segment};
use crate::datatype::{Combiner, Datatype};
use crate::error::{MpiError, MpiResult};
use crate::fault::FaultInjector;
use crate::net::Transport;
use crate::runtime::RankCtx;
use crate::vendor::{baseline_gpu_pack, baseline_gpu_unpack, is_contiguous};

/// Tags below this value are reserved for internal collectives.
pub(crate) const MIN_USER_TAG: i32 = 0;
/// Internal tag used by `alltoallv`.
pub(crate) const TAG_ALLTOALLV: i32 = -100;
/// Internal tag used by gather-style helpers.
pub(crate) const TAG_GATHER: i32 = -101;
/// Control message: the sender observed its own scheduled death. Sent to
/// every world rank exactly once; `depart` carries the *scheduled* exit
/// instant so every observer converges on the same virtual time.
pub(crate) const TAG_DEATH: i32 = -110;
/// Control message: the communicator identified by the message epoch was
/// revoked (ULFM `MPI_Comm_revoke`).
pub(crate) const TAG_REVOKE: i32 = -111;
/// Agreement protocol: a participant ships its locally-known failure set
/// to the current coordinator candidate.
pub(crate) const TAG_AGREE_GATHER: i32 = -112;
/// Agreement protocol: the decided failure set, flooded to every member.
pub(crate) const TAG_AGREE_DECIDE: i32 = -113;
/// Dissemination-barrier traffic on a (possibly shrunk) communicator.
pub(crate) const TAG_BARRIER: i32 = -114;

/// Chunk metadata for pipelined multi-part transfers (TEMPI's §8
/// pipelining extension rides on the envelope, like a real rendezvous
/// protocol header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartInfo {
    /// Zero-based chunk index.
    pub index: u32,
    /// Total number of chunks in this logical message.
    pub total: u32,
}

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank (in the sender's communicator at send time).
    pub src: usize,
    /// Sending rank in the original world — stable across shrinks; drives
    /// the network model's node-locality decisions.
    pub src_world: usize,
    /// Communicator epoch the message was sent under. Receivers only match
    /// traffic from their current epoch; anything older is late traffic
    /// from before a shrink and is dropped, not misdelivered.
    pub epoch: u64,
    /// Message tag.
    pub tag: i32,
    /// The packed payload bytes.
    pub payload: Vec<u8>,
    /// Address space of the sender's buffer (drives CUDA-aware routing).
    pub sender_space: MemSpace,
    /// Sender's virtual clock at departure.
    pub depart: SimTime,
    /// Chunk metadata when this is one part of a pipelined transfer.
    pub part: Option<PartInfo>,
    /// FNV-1a 64 of `payload`, stamped by integrity-enabled senders.
    /// Receivers verify it against the bytes that crossed the (possibly
    /// corrupting) wire; `None` means the envelope carries no integrity
    /// information and corruption is delivered silently.
    pub checksum: Option<u64>,
}

/// FNV-1a 64 over a payload: the content checksum integrity-enabled
/// envelopes carry, and the same function checkpoint frames use — one
/// checksum algorithm end to end so a frame verified at rest and a payload
/// verified in flight agree byte-for-byte.
#[must_use]
pub fn payload_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Outcome of [`RankCtx::sift`]: what an inbound message means to the
/// receiver's control plane before any data matching happens.
pub(crate) enum Sifted {
    /// A data (or agreement) message from the current/future epoch.
    Keep(Message),
    /// A death notice: `(world rank, scheduled exit instant)`.
    Death(usize, SimTime),
    /// A revocation of the current epoch that newly poisoned this rank.
    Revoke,
    /// Absorbed control traffic or a stale-epoch message; nothing to do.
    Absorbed,
}

/// Completion information of a receive (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Actual source rank.
    pub source: usize,
    /// Actual tag.
    pub tag: i32,
    /// Payload size in bytes (`MPI_Get_count` with `MPI_BYTE`).
    pub bytes: usize,
}

/// Result of an `MPI_Probe`: message metadata without consumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeInfo {
    /// Sending rank.
    pub source: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Address space of the sender's buffer.
    pub sender_space: MemSpace,
    /// Chunk metadata when the matched message is part of a pipelined
    /// transfer.
    pub part: Option<PartInfo>,
}

/// Everything the send/recv paths need to know about a datatype, computed
/// once per call (the TEMPI layer caches its own richer plan instead).
pub(crate) struct WireType {
    pub segs: Vec<Segment>,
    pub extent: i64,
    pub size: usize,
    pub root_is_vector: bool,
}

impl RankCtx {
    pub(crate) fn wire_type(&self, dt: Datatype) -> MpiResult<WireType> {
        if !self.is_committed(dt)? {
            return Err(MpiError::NotCommitted);
        }
        let reg = self.registry().read();
        let segs = segments(&reg, dt)?;
        let attrs = reg.attrs(dt)?;
        let root_is_vector = matches!(reg.get_envelope(dt)?.combiner, Combiner::Vector);
        Ok(WireType {
            segs,
            extent: attrs.extent(),
            size: attrs.size as usize,
            root_is_vector,
        })
    }

    /// Gather the bytes a datatype covers (functional effect only; callers
    /// charge the timing appropriate to their path).
    pub(crate) fn gather_payload(
        &self,
        buf: GpuPtr,
        count: usize,
        wt: &WireType,
    ) -> MpiResult<Vec<u8>> {
        let mem = self.gpu.memory();
        let mut out = Vec::with_capacity(wt.size * count);
        for item in 0..count {
            let base = item as i64 * wt.extent;
            for seg in &wt.segs {
                let p = buf.offset_by(base + seg.off).ok_or_else(|| {
                    MpiError::InvalidArg("datatype reaches before buffer start".to_string())
                })?;
                out.extend_from_slice(&mem.peek(p, seg.len as usize)?);
            }
        }
        Ok(out)
    }

    /// Scatter payload bytes into a datatype layout (functional effect
    /// only).
    pub(crate) fn scatter_payload(
        &self,
        buf: GpuPtr,
        count: usize,
        wt: &WireType,
        payload: &[u8],
    ) -> MpiResult<()> {
        let mut mem = self.gpu.memory();
        let mut pos = 0usize;
        for item in 0..count {
            let base = item as i64 * wt.extent;
            for seg in &wt.segs {
                let p = buf.offset_by(base + seg.off).ok_or_else(|| {
                    MpiError::InvalidArg("datatype reaches before buffer start".to_string())
                })?;
                mem.poke(p, &payload[pos..pos + seg.len as usize])?;
                pos += seg.len as usize;
            }
        }
        Ok(())
    }

    // ---- fault-injection gates -----------------------------------------
    //
    // Each gate is a single `Option` check when no fault plan is active, so
    // the fault-free hot path pays nothing beyond a branch.

    /// Fail the calling operation if this rank's *own* scheduled exit has
    /// passed. The first observation broadcasts a death notice to every
    /// world peer (stamped with the scheduled instant, and FIFO-ordered
    /// after all real traffic already sent), so peers blocked on this rank
    /// wake up deterministically instead of hanging.
    pub(crate) fn self_exit_check(&mut self) -> MpiResult<()> {
        let exit = match &self.faults.injector {
            Some(inj) => inj
                .exit_time(self.world_rank)
                .filter(|&at| at <= self.clock.now()),
            None => None,
        };
        if let Some(at) = exit {
            self.announce_death(at);
            self.faults.stats.peer_gone += 1;
            return Err(MpiError::PeerGone);
        }
        Ok(())
    }

    /// Broadcast this rank's death notice once (idempotent). Raw router
    /// pushes: no clock advance, no fault gating, no backpressure — a
    /// dying rank always manages to tell the world when.
    pub(crate) fn announce_death(&mut self, at: SimTime) {
        if self.death_sent {
            return;
        }
        self.death_sent = true;
        let notice = Message {
            src: self.rank,
            src_world: self.world_rank,
            epoch: self.epoch,
            tag: TAG_DEATH,
            payload: Vec::new(),
            sender_space: MemSpace::Host,
            depart: at,
            part: None,
            checksum: None,
        };
        let sched = self.sched.as_deref();
        for w in 0..self.world_size {
            if w == self.world_rank {
                continue;
            }
            // Charge the in-flight account before the delivery so the
            // watchdog can never observe the notice as neither in flight
            // nor queued.
            if let Some(wd) = &self.watchdog {
                wd.note_send(w);
            }
            self.router.push(w, notice.clone(), sched);
        }
    }

    /// Fail with [`MpiError::PeerGone`] if `peer` (a rank in the current
    /// communicator) is scheduled to have exited by the caller's current
    /// virtual instant. Purely clock-based, so the decision replays
    /// identically in virtual time.
    fn fault_check_peer(&mut self, peer: usize) -> MpiResult<()> {
        let peer_world = self.comm_members.get(peer).unwrap_or(peer);
        let dead_at = match &self.faults.injector {
            Some(inj) if inj.peer_dead(peer_world, self.clock.now()) => inj.exit_time(peer_world),
            _ => None,
        };
        if let Some(at) = dead_at {
            self.known_dead.entry(peer_world).or_insert(at);
            self.faults.stats.peer_gone += 1;
            return Err(MpiError::PeerGone);
        }
        Ok(())
    }

    /// Send-side gate: observes scheduled peer deaths, then retries
    /// injected transient link faults with exponential backoff charged to
    /// the virtual clock. Exhausting the retry budget surfaces
    /// [`MpiError::CommFailed`].
    fn fault_gate_send(&mut self, dest: usize) -> MpiResult<()> {
        if self.faults.injector.is_none() {
            return Ok(());
        }
        self.self_exit_check()?;
        self.fault_check_peer(dest)?;
        let max_retries = self.faults.injector.as_ref().expect("gated").max_retries();
        for attempt in 0..=max_retries {
            let failed = self
                .faults
                .injector
                .as_mut()
                .expect("gated")
                .send_should_fail();
            if !failed {
                return Ok(());
            }
            self.faults.stats.send_faults += 1;
            if attempt == max_retries {
                break;
            }
            let backoff = self
                .faults
                .injector
                .as_ref()
                .expect("gated")
                .backoff(attempt);
            self.clock.advance(backoff);
            self.faults.stats.retries += 1;
            self.faults.stats.backoff_time += backoff;
        }
        Err(MpiError::CommFailed {
            peer: dest,
            attempts: max_retries + 1,
        })
    }

    /// Receive-side gate, mirroring [`Self::fault_gate_send`]. Wildcard
    /// receives (`src == None`) skip the peer-death check and report
    /// `usize::MAX` as the peer on retry exhaustion.
    pub(crate) fn fault_gate_recv(&mut self, src: Option<usize>) -> MpiResult<()> {
        if self.faults.injector.is_none() {
            return Ok(());
        }
        self.self_exit_check()?;
        if let Some(s) = src {
            self.fault_check_peer(s)?;
        }
        let max_retries = self.faults.injector.as_ref().expect("gated").max_retries();
        for attempt in 0..=max_retries {
            let failed = self
                .faults
                .injector
                .as_mut()
                .expect("gated")
                .recv_should_fail();
            if !failed {
                return Ok(());
            }
            self.faults.stats.recv_faults += 1;
            if attempt == max_retries {
                break;
            }
            let backoff = self
                .faults
                .injector
                .as_ref()
                .expect("gated")
                .backoff(attempt);
            self.clock.advance(backoff);
            self.faults.stats.retries += 1;
            self.faults.stats.backoff_time += backoff;
        }
        Err(MpiError::CommFailed {
            peer: src.unwrap_or(usize::MAX),
            attempts: max_retries + 1,
        })
    }

    /// Receive-side delivery of a matched message: charge the wire time
    /// (`completion = max(now, depart + transfer)`), apply any injected
    /// in-transit corruption, and — when the envelope carries a checksum —
    /// verify it and run the bounded NACK/retransmit handshake, all in
    /// virtual time on this rank's clock. Returns the bytes that actually
    /// land in the receive buffer.
    ///
    /// The corruption model is receive-sided: the sender's pristine payload
    /// sits in the in-flight [`Message`], and this rank's seeded injector
    /// decides per *delivery attempt* whether the bytes that crossed the
    /// wire got a bit flipped. A retransmit therefore re-reads the pristine
    /// copy and redraws the corruption coin; each round trip charges one
    /// NACK wire plus one payload wire. Exhausting the budget surfaces
    /// [`MpiError::Corrupted`]. Without a checksum (integrity disabled) a
    /// flipped byte is delivered silently — the failure mode the integrity
    /// envelope exists to close.
    pub(crate) fn deliver_payload(
        &mut self,
        msg: &Message,
        dst_space: MemSpace,
    ) -> MpiResult<Vec<u8>> {
        let bytes = msg.payload.len();
        let transport = Transport::for_spaces(msg.sender_space, dst_space);
        let wire = self
            .net
            .transfer_time(bytes, transport, msg.src_world, self.world_rank);
        self.clock.advance_to(msg.depart + wire);
        self.fault_extra_delay();
        self.clock.advance(self.net.recv_overhead);
        let max_retries = self
            .faults
            .injector
            .as_ref()
            .map_or(0, FaultInjector::max_retries);
        let mut attempt: u32 = 0;
        loop {
            let flip = match self.faults.injector.as_mut() {
                Some(inj) => inj.corrupt_delivery(bytes),
                None => None,
            };
            let delivered = match flip {
                Some((idx, mask)) => {
                    self.faults.stats.corruptions += 1;
                    let mut p = msg.payload.clone();
                    p[idx] ^= mask;
                    p
                }
                None => msg.payload.clone(),
            };
            let Some(expect) = msg.checksum else {
                return Ok(delivered);
            };
            if payload_checksum(&delivered) == expect {
                return Ok(delivered);
            }
            self.faults.stats.nacks += 1;
            if attempt >= max_retries {
                return Err(MpiError::Corrupted {
                    peer: msg.src,
                    attempts: attempt + 1,
                });
            }
            // one NACK back to the sender plus one payload retransmit,
            // charged to this rank's virtual clock
            let nack_wire =
                self.net
                    .transfer_time(1, Transport::Cpu, self.world_rank, msg.src_world);
            let round_trip = nack_wire + wire;
            self.clock.advance(round_trip);
            self.faults.stats.nack_time += round_trip;
            self.faults.stats.retransmits += 1;
            attempt += 1;
        }
    }

    /// Charge any injected extra delivery latency to the virtual clock
    /// (called on the receive side once a message has arrived).
    pub(crate) fn fault_extra_delay(&mut self) {
        let d = match self.faults.injector.as_mut() {
            Some(inj) => inj.extra_delay(),
            None => None,
        };
        if let Some(d) = d {
            self.clock.advance(d);
            self.faults.stats.delays += 1;
            self.faults.stats.delay_time += d;
        }
    }

    fn post(
        &mut self,
        dest: usize,
        tag: i32,
        payload: Vec<u8>,
        sender_space: MemSpace,
    ) -> MpiResult<()> {
        self.post_at(dest, tag, payload, sender_space, SimTime::ZERO, None)
    }

    /// Post a message whose payload only becomes available at `ready_at`
    /// (e.g. produced by an asynchronous GPU kernel): the departure instant
    /// is the later of the CPU posting time and the data-ready time.
    pub(crate) fn post_at(
        &mut self,
        dest: usize,
        tag: i32,
        payload: Vec<u8>,
        sender_space: MemSpace,
        ready_at: SimTime,
        part: Option<PartInfo>,
    ) -> MpiResult<()> {
        self.clock.advance(self.net.send_overhead);
        // `dest` is a rank in the *current* communicator; the router is
        // indexed by world rank.
        let dest_world = self.comm_members.get(dest).unwrap_or(dest);
        let checksum = if self.integrity {
            Some(payload_checksum(&payload))
        } else {
            None
        };
        let msg = Message {
            src: self.rank,
            src_world: self.world_rank,
            epoch: self.epoch,
            tag,
            payload,
            sender_space,
            depart: self.clock.now().max(ready_at),
            part,
            checksum,
        };
        // Stamped at the CPU's now (not the possibly-future departure
        // instant) so lane timestamps stay monotone; the actual departure
        // goes in the args.
        self.tracer.debug_instant(
            self.world_rank as u32,
            tempi_trace::LANE_CPU,
            "mpi",
            "wire.depart",
            self.clock.now().as_ps(),
            || {
                vec![
                    ("dest", dest_world.into()),
                    ("tag", f64::from(tag).into()),
                    ("bytes", msg.payload.len().into()),
                    ("depart_ps", msg.depart.as_ps().into()),
                ]
            },
        );
        // The in-flight account is charged *before* the delivery so the
        // watchdog can never observe the message as neither in flight nor
        // queued (a false quiescence). Router pushes never fail — an inbox
        // has no "disconnected" state; traffic to an exited rank just sits
        // in its queue.
        //
        // User payloads to a remote rank go through the bounded path: a
        // full destination inbox parks *this sender* until the receiver
        // drains (backpressure — what keeps a 4,096-rank send storm at
        // O(ranks · HWM) memory). Control traffic (negative tags) and
        // self-sends are exempt: recovery progress is built on them, and a
        // rank's send to itself can never be drained while it is parked.
        if let Some(wd) = &self.watchdog {
            wd.note_send(dest_world);
        }
        if tag >= MIN_USER_TAG && dest_world != self.world_rank {
            let now = self.clock.now();
            self.router.push_bounded(
                self.world_rank,
                dest_world,
                msg,
                now,
                self.sched.as_deref(),
                self.watchdog.as_deref(),
            );
        } else {
            self.router.push(dest_world, msg, self.sched.as_deref());
        }
        Ok(())
    }

    /// Send raw bytes as one chunk of a pipelined transfer: the wire
    /// departure waits for `ready_at` (when the packing kernel producing
    /// this chunk completes on the GPU timeline).
    pub fn send_bytes_part(
        &mut self,
        buf: GpuPtr,
        len: usize,
        dest: usize,
        tag: i32,
        ready_at: SimTime,
        part: PartInfo,
    ) -> MpiResult<()> {
        self.check_comm()?;
        self.check_rank(dest)?;
        self.fault_gate_send(dest)?;
        let payload = self.gpu.memory().peek(buf, len)?;
        self.post_at(dest, tag, payload, buf.space, ready_at, Some(part))
    }

    /// Classify one inbound message: absorb control-plane traffic (death
    /// notices, revocations, stale epochs) and pass everything else on.
    /// Control messages never enter the `pending` queue.
    pub(crate) fn sift(&mut self, m: Message) -> Sifted {
        match m.tag {
            TAG_DEATH => {
                let at = m.depart;
                if let std::collections::btree_map::Entry::Vacant(e) =
                    self.known_dead.entry(m.src_world)
                {
                    e.insert(at);
                    self.faults.stats.death_notices += 1;
                }
                Sifted::Death(m.src_world, at)
            }
            TAG_REVOKE => {
                if m.epoch == self.epoch && !self.revoked {
                    self.revoked = true;
                    self.faults.stats.revocations += 1;
                    Sifted::Revoke
                } else {
                    Sifted::Absorbed
                }
            }
            _ if m.epoch < self.epoch => {
                self.faults.stats.stale_dropped += 1;
                Sifted::Absorbed
            }
            _ => Sifted::Keep(m),
        }
    }

    /// The scheduled exit instant of the peer a receive is directed at, if
    /// that peer is already known dead — or, for a wildcard, the earliest
    /// known death among current members (ULFM `MPI_ANY_SOURCE` semantics:
    /// a wildcard cannot be guaranteed to complete once any member died).
    fn dead_recv_target(&self, src: Option<usize>) -> Option<SimTime> {
        if self.known_dead.is_empty() {
            return None;
        }
        match src {
            Some(s) => self
                .comm_members
                .get(s)
                .and_then(|w| self.known_dead.get(&w).copied()),
            None => self
                .comm_members
                .iter()
                .filter_map(|w| self.known_dead.get(&w).copied())
                .min(),
        }
    }

    // ---- watchdog-aware inbox access ------------------------------------

    /// Pull the next message from this rank's inbox, blocking until one
    /// arrives. Under the event scheduler the fiber parks (described by
    /// `desc`, rendered lazily) and a structural deadlock verdict unwinds
    /// it as [`MpiError::Deadlock`]. Under the thread backend without a
    /// watchdog this is a plain condvar wait; with one, the rank registers
    /// as blocked and re-evaluates the quiescence predicate on the poll
    /// interval while parked.
    pub(crate) fn wd_blocking_recv(&mut self, desc: impl FnOnce() -> String) -> MpiResult<Message> {
        if let Some(sched) = self.sched.clone() {
            // Cache the rendering so a spurious-wake re-park doesn't
            // re-format.
            let mut rendered: Option<String> = None;
            let mut desc = Some(desc);
            let mut render = || {
                rendered
                    .get_or_insert_with(|| (desc.take().expect("rendered once"))())
                    .clone()
            };
            let msg =
                self.router
                    .recv_sched(self.world_rank, &sched, self.clock.now(), &mut render);
            return match msg {
                Some(m) => Ok(m),
                None => {
                    let v = sched.verdict().expect("recv_sched only fails condemned");
                    self.clock.advance_to(v.at);
                    Err(MpiError::Deadlock {
                        ranks: v.ranks,
                        ops: v.ops,
                    })
                }
            };
        }
        let Some(wd) = self.watchdog.clone() else {
            return Ok(self.router.recv_thread(self.world_rank));
        };
        if let Some(v) = wd.verdict() {
            // The world was already declared dead; never park again.
            self.clock.advance_to(v.at);
            return Err(MpiError::Deadlock {
                ranks: v.ranks,
                ops: v.ops,
            });
        }
        wd.block(self.world_rank, desc(), self.clock.now());
        loop {
            match self
                .router
                .recv_thread_timeout(self.world_rank, wd.poll_interval())
            {
                Some(msg) => {
                    // Slot clear + in-flight decrement happen under one
                    // lock so the checker can't see a false quiescence.
                    wd.unblock_after_recv(self.world_rank);
                    return Ok(msg);
                }
                None => {
                    if let Some(v) = wd.poll_detect() {
                        self.clock.advance_to(v.at);
                        return Err(MpiError::Deadlock {
                            ranks: v.ranks,
                            ops: v.ops,
                        });
                    }
                }
            }
        }
    }

    /// Non-blocking inbox pull with watchdog accounting (the `try_recv`
    /// analogue of [`RankCtx::wd_blocking_recv`]). Under the event
    /// scheduler an empty inbox also yields the fiber: poll loops
    /// (`test()` spinning) must let peers run on a single worker, or the
    /// world would livelock.
    pub(crate) fn wd_try_recv(&mut self) -> Option<Message> {
        match self.router.try_recv(self.world_rank, self.sched.as_deref()) {
            Some(m) => {
                if let Some(wd) = &self.watchdog {
                    wd.note_recv(self.world_rank);
                }
                Some(m)
            }
            None => {
                if let Some(sched) = self.sched.clone() {
                    sched.yield_now(self.world_rank, self.clock.now());
                }
                None
            }
        }
    }

    /// Blocking match of `(src, tag)`; `None` means wildcard
    /// (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`; wildcards never match internal
    /// collective traffic). Only messages from the current communicator
    /// epoch match. A death notice from the awaited peer — or a revocation
    /// of the communicator — terminates a blocked match with an error
    /// instead of hanging.
    pub(crate) fn match_message(
        &mut self,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<Message> {
        // An explicit internal tag (collectives) may match wildcard-source;
        // otherwise wildcards only see user traffic (tag >= 0).
        let internal_requested = matches!(tag, Some(t) if t < MIN_USER_TAG);
        let epoch = self.epoch;
        let matches = move |m: &Message| -> bool {
            if m.epoch != epoch {
                return false;
            }
            let src_ok = match src {
                Some(s) => m.src == s,
                None => m.tag >= MIN_USER_TAG || internal_requested,
            };
            let tag_ok = match tag {
                Some(t) => m.tag == t,
                None => m.tag >= MIN_USER_TAG,
            };
            src_ok && tag_ok
        };
        if let Some(i) = self.pending.iter().position(matches) {
            return Ok(self.pending.remove(i).expect("index valid"));
        }
        // Nothing deliverable is queued; a receive aimed at a known-dead
        // peer can never complete. The clock still converges on the
        // scheduled exit instant, matching the blocked-then-notified path.
        if let Some(at) = self.dead_recv_target(src) {
            self.clock.advance_to(at);
            self.faults.stats.peer_gone += 1;
            return Err(MpiError::PeerGone);
        }
        loop {
            let msg = self.wd_blocking_recv(|| match (src, tag) {
                (Some(s), Some(t)) => format!("recv(src={s}, tag={t})"),
                (Some(s), None) => format!("recv(src={s}, tag=*)"),
                (None, Some(t)) => format!("recv(src=*, tag={t})"),
                (None, None) => "recv(src=*, tag=*)".to_string(),
            })?;
            match self.sift(msg) {
                Sifted::Keep(m) => {
                    if matches(&m) {
                        return Ok(m);
                    }
                    self.pending.push_back(m);
                }
                Sifted::Death(w, at) => {
                    let hit = match src {
                        Some(s) => self.comm_members.get(s) == Some(w),
                        None => self.comm_members.contains(w),
                    };
                    if hit {
                        self.clock.advance_to(at);
                        self.faults.stats.peer_gone += 1;
                        return Err(MpiError::PeerGone);
                    }
                }
                Sifted::Revoke => return Err(MpiError::Revoked),
                Sifted::Absorbed => {}
            }
        }
    }

    /// `MPI_Probe`: block until a matching message is available, without
    /// consuming it. The returned info includes the sender's buffer space,
    /// which TEMPI's receive path uses to pick the matching unpack method.
    pub fn probe(&mut self, src: Option<usize>, tag: Option<i32>) -> MpiResult<ProbeInfo> {
        self.check_comm()?;
        let internal_requested = matches!(tag, Some(t) if t < MIN_USER_TAG);
        let epoch = self.epoch;
        let matches = move |m: &Message| -> bool {
            if m.epoch != epoch {
                return false;
            }
            let src_ok = match src {
                Some(s) => m.src == s,
                None => m.tag >= MIN_USER_TAG || internal_requested,
            };
            let tag_ok = match tag {
                Some(t) => m.tag == t,
                None => m.tag >= MIN_USER_TAG,
            };
            src_ok && tag_ok
        };
        loop {
            if let Some(m) = self.pending.iter().find(|m| matches(m)) {
                return Ok(ProbeInfo {
                    source: m.src,
                    tag: m.tag,
                    bytes: m.payload.len(),
                    sender_space: m.sender_space,
                    part: m.part,
                });
            }
            if let Some(at) = self.dead_recv_target(src) {
                self.clock.advance_to(at);
                self.faults.stats.peer_gone += 1;
                return Err(MpiError::PeerGone);
            }
            let msg = self.wd_blocking_recv(|| format!("probe(src={src:?}, tag={tag:?})"))?;
            match self.sift(msg) {
                Sifted::Keep(m) => self.pending.push_back(m),
                Sifted::Revoke => return Err(MpiError::Revoked),
                Sifted::Death(..) | Sifted::Absorbed => {}
            }
        }
    }

    // ---- raw-bytes entry points (what an interposer can target) --------

    /// Send `len` raw bytes from `buf` (contiguous, like `MPI_Send` with
    /// `MPI_BYTE`). CUDA-aware: `buf` may be device memory.
    pub fn send_bytes(&mut self, buf: GpuPtr, len: usize, dest: usize, tag: i32) -> MpiResult<()> {
        self.check_comm()?;
        self.check_rank(dest)?;
        self.fault_gate_send(dest)?;
        let payload = self.gpu.memory().peek(buf, len)?;
        self.post(dest, tag, payload, buf.space)
    }

    /// Receive raw bytes into `buf` (capacity `maxlen`). Returns the
    /// completion [`Status`].
    pub fn recv_bytes(
        &mut self,
        buf: GpuPtr,
        maxlen: usize,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<Status> {
        self.check_comm()?;
        self.fault_gate_recv(src)?;
        let msg = self.match_message(src, tag)?;
        let bytes = msg.payload.len();
        if bytes > maxlen {
            return Err(MpiError::Truncated {
                sent: bytes,
                capacity: maxlen,
                envelope: None,
            });
        }
        let payload = self.deliver_payload(&msg, buf.space)?;
        self.gpu.memory().poke(buf, &payload)?;
        Ok(Status {
            source: msg.src,
            tag: msg.tag,
            bytes,
        })
    }

    // ---- datatype-aware system-MPI send/recv ----------------------------

    /// `MPI_Send`: send `count` items of `dt` from `buf`, using the
    /// vendor's baseline datatype handling when `buf` is non-contiguous GPU
    /// memory.
    pub fn send(
        &mut self,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        dest: usize,
        tag: i32,
    ) -> MpiResult<()> {
        self.check_comm()?;
        self.check_rank(dest)?;
        self.fault_gate_send(dest)?;
        let wt = self.wire_type(dt)?;
        let bytes = wt.size * count;
        let fully_contiguous =
            is_contiguous(&wt.segs) && (count <= 1 || wt.size as i64 == wt.extent);

        if bytes == 0 {
            return self.post(dest, tag, Vec::new(), buf.space);
        }

        if buf.space == MemSpace::Device && !fully_contiguous {
            // Vendor baseline: pack on the GPU block-by-block into a
            // temporary device buffer, then CUDA-aware transfer.
            let tmp = self.gpu.malloc(bytes)?;
            let mut pos = 0usize;
            // Split borrows: stream/clock are distinct fields.
            baseline_gpu_pack(
                &self.vendor.clone(),
                &mut self.stream,
                &mut self.clock,
                &wt.segs,
                wt.extent,
                wt.root_is_vector,
                buf,
                count,
                tmp,
                &mut pos,
            )?;
            let payload = self.gpu.memory().peek(tmp, bytes)?;
            self.gpu.free(tmp)?;
            return self.post(dest, tag, payload, MemSpace::Device);
        }

        // Contiguous device data, or host data (packed on the CPU).
        let payload = self.gather_payload(buf, count, &wt)?;
        if buf.space != MemSpace::Device && !fully_contiguous {
            let t = self.vendor.host_pack_time(bytes, wt.segs.len() * count);
            self.clock.advance(t);
        }
        self.post(dest, tag, payload, buf.space)
    }

    /// `MPI_Recv`: receive `count` items of `dt` into `buf`.
    pub fn recv(
        &mut self,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<Status> {
        self.check_comm()?;
        let wt = self.wire_type(dt)?;
        let capacity = wt.size * count;
        self.fault_gate_recv(src)?;
        let msg = self.match_message(src, tag)?;
        if msg.part.is_some() {
            // A pipelined (multi-part) transfer can only be consumed by a
            // receiver that reassembles the parts (TEMPI's recv). Matching
            // one chunk here would silently deliver partial data.
            return Err(MpiError::InvalidArg(
                "matched one chunk of a pipelined transfer; the receiver must                  use TEMPI's recv (both peers need TEMPI when pipeline_chunk                  is enabled)"
                    .to_string(),
            ));
        }
        let bytes = msg.payload.len();
        if bytes > capacity {
            return Err(MpiError::Truncated {
                sent: bytes,
                capacity,
                envelope: self.registry().read().get_envelope(dt).ok(),
            });
        }
        let payload = self.deliver_payload(&msg, buf.space)?;

        let items = bytes.checked_div(wt.size).unwrap_or(0);
        let fully_contiguous =
            is_contiguous(&wt.segs) && (items <= 1 || wt.size as i64 == wt.extent);

        if bytes == 0 {
            return Ok(Status {
                source: msg.src,
                tag: msg.tag,
                bytes,
            });
        }

        if buf.space == MemSpace::Device && !fully_contiguous {
            // Vendor baseline: stage packed bytes in a temporary device
            // buffer (delivery covered by the transfer), then unpack
            // block-by-block.
            let tmp = self.gpu.malloc(bytes)?;
            self.gpu.memory().poke(tmp, &payload)?;
            let mut pos = 0usize;
            baseline_gpu_unpack(
                &self.vendor.clone(),
                &mut self.stream,
                &mut self.clock,
                &wt.segs,
                wt.extent,
                wt.root_is_vector,
                tmp,
                &mut pos,
                buf,
                items,
            )?;
            self.gpu.free(tmp)?;
        } else {
            self.scatter_payload(buf, items, &wt, &payload)?;
            if buf.space != MemSpace::Device && !fully_contiguous {
                let t = self.vendor.host_pack_time(bytes, wt.segs.len() * items);
                self.clock.advance(t);
            }
        }
        Ok(Status {
            source: msg.src,
            tag: msg.tag,
            bytes,
        })
    }

    /// `MPI_Sendrecv` on raw bytes (used by ping-pong harnesses).
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv_bytes(
        &mut self,
        sendbuf: GpuPtr,
        sendlen: usize,
        dest: usize,
        recvbuf: GpuPtr,
        recvcap: usize,
        src: Option<usize>,
        tag: i32,
    ) -> MpiResult<Status> {
        self.send_bytes(sendbuf, sendlen, dest, tag)?;
        self.recv_bytes(recvbuf, recvcap, src, Some(tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::consts::*;
    use crate::runtime::{World, WorldConfig};

    #[test]
    fn bytes_roundtrip_host() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(64)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &[5u8; 64])?;
                ctx.send_bytes(buf, 64, 1, 7)?;
                Ok(0)
            } else {
                let st = ctx.recv_bytes(buf, 64, Some(0), Some(7))?;
                assert_eq!(
                    st,
                    Status {
                        source: 0,
                        tag: 7,
                        bytes: 64
                    }
                );
                assert_eq!(ctx.gpu.memory().peek(buf, 64)?, vec![5u8; 64]);
                Ok(ctx.clock.now().as_ps())
            }
        })
        .unwrap();
        // receiver clock includes the 2.2 µs CPU floor (ranks 0 and 1 share
        // a node on Summit: intra-node 0.8µs floor)
        let t = SimTime::from_ps(results[1]);
        assert!(t.as_us_f64() >= 0.8, "{t}");
    }

    #[test]
    fn gpu_transfer_uses_gpu_floor() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1; // force inter-node
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.malloc(16)?;
            if ctx.rank == 0 {
                ctx.send_bytes(buf, 16, 1, 1)?;
                Ok(0)
            } else {
                ctx.recv_bytes(buf, 16, Some(0), Some(1))?;
                Ok(ctx.clock.now().as_ps())
            }
        })
        .unwrap();
        let t = SimTime::from_ps(results[1]).as_us_f64();
        assert!(t >= 11.0, "GPU path floor: {t} µs");
    }

    #[test]
    fn truncation_detected() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(64)?;
            if ctx.rank == 0 {
                ctx.send_bytes(buf, 64, 1, 0)?;
                Ok(true)
            } else {
                let small = ctx.gpu.host_alloc(16)?;
                Ok(matches!(
                    ctx.recv_bytes(small, 16, Some(0), Some(0)),
                    Err(MpiError::Truncated {
                        sent: 64,
                        capacity: 16,
                        ..
                    })
                ))
            }
        })
        .unwrap();
        assert!(results[1]);
    }

    #[test]
    fn non_overtaking_order_per_pair() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(1)?;
            if ctx.rank == 0 {
                for i in 0..4u8 {
                    ctx.gpu.memory().poke(buf, &[i])?;
                    ctx.send_bytes(buf, 1, 1, 9)?;
                }
                Ok(vec![])
            } else {
                let mut got = vec![];
                for _ in 0..4 {
                    ctx.recv_bytes(buf, 1, Some(0), Some(9))?;
                    got.push(ctx.gpu.memory().peek(buf, 1)?[0]);
                }
                Ok(got)
            }
        })
        .unwrap();
        assert_eq!(results[1], vec![0, 1, 2, 3]);
    }

    #[test]
    fn wildcard_recv_matches_any_user_tag() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(4)?;
            if ctx.rank == 0 {
                ctx.send_bytes(buf, 4, 1, 42)?;
                Ok((0, 0))
            } else {
                let st = ctx.recv_bytes(buf, 4, None, None)?;
                Ok((st.source, st.tag))
            }
        })
        .unwrap();
        assert_eq!(results[1], (0, 42));
    }

    #[test]
    fn derived_type_send_recv_gpu() {
        // send a vector from GPU memory; receiver unpacks into a different
        // (subarray) layout of the same size — exercising baseline pack and
        // unpack on both sides
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let vec_t = ctx.type_vector(4, 2, 4, MPI_BYTE)?; // 8 bytes from 14-byte span
            ctx.type_commit_native(vec_t)?;
            let buf = ctx.gpu.malloc(16)?;
            if ctx.rank == 0 {
                let data: Vec<u8> = (0..16).collect();
                ctx.gpu.memory().poke(buf, &data)?;
                ctx.send(buf, 1, vec_t, 1, 3)?;
                Ok(vec![])
            } else {
                let st = ctx.recv(buf, 1, vec_t, Some(0), Some(3))?;
                assert_eq!(st.bytes, 8);
                let got = ctx.gpu.memory().peek(buf, 16)?;
                // vector blocks at offsets 0,4,8,12 (len 2) carry 0,1,4,5,8,9,12,13
                assert_eq!(&got[0..2], &[0, 1]);
                assert_eq!(&got[4..6], &[4, 5]);
                assert_eq!(&got[12..14], &[12, 13]);
                Ok(got)
            }
        })
        .unwrap();
        assert_eq!(results[1].len(), 16);
    }

    #[test]
    fn uncommitted_type_rejected() {
        let cfg = WorldConfig::summit(1);
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        let t = ctx.type_vector(2, 1, 2, MPI_BYTE).unwrap();
        let buf = ctx.gpu.host_alloc(16).unwrap();
        assert_eq!(ctx.send(buf, 1, t, 0, 0), Err(MpiError::NotCommitted));
    }

    #[test]
    fn self_send_recv_works() {
        let cfg = WorldConfig::summit(1);
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        let a = ctx.gpu.host_alloc(8).unwrap();
        let b = ctx.gpu.host_alloc(8).unwrap();
        ctx.gpu.memory().poke(a, &[3u8; 8]).unwrap();
        ctx.send_bytes(a, 8, 0, 0).unwrap();
        let st = ctx.recv_bytes(b, 8, Some(0), Some(0)).unwrap();
        assert_eq!(st.bytes, 8);
        assert_eq!(ctx.gpu.memory().peek(b, 8).unwrap(), vec![3u8; 8]);
    }

    #[test]
    fn ping_pong_half_time_matches_model() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let bytes = 1 << 20;
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(bytes)?;
            let peer = 1 - ctx.rank;
            ctx.barrier();
            ctx.reset_clock();
            if ctx.rank == 0 {
                ctx.send_bytes(buf, bytes, peer, 0)?;
                ctx.recv_bytes(buf, bytes, Some(peer), Some(0))?;
            } else {
                ctx.recv_bytes(buf, bytes, Some(peer), Some(0))?;
                ctx.send_bytes(buf, bytes, peer, 0)?;
            }
            Ok(ctx.clock.now().as_ps())
        })
        .unwrap();
        let total = SimTime::from_ps(results[0]).as_us_f64();
        // each direction: 2.2 µs floor + 1 MiB / 12.5 B/ns ≈ 84 µs → ~172 µs
        assert!(total > 160.0 && total < 200.0, "round trip {total} µs");
    }

    // ---- fault-injection gates -----------------------------------------

    use crate::fault::FaultPlan;

    fn faulty_ctx(spec: &str) -> crate::runtime::RankCtx {
        let cfg = WorldConfig::summit(1).with_faults(FaultPlan::parse(spec).unwrap());
        crate::runtime::RankCtx::standalone(&cfg)
    }

    #[test]
    fn transient_send_fault_retries_and_succeeds() {
        let mut ctx = faulty_ctx("send@0,backoff=10us");
        let buf = ctx.gpu.host_alloc(8).unwrap();
        // the scripted fault kills attempt 0; attempt 1 goes through
        ctx.send_bytes(buf, 8, 0, 0).unwrap();
        assert_eq!(ctx.faults.stats.send_faults, 1);
        assert_eq!(ctx.faults.stats.retries, 1);
        assert_eq!(ctx.faults.stats.backoff_time, SimTime::from_us(10));
        // the backoff was charged to the virtual clock (plus send overhead)
        assert_eq!(
            ctx.clock.now(),
            SimTime::from_us(10) + ctx.net.send_overhead
        );
        // the message really departed: it is receivable
        let st = ctx.recv_bytes(buf, 8, Some(0), Some(0)).unwrap();
        assert_eq!(st.bytes, 8);
    }

    #[test]
    fn exhausted_retries_surface_comm_failed() {
        let mut ctx = faulty_ctx("send=1.0,retries=2,backoff=10us");
        let buf = ctx.gpu.host_alloc(8).unwrap();
        let err = ctx.send_bytes(buf, 8, 0, 0).unwrap_err();
        assert_eq!(
            err,
            MpiError::CommFailed {
                peer: 0,
                attempts: 3
            }
        );
        assert!(!err.is_transient(), "an exhausted budget is fatal");
        assert_eq!(ctx.faults.stats.send_faults, 3);
        assert_eq!(ctx.faults.stats.retries, 2);
        // backoff 10 + 20 µs charged before giving up
        assert_eq!(ctx.faults.stats.backoff_time, SimTime::from_us(30));
    }

    #[test]
    fn scheduled_rank_exit_reports_peer_gone() {
        let mut ctx = faulty_ctx("exit=0@5us");
        let buf = ctx.gpu.host_alloc(8).unwrap();
        // before the exit instant the self-send works
        ctx.send_bytes(buf, 8, 0, 0).unwrap();
        ctx.clock.advance(SimTime::from_us(5));
        assert_eq!(ctx.send_bytes(buf, 8, 0, 1), Err(MpiError::PeerGone));
        assert_eq!(
            ctx.recv_bytes(buf, 8, Some(0), Some(0)),
            Err(MpiError::PeerGone)
        );
        assert_eq!(ctx.faults.stats.peer_gone, 2);
    }

    #[test]
    fn injected_delay_charges_virtual_time() {
        let mut ctx = faulty_ctx("delay=1.0:50us");
        let buf = ctx.gpu.host_alloc(8).unwrap();
        ctx.send_bytes(buf, 8, 0, 0).unwrap();
        let before = ctx.clock.now();
        ctx.recv_bytes(buf, 8, Some(0), Some(0)).unwrap();
        assert_eq!(ctx.faults.stats.delays, 1);
        assert_eq!(ctx.faults.stats.delay_time, SimTime::from_us(50));
        assert!(ctx.clock.now() - before >= SimTime::from_us(50));
    }

    #[test]
    fn corruption_without_integrity_is_silent() {
        // corrupt site active but the integrity envelope explicitly off:
        // the flipped byte is delivered — the blind spot the envelope closes
        let mut cfg = WorldConfig::summit(1).with_faults(FaultPlan::parse("corrupt@0").unwrap());
        cfg.integrity = false;
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        let buf = ctx.gpu.host_alloc(64).unwrap();
        ctx.gpu.memory().poke(buf, &[0u8; 64]).unwrap();
        ctx.send_bytes(buf, 64, 0, 0).unwrap();
        let st = ctx.recv_bytes(buf, 64, Some(0), Some(0)).unwrap();
        assert_eq!(st.bytes, 64);
        let got = ctx.gpu.memory().peek(buf, 64).unwrap();
        assert_ne!(got, vec![0u8; 64], "the corruption must land silently");
        assert_eq!(got.iter().filter(|&&b| b != 0).count(), 1);
        assert_eq!(ctx.faults.stats.corruptions, 1);
        assert_eq!(ctx.faults.stats.nacks, 0);
    }

    #[test]
    fn detected_corruption_retransmits_and_delivers_pristine_bytes() {
        // with_faults auto-enables integrity for an active corrupt site:
        // the first delivery attempt is corrupted, detected, NACKed, and
        // the retransmit delivers the sender's pristine payload
        let mut ctx = faulty_ctx("corrupt@0");
        assert!(ctx.integrity, "an active corrupt site implies integrity");
        let buf = ctx.gpu.host_alloc(64).unwrap();
        ctx.gpu.memory().poke(buf, &[0xAB; 64]).unwrap();
        ctx.send_bytes(buf, 64, 0, 0).unwrap();
        let before = ctx.clock.now();
        let st = ctx.recv_bytes(buf, 64, Some(0), Some(0)).unwrap();
        assert_eq!(st.bytes, 64);
        assert_eq!(ctx.gpu.memory().peek(buf, 64).unwrap(), vec![0xAB; 64]);
        assert_eq!(ctx.faults.stats.corruptions, 1);
        assert_eq!(ctx.faults.stats.nacks, 1);
        assert_eq!(ctx.faults.stats.retransmits, 1);
        assert!(!ctx.faults.stats.nack_time.is_zero());
        assert!(
            ctx.clock.now() - before >= ctx.faults.stats.nack_time,
            "the NACK round trip must be charged to the virtual clock"
        );
    }

    #[test]
    fn exhausted_retransmits_surface_corrupted() {
        let mut ctx = faulty_ctx("corrupt=1.0,retries=2");
        let buf = ctx.gpu.host_alloc(32).unwrap();
        ctx.send_bytes(buf, 32, 0, 0).unwrap();
        let err = ctx.recv_bytes(buf, 32, Some(0), Some(0)).unwrap_err();
        assert_eq!(
            err,
            MpiError::Corrupted {
                peer: 0,
                attempts: 3
            }
        );
        assert!(err.is_comm_failure(), "corruption exhaustion is repairable");
        assert!(!err.is_transient());
        assert_eq!(ctx.faults.stats.corruptions, 3);
        assert_eq!(ctx.faults.stats.nacks, 3);
        assert_eq!(ctx.faults.stats.retransmits, 2);
    }

    #[test]
    fn seeded_corruption_replays_identically() {
        let run = || {
            let mut ctx = faulty_ctx("seed=21,corrupt=0.3,retries=6");
            let buf = ctx.gpu.host_alloc(128).unwrap();
            ctx.gpu.memory().poke(buf, &[7u8; 128]).unwrap();
            for tag in 0..8 {
                ctx.send_bytes(buf, 128, 0, tag).unwrap();
                ctx.recv_bytes(buf, 128, Some(0), Some(tag)).unwrap();
            }
            (
                ctx.clock.now(),
                ctx.faults.stats.corruptions,
                ctx.faults.stats.nacks,
                ctx.faults.stats.retransmits,
                ctx.faults.stats.nack_time,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded corruption schedule must replay exactly");
        assert!(a.1 > 0, "the seeded plan must corrupt something");
    }

    #[test]
    fn inactive_plan_leaves_timing_identical() {
        // a plan with no active site must not perturb virtual time
        let run = |cfg: &WorldConfig| {
            let mut ctx = crate::runtime::RankCtx::standalone(cfg);
            let buf = ctx.gpu.host_alloc(256).unwrap();
            ctx.send_bytes(buf, 256, 0, 0).unwrap();
            ctx.recv_bytes(buf, 256, Some(0), Some(0)).unwrap();
            ctx.clock.now()
        };
        let plain = WorldConfig::summit(1);
        let gated = WorldConfig::summit(1).with_faults(FaultPlan::parse("seed=9").unwrap());
        assert_eq!(run(&plain), run(&gated));
    }
}
