//! Nonblocking point-to-point: `MPI_Isend` / `MPI_Irecv` / `MPI_Wait` /
//! `MPI_Waitall` / `MPI_Test`.
//!
//! The simulated transport is eager (unbounded channels), so an `Isend`
//! performs all its work — including any baseline datatype packing — at
//! post time and completes immediately; this matches how eager-protocol
//! MPI implementations behave for the message sizes where non-contiguous
//! handling matters. An `Irecv` records its arguments and matches at
//! completion time (`wait`/`test`).
//!
//! **Matching-order caveat:** posted receives match messages when they are
//! *waited on*, not when posted. Completing requests in post order
//! (`waitall`, or `wait` in order) preserves MPI's non-overtaking
//! semantics; waiting on same-`(source, tag)` requests out of post order
//! would not. The simulator's experiments always complete in order.

use gpu_sim::GpuPtr;

use crate::datatype::Datatype;
use crate::error::{MpiError, MpiResult};
use crate::p2p::Status;
use crate::runtime::RankCtx;

/// A handle to an outstanding nonblocking operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request(pub(crate) usize);

/// The recorded state of one request.
pub(crate) enum PendingOp {
    /// Eager send: already delivered; completes instantly.
    SendDone,
    /// Posted receive on raw bytes.
    RecvBytes {
        buf: GpuPtr,
        maxlen: usize,
        src: Option<usize>,
        tag: Option<i32>,
    },
    /// Posted receive with a datatype.
    RecvTyped {
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        src: Option<usize>,
        tag: Option<i32>,
    },
}

impl RankCtx {
    fn push_request(&mut self, op: PendingOp) -> Request {
        self.requests.push(Some(op));
        Request(self.requests.len() - 1)
    }

    /// `MPI_Isend` on raw bytes (eager: the payload departs now).
    pub fn isend_bytes(
        &mut self,
        buf: GpuPtr,
        len: usize,
        dest: usize,
        tag: i32,
    ) -> MpiResult<Request> {
        self.send_bytes(buf, len, dest, tag)?;
        Ok(self.push_request(PendingOp::SendDone))
    }

    /// `MPI_Isend` with a datatype (eager; baseline packing happens now).
    pub fn isend(
        &mut self,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        dest: usize,
        tag: i32,
    ) -> MpiResult<Request> {
        self.send(buf, count, dt, dest, tag)?;
        Ok(self.push_request(PendingOp::SendDone))
    }

    /// `MPI_Irecv` on raw bytes.
    pub fn irecv_bytes(
        &mut self,
        buf: GpuPtr,
        maxlen: usize,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<Request> {
        Ok(self.push_request(PendingOp::RecvBytes {
            buf,
            maxlen,
            src,
            tag,
        }))
    }

    /// `MPI_Irecv` with a datatype.
    pub fn irecv(
        &mut self,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<Request> {
        if !self.is_committed(dt)? {
            return Err(MpiError::NotCommitted);
        }
        Ok(self.push_request(PendingOp::RecvTyped {
            buf,
            count,
            dt,
            src,
            tag,
        }))
    }

    /// `MPI_Test`: has the request completed by now? Nonblocking — a
    /// pending receive completes only if a matching message has already
    /// been delivered to this rank.
    pub fn test(&mut self, req: Request) -> MpiResult<Option<Status>> {
        let op = self
            .requests
            .get(req.0)
            .and_then(|o| o.as_ref())
            .ok_or_else(|| MpiError::InvalidArg(format!("dead request {req:?}")))?;
        match op {
            PendingOp::SendDone => Ok(Some(Status {
                source: self.rank,
                tag: 0,
                bytes: 0,
            })),
            PendingOp::RecvBytes { src, tag, .. } | PendingOp::RecvTyped { src, tag, .. } => {
                // drain arrivals, then check for a match without blocking
                while let Ok(m) = self.inbox.try_recv() {
                    self.pending.push_back(m);
                }
                let (src, tag) = (*src, *tag);
                if self.peek_match(src, tag) {
                    let st = self.complete(req)?;
                    Ok(Some(st))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Is a matching message already queued? (no blocking, no removal)
    fn peek_match(&mut self, src: Option<usize>, tag: Option<i32>) -> bool {
        let internal_requested = matches!(tag, Some(t) if t < crate::p2p::MIN_USER_TAG);
        self.pending.iter().any(|m| {
            let src_ok = match src {
                Some(s) => m.src == s,
                None => m.tag >= crate::p2p::MIN_USER_TAG || internal_requested,
            };
            let tag_ok = match tag {
                Some(t) => m.tag == t,
                None => m.tag >= crate::p2p::MIN_USER_TAG,
            };
            src_ok && tag_ok
        })
    }

    /// Complete one request, blocking if necessary.
    fn complete(&mut self, req: Request) -> MpiResult<Status> {
        let op = self
            .requests
            .get_mut(req.0)
            .and_then(Option::take)
            .ok_or_else(|| MpiError::InvalidArg(format!("dead request {req:?}")))?;
        let st = match op {
            PendingOp::SendDone => Status {
                source: self.rank,
                tag: 0,
                bytes: 0,
            },
            PendingOp::RecvBytes {
                buf,
                maxlen,
                src,
                tag,
            } => self.recv_bytes(buf, maxlen, src, tag)?,
            PendingOp::RecvTyped {
                buf,
                count,
                dt,
                src,
                tag,
            } => self.recv(buf, count, dt, src, tag)?,
        };
        Ok(st)
    }

    /// `MPI_Wait`: block until the request completes; frees the request.
    pub fn wait(&mut self, req: Request) -> MpiResult<Status> {
        self.complete(req)
    }

    /// `MPI_Waitall`: complete all given requests in order.
    pub fn waitall(&mut self, reqs: &[Request]) -> MpiResult<Vec<Status>> {
        reqs.iter().map(|&r| self.complete(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{World, WorldConfig};

    #[test]
    fn isend_irecv_roundtrip() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(32)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &[9u8; 32])?;
                let r = ctx.isend_bytes(buf, 32, 1, 4)?;
                ctx.wait(r)?;
                Ok(0)
            } else {
                let r = ctx.irecv_bytes(buf, 32, Some(0), Some(4))?;
                let st = ctx.wait(r)?;
                assert_eq!(st.bytes, 32);
                assert_eq!(ctx.gpu.memory().peek(buf, 32)?, vec![9u8; 32]);
                Ok(1)
            }
        })
        .unwrap();
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn waitall_completes_in_post_order() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            if ctx.rank == 0 {
                let buf = ctx.gpu.host_alloc(1)?;
                for i in 0..4u8 {
                    ctx.gpu.memory().poke(buf, &[i])?;
                    ctx.send_bytes(buf, 1, 1, 0)?;
                }
                Ok(vec![])
            } else {
                let bufs: Vec<_> = (0..4).map(|_| ctx.gpu.host_alloc(1).unwrap()).collect();
                let reqs: Vec<_> = bufs
                    .iter()
                    .map(|&b| ctx.irecv_bytes(b, 1, Some(0), Some(0)).unwrap())
                    .collect();
                ctx.waitall(&reqs)?;
                let got: Vec<u8> = bufs
                    .iter()
                    .map(|&b| ctx.gpu.memory().peek(b, 1).unwrap()[0])
                    .collect();
                Ok(got)
            }
        })
        .unwrap();
        assert_eq!(results[1], vec![0, 1, 2, 3]);
    }

    #[test]
    fn test_polls_without_blocking() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(8)?;
            if ctx.rank == 0 {
                // receive first posted before the send happens
                let r = ctx.irecv_bytes(buf, 8, Some(1), Some(0))?;
                let first_poll = ctx.test(r)?.is_some();
                // tell rank 1 we're ready, then poll to completion
                ctx.barrier();
                let mut polls = 0u64;
                let st = loop {
                    if let Some(st) = ctx.test(r)? {
                        break st;
                    }
                    polls += 1;
                    std::thread::yield_now();
                };
                assert_eq!(st.bytes, 8);
                Ok((first_poll, polls < u64::MAX))
            } else {
                ctx.barrier();
                ctx.gpu.memory().poke(buf, &[3u8; 8])?;
                ctx.send_bytes(buf, 8, 0, 0)?;
                Ok((false, true))
            }
        })
        .unwrap();
        // the pre-send poll must not have completed
        assert!(!results[0].0);
    }

    #[test]
    fn typed_isend_irecv() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let dt = ctx.type_vector(4, 2, 4, crate::consts::MPI_BYTE)?;
            ctx.type_commit_native(dt)?;
            let buf = ctx.gpu.malloc(16)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &(0..16).collect::<Vec<u8>>())?;
                let r = ctx.isend(buf, 1, dt, 1, 0)?;
                ctx.wait(r)?;
                Ok(vec![])
            } else {
                let r = ctx.irecv(buf, 1, dt, Some(0), Some(0))?;
                ctx.wait(r)?;
                let got = ctx.gpu.memory().peek(buf, 16)?;
                assert_eq!(&got[0..2], &[0, 1]);
                assert_eq!(&got[4..6], &[4, 5]);
                Ok(got)
            }
        })
        .unwrap();
        assert_eq!(results[1].len(), 16);
    }

    #[test]
    fn irecv_requires_commit() {
        let cfg = WorldConfig::summit(1);
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        let dt = ctx.type_vector(2, 1, 2, crate::consts::MPI_BYTE).unwrap();
        let buf = ctx.gpu.host_alloc(8).unwrap();
        assert_eq!(
            ctx.irecv(buf, 1, dt, None, None).err(),
            Some(MpiError::NotCommitted)
        );
    }

    #[test]
    fn double_wait_is_an_error() {
        let cfg = WorldConfig::summit(1);
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        let buf = ctx.gpu.host_alloc(4).unwrap();
        let r = ctx.isend_bytes(buf, 4, 0, 0).unwrap();
        ctx.wait(r).unwrap();
        assert!(matches!(ctx.wait(r), Err(MpiError::InvalidArg(_))));
        // clean up the self-message
        ctx.recv_bytes(buf, 4, Some(0), Some(0)).unwrap();
    }
}
