//! Nonblocking point-to-point: `MPI_Isend` / `MPI_Irecv` / `MPI_Wait` /
//! `MPI_Waitall` / `MPI_Waitany` / `MPI_Test` / `MPI_Testall`.
//!
//! The simulated transport is eager (unbounded channels), so an `Isend`
//! performs all its work — including any baseline datatype packing — at
//! post time and completes immediately; this matches how eager-protocol
//! MPI implementations behave for the message sizes where non-contiguous
//! handling matters. An `Irecv` records its arguments and matches at
//! completion time (`wait`/`test`).
//!
//! **Matching-order caveat:** posted receives match messages when they are
//! *waited on*, not when posted. Completing requests in post order
//! (`waitall`, or `wait` in order) preserves MPI's non-overtaking
//! semantics; waiting on same-`(source, tag)` requests out of post order
//! would not. The simulator's experiments always complete in order.
//!
//! **Request lifecycle under failures:** completion always frees the
//! request slot first, so an operation that then fails (`PeerGone`,
//! `Revoked`, `CommFailed`) still consumes its request — requests are
//! never leaked. [`RankCtx::waitall`] completes *every* request before
//! reporting the first error, and [`RankCtx::waitall_outcomes`] exposes
//! the full per-request outcome vector for recovery code that needs to
//! know which transfers landed.

use gpu_sim::GpuPtr;

use crate::datatype::Datatype;
use crate::error::{MpiError, MpiResult};
use crate::p2p::{Message, Sifted, Status};
use crate::runtime::RankCtx;

/// Does a delivered message satisfy a posted receive? Mirrors the matching
/// rules of `match_message` in `p2p.rs`: current-epoch only, and wildcards
/// never see internal (negative-tag) control or collective traffic.
fn recv_matches(m: &Message, epoch: u64, src: Option<usize>, tag: Option<i32>) -> bool {
    if m.epoch != epoch {
        return false;
    }
    let internal_requested = matches!(tag, Some(t) if t < crate::p2p::MIN_USER_TAG);
    let src_ok = match src {
        Some(s) => m.src == s,
        None => m.tag >= crate::p2p::MIN_USER_TAG || internal_requested,
    };
    let tag_ok = match tag {
        Some(t) => m.tag == t,
        None => m.tag >= crate::p2p::MIN_USER_TAG,
    };
    src_ok && tag_ok
}

/// A handle to an outstanding nonblocking operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request(pub(crate) usize);

/// The recorded state of one request.
pub(crate) enum PendingOp {
    /// Eager send: already delivered; completes instantly.
    SendDone,
    /// Posted receive on raw bytes.
    RecvBytes {
        buf: GpuPtr,
        maxlen: usize,
        src: Option<usize>,
        tag: Option<i32>,
    },
    /// Posted receive with a datatype.
    RecvTyped {
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        src: Option<usize>,
        tag: Option<i32>,
    },
}

impl RankCtx {
    fn push_request(&mut self, op: PendingOp) -> Request {
        self.requests.push(Some(op));
        Request(self.requests.len() - 1)
    }

    /// `MPI_Isend` on raw bytes (eager: the payload departs now).
    pub fn isend_bytes(
        &mut self,
        buf: GpuPtr,
        len: usize,
        dest: usize,
        tag: i32,
    ) -> MpiResult<Request> {
        self.send_bytes(buf, len, dest, tag)?;
        Ok(self.push_request(PendingOp::SendDone))
    }

    /// `MPI_Isend` with a datatype (eager; baseline packing happens now).
    pub fn isend(
        &mut self,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        dest: usize,
        tag: i32,
    ) -> MpiResult<Request> {
        self.send(buf, count, dt, dest, tag)?;
        Ok(self.push_request(PendingOp::SendDone))
    }

    /// `MPI_Irecv` on raw bytes.
    pub fn irecv_bytes(
        &mut self,
        buf: GpuPtr,
        maxlen: usize,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<Request> {
        Ok(self.push_request(PendingOp::RecvBytes {
            buf,
            maxlen,
            src,
            tag,
        }))
    }

    /// `MPI_Irecv` with a datatype.
    pub fn irecv(
        &mut self,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<Request> {
        if !self.is_committed(dt)? {
            return Err(MpiError::NotCommitted);
        }
        Ok(self.push_request(PendingOp::RecvTyped {
            buf,
            count,
            dt,
            src,
            tag,
        }))
    }

    /// `MPI_Test`: has the request completed by now? Nonblocking — a
    /// pending receive completes only if a matching message has already
    /// been delivered to this rank.
    pub fn test(&mut self, req: Request) -> MpiResult<Option<Status>> {
        let (src, tag) = match self.requests.get(req.0).and_then(|o| o.as_ref()) {
            None => return Err(MpiError::InvalidArg(format!("dead request {req:?}"))),
            Some(PendingOp::SendDone) => {
                return Ok(Some(Status {
                    source: self.rank,
                    tag: 0,
                    bytes: 0,
                }))
            }
            Some(PendingOp::RecvBytes { src, tag, .. } | PendingOp::RecvTyped { src, tag, .. }) => {
                (*src, *tag)
            }
        };
        // drain arrivals, then check for a match without blocking
        self.absorb_arrivals();
        if self.peek_match(src, tag) {
            let st = self.complete(req)?;
            Ok(Some(st))
        } else {
            Ok(None)
        }
    }

    /// Pull every already-delivered message out of the inbox, routing it
    /// through `sift` so control traffic (death notices, revocations,
    /// stale-epoch drops) updates rank state instead of polluting the
    /// matchable queue.
    fn absorb_arrivals(&mut self) {
        while let Some(m) = self.wd_try_recv() {
            if let Sifted::Keep(m) = self.sift(m) {
                self.pending.push_back(m);
            }
        }
    }

    /// Is a matching message already queued? (no blocking, no removal)
    fn peek_match(&self, src: Option<usize>, tag: Option<i32>) -> bool {
        let epoch = self.epoch;
        self.pending
            .iter()
            .any(|m| recv_matches(m, epoch, src, tag))
    }

    /// Complete one request, blocking if necessary.
    fn complete(&mut self, req: Request) -> MpiResult<Status> {
        let op = self
            .requests
            .get_mut(req.0)
            .and_then(Option::take)
            .ok_or_else(|| MpiError::InvalidArg(format!("dead request {req:?}")))?;
        let st = match op {
            PendingOp::SendDone => Status {
                source: self.rank,
                tag: 0,
                bytes: 0,
            },
            PendingOp::RecvBytes {
                buf,
                maxlen,
                src,
                tag,
            } => self.recv_bytes(buf, maxlen, src, tag)?,
            PendingOp::RecvTyped {
                buf,
                count,
                dt,
                src,
                tag,
            } => self.recv(buf, count, dt, src, tag)?,
        };
        Ok(st)
    }

    /// `MPI_Wait`: block until the request completes; frees the request.
    pub fn wait(&mut self, req: Request) -> MpiResult<Status> {
        self.complete(req)
    }

    /// `MPI_Waitall`: complete all given requests in order.
    ///
    /// Unlike a naive short-circuiting loop, a failure does **not**
    /// abandon the remaining requests: every request is driven to
    /// completion (freeing its slot) and the *first* error is reported
    /// afterwards, mirroring MPI's `MPI_ERR_IN_STATUS` contract. Use
    /// [`RankCtx::waitall_outcomes`] when the per-request results matter.
    pub fn waitall(&mut self, reqs: &[Request]) -> MpiResult<Vec<Status>> {
        let mut statuses = Vec::with_capacity(reqs.len());
        let mut first_err = None;
        for outcome in self.waitall_outcomes(reqs) {
            match outcome {
                Ok(st) => statuses.push(st),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(statuses),
        }
    }

    /// Complete all given requests in order, reporting each request's own
    /// outcome. Every slot is freed regardless of individual failures —
    /// this is the primitive recovery code uses to learn which transfers
    /// of a failed exchange actually landed.
    pub fn waitall_outcomes(&mut self, reqs: &[Request]) -> Vec<MpiResult<Status>> {
        reqs.iter().map(|&r| self.complete(r)).collect()
    }

    /// `MPI_Waitany`: block until *some* request in the list completes and
    /// return its index and status. Completed eager sends win immediately;
    /// otherwise the first (in list order) receive with a matching
    /// delivered message completes. A revocation or a death notice for a
    /// peer a listed receive is directed at ends the wait with an error
    /// rather than a hang — the failed request's slot is freed.
    pub fn waitany(&mut self, reqs: &[Request]) -> MpiResult<(usize, Status)> {
        if reqs.is_empty() {
            return Err(MpiError::InvalidArg(
                "waitany needs at least one request".to_string(),
            ));
        }
        loop {
            self.absorb_arrivals();
            // anything completable right now? (eager sends, matched recvs)
            for (i, &r) in reqs.iter().enumerate() {
                if self.request_completable(r)? {
                    let st = self.complete(r)?;
                    return Ok((i, st));
                }
            }
            // fail fast instead of blocking forever: a revoked communicator
            // or a receive aimed at a known-dead peer can never complete
            self.check_comm()?;
            for (i, &r) in reqs.iter().enumerate() {
                if self.recv_target_dead(r) {
                    // completes through the p2p fail-fast path (clock
                    // converges on the exit instant, stats recorded, slot
                    // freed); if a message raced in it completes normally
                    return self.complete(r).map(|st| (i, st));
                }
            }
            // block for one more arrival, then re-scan
            let m = self.wd_blocking_recv(|| format!("waitany({} requests)", reqs.len()))?;
            match self.sift(m) {
                Sifted::Keep(m) => self.pending.push_back(m),
                Sifted::Revoke => return Err(MpiError::Revoked),
                Sifted::Death(..) | Sifted::Absorbed => {}
            }
        }
    }

    /// `MPI_Testall`: complete *all* requests iff every one of them can
    /// complete without blocking; otherwise complete none and return
    /// `Ok(None)`. Two receives never claim the same delivered message —
    /// matching is counted with multiplicity, exactly as the subsequent
    /// in-order completion will consume the queue.
    pub fn testall(&mut self, reqs: &[Request]) -> MpiResult<Option<Vec<Status>>> {
        self.absorb_arrivals();
        let epoch = self.epoch;
        let mut claimed = vec![false; self.pending.len()];
        for &r in reqs {
            let (src, tag) = match self.requests.get(r.0).and_then(|o| o.as_ref()) {
                None => return Err(MpiError::InvalidArg(format!("dead request {r:?}"))),
                Some(PendingOp::SendDone) => continue,
                Some(
                    PendingOp::RecvBytes { src, tag, .. } | PendingOp::RecvTyped { src, tag, .. },
                ) => (*src, *tag),
            };
            let hit = self
                .pending
                .iter()
                .enumerate()
                .position(|(i, m)| !claimed[i] && recv_matches(m, epoch, src, tag));
            match hit {
                Some(i) => claimed[i] = true,
                None => return Ok(None),
            }
        }
        // every request has its own matching message: in-order completion
        // cannot block (waitall still frees every slot if a fault-injected
        // receive errors out mid-way)
        self.waitall(reqs).map(Some)
    }

    /// Can `req` complete without blocking? (`SendDone`, or a receive with
    /// a matching message already queued.)
    fn request_completable(&mut self, req: Request) -> MpiResult<bool> {
        let (src, tag) = match self.requests.get(req.0).and_then(|o| o.as_ref()) {
            None => return Err(MpiError::InvalidArg(format!("dead request {req:?}"))),
            Some(PendingOp::SendDone) => return Ok(true),
            Some(PendingOp::RecvBytes { src, tag, .. } | PendingOp::RecvTyped { src, tag, .. }) => {
                (*src, *tag)
            }
        };
        Ok(self.peek_match(src, tag))
    }

    /// Is `req` a receive whose source can never send again? (directed at
    /// a known-dead peer, or a wildcard while any current member is dead —
    /// ULFM `MPI_ANY_SOURCE` semantics.)
    fn recv_target_dead(&self, req: Request) -> bool {
        let src = match self.requests.get(req.0).and_then(|o| o.as_ref()) {
            Some(PendingOp::RecvBytes { src, .. } | PendingOp::RecvTyped { src, .. }) => *src,
            _ => return false,
        };
        if self.known_dead.is_empty() {
            return false;
        }
        match src {
            Some(s) => self
                .comm_members
                .get(s)
                .is_some_and(|w| self.known_dead.contains_key(&w)),
            None => self
                .comm_members
                .iter()
                .any(|w| self.known_dead.contains_key(&w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{World, WorldConfig};

    #[test]
    fn isend_irecv_roundtrip() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(32)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &[9u8; 32])?;
                let r = ctx.isend_bytes(buf, 32, 1, 4)?;
                ctx.wait(r)?;
                Ok(0)
            } else {
                let r = ctx.irecv_bytes(buf, 32, Some(0), Some(4))?;
                let st = ctx.wait(r)?;
                assert_eq!(st.bytes, 32);
                assert_eq!(ctx.gpu.memory().peek(buf, 32)?, vec![9u8; 32]);
                Ok(1)
            }
        })
        .unwrap();
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn waitall_completes_in_post_order() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            if ctx.rank == 0 {
                let buf = ctx.gpu.host_alloc(1)?;
                for i in 0..4u8 {
                    ctx.gpu.memory().poke(buf, &[i])?;
                    ctx.send_bytes(buf, 1, 1, 0)?;
                }
                Ok(vec![])
            } else {
                let bufs: Vec<_> = (0..4).map(|_| ctx.gpu.host_alloc(1).unwrap()).collect();
                let reqs: Vec<_> = bufs
                    .iter()
                    .map(|&b| ctx.irecv_bytes(b, 1, Some(0), Some(0)).unwrap())
                    .collect();
                ctx.waitall(&reqs)?;
                let got: Vec<u8> = bufs
                    .iter()
                    .map(|&b| ctx.gpu.memory().peek(b, 1).unwrap()[0])
                    .collect();
                Ok(got)
            }
        })
        .unwrap();
        assert_eq!(results[1], vec![0, 1, 2, 3]);
    }

    #[test]
    fn test_polls_without_blocking() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(8)?;
            if ctx.rank == 0 {
                // receive first posted before the send happens
                let r = ctx.irecv_bytes(buf, 8, Some(1), Some(0))?;
                let first_poll = ctx.test(r)?.is_some();
                // tell rank 1 we're ready, then poll to completion
                ctx.barrier();
                let mut polls = 0u64;
                let st = loop {
                    if let Some(st) = ctx.test(r)? {
                        break st;
                    }
                    polls += 1;
                    std::thread::yield_now();
                };
                assert_eq!(st.bytes, 8);
                Ok((first_poll, polls < u64::MAX))
            } else {
                ctx.barrier();
                ctx.gpu.memory().poke(buf, &[3u8; 8])?;
                ctx.send_bytes(buf, 8, 0, 0)?;
                Ok((false, true))
            }
        })
        .unwrap();
        // the pre-send poll must not have completed
        assert!(!results[0].0);
    }

    #[test]
    fn typed_isend_irecv() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let dt = ctx.type_vector(4, 2, 4, crate::consts::MPI_BYTE)?;
            ctx.type_commit_native(dt)?;
            let buf = ctx.gpu.malloc(16)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &(0..16).collect::<Vec<u8>>())?;
                let r = ctx.isend(buf, 1, dt, 1, 0)?;
                ctx.wait(r)?;
                Ok(vec![])
            } else {
                let r = ctx.irecv(buf, 1, dt, Some(0), Some(0))?;
                ctx.wait(r)?;
                let got = ctx.gpu.memory().peek(buf, 16)?;
                assert_eq!(&got[0..2], &[0, 1]);
                assert_eq!(&got[4..6], &[4, 5]);
                Ok(got)
            }
        })
        .unwrap();
        assert_eq!(results[1].len(), 16);
    }

    #[test]
    fn irecv_requires_commit() {
        let cfg = WorldConfig::summit(1);
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        let dt = ctx.type_vector(2, 1, 2, crate::consts::MPI_BYTE).unwrap();
        let buf = ctx.gpu.host_alloc(8).unwrap();
        assert_eq!(
            ctx.irecv(buf, 1, dt, None, None).err(),
            Some(MpiError::NotCommitted)
        );
    }

    #[test]
    fn double_wait_is_an_error() {
        let cfg = WorldConfig::summit(1);
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        let buf = ctx.gpu.host_alloc(4).unwrap();
        let r = ctx.isend_bytes(buf, 4, 0, 0).unwrap();
        ctx.wait(r).unwrap();
        assert!(matches!(ctx.wait(r), Err(MpiError::InvalidArg(_))));
        // clean up the self-message
        ctx.recv_bytes(buf, 4, Some(0), Some(0)).unwrap();
    }

    #[test]
    fn waitall_outcomes_completes_every_request_despite_failure() {
        use crate::fault::FaultPlan;
        use gpu_sim::SimTime;

        // rank 2 is dead before rank 0 waits: the receive aimed at it
        // fails, but the receive from rank 1 still completes and neither
        // request slot leaks
        let plan = FaultPlan::parse("exit=2@5us").unwrap();
        let cfg = WorldConfig::summit(3).with_faults(plan);
        let results = World::run(&cfg, |ctx| {
            ctx.clock.advance(SimTime::from_us(10));
            match ctx.rank {
                1 => {
                    let buf = ctx.gpu.host_alloc(4)?;
                    ctx.gpu.memory().poke(buf, &[7u8; 4])?;
                    ctx.send_bytes(buf, 4, 0, 5)?;
                    Ok(true)
                }
                2 => Ok(true), // scheduled dead; does nothing
                _ => {
                    let a = ctx.gpu.host_alloc(4)?;
                    let b = ctx.gpu.host_alloc(4)?;
                    let r_dead = ctx.irecv_bytes(a, 4, Some(2), Some(5))?;
                    let r_ok = ctx.irecv_bytes(b, 4, Some(1), Some(5))?;
                    let outcomes = ctx.waitall_outcomes(&[r_dead, r_ok]);
                    assert_eq!(outcomes[0], Err(MpiError::PeerGone));
                    assert_eq!(outcomes[1].as_ref().map(|st| st.bytes), Ok(4));
                    assert_eq!(ctx.gpu.memory().peek(b, 4)?, vec![7u8; 4]);
                    // both slots were freed even though one errored
                    assert!(matches!(ctx.wait(r_dead), Err(MpiError::InvalidArg(_))));
                    assert!(matches!(ctx.wait(r_ok), Err(MpiError::InvalidArg(_))));
                    // waitall over a failing set reports the error but
                    // never hangs on the survivors
                    let r2 = ctx.irecv_bytes(a, 4, Some(2), Some(6))?;
                    assert_eq!(ctx.waitall(&[r2]), Err(MpiError::PeerGone));
                    assert!(matches!(ctx.wait(r2), Err(MpiError::InvalidArg(_))));
                    Ok(true)
                }
            }
        })
        .unwrap();
        assert_eq!(results, vec![true; 3]);
    }

    #[test]
    fn waitany_returns_the_completable_request() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(8)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &[1u8; 8])?;
                ctx.send_bytes(buf, 8, 1, 7)?;
                Ok(0)
            } else {
                let other = ctx.gpu.host_alloc(8)?;
                // request 0 never completes in this test; request 1 will
                let r0 = ctx.irecv_bytes(other, 8, Some(0), Some(99))?;
                let r1 = ctx.irecv_bytes(buf, 8, Some(0), Some(7))?;
                let (idx, st) = ctx.waitany(&[r0, r1])?;
                assert_eq!(idx, 1);
                assert_eq!(st.bytes, 8);
                // the unmatched request is still live
                assert_eq!(ctx.test(r0)?, None);
                Ok(1)
            }
        })
        .unwrap();
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn waitany_prefers_completed_sends() {
        let cfg = WorldConfig::summit(1);
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        let buf = ctx.gpu.host_alloc(4).unwrap();
        let never = ctx.irecv_bytes(buf, 4, Some(0), Some(9)).unwrap();
        let send = ctx.isend_bytes(buf, 4, 0, 0).unwrap();
        let (idx, _) = ctx.waitany(&[never, send]).unwrap();
        assert_eq!(idx, 1);
        assert!(ctx.waitany(&[]).is_err());
        // clean up the self-message
        ctx.recv_bytes(buf, 4, Some(0), Some(0)).unwrap();
    }

    #[test]
    fn testall_is_all_or_none_with_claim_multiplicity() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(4)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &[5u8; 4])?;
                ctx.send_bytes(buf, 4, 1, 3)?;
                ctx.barrier(); // message #1 is now visible to rank 1
                ctx.barrier(); // rank 1 has run its None assertion
                ctx.send_bytes(buf, 4, 1, 3)?;
                Ok(0)
            } else {
                let a = ctx.gpu.host_alloc(4)?;
                let b = ctx.gpu.host_alloc(4)?;
                let r0 = ctx.irecv_bytes(a, 4, Some(0), Some(3))?;
                let r1 = ctx.irecv_bytes(b, 4, Some(0), Some(3))?;
                ctx.barrier();
                // one delivered message cannot satisfy two receives
                assert!(ctx.testall(&[r0, r1])?.is_none());
                ctx.barrier();
                let statuses = loop {
                    if let Some(sts) = ctx.testall(&[r0, r1])? {
                        break sts;
                    }
                    std::thread::yield_now();
                };
                assert_eq!(statuses.len(), 2);
                assert!(statuses.iter().all(|st| st.bytes == 4));
                // both requests were consumed by the successful testall
                assert!(matches!(ctx.wait(r0), Err(MpiError::InvalidArg(_))));
                assert!(matches!(ctx.wait(r1), Err(MpiError::InvalidArg(_))));
                Ok(1)
            }
        })
        .unwrap();
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn test_routes_control_traffic_through_sift() {
        use crate::fault::FaultPlan;

        let plan = FaultPlan::parse("exit=1@5us").unwrap();
        let cfg = WorldConfig::summit(2).with_faults(plan);
        World::run(&cfg, |ctx| {
            if ctx.rank == 1 {
                // dies when its body returns; the runtime then floods the
                // death notice
                return Ok(true);
            }
            let buf = ctx.gpu.host_alloc(4)?;
            let r = ctx.irecv_bytes(buf, 4, None, None)?;
            // poll until the death notice arrives: sift must absorb it
            // into known_dead instead of leaving it in the matchable queue
            while ctx.known_dead.is_empty() {
                assert!(ctx.test(r)?.is_none());
                std::thread::yield_now();
            }
            assert!(ctx
                .pending
                .iter()
                .all(|m| m.tag >= crate::p2p::MIN_USER_TAG));
            Ok(true)
        })
        .unwrap();
    }
}
