//! Deterministic fault plans, per-rank injectors, and the degradation log.
//!
//! A [`FaultPlan`] describes *what can go wrong* in a run: GPU allocation
//! OOM, kernel/copy stream faults, transient send/recv failures, extra
//! network latency, and ranks exiting at chosen virtual times. Every
//! decision is a pure function of the plan's seed, the rank, the site, and
//! that site's call ordinal — never the wall clock or a global RNG — so a
//! schedule replays identically for a fixed seed.
//!
//! A [`FaultInjector`] is the per-rank instantiation of a plan (the GPU
//! sites become a [`gpu_sim::GpuFaultInjector`] installed on that rank's
//! device). [`FaultStats`] counts what actually fired and carries the
//! [`DegradeEvent`] log that the TEMPI layer appends to when it downgrades
//! a send path; both hang off `RankCtx` as a [`FaultState`].
//!
//! With no plan installed (`FaultState::disabled`, the default) every hook
//! in the runtime is a single `Option`/bool check and neither behavior nor
//! modeled time changes.

use std::fmt;

use gpu_sim::fault::splitmix64;
use gpu_sim::{GpuFaultInjector, GpuFaultSpec, SimTime, SiteSpec};

use crate::error::{MpiError, MpiResult};

/// Extra-latency injection: with `probability`, a receive pays `latency`
/// on top of the modeled wire time.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DelaySpec {
    /// Probability in `[0, 1]` that a given receive is delayed.
    pub probability: f64,
    /// The additional virtual latency charged when the site fires.
    pub latency: SimTime,
}

impl DelaySpec {
    /// Does this spec ever fire?
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.probability > 0.0 && !self.latency.is_zero()
    }
}

/// A scheduled rank death: from virtual instant `at` on, peers observing
/// rank `rank` get [`MpiError::PeerGone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RankExit {
    /// The rank that exits.
    pub rank: usize,
    /// The virtual instant of the exit.
    pub at: SimTime,
}

/// The injection sites a [`ScopedFault`] can script.
///
/// Mirrors the global [`SiteSpec`] fields of a [`FaultPlan`] but names one
/// site symbolically, so a single scripted event (rank × site × ordinal)
/// can be serialized, shuffled and delta-debugged by the chaos engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultSite {
    /// Device-allocation OOM.
    Alloc,
    /// Kernel-launch failure.
    Kernel,
    /// Async-copy failure.
    Copy,
    /// Transient p2p send failure.
    Send,
    /// Transient p2p receive failure.
    Recv,
    /// In-transit payload corruption.
    Corrupt,
    /// Checkpoint spill-file I/O corruption.
    Spill,
}

/// One scripted fault event targeting a single rank: "on rank `rank`, call
/// ordinal `at_call` of site `site` fails". The unit of minimization for
/// the chaos shrinker — unlike the plan-wide probabilistic sites, scoped
/// events can be removed one at a time without disturbing the coins the
/// remaining events flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ScopedFault {
    /// The world rank the event fires on.
    pub rank: usize,
    /// Which injection site fails.
    pub site: FaultSite,
    /// The 0-based per-site call ordinal that fails.
    pub at_call: u64,
}

/// A complete, reproducible description of the faults in one run.
///
/// Serializable (missing fields deserialize to their defaults) so the
/// chaos engine can persist failing plans, shrink them offline, and replay
/// committed reproducers byte-for-byte.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed mixed (with the rank) into every probabilistic decision.
    #[serde(default)]
    pub seed: u64,
    /// Device-allocation OOM site (see [`gpu_sim::GpuFaultSite::AllocOom`]).
    #[serde(default)]
    pub alloc_oom: SiteSpec,
    /// Kernel-launch failure site.
    #[serde(default)]
    pub kernel_fault: SiteSpec,
    /// Async-copy failure site.
    #[serde(default)]
    pub copy_fault: SiteSpec,
    /// Transient send failure site (per p2p send call).
    #[serde(default)]
    pub send_fail: SiteSpec,
    /// Transient receive failure site (per p2p receive call).
    #[serde(default)]
    pub recv_fail: SiteSpec,
    /// In-transit payload corruption site (per delivery attempt): when it
    /// fires, a deterministic byte of the arriving payload is flipped.
    /// With integrity enabled the receiver detects the flip and runs the
    /// NACK/retransmit handshake; without it the corruption is silent.
    #[serde(default)]
    pub corrupt: SiteSpec,
    /// Checkpoint spill-file I/O corruption site (per spill read/write):
    /// when it fires, a deterministic byte of the frame flips on its way
    /// to or from disk. The frame checksum catches it on decode, so a
    /// corrupted spill surfaces as a typed error rather than bad data.
    #[serde(default)]
    pub spill_corrupt: SiteSpec,
    /// Extra-latency site (per p2p receive call).
    #[serde(default)]
    pub delay: DelaySpec,
    /// Scheduled rank deaths.
    #[serde(default)]
    pub rank_exits: Vec<RankExit>,
    /// Scripted per-rank fault events, merged into that rank's site
    /// ordinals when the plan is instantiated. The chaos shrinker's unit
    /// of minimization.
    #[serde(default)]
    pub scoped: Vec<ScopedFault>,
    /// Bounded-retry budget for transient p2p faults.
    #[serde(default)]
    pub max_retries: u32,
    /// First backoff; doubles per retry (charged to the virtual clock).
    #[serde(default)]
    pub backoff_base: SimTime,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            alloc_oom: SiteSpec::never(),
            kernel_fault: SiteSpec::never(),
            copy_fault: SiteSpec::never(),
            send_fail: SiteSpec::never(),
            recv_fail: SiteSpec::never(),
            corrupt: SiteSpec::never(),
            spill_corrupt: SiteSpec::never(),
            delay: DelaySpec::default(),
            rank_exits: Vec::new(),
            scoped: Vec::new(),
            max_retries: 3,
            backoff_base: SimTime::from_us(10),
        }
    }
}

impl FaultPlan {
    /// Does any site ever fire?
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.alloc_oom.is_active()
            || self.kernel_fault.is_active()
            || self.copy_fault.is_active()
            || self.send_fail.is_active()
            || self.recv_fail.is_active()
            || self.corrupt.is_active()
            || self.spill_corrupt.is_active()
            || self.delay.is_active()
            || !self.rank_exits.is_empty()
            || !self.scoped.is_empty()
    }

    /// Parse the `--faults` mini-language: comma-separated clauses, e.g.
    /// `seed=42,alloc=0.1,kernel@3,send=0.05,delay=0.2:20us,exit=1@5ms,retries=4,backoff=10us`.
    ///
    /// Clauses:
    /// * `seed=N` — decision seed (default 0)
    /// * `alloc|kernel|copy|send|recv|corrupt|spill=P` — per-call failure
    ///   probability in `[0, 1]`
    /// * `alloc|kernel|copy|send|recv|corrupt|spill@N` — scripted 0-based
    ///   call ordinal (repeatable)
    /// * `delay=P:DUR` — receive-side extra latency `DUR` with probability
    ///   `P`
    /// * `exit=R@DUR` — rank `R` exits at virtual time `DUR` (repeatable)
    /// * `retries=N` — transient-fault retry budget (default 3)
    /// * `backoff=DUR` — first retry backoff, doubling per retry
    ///   (default 10us)
    ///
    /// Durations take an `ns`/`us`/`ms`/`s` suffix, e.g. `20us`.
    pub fn parse(spec: &str) -> MpiResult<FaultPlan> {
        fn bad(clause: &str, why: &str) -> MpiError {
            MpiError::InvalidArg(format!("fault spec clause `{clause}`: {why}"))
        }
        fn parse_time(s: &str, clause: &str) -> MpiResult<SimTime> {
            let (digits, unit) =
                s.split_at(s.find(|c: char| c.is_ascii_alphabetic()).unwrap_or(s.len()));
            let v: u64 = digits
                .parse()
                .map_err(|_| bad(clause, "expected an integer duration like 20us"))?;
            match unit {
                "ns" => Ok(SimTime::from_ns(v)),
                "us" => Ok(SimTime::from_us(v)),
                "ms" => Ok(SimTime::from_ms(v)),
                "s" => Ok(SimTime::from_secs_f64(v as f64)),
                _ => Err(bad(clause, "duration needs an ns/us/ms/s suffix")),
            }
        }

        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some((key, val)) = clause.split_once('=') {
                match key {
                    "seed" => {
                        plan.seed = val
                            .parse()
                            .map_err(|_| bad(clause, "seed takes an integer"))?;
                    }
                    "retries" => {
                        plan.max_retries = val
                            .parse()
                            .map_err(|_| bad(clause, "retries takes an integer"))?;
                    }
                    "backoff" => plan.backoff_base = parse_time(val, clause)?,
                    "delay" => {
                        let (p, dur) = val
                            .split_once(':')
                            .ok_or_else(|| bad(clause, "expected delay=P:DUR"))?;
                        plan.delay.probability = p
                            .parse()
                            .map_err(|_| bad(clause, "delay probability must be a float"))?;
                        plan.delay.latency = parse_time(dur, clause)?;
                    }
                    "exit" => {
                        let (r, at) = val
                            .split_once('@')
                            .ok_or_else(|| bad(clause, "expected exit=RANK@TIME"))?;
                        plan.rank_exits.push(RankExit {
                            rank: r
                                .parse()
                                .map_err(|_| bad(clause, "rank must be an integer"))?,
                            at: parse_time(at, clause)?,
                        });
                    }
                    _ => {
                        let spec = match key {
                            "alloc" => &mut plan.alloc_oom,
                            "kernel" => &mut plan.kernel_fault,
                            "copy" => &mut plan.copy_fault,
                            "send" => &mut plan.send_fail,
                            "recv" => &mut plan.recv_fail,
                            "corrupt" => &mut plan.corrupt,
                            "spill" => &mut plan.spill_corrupt,
                            _ => return Err(bad(clause, "unknown key")),
                        };
                        let p: f64 = val
                            .parse()
                            .map_err(|_| bad(clause, "probability must be a float"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(bad(clause, "probability must be in [0, 1]"));
                        }
                        spec.probability = p;
                    }
                }
            } else if let Some((key, ord)) = clause.split_once('@') {
                let n: u64 = ord
                    .parse()
                    .map_err(|_| bad(clause, "call ordinal must be an integer"))?;
                let spec = match key {
                    "alloc" => &mut plan.alloc_oom,
                    "kernel" => &mut plan.kernel_fault,
                    "copy" => &mut plan.copy_fault,
                    "send" => &mut plan.send_fail,
                    "recv" => &mut plan.recv_fail,
                    "corrupt" => &mut plan.corrupt,
                    "spill" => &mut plan.spill_corrupt,
                    _ => return Err(bad(clause, "unknown site")),
                };
                spec.at_calls.push(n);
            } else {
                return Err(bad(clause, "expected key=value or site@ordinal"));
            }
        }
        Ok(plan)
    }
}

/// One recorded downgrade of a send/pack path.
///
/// The method names are strings (`"Device"`, `"OneShot"`, `"Staged"`,
/// `"SystemMpi"`, `"VendorBaseline"`) so this crate stays independent of
/// the TEMPI layer's `Method` enum; equality of logs is what the replay
/// tests assert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradeEvent {
    /// Virtual instant of the downgrade.
    pub at: SimTime,
    /// Human-readable description of the datatype involved.
    pub datatype: String,
    /// The path that failed.
    pub from: String,
    /// The path degraded to.
    pub to: String,
    /// Why (the rendered error).
    pub cause: String,
}

impl fmt::Display for DegradeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {} -> {} ({})",
            self.at, self.datatype, self.from, self.to, self.cause
        )
    }
}

/// Counters of injected faults and recovery work, plus the degradation log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Transient send failures injected.
    pub send_faults: u64,
    /// Transient receive failures injected.
    pub recv_faults: u64,
    /// Extra-latency injections.
    pub delays: u64,
    /// Total extra latency charged.
    pub delay_time: SimTime,
    /// Retries performed after transient p2p faults.
    pub retries: u64,
    /// Total virtual time spent in retry backoff.
    pub backoff_time: SimTime,
    /// Operations that failed with [`MpiError::PeerGone`] due to a
    /// scheduled rank exit.
    pub peer_gone: u64,
    /// Death notices absorbed from dying peers (one per notice received).
    pub death_notices: u64,
    /// Revocation notices absorbed (one per `REVOKE` control message that
    /// newly poisoned this rank's view of the communicator).
    pub revocations: u64,
    /// Messages dropped because they were stamped with a communicator
    /// epoch older than the current one (late traffic from before a
    /// shrink; rejected rather than misdelivered).
    pub stale_dropped: u64,
    /// Completed `agree_on_failures` rounds on this rank.
    pub agreements: u64,
    /// Payload corruptions injected on delivery attempts (detected or not).
    pub corruptions: u64,
    /// NACKs this rank sent after a checksum mismatch.
    pub nacks: u64,
    /// Retransmitted deliveries consumed after a NACK.
    pub retransmits: u64,
    /// Total virtual time charged to NACK/retransmit round trips.
    pub nack_time: SimTime,
    /// The degradation-event log, in the order the downgrades happened.
    pub events: Vec<DegradeEvent>,
}

impl FaultStats {
    /// Append a downgrade to the event log.
    pub fn record(&mut self, ev: DegradeEvent) {
        self.events.push(ev);
    }
}

/// Per-rank fault decision state: deterministic counters over the plan.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rank_seed: u64,
    send_calls: u64,
    recv_calls: u64,
    delay_calls: u64,
    corrupt_calls: u64,
    spill_calls: u64,
}

/// Site salts for the network-level coins (distinct from the GPU salts in
/// [`gpu_sim::GpuFaultInjector`]).
const SALT_SEND: u64 = 0x7365_6e64_5f66_6c74; // "send_flt"
const SALT_RECV: u64 = 0x7265_6376_5f66_6c74; // "recv_flt"
const SALT_DELAY: u64 = 0x6465_6c61_795f_6e74; // "delay_nt"
const SALT_CORRUPT: u64 = 0x636f_7272_5f66_6c74; // "corr_flt"
const SALT_SPILL: u64 = 0x7370_696c_5f66_6c74; // "spil_flt"

impl FaultInjector {
    /// Instantiate a plan for one rank. The returned GPU injector (if the
    /// plan has active GPU sites) must be installed on that rank's
    /// [`gpu_sim::GpuContext`] by the caller.
    pub fn new(
        plan: FaultPlan,
        rank: usize,
    ) -> (FaultInjector, Option<std::sync::Arc<GpuFaultInjector>>) {
        let mut plan = plan;
        // Merge scripted per-rank events into this rank's site ordinals.
        // The plan is cloned per rank, so mutating the clone is safe and
        // other ranks never see events scoped to this one.
        for ev in std::mem::take(&mut plan.scoped) {
            if ev.rank != rank {
                continue;
            }
            let site = match ev.site {
                FaultSite::Alloc => &mut plan.alloc_oom,
                FaultSite::Kernel => &mut plan.kernel_fault,
                FaultSite::Copy => &mut plan.copy_fault,
                FaultSite::Send => &mut plan.send_fail,
                FaultSite::Recv => &mut plan.recv_fail,
                FaultSite::Corrupt => &mut plan.corrupt,
                FaultSite::Spill => &mut plan.spill_corrupt,
            };
            if !site.at_calls.contains(&ev.at_call) {
                site.at_calls.push(ev.at_call);
            }
        }
        let rank_seed = splitmix64(plan.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let gpu_spec = GpuFaultSpec {
            seed: rank_seed,
            alloc_oom: plan.alloc_oom.clone(),
            kernel_fault: plan.kernel_fault.clone(),
            copy_fault: plan.copy_fault.clone(),
        };
        let gpu = if gpu_spec.is_active() {
            Some(GpuFaultInjector::new(gpu_spec))
        } else {
            None
        };
        (
            FaultInjector {
                plan,
                rank_seed,
                send_calls: 0,
                recv_calls: 0,
                delay_calls: 0,
                corrupt_calls: 0,
                spill_calls: 0,
            },
            gpu,
        )
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Record one p2p send attempt and decide whether it transiently fails.
    pub fn send_should_fail(&mut self) -> bool {
        let n = self.send_calls;
        self.send_calls += 1;
        self.plan.send_fail.decide(self.rank_seed, SALT_SEND, n)
    }

    /// Record one p2p receive attempt and decide whether it transiently
    /// fails.
    pub fn recv_should_fail(&mut self) -> bool {
        let n = self.recv_calls;
        self.recv_calls += 1;
        self.plan.recv_fail.decide(self.rank_seed, SALT_RECV, n)
    }

    /// Record one delivery and return the extra latency to charge, if the
    /// delay site fires.
    pub fn extra_delay(&mut self) -> Option<SimTime> {
        if !self.plan.delay.is_active() {
            return None;
        }
        let n = self.delay_calls;
        self.delay_calls += 1;
        let coin = SiteSpec::with_probability(self.plan.delay.probability);
        if coin.decide(self.rank_seed, SALT_DELAY, n) {
            Some(self.plan.delay.latency)
        } else {
            None
        }
    }

    /// Record one delivery attempt and decide whether its payload is
    /// corrupted in transit. Returns the (byte index, flip mask) to apply,
    /// derived deterministically from the same seeded draw, so a given
    /// delivery attempt always corrupts the same bit. `len == 0` payloads
    /// are never corrupted (nothing to flip).
    pub fn corrupt_delivery(&mut self, len: usize) -> Option<(usize, u8)> {
        let n = self.corrupt_calls;
        self.corrupt_calls += 1;
        if len == 0 || !self.plan.corrupt.decide(self.rank_seed, SALT_CORRUPT, n) {
            return None;
        }
        let h = splitmix64(self.rank_seed ^ SALT_CORRUPT ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Some((h as usize % len, 1u8 << ((h >> 40) & 7)))
    }

    /// Record one checkpoint spill read/write and decide whether the frame
    /// is corrupted on its way to or from disk. Returns the (byte index,
    /// flip mask) to apply to the encoded frame, derived deterministically
    /// from the seeded draw — the disk-side analogue of
    /// [`FaultInjector::corrupt_delivery`].
    pub fn spill_corrupt_io(&mut self, len: usize) -> Option<(usize, u8)> {
        let n = self.spill_calls;
        self.spill_calls += 1;
        if len == 0
            || !self
                .plan
                .spill_corrupt
                .decide(self.rank_seed, SALT_SPILL, n)
        {
            return None;
        }
        let h = splitmix64(self.rank_seed ^ SALT_SPILL ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Some((h as usize % len, 1u8 << ((h >> 40) & 7)))
    }

    /// Is `peer` scheduled as dead at virtual instant `now`?
    pub fn peer_dead(&self, peer: usize, now: SimTime) -> bool {
        self.plan
            .rank_exits
            .iter()
            .any(|e| e.rank == peer && e.at <= now)
    }

    /// The earliest scheduled exit time for `rank`, if any. Used by a rank
    /// to notice its *own* death and by the runtime to stamp death notices
    /// with the scheduled instant (not the observer's clock), so every
    /// observer converges on the same virtual time.
    pub fn exit_time(&self, rank: usize) -> Option<SimTime> {
        self.plan
            .rank_exits
            .iter()
            .filter(|e| e.rank == rank)
            .map(|e| e.at)
            .min()
    }

    /// Retry budget for transient p2p faults.
    pub fn max_retries(&self) -> u32 {
        self.plan.max_retries
    }

    /// Backoff before retry number `attempt` (0-based): base × 2^attempt.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        self.plan.backoff_base * (1u64 << attempt.min(20))
    }
}

/// The fault-related state hanging off each `RankCtx`: an optional
/// injector plus the stats/degradation log (which is live even without an
/// injector, so genuine — non-injected — degradations are recorded too).
#[derive(Debug, Default)]
pub struct FaultState {
    /// Decision state; `None` means fault injection is disabled.
    pub injector: Option<FaultInjector>,
    /// What fired, what was retried, and which downgrades happened.
    pub stats: FaultStats,
}

impl FaultState {
    /// Fault injection disabled (the default).
    #[must_use]
    pub fn disabled() -> FaultState {
        FaultState::default()
    }

    /// Instantiate `plan` for `rank`. Returns the state and the GPU-side
    /// injector to install on the rank's device (when any GPU site is
    /// active).
    #[must_use]
    pub fn from_plan(
        plan: &FaultPlan,
        rank: usize,
    ) -> (FaultState, Option<std::sync::Arc<GpuFaultInjector>>) {
        let (injector, gpu) = FaultInjector::new(plan.clone(), rank);
        (
            FaultState {
                injector: Some(injector),
                stats: FaultStats::default(),
            },
            gpu,
        )
    }

    /// Is an injector installed?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.injector.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "seed=42,alloc=0.25,kernel@3,copy@0,send=0.5,recv=0.125,delay=0.2:20us,exit=1@5ms,retries=4,backoff=7us",
        )
        .unwrap();
        assert_eq!(p.seed, 42);
        assert!((p.alloc_oom.probability - 0.25).abs() < 1e-12);
        assert_eq!(p.kernel_fault.at_calls, vec![3]);
        assert_eq!(p.copy_fault.at_calls, vec![0]);
        assert!((p.send_fail.probability - 0.5).abs() < 1e-12);
        assert!((p.recv_fail.probability - 0.125).abs() < 1e-12);
        assert!((p.delay.probability - 0.2).abs() < 1e-12);
        assert_eq!(p.delay.latency, SimTime::from_us(20));
        assert_eq!(
            p.rank_exits,
            vec![RankExit {
                rank: 1,
                at: SimTime::from_ms(5)
            }]
        );
        assert_eq!(p.max_retries, 4);
        assert_eq!(p.backoff_base, SimTime::from_us(7));
        assert!(p.is_active());
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("alloc").is_err());
        assert!(FaultPlan::parse("delay=0.5").is_err());
        assert!(FaultPlan::parse("exit=zero@1us").is_err());
        assert!(FaultPlan::parse("backoff=10").is_err());
        // probabilities outside [0, 1] name the offending clause
        let err = FaultPlan::parse("send=1.5").unwrap_err();
        assert!(err.to_string().contains("send=1.5"), "{err}");
        assert!(FaultPlan::parse("corrupt=-0.1").is_err());
    }

    #[test]
    fn parse_corrupt_site() {
        let p = FaultPlan::parse("corrupt=0.25").unwrap();
        assert!((p.corrupt.probability - 0.25).abs() < 1e-12);
        assert!(p.is_active());
        let p = FaultPlan::parse("corrupt@2").unwrap();
        assert_eq!(p.corrupt.at_calls, vec![2]);
        assert!(p.is_active());
    }

    #[test]
    fn corrupt_delivery_is_scripted_and_deterministic() {
        let plan = FaultPlan::parse("corrupt@0,corrupt@2").unwrap();
        let (mut a, _) = FaultInjector::new(plan.clone(), 1);
        let (mut b, _) = FaultInjector::new(plan, 1);
        let da: Vec<_> = (0..4).map(|_| a.corrupt_delivery(64)).collect();
        let db: Vec<_> = (0..4).map(|_| b.corrupt_delivery(64)).collect();
        assert_eq!(da, db, "same rank, same seed, same flips");
        assert!(da[0].is_some() && da[2].is_some());
        assert!(da[1].is_none() && da[3].is_none());
        let (idx, mask) = da[0].unwrap();
        assert!(idx < 64);
        assert_eq!(mask.count_ones(), 1, "exactly one bit flips");
        // zero-length payloads are never corrupted
        let (mut c, _) = FaultInjector::new(FaultPlan::parse("corrupt=1.0").unwrap(), 0);
        assert_eq!(c.corrupt_delivery(0), None);
    }

    #[test]
    fn empty_spec_is_inactive_default() {
        let p = FaultPlan::parse("").unwrap();
        assert_eq!(p, FaultPlan::default());
        assert!(!p.is_active());
    }

    #[test]
    fn injector_decisions_replay_per_rank() {
        let plan = FaultPlan::parse("seed=7,send=0.4,recv=0.4").unwrap();
        let (mut a, _) = FaultInjector::new(plan.clone(), 1);
        let (mut b, _) = FaultInjector::new(plan.clone(), 1);
        let (mut c, _) = FaultInjector::new(plan, 2);
        let sa: Vec<bool> = (0..64).map(|_| a.send_should_fail()).collect();
        let sb: Vec<bool> = (0..64).map(|_| b.send_should_fail()).collect();
        let sc: Vec<bool> = (0..64).map(|_| c.send_should_fail()).collect();
        assert_eq!(sa, sb, "same rank, same seed, same schedule");
        assert_ne!(sa, sc, "different ranks draw different coins");
    }

    #[test]
    fn scripted_send_ordinals() {
        let plan = FaultPlan::parse("send@0,send@2").unwrap();
        let (mut inj, gpu) = FaultInjector::new(plan, 0);
        assert!(gpu.is_none(), "no GPU site active");
        let fired: Vec<bool> = (0..4).map(|_| inj.send_should_fail()).collect();
        assert_eq!(fired, vec![true, false, true, false]);
    }

    #[test]
    fn rank_exit_observed_after_deadline() {
        let plan = FaultPlan::parse("exit=1@10us").unwrap();
        let (inj, _) = FaultInjector::new(plan, 0);
        assert!(!inj.peer_dead(1, SimTime::from_us(9)));
        assert!(inj.peer_dead(1, SimTime::from_us(10)));
        assert!(!inj.peer_dead(0, SimTime::from_us(99)));
    }

    #[test]
    fn backoff_doubles() {
        let plan = FaultPlan::parse("backoff=10us").unwrap();
        let (inj, _) = FaultInjector::new(plan, 0);
        assert_eq!(inj.backoff(0), SimTime::from_us(10));
        assert_eq!(inj.backoff(1), SimTime::from_us(20));
        assert_eq!(inj.backoff(3), SimTime::from_us(80));
    }

    #[test]
    fn gpu_injector_created_only_when_needed() {
        let (_, gpu) = FaultInjector::new(FaultPlan::parse("alloc@0").unwrap(), 0);
        assert!(gpu.is_some());
        let (_, gpu) = FaultInjector::new(FaultPlan::parse("send=1.0").unwrap(), 0);
        assert!(gpu.is_none());
    }

    #[test]
    fn parse_spill_site() {
        let p = FaultPlan::parse("spill=0.5").unwrap();
        assert!((p.spill_corrupt.probability - 0.5).abs() < 1e-12);
        assert!(p.is_active());
        let p = FaultPlan::parse("spill@1").unwrap();
        assert_eq!(p.spill_corrupt.at_calls, vec![1]);
    }

    #[test]
    fn spill_corrupt_io_is_scripted_and_deterministic() {
        let plan = FaultPlan::parse("spill@1").unwrap();
        let (mut a, _) = FaultInjector::new(plan.clone(), 0);
        let (mut b, _) = FaultInjector::new(plan, 0);
        let da: Vec<_> = (0..3).map(|_| a.spill_corrupt_io(96)).collect();
        let db: Vec<_> = (0..3).map(|_| b.spill_corrupt_io(96)).collect();
        assert_eq!(da, db);
        assert!(da[0].is_none() && da[2].is_none());
        let (idx, mask) = da[1].unwrap();
        assert!(idx < 96);
        assert_eq!(mask.count_ones(), 1);
    }

    #[test]
    fn scoped_events_merge_only_into_their_rank() {
        let mut plan = FaultPlan::default();
        plan.scoped.push(ScopedFault {
            rank: 1,
            site: FaultSite::Send,
            at_call: 2,
        });
        plan.scoped.push(ScopedFault {
            rank: 0,
            site: FaultSite::Recv,
            at_call: 0,
        });
        assert!(plan.is_active());
        let (mut r0, _) = FaultInjector::new(plan.clone(), 0);
        let (mut r1, _) = FaultInjector::new(plan, 1);
        let s0: Vec<bool> = (0..4).map(|_| r0.send_should_fail()).collect();
        let s1: Vec<bool> = (0..4).map(|_| r1.send_should_fail()).collect();
        assert_eq!(s0, vec![false; 4], "send event is scoped to rank 1");
        assert_eq!(s1, vec![false, false, true, false]);
        assert!(r0.recv_should_fail(), "recv event is scoped to rank 0");
        assert!(!r1.recv_should_fail());
    }

    #[test]
    fn scoped_gpu_events_reach_the_gpu_injector() {
        let mut plan = FaultPlan::default();
        plan.scoped.push(ScopedFault {
            rank: 0,
            site: FaultSite::Alloc,
            at_call: 0,
        });
        let (_, gpu) = FaultInjector::new(plan.clone(), 0);
        assert!(gpu.is_some(), "scoped alloc event activates the GPU side");
        let (_, gpu) = FaultInjector::new(plan, 1);
        assert!(gpu.is_none(), "other ranks stay clean");
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::parse(
            "seed=9,alloc=0.1,send@3,corrupt=0.2,spill@0,delay=0.5:30us,exit=2@1ms,retries=5,backoff=2us",
        )
        .unwrap();
        let mut plan = plan;
        plan.scoped.push(ScopedFault {
            rank: 1,
            site: FaultSite::Corrupt,
            at_call: 4,
        });
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // Missing fields deserialize to type defaults; the engine always
        // serializes complete plans, so sparse JSON only occurs when a
        // reproducer is hand-edited -- and a sparse plan injects nothing.
        let sparse: FaultPlan = serde_json::from_str(r#"{"seed": 3}"#).unwrap();
        assert_eq!(sparse.seed, 3);
        assert!(!sparse.is_active());
    }

    #[test]
    fn degrade_event_display_and_log() {
        let mut stats = FaultStats::default();
        stats.record(DegradeEvent {
            at: SimTime::from_us(11),
            datatype: "vector(13,100,256,byte)".into(),
            from: "Device".into(),
            to: "OneShot".into(),
            cause: "device out of memory: requested 1 bytes, 0 available".into(),
        });
        assert_eq!(stats.events.len(), 1);
        let s = format!("{}", stats.events[0]);
        assert!(s.contains("Device -> OneShot"), "{s}");
    }
}
