//! Collectives built over point-to-point: `Alltoallv` (the halo-exchange
//! primitive of the paper's Section 6.4), plus small gather/bcast/reduce
//! helpers for harnesses.
//!
//! The implementation is the textbook linear algorithm — every rank posts
//! its sends, then receives from every peer in rank order (`alltoallv`
//! interleaves the two beyond a small window so eager traffic stays
//! bounded). Virtual clocks make the timing come out right regardless of
//! wall-clock interleaving: each receive completes at
//! `max(now, depart_j + wire_j)`.
//!
//! Every collective is fault-aware: it fails fast with
//! [`MpiError::PeerGone`] when any current member is already dead at entry
//! (ULFM semantics — a collective cannot complete once a participant
//! failed), its constituent sends/receives pass through the same
//! fault-injection gates as user point-to-point traffic, and a revocation
//! observed mid-collective surfaces as [`MpiError::Revoked`] instead of a
//! hang.

use gpu_sim::{GpuPtr, SimTime};
use tempi_trace::LANE_CPU;

use crate::error::{MpiError, MpiResult};
use crate::p2p::{TAG_ALLTOALLV, TAG_GATHER};
use crate::runtime::RankCtx;

/// How many of a rank's `alltoallv` sends may be in flight before it starts
/// draining its receives. Bounds posted-but-unconsumed eager messages at
/// roughly `window` per rank pair direction instead of `size`.
const ALLTOALLV_WINDOW: usize = 8;

/// One peer's slice of a sparse `alltoallv`: `count` bytes at
/// `buf + displ` exchanged with communicator rank `peer`. See
/// [`RankCtx::alltoallv_sparse_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlltoallvBlock {
    /// Communicator rank of the peer (same rank space as the dense
    /// `sendcounts` index).
    pub peer: usize,
    /// Bytes exchanged with `peer`. Must be non-zero — zero-count peers
    /// are simply omitted from the list.
    pub count: usize,
    /// Byte offset of the peer's slice within the shared send/recv
    /// buffer.
    pub displ: usize,
}

impl RankCtx {
    /// Common entry gate for collectives: a revoked communicator or an
    /// already-dead member fails the operation before any traffic moves.
    /// Purely clock-based (scheduled exits), so the decision replays
    /// identically in virtual time. One branch when fault-free.
    fn collective_entry(&mut self) -> MpiResult<()> {
        self.check_comm()?;
        if self.faults.injector.is_none() {
            return Ok(());
        }
        self.self_exit_check()?;
        let now = self.clock.now();
        let mut dead: Option<(usize, SimTime)> = None;
        if let Some(inj) = &self.faults.injector {
            for w in self.comm_members.iter() {
                if w != self.world_rank && inj.peer_dead(w, now) {
                    if let Some(at) = inj.exit_time(w) {
                        dead = Some((w, at));
                        break;
                    }
                }
            }
        }
        if let Some((w, at)) = dead {
            self.known_dead.entry(w).or_insert(at);
            self.faults.stats.peer_gone += 1;
            return Err(MpiError::PeerGone);
        }
        Ok(())
    }

    /// `MPI_Alltoallv` on raw bytes (`MPI_BYTE` counts/displacements), the
    /// shape the paper's stencil uses after packing all halos into one
    /// buffer. Buffers may live in device or host memory (CUDA-aware).
    ///
    /// `sendcounts[j]` bytes at `sendbuf + sdispls[j]` go to rank `j`;
    /// `recvcounts[j]` bytes arriving from rank `j` land at
    /// `recvbuf + rdispls[j]`.
    pub fn alltoallv_bytes(
        &mut self,
        sendbuf: GpuPtr,
        sendcounts: &[usize],
        sdispls: &[usize],
        recvbuf: GpuPtr,
        recvcounts: &[usize],
        rdispls: &[usize],
    ) -> MpiResult<()> {
        if self.tracer.enabled() {
            let tracer = self.tracer.clone();
            let pid = self.world_rank as u32;
            tracer.begin(pid, LANE_CPU, "mpi", "alltoallv", self.clock.now().as_ps());
            let r = self
                .alltoallv_bytes_body(sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls);
            tracer.end_args(pid, LANE_CPU, self.clock.now().as_ps(), || {
                vec![
                    ("send_bytes", sendcounts.iter().sum::<usize>().into()),
                    ("recv_bytes", recvcounts.iter().sum::<usize>().into()),
                    ("ok", r.is_ok().into()),
                ]
            });
            return r;
        }
        self.alltoallv_bytes_body(sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
    }

    /// The untraced `alltoallv` schedule (validation + windowed exchange).
    #[allow(clippy::too_many_arguments)]
    fn alltoallv_bytes_body(
        &mut self,
        sendbuf: GpuPtr,
        sendcounts: &[usize],
        sdispls: &[usize],
        recvbuf: GpuPtr,
        recvcounts: &[usize],
        rdispls: &[usize],
    ) -> MpiResult<()> {
        self.collective_entry()?;
        let n = self.size;
        if [
            sendcounts.len(),
            sdispls.len(),
            recvcounts.len(),
            rdispls.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err(MpiError::InvalidArg(
                "alltoallv argument arrays must have one entry per rank".to_string(),
            ));
        }
        // Sends are eager (unbounded channels), so pure post-all-then-recv
        // would leave O(size) unconsumed messages per pair. Interleaving the
        // rank-ordered receives behind a fixed window keeps the in-flight
        // volume bounded; the send→recv dependency chain strictly decreases
        // rank indices, so the schedule is deadlock-free for any window ≥ 1.
        let mut next_recv = 0usize;
        for j in 0..n {
            if sendcounts[j] > 0 {
                self.send_bytes(sendbuf.add(sdispls[j]), sendcounts[j], j, TAG_ALLTOALLV)?;
            }
            if j >= ALLTOALLV_WINDOW {
                self.alltoallv_recv_one(recvbuf, recvcounts, rdispls, next_recv)?;
                next_recv += 1;
            }
        }
        while next_recv < n {
            self.alltoallv_recv_one(recvbuf, recvcounts, rdispls, next_recv)?;
            next_recv += 1;
        }
        Ok(())
    }

    /// One rank-ordered `alltoallv` receive (self-messages included; they
    /// were posted eagerly and cost only a local copy).
    fn alltoallv_recv_one(
        &mut self,
        recvbuf: GpuPtr,
        recvcounts: &[usize],
        rdispls: &[usize],
        j: usize,
    ) -> MpiResult<()> {
        if recvcounts[j] == 0 {
            return Ok(());
        }
        let st = self.recv_bytes(
            recvbuf.add(rdispls[j]),
            recvcounts[j],
            Some(j),
            Some(TAG_ALLTOALLV),
        )?;
        if st.bytes != recvcounts[j] {
            return Err(MpiError::Internal(format!(
                "alltoallv count mismatch from rank {j}: got {}, expected {}",
                st.bytes, recvcounts[j]
            )));
        }
        Ok(())
    }

    /// `MPI_Alltoallv` restricted to the peers that actually exchange
    /// data: `sends`/`recvs` list only the non-zero blocks, in strictly
    /// ascending peer order. Semantically identical to
    /// [`RankCtx::alltoallv_bytes`] with the blocks scattered into dense
    /// zero-padded arrays — same send/receive schedule, same virtual
    /// timing — but O(degree) per rank instead of O(size), which is what
    /// lets a 26-neighbor stencil exchange run at 10,000+ ranks without
    /// every rank walking (or even allocating) a world-sized count array.
    pub fn alltoallv_sparse_bytes(
        &mut self,
        sendbuf: GpuPtr,
        sends: &[AlltoallvBlock],
        recvbuf: GpuPtr,
        recvs: &[AlltoallvBlock],
    ) -> MpiResult<()> {
        if self.tracer.enabled() {
            let tracer = self.tracer.clone();
            let pid = self.world_rank as u32;
            tracer.begin(pid, LANE_CPU, "mpi", "alltoallv", self.clock.now().as_ps());
            let r = self.alltoallv_sparse_body(sendbuf, sends, recvbuf, recvs);
            tracer.end_args(pid, LANE_CPU, self.clock.now().as_ps(), || {
                vec![
                    (
                        "send_bytes",
                        sends.iter().map(|b| b.count).sum::<usize>().into(),
                    ),
                    (
                        "recv_bytes",
                        recvs.iter().map(|b| b.count).sum::<usize>().into(),
                    ),
                    ("ok", r.is_ok().into()),
                ]
            });
            return r;
        }
        self.alltoallv_sparse_body(sendbuf, sends, recvbuf, recvs)
    }

    fn alltoallv_sparse_body(
        &mut self,
        sendbuf: GpuPtr,
        sends: &[AlltoallvBlock],
        recvbuf: GpuPtr,
        recvs: &[AlltoallvBlock],
    ) -> MpiResult<()> {
        self.collective_entry()?;
        let n = self.size;
        for list in [sends, recvs] {
            for (i, b) in list.iter().enumerate() {
                if b.peer >= n {
                    return Err(MpiError::InvalidArg(format!(
                        "sparse alltoallv block names peer {} in a {n}-rank communicator",
                        b.peer
                    )));
                }
                if b.count == 0 {
                    return Err(MpiError::InvalidArg(
                        "sparse alltoallv blocks must have non-zero counts (omit the peer)"
                            .to_string(),
                    ));
                }
                if i > 0 && list[i - 1].peer >= b.peer {
                    return Err(MpiError::InvalidArg(
                        "sparse alltoallv blocks must be in strictly ascending peer order"
                            .to_string(),
                    ));
                }
            }
        }
        // Replay the dense schedule exactly: the dense loop issues the
        // send to rank j on iteration j and the receive from rank s on
        // iteration s + WINDOW, sends before receives within an
        // iteration. Merging the two sparse lists on that key reproduces
        // the identical operation sequence (and therefore identical
        // virtual clocks) while skipping every empty iteration.
        let mut si = 0;
        for r in recvs {
            while si < sends.len() && sends[si].peer <= r.peer + ALLTOALLV_WINDOW {
                let s = &sends[si];
                self.send_bytes(sendbuf.add(s.displ), s.count, s.peer, TAG_ALLTOALLV)?;
                si += 1;
            }
            let st = self.recv_bytes(
                recvbuf.add(r.displ),
                r.count,
                Some(r.peer),
                Some(TAG_ALLTOALLV),
            )?;
            if st.bytes != r.count {
                return Err(MpiError::Internal(format!(
                    "alltoallv count mismatch from rank {}: got {}, expected {}",
                    r.peer, st.bytes, r.count
                )));
            }
        }
        for s in &sends[si..] {
            self.send_bytes(sendbuf.add(s.displ), s.count, s.peer, TAG_ALLTOALLV)?;
        }
        Ok(())
    }

    /// Gather each rank's byte buffer to rank 0 (harness helper). Returns
    /// `Some(per-rank payloads)` on rank 0, `None` elsewhere.
    pub fn gather_bytes_to_root(&mut self, data: &[u8]) -> MpiResult<Option<Vec<Vec<u8>>>> {
        self.with_span("mpi", "gather", |ctx| ctx.gather_bytes_to_root_body(data))
    }

    fn gather_bytes_to_root_body(&mut self, data: &[u8]) -> MpiResult<Option<Vec<Vec<u8>>>> {
        self.collective_entry()?;
        if self.rank == 0 {
            let mut all = vec![Vec::new(); self.size];
            all[0] = data.to_vec();
            for _ in 1..self.size {
                // The root consumes leaf messages directly, so it passes
                // through the same receive-side fault sites and integrity
                // verification as p2p.
                self.fault_gate_recv(None)?;
                let msg = self.match_message(None, Some(TAG_GATHER))?;
                let payload = self.deliver_payload(&msg, gpu_sim::MemSpace::Host)?;
                all[msg.src] = payload;
            }
            Ok(Some(all))
        } else {
            // stage through a host scratch buffer to reuse send_bytes
            let buf = self.gpu.host_alloc(data.len().max(1))?;
            let poked = { self.gpu.memory().poke(buf, data) };
            let r = match poked {
                Ok(()) => self.send_bytes(buf, data.len(), 0, TAG_GATHER),
                Err(e) => Err(e.into()),
            };
            self.gpu.free(buf)?;
            r?;
            Ok(None)
        }
    }
}

/// Internal tag for tree collectives.
const TAG_TREE: i32 = -102;

impl RankCtx {
    /// `MPI_Bcast` on raw bytes, binomial tree rooted at `root`. Buffers
    /// may be device or host memory.
    pub fn bcast_bytes(&mut self, buf: GpuPtr, len: usize, root: usize) -> MpiResult<()> {
        self.with_span("mpi", "bcast", |ctx| ctx.bcast_bytes_body(buf, len, root))
    }

    fn bcast_bytes_body(&mut self, buf: GpuPtr, len: usize, root: usize) -> MpiResult<()> {
        self.collective_entry()?;
        self.check_rank(root)?;
        let n = self.size;
        if n == 1 {
            return Ok(());
        }
        // virtual rank so the tree is rooted at `root`
        let vrank = (self.rank + n - root) % n;
        let mut mask = 1usize;
        // receive from parent
        while mask < n {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % n;
                self.recv_bytes(buf, len, Some(parent), Some(TAG_TREE))?;
                break;
            }
            mask <<= 1;
        }
        // forward to children
        let mut child_mask = mask >> 1;
        if vrank == 0 {
            child_mask = n.next_power_of_two() >> 1;
        }
        while child_mask > 0 {
            let vchild = vrank | child_mask;
            if vchild < n && vchild != vrank {
                let child = (vchild + root) % n;
                self.send_bytes(buf, len, child, TAG_TREE)?;
            }
            child_mask >>= 1;
        }
        Ok(())
    }

    /// `MPI_Reduce` of `f64` values (elementwise `op`), binomial tree to
    /// `root`. Returns the reduced vector on the root, `None` elsewhere.
    pub fn reduce_f64(
        &mut self,
        values: &[f64],
        op: fn(f64, f64) -> f64,
        root: usize,
    ) -> MpiResult<Option<Vec<f64>>> {
        self.with_span("mpi", "reduce", |ctx| ctx.reduce_f64_body(values, op, root))
    }

    fn reduce_f64_body(
        &mut self,
        values: &[f64],
        op: fn(f64, f64) -> f64,
        root: usize,
    ) -> MpiResult<Option<Vec<f64>>> {
        self.collective_entry()?;
        self.check_rank(root)?;
        let bytes = values.len() * 8;
        let mut acc: Vec<f64> = values.to_vec();
        if self.size > 1 {
            let scratch = self.gpu.host_alloc(bytes.max(1))?;
            // the scratch buffer goes back even when the tree errors out
            let r = self.reduce_tree(&mut acc, op, root, bytes, scratch);
            self.gpu.free(scratch)?;
            r?;
        }
        Ok(if self.rank == root { Some(acc) } else { None })
    }

    /// The binomial combining tree of [`RankCtx::reduce_f64`].
    fn reduce_tree(
        &mut self,
        acc: &mut [f64],
        op: fn(f64, f64) -> f64,
        root: usize,
        bytes: usize,
        scratch: GpuPtr,
    ) -> MpiResult<()> {
        let n = self.size;
        let vrank = (self.rank + n - root) % n;
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask == 0 {
                let vpeer = vrank | mask;
                if vpeer < n {
                    let peer = (vpeer + root) % n;
                    self.recv_bytes(scratch, bytes, Some(peer), Some(TAG_TREE))?;
                    let raw = self.gpu.memory().peek(scratch, bytes)?;
                    for (i, a) in acc.iter_mut().enumerate() {
                        let v =
                            f64::from_le_bytes(raw[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
                        *a = op(*a, v);
                    }
                }
            } else {
                let parent = (vrank - mask + root) % n;
                let raw: Vec<u8> = acc.iter().flat_map(|v| v.to_le_bytes()).collect();
                self.gpu.memory().poke(scratch, &raw)?;
                self.send_bytes(scratch, bytes, parent, TAG_TREE)?;
                break;
            }
            mask <<= 1;
        }
        Ok(())
    }

    /// `MPI_Allreduce` of `f64` values: reduce to rank 0 then broadcast.
    pub fn allreduce_f64(
        &mut self,
        values: &[f64],
        op: fn(f64, f64) -> f64,
    ) -> MpiResult<Vec<f64>> {
        self.with_span("mpi", "allreduce", |ctx| ctx.allreduce_f64_body(values, op))
    }

    fn allreduce_f64_body(
        &mut self,
        values: &[f64],
        op: fn(f64, f64) -> f64,
    ) -> MpiResult<Vec<f64>> {
        self.collective_entry()?;
        let reduced = self.reduce_f64(values, op, 0)?;
        let bytes = values.len() * 8;
        let scratch = self.gpu.host_alloc(bytes.max(1))?;
        let r = self.allreduce_bcast_body(&reduced, bytes, scratch);
        self.gpu.free(scratch)?;
        let raw = r?;
        Ok((0..values.len())
            .map(|i| f64::from_le_bytes(raw[i * 8..i * 8 + 8].try_into().expect("8 bytes")))
            .collect())
    }

    /// Broadcast half of [`RankCtx::allreduce_f64`], split out so the
    /// scratch buffer is returned to the GPU on every error path.
    fn allreduce_bcast_body(
        &mut self,
        reduced: &Option<Vec<f64>>,
        bytes: usize,
        scratch: GpuPtr,
    ) -> MpiResult<Vec<u8>> {
        if let Some(r) = reduced {
            let raw: Vec<u8> = r.iter().flat_map(|v| v.to_le_bytes()).collect();
            self.gpu.memory().poke(scratch, &raw)?;
        }
        self.bcast_bytes(scratch, bytes, 0)?;
        let raw = { self.gpu.memory().peek(scratch, bytes) };
        raw.map_err(Into::into)
    }
}

// `match_message` is pub(crate) on RankCtx in p2p.rs; collective gather
// uses an internal tag so wildcard user receives never see this traffic.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::runtime::{World, WorldConfig};

    #[test]
    fn alltoallv_exchanges_rank_stamped_bytes() {
        let n = 4;
        let cfg = WorldConfig::summit(n);
        let results = World::run(&cfg, |ctx| {
            let chunk = 8;
            let send = ctx.gpu.host_alloc(chunk * n)?;
            let recv = ctx.gpu.host_alloc(chunk * n)?;
            // rank r sends bytes [r*16 + j] to rank j
            let data: Vec<u8> = (0..n)
                .flat_map(|j| std::iter::repeat_n((ctx.rank * 16 + j) as u8, chunk))
                .collect();
            ctx.gpu.memory().poke(send, &data)?;
            let counts = vec![chunk; n];
            let displs: Vec<usize> = (0..n).map(|j| j * chunk).collect();
            ctx.alltoallv_bytes(send, &counts, &displs, recv, &counts, &displs)?;
            ctx.gpu.memory().peek(recv, chunk * n).map_err(Into::into)
        })
        .unwrap();
        for (r, got) in results.iter().enumerate() {
            for j in 0..n {
                let expect = (j * 16 + r) as u8;
                assert!(
                    got[j * 8..(j + 1) * 8].iter().all(|&b| b == expect),
                    "rank {r} from {j}"
                );
            }
        }
    }

    #[test]
    fn alltoallv_zero_counts_skip() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(8)?;
            // only rank 0 → rank 1 transfers anything
            let (sc, rc) = if ctx.rank == 0 {
                (vec![0, 8], vec![0, 0])
            } else {
                (vec![0, 0], vec![8, 0])
            };
            ctx.alltoallv_bytes(buf, &sc, &[0, 0], buf, &rc, &[0, 0])?;
            Ok(true)
        })
        .unwrap();
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn alltoallv_validates_lengths() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(8)?;
            Ok(matches!(
                ctx.alltoallv_bytes(buf, &[1], &[0, 0], buf, &[1, 1], &[0, 0]),
                Err(MpiError::InvalidArg(_))
            ))
        })
        .unwrap();
        assert!(results.iter().all(|&b| b));
    }

    #[test]
    fn alltoallv_device_buffers() {
        let n = 3;
        let cfg = WorldConfig::summit(n);
        let results = World::run(&cfg, |ctx| {
            let chunk = 16;
            let send = ctx.gpu.malloc(chunk * n)?;
            let recv = ctx.gpu.malloc(chunk * n)?;
            let data: Vec<u8> = (0..chunk * n).map(|i| (ctx.rank * 64 + i) as u8).collect();
            ctx.gpu.memory().poke(send, &data)?;
            let counts = vec![chunk; n];
            let displs: Vec<usize> = (0..n).map(|j| j * chunk).collect();
            ctx.alltoallv_bytes(send, &counts, &displs, recv, &counts, &displs)?;
            let got = ctx.gpu.memory().peek(recv, chunk * n)?;
            // block j came from rank j's block `ctx.rank`
            for j in 0..n {
                let expect0 = (j * 64 + ctx.rank * chunk) as u8;
                assert_eq!(got[j * chunk], expect0);
            }
            Ok(ctx.clock.now().as_ps())
        })
        .unwrap();
        // device buffers → GPU-path floors apply
        assert!(results.iter().all(|&t| t > 0));
    }

    #[test]
    fn alltoallv_beyond_window_still_exchanges_correctly() {
        // more ranks than ALLTOALLV_WINDOW: the interleaved (bounded
        // in-flight) schedule must deliver the same bytes as post-all
        let n = ALLTOALLV_WINDOW + 4;
        let cfg = WorldConfig::summit(n);
        let results = World::run(&cfg, |ctx| {
            let send = ctx.gpu.host_alloc(n)?;
            let recv = ctx.gpu.host_alloc(n)?;
            let data: Vec<u8> = (0..n).map(|j| (ctx.rank * 31 + j) as u8).collect();
            ctx.gpu.memory().poke(send, &data)?;
            let counts = vec![1usize; n];
            let displs: Vec<usize> = (0..n).collect();
            ctx.alltoallv_bytes(send, &counts, &displs, recv, &counts, &displs)?;
            ctx.gpu.memory().peek(recv, n).map_err(Into::into)
        })
        .unwrap();
        for (r, got) in results.iter().enumerate() {
            for (j, &byte) in got.iter().enumerate() {
                assert_eq!(byte, (j * 31 + r) as u8, "rank {r} from {j}");
            }
        }
    }

    /// An irregular sparse pattern spanning the interleave window: each
    /// rank exchanges with its ±1 and ±5 torus neighbors only.
    fn sparse_pattern(me: usize, n: usize) -> Vec<AlltoallvBlock> {
        let mut peers: Vec<usize> = [1usize, 5]
            .iter()
            .flat_map(|&d| [(me + d) % n, (me + n - d) % n])
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
            .into_iter()
            .enumerate()
            .map(|(i, peer)| AlltoallvBlock {
                peer,
                count: 4,
                displ: i * 4,
            })
            .collect()
    }

    #[test]
    fn sparse_alltoallv_matches_dense_bytes_and_clocks() {
        // The sparse path must be indistinguishable from the dense path
        // with the same blocks scattered into zero-padded arrays: same
        // delivered bytes AND the same final virtual clock on every rank
        // (i.e. an identical operation schedule, not just identical data).
        let n = ALLTOALLV_WINDOW + 6;
        let run = |sparse: bool| {
            let cfg = WorldConfig::summit(n);
            World::run(&cfg, move |ctx| {
                let blocks = sparse_pattern(ctx.rank, n);
                let total = blocks.iter().map(|b| b.count).sum::<usize>();
                let send = ctx.gpu.host_alloc(total)?;
                let recv = ctx.gpu.host_alloc(total)?;
                let data: Vec<u8> = (0..total).map(|i| (ctx.rank * 7 + i) as u8).collect();
                ctx.gpu.memory().poke(send, &data)?;
                if sparse {
                    ctx.alltoallv_sparse_bytes(send, &blocks, recv, &blocks)?;
                } else {
                    let mut counts = vec![0usize; n];
                    let mut displs = vec![0usize; n];
                    for b in &blocks {
                        counts[b.peer] = b.count;
                        displs[b.peer] = b.displ;
                    }
                    ctx.alltoallv_bytes(send, &counts, &displs, recv, &counts, &displs)?;
                }
                Ok((ctx.gpu.memory().peek(recv, total)?, ctx.clock.now().as_ps()))
            })
            .unwrap()
        };
        let dense = run(false);
        let sparse = run(true);
        assert_eq!(dense, sparse);
        // and the data is the right data: peer p's slice for me carries
        // p's stamp at the offset my rank occupies in p's block list
        for (me, (got, _)) in sparse.iter().enumerate() {
            for (i, b) in sparse_pattern(me, n).iter().enumerate() {
                let their = sparse_pattern(b.peer, n);
                let j = their.iter().position(|t| t.peer == me).unwrap();
                assert_eq!(
                    got[i * 4],
                    (b.peer * 7 + j * 4) as u8,
                    "rank {me} from {}",
                    b.peer
                );
            }
        }
    }

    #[test]
    fn sparse_alltoallv_rejects_malformed_blocks() {
        let cfg = WorldConfig::summit(2);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(8)?;
            let bad_peer = [AlltoallvBlock {
                peer: 5,
                count: 4,
                displ: 0,
            }];
            let zero = [AlltoallvBlock {
                peer: 0,
                count: 0,
                displ: 0,
            }];
            let unsorted = [
                AlltoallvBlock {
                    peer: 1,
                    count: 4,
                    displ: 0,
                },
                AlltoallvBlock {
                    peer: 0,
                    count: 4,
                    displ: 4,
                },
            ];
            for bad in [&bad_peer[..], &zero[..], &unsorted[..]] {
                if !matches!(
                    ctx.alltoallv_sparse_bytes(buf, bad, buf, &[]),
                    Err(MpiError::InvalidArg(_))
                ) {
                    return Ok(false);
                }
            }
            Ok(true)
        })
        .unwrap();
        assert!(results.iter().all(|&b| b));
    }

    #[test]
    fn bcast_reaches_all_ranks_from_any_root() {
        for root in [0usize, 3, 6] {
            let cfg = WorldConfig::summit(7);
            let results = World::run(&cfg, |ctx| {
                let buf = ctx.gpu.host_alloc(16)?;
                if ctx.rank == root {
                    ctx.gpu.memory().poke(buf, &[root as u8 + 1; 16])?;
                }
                ctx.bcast_bytes(buf, 16, root)?;
                let got = ctx.gpu.memory().peek(buf, 16)?;
                Ok(got[0])
            })
            .unwrap();
            assert!(
                results.iter().all(|&b| b == root as u8 + 1),
                "root {root}: {results:?}"
            );
        }
    }

    #[test]
    fn bcast_device_buffers() {
        let cfg = WorldConfig::summit(4);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.malloc(8)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &[42u8; 8])?;
            }
            ctx.bcast_bytes(buf, 8, 0)?;
            Ok(ctx.gpu.memory().peek(buf, 8)?[0])
        })
        .unwrap();
        assert_eq!(results, vec![42; 4]);
    }

    #[test]
    fn reduce_and_allreduce() {
        let cfg = WorldConfig::summit(5);
        let results = World::run(&cfg, |ctx| {
            let mine = [ctx.rank as f64, 10.0 * ctx.rank as f64];
            let sum = ctx.reduce_f64(&mine, |a, b| a + b, 2)?;
            let max = ctx.allreduce_f64(&mine, f64::max)?;
            Ok((sum, max))
        })
        .unwrap();
        for (r, (sum, max)) in results.iter().enumerate() {
            if r == 2 {
                assert_eq!(sum.as_deref(), Some(&[10.0, 100.0][..]));
            } else {
                assert!(sum.is_none());
            }
            assert_eq!(max, &vec![4.0, 40.0]);
        }
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let cfg = WorldConfig::summit(1);
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        let buf = ctx.gpu.host_alloc(4).unwrap();
        ctx.bcast_bytes(buf, 4, 0).unwrap();
        assert_eq!(ctx.allreduce_f64(&[7.5], f64::max).unwrap(), vec![7.5]);
        assert_eq!(
            ctx.reduce_f64(&[1.0], |a, b| a + b, 0).unwrap(),
            Some(vec![1.0])
        );
    }

    #[test]
    fn collectives_advance_virtual_time() {
        let cfg = WorldConfig::summit(8);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(1 << 20)?;
            ctx.bcast_bytes(buf, 1 << 20, 0)?;
            Ok(ctx.clock.now().as_ps())
        })
        .unwrap();
        // leaves of the binomial tree finish latest; everyone non-root
        // waited on at least one 1 MiB transfer
        for (r, &t) in results.iter().enumerate().skip(1) {
            assert!(t > 20_000_000, "rank {r} finished too fast: {t} ps");
        }
    }

    #[test]
    fn gather_to_root_collects() {
        let cfg = WorldConfig::summit(3);
        let results = World::run(&cfg, |ctx| {
            let mine = vec![ctx.rank as u8; 3];
            ctx.gather_bytes_to_root(&mine)
        })
        .unwrap();
        let root = results[0].as_ref().unwrap();
        assert_eq!(root[0], vec![0, 0, 0]);
        assert_eq!(root[1], vec![1, 1, 1]);
        assert_eq!(root[2], vec![2, 2, 2]);
        assert!(results[1].is_none());
    }

    // ---- fault awareness ------------------------------------------------

    #[test]
    fn collectives_error_not_hang_when_a_member_is_dead() {
        // rank 3 is scheduled dead before the collective starts: every
        // survivor fails fast at entry instead of blocking forever, and the
        // dead rank reports its own death
        let plan = FaultPlan::parse("exit=3@5us").unwrap();
        let cfg = WorldConfig::summit(4).with_faults(plan);
        let results = World::run(&cfg, |ctx| {
            ctx.clock.advance(SimTime::from_us(10));
            let buf = ctx.gpu.host_alloc(8)?;
            let r = ctx.bcast_bytes(buf, 8, 0);
            assert_eq!(r, Err(MpiError::PeerGone), "rank {}", ctx.rank);
            let r = ctx.allreduce_f64(&[1.0], f64::max);
            assert_eq!(r, Err(MpiError::PeerGone), "rank {}", ctx.rank);
            let r = ctx.gather_bytes_to_root(&[1, 2]);
            assert_eq!(r, Err(MpiError::PeerGone), "rank {}", ctx.rank);
            let counts = vec![0usize; 4];
            let r = ctx.alltoallv_bytes(buf, &counts, &counts, buf, &counts, &counts);
            assert_eq!(r, Err(MpiError::PeerGone), "rank {}", ctx.rank);
            let r = ctx.reduce_f64(&[1.0], |a, b| a + b, 0);
            assert_eq!(r, Err(MpiError::PeerGone), "rank {}", ctx.rank);
            Ok(true)
        })
        .unwrap();
        assert_eq!(results, vec![true; 4]);
    }

    #[test]
    fn revoked_communicator_fails_all_collectives_fast() {
        let cfg = WorldConfig::summit(1);
        let mut ctx = crate::runtime::RankCtx::standalone(&cfg);
        ctx.revoke().unwrap();
        let buf = ctx.gpu.host_alloc(8).unwrap();
        assert_eq!(ctx.bcast_bytes(buf, 8, 0), Err(MpiError::Revoked));
        assert_eq!(ctx.reduce_f64(&[1.0], f64::max, 0), Err(MpiError::Revoked));
        assert_eq!(ctx.allreduce_f64(&[1.0], f64::max), Err(MpiError::Revoked));
        assert_eq!(ctx.gather_bytes_to_root(&[1]), Err(MpiError::Revoked));
        assert_eq!(
            ctx.alltoallv_bytes(buf, &[0], &[0], buf, &[0], &[0]),
            Err(MpiError::Revoked)
        );
    }

    #[test]
    fn injected_faults_reach_collective_sites() {
        // a transient-fault plan with a generous retry budget: collectives
        // must exercise the same gates as p2p (faults observed, results
        // still exact)
        let plan = FaultPlan::parse("seed=11,send=0.2,recv=0.2,retries=12,backoff=5us").unwrap();
        let cfg = WorldConfig::summit(4).with_faults(plan);
        let results = World::run(&cfg, |ctx| {
            let buf = ctx.gpu.host_alloc(16)?;
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &[9u8; 16])?;
            }
            ctx.bcast_bytes(buf, 16, 0)?;
            assert_eq!(ctx.gpu.memory().peek(buf, 16)?, vec![9u8; 16]);
            let sum = ctx.allreduce_f64(&[ctx.rank as f64], |a, b| a + b)?;
            assert_eq!(sum, vec![6.0]);
            let gathered = ctx.gather_bytes_to_root(&[ctx.rank as u8])?;
            if let Some(all) = gathered {
                assert_eq!(all, vec![vec![0], vec![1], vec![2], vec![3]]);
            }
            let counts = vec![1usize; 4];
            let displs: Vec<usize> = (0..4).collect();
            let send = ctx.gpu.host_alloc(4)?;
            let recv = ctx.gpu.host_alloc(4)?;
            ctx.gpu.memory().poke(send, &[ctx.rank as u8; 4])?;
            ctx.alltoallv_bytes(send, &counts, &displs, recv, &counts, &displs)?;
            assert_eq!(ctx.gpu.memory().peek(recv, 4)?, vec![0, 1, 2, 3]);
            Ok(ctx.faults.stats.send_faults + ctx.faults.stats.recv_faults)
        })
        .unwrap();
        let observed: u64 = results.iter().sum();
        assert!(observed > 0, "no faults reached the collective sites");
    }
}
