//! Inter-rank network timing model.
//!
//! Encodes the paper's Fig. 8a raw measurements on Summit as model
//! parameters:
//!
//! * CPU–CPU `MPI_Send`/`MPI_Recv` between nodes: **2.2 µs** latency floor;
//! * CUDA-aware GPU–GPU transfers: **≈ 11 µs** floor ("almost exactly
//!   equals the floor for CUDA device-to-host and host-to-device
//!   transfers");
//! * bandwidths chosen so the modeled curves cross where the paper's do.
//!
//! Transfers are point-to-point with a LogGP-style cost
//! `arrival = depart + floor + bytes / bandwidth`; rank-to-node placement
//! decides intra- vs inter-node parameters.

use gpu_sim::{MemSpace, SimTime};
use serde::{Deserialize, Serialize};

/// Which transport a message uses, decided by the endpoint buffer spaces
/// (CUDA-aware MPI takes the GPU path if either endpoint is device memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Both endpoints in host memory.
    Cpu,
    /// At least one endpoint in device memory (CUDA-aware path).
    Gpu,
}

impl Transport {
    /// Transport for a transfer between buffers in the given spaces.
    pub fn for_spaces(a: MemSpace, b: MemSpace) -> Transport {
        if a == MemSpace::Device || b == MemSpace::Device {
            Transport::Gpu
        } else {
            Transport::Cpu
        }
    }
}

/// Latency/bandwidth parameters of the simulated fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// Ranks per node (Summit: 6 GPUs/node; experiments in the paper place
    /// the two ping-pong ranks on *different* nodes).
    pub ranks_per_node: usize,
    /// CPU-path latency floor between nodes (2.2 µs on Summit).
    pub cpu_latency_inter: SimTime,
    /// CPU-path latency floor within a node.
    pub cpu_latency_intra: SimTime,
    /// CPU-path bandwidth between nodes, bytes/ns.
    pub cpu_bw_inter_bpns: f64,
    /// CPU-path bandwidth within a node, bytes/ns.
    pub cpu_bw_intra_bpns: f64,
    /// GPU-path (CUDA-aware) latency floor between nodes (≈ 11 µs).
    pub gpu_latency_inter: SimTime,
    /// GPU-path latency floor within a node.
    pub gpu_latency_intra: SimTime,
    /// GPU-path bandwidth between nodes, bytes/ns — the *pre-pipelining*
    /// rate that applies up to [`NetModel::gpu_pipeline_threshold`].
    pub gpu_bw_inter_bpns: f64,
    /// Message size at which the CUDA-aware path starts pipelining its
    /// staging with the wire (Fig. 8a: the gpu-gpu vs cpu-cpu gap is
    /// *largest* at ~1 MiB, then stops growing).
    pub gpu_pipeline_threshold: usize,
    /// GPU-path bandwidth beyond the threshold, bytes/ns.
    pub gpu_bw_pipelined_bpns: f64,
    /// GPU-path bandwidth within a node (NVLink), bytes/ns.
    pub gpu_bw_intra_bpns: f64,
    /// Sender-side CPU overhead per send (o_s).
    pub send_overhead: SimTime,
    /// Receiver-side CPU overhead per matched receive (o_r).
    pub recv_overhead: SimTime,
    /// Cost of a barrier release beyond waiting for the slowest rank.
    pub barrier_cost: SimTime,
}

impl NetModel {
    /// OLCF Summit: dual-rail EDR InfiniBand between nodes, NVLink2 within.
    pub fn summit() -> Self {
        NetModel {
            ranks_per_node: 6,
            cpu_latency_inter: SimTime::from_ns(2200),
            cpu_latency_intra: SimTime::from_ns(800),
            cpu_bw_inter_bpns: 12.5,
            cpu_bw_intra_bpns: 30.0,
            gpu_latency_inter: SimTime::from_us(11),
            gpu_latency_intra: SimTime::from_us(10),
            // CUDA-aware GPU-GPU transfers move markedly less data per
            // second than CPU-CPU on Summit (Fig. 8a/8b: T_gpu-gpu exceeds
            // T_cpu-cpu by ~80+ µs around 1 MiB) — this asymmetry is what
            // gives the one-shot method its winning region.
            gpu_bw_inter_bpns: 6.0,
            gpu_pipeline_threshold: 1 << 20,
            gpu_bw_pipelined_bpns: 12.5,
            gpu_bw_intra_bpns: 50.0,
            send_overhead: SimTime::from_ns(200),
            recv_overhead: SimTime::from_ns(200),
            barrier_cost: SimTime::from_us(3),
        }
    }

    /// Single-node workstation (the paper's openmpi/mvapich platform): all
    /// ranks share one node; "inter-node" parameters are never exercised
    /// but set to the intra values for safety.
    pub fn workstation() -> Self {
        NetModel {
            ranks_per_node: usize::MAX,
            cpu_latency_inter: SimTime::from_ns(600),
            cpu_latency_intra: SimTime::from_ns(600),
            cpu_bw_inter_bpns: 20.0,
            cpu_bw_intra_bpns: 20.0,
            gpu_latency_inter: SimTime::from_us(9),
            gpu_latency_intra: SimTime::from_us(9),
            gpu_bw_inter_bpns: 10.0,
            gpu_pipeline_threshold: 1 << 20,
            gpu_bw_pipelined_bpns: 10.0,
            gpu_bw_intra_bpns: 10.0,
            send_overhead: SimTime::from_ns(150),
            recv_overhead: SimTime::from_ns(150),
            barrier_cost: SimTime::from_us(2),
        }
    }

    /// Node index of a rank.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node.max(1)
    }

    /// Are two ranks on the same node?
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Fixed virtual-time cost of one completed failure agreement
    /// (`agree_on_failures`): two barrier-equivalents, one to gather the
    /// locally-known failure sets and one to flood the decision. Charged
    /// once per agreement regardless of how many coordinator candidates
    /// were tried, so virtual time stays independent of wall-clock races
    /// in the protocol.
    pub fn agree_cost(&self) -> SimTime {
        self.barrier_cost * 2
    }

    /// Wire time of one message: latency floor plus serialization.
    pub fn transfer_time(
        &self,
        bytes: usize,
        transport: Transport,
        src: usize,
        dst: usize,
    ) -> SimTime {
        let intra = self.same_node(src, dst) && src != dst;
        let local = src == dst;
        if local {
            // self-message: a memcpy, no fabric
            return SimTime::from_ns_f64(bytes as f64 / self.cpu_bw_intra_bpns);
        }
        if transport == Transport::Gpu && !intra {
            // CUDA-aware inter-node: slow staging rate up to the pipeline
            // threshold, pipelined wire rate beyond it.
            let head = bytes.min(self.gpu_pipeline_threshold) as f64;
            let tail = bytes.saturating_sub(self.gpu_pipeline_threshold) as f64;
            return self.gpu_latency_inter
                + SimTime::from_ns_f64(
                    head / self.gpu_bw_inter_bpns + tail / self.gpu_bw_pipelined_bpns,
                );
        }
        let (floor, bw) = match (transport, intra) {
            (Transport::Cpu, false) => (self.cpu_latency_inter, self.cpu_bw_inter_bpns),
            (Transport::Cpu, true) => (self.cpu_latency_intra, self.cpu_bw_intra_bpns),
            (Transport::Gpu, false) => unreachable!("handled above"),
            (Transport::Gpu, true) => (self.gpu_latency_intra, self.gpu_bw_intra_bpns),
        };
        floor + SimTime::from_ns_f64(bytes as f64 / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_floor_is_2_2us() {
        let n = NetModel::summit();
        let t = n.transfer_time(1, Transport::Cpu, 0, 6); // different nodes
        assert!((t.as_us_f64() - 2.2).abs() < 0.01, "{t}");
    }

    #[test]
    fn gpu_floor_is_11us() {
        let n = NetModel::summit();
        let t = n.transfer_time(1, Transport::Gpu, 0, 6);
        assert!((t.as_us_f64() - 11.0).abs() < 0.01, "{t}");
    }

    #[test]
    fn bandwidth_term_dominates_large_messages() {
        let n = NetModel::summit();
        let t = n.transfer_time(64 << 20, Transport::Cpu, 0, 6);
        // 64 MiB / 12.5 B/ns ≈ 5.37 ms
        assert!(t.as_secs_f64() > 5e-3 && t.as_secs_f64() < 6e-3, "{t}");
    }

    #[test]
    fn node_placement() {
        let n = NetModel::summit();
        assert!(n.same_node(0, 5));
        assert!(!n.same_node(5, 6));
        assert_eq!(n.node_of(13), 2);
    }

    #[test]
    fn intra_node_is_faster() {
        let n = NetModel::summit();
        let intra = n.transfer_time(1 << 20, Transport::Gpu, 0, 1);
        let inter = n.transfer_time(1 << 20, Transport::Gpu, 0, 6);
        assert!(intra < inter);
    }

    #[test]
    fn self_transfer_has_no_floor() {
        let n = NetModel::summit();
        let t = n.transfer_time(0, Transport::Cpu, 3, 3);
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn transport_selection() {
        use MemSpace::*;
        assert_eq!(Transport::for_spaces(Device, Device), Transport::Gpu);
        assert_eq!(Transport::for_spaces(Device, Host), Transport::Gpu);
        assert_eq!(Transport::for_spaces(Mapped, Pinned), Transport::Cpu);
        assert_eq!(Transport::for_spaces(Host, Host), Transport::Cpu);
    }

    #[test]
    fn workstation_is_single_node() {
        let n = NetModel::workstation();
        assert!(n.same_node(0, 63));
    }
}
