//! MPI derived-datatype engine.
//!
//! This module implements the subset of the MPI datatype system the paper
//! builds on (Section 2): named types, `MPI_Type_contiguous`,
//! `MPI_Type_vector`, `MPI_Type_create_hvector`,
//! `MPI_Type_create_subarray` — plus `indexed`, `hindexed`, `struct`,
//! `resized` and `dup` so the engine is complete enough for TEMPI's
//! fallback paths and for adversarial tests.
//!
//! The engine provides the two faces the paper's library consumes:
//!
//! * the **introspection face** (`get_envelope` / `get_contents` /
//!   `get_extent` / `size`), which TEMPI's translation phase walks to build
//!   its IR, exactly as the real interposer must since it only sees opaque
//!   handles; and
//! * the **semantics face** ([`typemap::segments`]), the ground-truth list
//!   of `(offset, length)` contiguous byte ranges in typemap order, which
//!   defines pack/unpack meaning and is what baseline vendor
//!   implementations iterate copy-by-copy.

pub mod named;
pub mod pack_cpu;
pub mod registry;
pub mod typemap;

pub use named::Named;
pub use registry::{consts, TypeRegistry};
pub use typemap::Segment;

use serde::{Deserialize, Serialize};

/// An opaque MPI datatype handle. Handles index into a [`TypeRegistry`];
/// the named types have fixed well-known handles (see [`registry::consts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Datatype(pub u32);

/// Array storage order for `MPI_Type_create_subarray`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Order {
    /// Row-major (`MPI_ORDER_C`): dimension 0 varies slowest.
    C,
    /// Column-major (`MPI_ORDER_FORTRAN`): dimension 0 varies fastest.
    Fortran,
}

/// The construction of a datatype — the persistent record of *how* it was
/// built, which is what `MPI_Type_get_contents` reports back.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeDef {
    /// A predefined type.
    Named(Named),
    /// `MPI_Type_dup`.
    Dup {
        /// The duplicated type.
        oldtype: Datatype,
    },
    /// `MPI_Type_contiguous`: `count` repetitions at `extent(oldtype)`.
    Contiguous {
        /// Number of repetitions.
        count: i32,
        /// Element type.
        oldtype: Datatype,
    },
    /// `MPI_Type_vector`: `count` blocks of `blocklength` elements, block
    /// starts `stride` *elements* apart.
    Vector {
        /// Number of blocks.
        count: i32,
        /// Elements per block.
        blocklength: i32,
        /// Stride between block starts, in elements.
        stride: i32,
        /// Element type.
        oldtype: Datatype,
    },
    /// `MPI_Type_create_hvector`: like `Vector` but `stride` is in bytes.
    Hvector {
        /// Number of blocks.
        count: i32,
        /// Elements per block.
        blocklength: i32,
        /// Stride between block starts, in bytes.
        stride_bytes: i64,
        /// Element type.
        oldtype: Datatype,
    },
    /// `MPI_Type_indexed`: blocks of varying length at varying
    /// element-granularity displacements.
    Indexed {
        /// Elements in each block.
        blocklengths: Vec<i32>,
        /// Displacement of each block, in elements.
        displacements: Vec<i32>,
        /// Element type.
        oldtype: Datatype,
    },
    /// `MPI_Type_create_indexed_block`: equal-length blocks at
    /// element-granularity displacements.
    IndexedBlock {
        /// Elements per block.
        blocklength: i32,
        /// Displacement of each block, in elements.
        displacements: Vec<i32>,
        /// Element type.
        oldtype: Datatype,
    },
    /// `MPI_Type_create_hindexed`: like `Indexed` but displacements are in
    /// bytes.
    Hindexed {
        /// Elements in each block.
        blocklengths: Vec<i32>,
        /// Displacement of each block, in bytes.
        displacements_bytes: Vec<i64>,
        /// Element type.
        oldtype: Datatype,
    },
    /// `MPI_Type_create_subarray`: an n-dimensional subarray of an
    /// n-dimensional array.
    Subarray {
        /// Full array extent per dimension, in elements.
        sizes: Vec<i32>,
        /// Subarray extent per dimension, in elements.
        subsizes: Vec<i32>,
        /// Subarray origin per dimension, in elements.
        starts: Vec<i32>,
        /// Storage order.
        order: Order,
        /// Element type.
        oldtype: Datatype,
    },
    /// `MPI_Type_create_struct`: heterogeneous blocks at byte displacements.
    Struct {
        /// Elements in each block.
        blocklengths: Vec<i32>,
        /// Displacement of each block, in bytes.
        displacements_bytes: Vec<i64>,
        /// Per-block element type.
        types: Vec<Datatype>,
    },
    /// `MPI_Type_create_resized`: override lower bound and extent.
    Resized {
        /// New lower bound, bytes.
        lb: i64,
        /// New extent, bytes.
        extent: i64,
        /// Underlying type.
        oldtype: Datatype,
    },
}

/// The combiner tag reported by `MPI_Type_get_envelope`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Combiner {
    Named,
    Dup,
    Contiguous,
    Vector,
    Hvector,
    Indexed,
    IndexedBlock,
    Hindexed,
    Subarray,
    Struct,
    Resized,
}

/// The result of `MPI_Type_get_envelope`: how many items of each kind
/// `get_contents` will return, and the combiner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// Number of integers in the contents.
    pub num_integers: usize,
    /// Number of addresses (byte displacements) in the contents.
    pub num_addresses: usize,
    /// Number of datatype handles in the contents.
    pub num_datatypes: usize,
    /// How the type was constructed.
    pub combiner: Combiner,
}

/// The result of `MPI_Type_get_contents`: the constructor arguments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Contents {
    /// Integer arguments (counts, blocklengths, sizes, order flag, ...).
    pub integers: Vec<i64>,
    /// Address (byte) arguments (hvector stride, hindexed displacements, ...).
    pub addresses: Vec<i64>,
    /// Datatype handle arguments.
    pub datatypes: Vec<Datatype>,
}

/// Cached layout attributes of a datatype, computed at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeAttrs {
    /// Total bytes of data (`MPI_Type_size`).
    pub size: u64,
    /// Lower bound in bytes (`MPI_Type_get_extent`).
    pub lb: i64,
    /// Upper bound in bytes; extent is `ub - lb`.
    pub ub: i64,
    /// Lowest byte actually occupied by data (`MPI_Type_get_true_extent`).
    pub true_lb: i64,
    /// One past the highest byte actually occupied by data.
    pub true_ub: i64,
}

impl TypeAttrs {
    /// Extent in bytes (`ub - lb`).
    #[inline]
    pub fn extent(&self) -> i64 {
        self.ub - self.lb
    }

    /// True extent in bytes (`true_ub - true_lb`).
    #[inline]
    pub fn true_extent(&self) -> i64 {
        self.true_ub - self.true_lb
    }

    /// Attributes of an empty type (count-zero constructions).
    pub const EMPTY: TypeAttrs = TypeAttrs {
        size: 0,
        lb: 0,
        ub: 0,
        true_lb: 0,
        true_ub: 0,
    };
}

/// A datatype record in the registry.
#[derive(Debug, Clone)]
pub struct TypeInfo {
    /// How the type was constructed.
    pub def: TypeDef,
    /// Cached layout attributes.
    pub attrs: TypeAttrs,
    /// Has `MPI_Type_commit` been called?
    pub committed: bool,
}
