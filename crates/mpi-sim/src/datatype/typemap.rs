//! Typemap semantics: the ground-truth byte layout of a datatype.
//!
//! Every MPI datatype denotes a *typemap* — a sequence of (offset, named
//! type) pairs. For pack/unpack purposes only the byte coverage and its
//! order matter, so this module flattens a datatype into an ordered list of
//! contiguous [`Segment`]s (merging adjacent ranges as it goes). This list
//! is:
//!
//! * the **reference semantics** against which TEMPI's canonicalized
//!   GPU kernels are verified, and
//! * the loop the **baseline vendor implementations** execute — one
//!   `cudaMemcpyAsync` per segment — whose cost TEMPI's speedups are
//!   measured against (Section 6.2 of the paper).

use super::registry::{subarray_elem_strides, TypeRegistry};
use super::{Datatype, TypeDef};
use crate::error::MpiResult;

/// A maximal run of contiguous bytes within a datatype's layout, relative
/// to the type's origin (the buffer address passed by the application).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Byte offset from the origin. May be negative (types with negative
    /// lower bounds).
    pub off: i64,
    /// Length in bytes. Always > 0.
    pub len: u64,
}

/// Flatten `dt` into contiguous segments in typemap order.
///
/// Adjacent-in-order segments that touch in memory are merged, so a
/// contiguous construction of any depth collapses to a single segment.
/// (Segments are *not* sorted: MPI pack order is typemap order.)
pub fn segments(reg: &TypeRegistry, dt: Datatype) -> MpiResult<Vec<Segment>> {
    let mut out = Vec::new();
    emit(reg, dt, 0, &mut out)?;
    Ok(out)
}

/// Total bytes of data (sum of segment lengths — equals `MPI_Type_size`).
pub fn data_bytes(segs: &[Segment]) -> u64 {
    segs.iter().map(|s| s.len).sum()
}

/// Byte length of the largest contiguous segment.
pub fn max_block(segs: &[Segment]) -> u64 {
    segs.iter().map(|s| s.len).max().unwrap_or(0)
}

/// Is the datatype "dense": its data occupies exactly `[lb, ub)` with no
/// holes? Dense types can be emitted as a single segment without recursion.
/// (Assumes the typemap is non-self-overlapping, true of every type the
/// engine can build from non-overlapping constructors.)
fn is_dense(reg: &TypeRegistry, dt: Datatype) -> MpiResult<bool> {
    let a = reg.attrs(dt)?;
    Ok(a.extent() >= 0 && a.size == a.extent() as u64 && a.lb == a.true_lb && a.ub == a.true_ub)
}

fn push_seg(out: &mut Vec<Segment>, off: i64, len: u64) {
    if len == 0 {
        return;
    }
    if let Some(last) = out.last_mut() {
        if last.off + last.len as i64 == off {
            last.len += len;
            return;
        }
    }
    out.push(Segment { off, len });
}

fn emit(reg: &TypeRegistry, dt: Datatype, base: i64, out: &mut Vec<Segment>) -> MpiResult<()> {
    let info = reg.info(dt)?;
    // Fast path: dense subtree is one segment.
    if info.attrs.size > 0 && is_dense(reg, dt)? {
        push_seg(out, base + info.attrs.lb, info.attrs.size);
        return Ok(());
    }
    match &info.def {
        TypeDef::Named(n) => push_seg(out, base, n.size() as u64),
        TypeDef::Dup { oldtype } => emit(reg, *oldtype, base, out)?,
        TypeDef::Contiguous { count, oldtype } => {
            let ex = reg.attrs(*oldtype)?.extent();
            for i in 0..*count as i64 {
                emit(reg, *oldtype, base + i * ex, out)?;
            }
        }
        TypeDef::Vector {
            count,
            blocklength,
            stride,
            oldtype,
        } => {
            let ex = reg.attrs(*oldtype)?.extent();
            for i in 0..*count as i64 {
                let block = base + i * *stride as i64 * ex;
                for j in 0..*blocklength as i64 {
                    emit(reg, *oldtype, block + j * ex, out)?;
                }
            }
        }
        TypeDef::Hvector {
            count,
            blocklength,
            stride_bytes,
            oldtype,
        } => {
            let ex = reg.attrs(*oldtype)?.extent();
            for i in 0..*count as i64 {
                let block = base + i * stride_bytes;
                for j in 0..*blocklength as i64 {
                    emit(reg, *oldtype, block + j * ex, out)?;
                }
            }
        }
        TypeDef::Indexed {
            blocklengths,
            displacements,
            oldtype,
        } => {
            let ex = reg.attrs(*oldtype)?.extent();
            for (bl, d) in blocklengths.iter().zip(displacements) {
                let block = base + *d as i64 * ex;
                for j in 0..*bl as i64 {
                    emit(reg, *oldtype, block + j * ex, out)?;
                }
            }
        }
        TypeDef::IndexedBlock {
            blocklength,
            displacements,
            oldtype,
        } => {
            let ex = reg.attrs(*oldtype)?.extent();
            for d in displacements {
                let block = base + *d as i64 * ex;
                for j in 0..*blocklength as i64 {
                    emit(reg, *oldtype, block + j * ex, out)?;
                }
            }
        }
        TypeDef::Hindexed {
            blocklengths,
            displacements_bytes,
            oldtype,
        } => {
            let ex = reg.attrs(*oldtype)?.extent();
            for (bl, d) in blocklengths.iter().zip(displacements_bytes) {
                for j in 0..*bl as i64 {
                    emit(reg, *oldtype, base + d + j * ex, out)?;
                }
            }
        }
        TypeDef::Subarray {
            sizes,
            subsizes,
            starts,
            order,
            oldtype,
        } => {
            let ex = reg.attrs(*oldtype)?.extent();
            let strides = subarray_elem_strides(sizes, *order);
            // Odometer over the subarray indices; for C order dimension 0
            // is slowest (varies last), for Fortran dimension 0 is fastest.
            // We iterate so that the fastest-varying dimension is innermost
            // — i.e., in increasing memory order for non-pathological
            // layouts, which is also the typemap order.
            let ndims = sizes.len();
            let dim_order: Vec<usize> = match order {
                super::Order::C => (0..ndims).collect(), // idx[0] outermost
                super::Order::Fortran => (0..ndims).rev().collect(),
            };
            let mut idx = vec![0i64; ndims];
            loop {
                let off: i64 = (0..ndims)
                    .map(|k| (starts[k] as i64 + idx[k]) * strides[k])
                    .sum();
                emit(reg, *oldtype, base + off * ex, out)?;
                // increment odometer: last entry of dim_order fastest
                let mut k = ndims;
                loop {
                    if k == 0 {
                        return Ok(());
                    }
                    k -= 1;
                    let d = dim_order[k];
                    idx[d] += 1;
                    if idx[d] < subsizes[d] as i64 {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        }
        TypeDef::Struct {
            blocklengths,
            displacements_bytes,
            types,
        } => {
            for i in 0..types.len() {
                let ex = reg.attrs(types[i])?.extent();
                for j in 0..blocklengths[i] as i64 {
                    emit(reg, types[i], base + displacements_bytes[i] + j * ex, out)?;
                }
            }
        }
        TypeDef::Resized { oldtype, .. } => emit(reg, *oldtype, base, out)?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::registry::consts::*;
    use super::super::Order;
    use super::*;

    fn reg() -> TypeRegistry {
        TypeRegistry::new()
    }

    #[test]
    fn named_is_one_segment() {
        let r = reg();
        assert_eq!(
            segments(&r, MPI_DOUBLE).unwrap(),
            vec![Segment { off: 0, len: 8 }]
        );
    }

    #[test]
    fn contiguous_merges_to_one_segment() {
        let mut r = reg();
        let t = r.type_contiguous(1000, MPI_FLOAT).unwrap();
        assert_eq!(
            segments(&r, t).unwrap(),
            vec![Segment { off: 0, len: 4000 }]
        );
    }

    #[test]
    fn vector_produces_count_segments() {
        let mut r = reg();
        let t = r.type_vector(13, 100, 128, MPI_FLOAT).unwrap();
        let segs = segments(&r, t).unwrap();
        assert_eq!(segs.len(), 13);
        assert_eq!(segs[0], Segment { off: 0, len: 400 });
        assert_eq!(segs[1], Segment { off: 512, len: 400 });
        assert_eq!(data_bytes(&segs), 5200);
        assert_eq!(max_block(&segs), 400);
    }

    #[test]
    fn vector_with_touching_blocks_merges() {
        let mut r = reg();
        // stride == blocklength: fully contiguous
        let t = r.type_vector(8, 16, 16, MPI_BYTE).unwrap();
        assert_eq!(segments(&r, t).unwrap(), vec![Segment { off: 0, len: 128 }]);
    }

    #[test]
    fn equivalent_constructions_have_equal_segments() {
        // The paper's Section 2 equivalence list for one row of E0=100
        // floats in an A0=256-float allocation.
        let mut r = reg();
        let e0 = 100;
        let mut builds: Vec<Datatype> = vec![
            r.type_contiguous(e0, MPI_FLOAT).unwrap(),
            r.type_contiguous(e0 * 4, MPI_BYTE).unwrap(),
        ];
        builds.push(r.type_vector(e0, 1, 1, MPI_FLOAT).unwrap());
        builds.push(r.type_vector(1, e0, 1, MPI_FLOAT).unwrap());
        builds.push(r.type_vector(e0, 4, 4, MPI_BYTE).unwrap());
        builds.push(r.type_vector(1, e0 * 4, e0 * 4, MPI_BYTE).unwrap());
        builds.push(r.type_create_hvector(e0 * 4, 1, 1, MPI_BYTE).unwrap());
        builds.push(
            r.type_create_subarray(&[256], &[e0], &[0], Order::C, MPI_FLOAT)
                .unwrap(),
        );
        builds.push(
            r.type_create_subarray(&[256 * 4], &[e0 * 4], &[0], Order::C, MPI_BYTE)
                .unwrap(),
        );
        let want = vec![Segment { off: 0, len: 400 }];
        for t in builds {
            assert_eq!(segments(&r, t).unwrap(), want, "{}", r.describe(t));
        }
    }

    #[test]
    fn fig2_constructions_agree() {
        // The three Fig. 2 constructions of the same 3D object:
        // A=(256,512,1024) bytes, E=(100,13,47).
        let mut r = reg();
        // (a) subarray plane + vector of planes
        let plane_a = r
            .type_create_subarray(&[512, 256], &[13, 100], &[0, 0], Order::C, MPI_BYTE)
            .unwrap();
        let cuboid_a = r.type_vector(47, 1, 1, plane_a).unwrap();
        // (b) nested hvectors
        let row_b = r.type_vector(100, 1, 1, MPI_BYTE).unwrap();
        let plane_b = r.type_create_hvector(13, 1, 256, row_b).unwrap();
        let cuboid_b = r.type_create_hvector(47, 1, 256 * 512, plane_b).unwrap();
        // (c) single 3D subarray
        let cuboid_c = r
            .type_create_subarray(
                &[1024, 512, 256],
                &[47, 13, 100],
                &[0, 0, 0],
                Order::C,
                MPI_BYTE,
            )
            .unwrap();
        let sa = segments(&r, cuboid_a).unwrap();
        let sb = segments(&r, cuboid_b).unwrap();
        let sc = segments(&r, cuboid_c).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(sb, sc);
        assert_eq!(sa.len(), 13 * 47);
        assert_eq!(data_bytes(&sa), 100 * 13 * 47);
        // second row of first plane starts at byte 256
        assert_eq!(sa[1], Segment { off: 256, len: 100 });
        // first row of second plane starts at 256*512
        assert_eq!(sa[13].off, 256 * 512);
    }

    #[test]
    fn subarray_vector_equivalence_2d() {
        let mut r = reg();
        let v = r.type_vector(13, 100, 256, MPI_BYTE).unwrap();
        let s = r
            .type_create_subarray(&[13, 256], &[13, 100], &[0, 0], Order::C, MPI_BYTE)
            .unwrap();
        assert_eq!(segments(&r, v).unwrap(), segments(&r, s).unwrap());
    }

    #[test]
    fn fortran_order_subarray_matches_transposed_c() {
        let mut r = reg();
        // Fortran (dim0 fastest): sizes=[256, 512], subsizes=[100, 13]
        let f = r
            .type_create_subarray(&[256, 512], &[100, 13], &[0, 0], Order::Fortran, MPI_BYTE)
            .unwrap();
        // C (dim0 slowest): sizes=[512, 256], subsizes=[13, 100]
        let c = r
            .type_create_subarray(&[512, 256], &[13, 100], &[0, 0], Order::C, MPI_BYTE)
            .unwrap();
        assert_eq!(segments(&r, f).unwrap(), segments(&r, c).unwrap());
    }

    #[test]
    fn hindexed_segments_in_typemap_order() {
        let mut r = reg();
        let t = r.type_create_hindexed(&[2, 1], &[100, 0], MPI_INT).unwrap();
        let segs = segments(&r, t).unwrap();
        // typemap order: block at 100 first, then block at 0 — NOT sorted
        assert_eq!(
            segs,
            vec![Segment { off: 100, len: 8 }, Segment { off: 0, len: 4 }]
        );
    }

    #[test]
    fn struct_segments() {
        let mut r = reg();
        let t = r
            .type_create_struct(&[2, 3], &[0, 32], &[MPI_INT, MPI_BYTE])
            .unwrap();
        assert_eq!(
            segments(&r, t).unwrap(),
            vec![Segment { off: 0, len: 8 }, Segment { off: 32, len: 3 }]
        );
    }

    #[test]
    fn vector_of_subarray_composes() {
        let mut r = reg();
        // subarray with nonzero start inside a vector
        let sub = r
            .type_create_subarray(&[8, 8], &[2, 4], &[1, 2], Order::C, MPI_BYTE)
            .unwrap();
        let v = r.type_vector(3, 1, 1, sub).unwrap();
        let segs = segments(&r, v).unwrap();
        // each subarray: rows at (1*8+2)=10 and 18, len 4; vector stride =
        // extent = 64 bytes
        assert_eq!(segs.len(), 6);
        assert_eq!(segs[0], Segment { off: 10, len: 4 });
        assert_eq!(segs[1], Segment { off: 18, len: 4 });
        assert_eq!(segs[2], Segment { off: 74, len: 4 });
    }

    #[test]
    fn zero_size_type_has_no_segments() {
        let mut r = reg();
        let t = r.type_contiguous(0, MPI_INT).unwrap();
        assert!(segments(&r, t).unwrap().is_empty());
        assert_eq!(max_block(&[]), 0);
    }

    #[test]
    fn resized_does_not_change_data() {
        let mut r = reg();
        let v = r.type_vector(2, 1, 4, MPI_FLOAT).unwrap();
        let t = r.type_create_resized(v, -100, 500).unwrap();
        assert_eq!(segments(&r, t).unwrap(), segments(&r, v).unwrap());
    }
}
