//! MPI named (predefined) datatypes.
//!
//! These are the leaves of every derived-type construction. Per the MPI
//! standard they correspond to host-language scalar types; only their size
//! matters to the datatype engine (alignment padding ε is taken as zero, as
//! all sizes here are self-aligned).

use serde::{Deserialize, Serialize};

/// The predefined MPI datatypes modeled by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Named {
    Byte,
    Char,
    UnsignedChar,
    Short,
    UnsignedShort,
    Int,
    Unsigned,
    Long,
    UnsignedLong,
    LongLong,
    Float,
    Double,
}

impl Named {
    /// All named types, in handle order (the registry preregisters them in
    /// this order, so `Datatype(i)` is `ALL[i]`).
    pub const ALL: [Named; 12] = [
        Named::Byte,
        Named::Char,
        Named::UnsignedChar,
        Named::Short,
        Named::UnsignedShort,
        Named::Int,
        Named::Unsigned,
        Named::Long,
        Named::UnsignedLong,
        Named::LongLong,
        Named::Float,
        Named::Double,
    ];

    /// Size in bytes (extent equals size for all named types here).
    pub const fn size(self) -> usize {
        match self {
            Named::Byte | Named::Char | Named::UnsignedChar => 1,
            Named::Short | Named::UnsignedShort => 2,
            Named::Int | Named::Unsigned | Named::Float => 4,
            Named::Long | Named::UnsignedLong | Named::LongLong | Named::Double => 8,
        }
    }

    /// The MPI name, for diagnostics (`MPI_FLOAT`, ...).
    pub const fn mpi_name(self) -> &'static str {
        match self {
            Named::Byte => "MPI_BYTE",
            Named::Char => "MPI_CHAR",
            Named::UnsignedChar => "MPI_UNSIGNED_CHAR",
            Named::Short => "MPI_SHORT",
            Named::UnsignedShort => "MPI_UNSIGNED_SHORT",
            Named::Int => "MPI_INT",
            Named::Unsigned => "MPI_UNSIGNED",
            Named::Long => "MPI_LONG",
            Named::UnsignedLong => "MPI_UNSIGNED_LONG",
            Named::LongLong => "MPI_LONG_LONG",
            Named::Float => "MPI_FLOAT",
            Named::Double => "MPI_DOUBLE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_c_types() {
        assert_eq!(Named::Byte.size(), 1);
        assert_eq!(Named::Short.size(), 2);
        assert_eq!(Named::Int.size(), 4);
        assert_eq!(Named::Float.size(), 4);
        assert_eq!(Named::Double.size(), 8);
        assert_eq!(Named::LongLong.size(), 8);
    }

    #[test]
    fn all_is_exhaustive_and_ordered() {
        assert_eq!(Named::ALL.len(), 12);
        assert_eq!(Named::ALL[0], Named::Byte);
        assert_eq!(Named::ALL[10], Named::Float);
        // no duplicates
        for (i, a) in Named::ALL.iter().enumerate() {
            for b in &Named::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn names_render() {
        assert_eq!(Named::Float.mpi_name(), "MPI_FLOAT");
        assert_eq!(Named::Byte.mpi_name(), "MPI_BYTE");
    }
}
