//! Reference CPU pack/unpack over host byte slices.
//!
//! This is the semantics oracle: `MPI_Pack`/`MPI_Unpack` on host buffers is
//! implemented by walking the datatype's [`Segment`] list in typemap order.
//! Every GPU packing path in the repository (TEMPI's kernels, the vendor
//! baselines, the DMA path) is tested against this implementation.

use super::typemap::{segments, Segment};
use super::{Datatype, TypeRegistry};
use crate::error::{MpiError, MpiResult};

/// Bytes required to pack `incount` items of `dt` (`MPI_Pack_size`).
pub fn pack_size(reg: &TypeRegistry, incount: usize, dt: Datatype) -> MpiResult<usize> {
    Ok(reg.size(dt)? as usize * incount)
}

fn src_range(
    origin: i64,
    seg_off: i64,
    len: u64,
    buf_len: usize,
) -> MpiResult<std::ops::Range<usize>> {
    let start = origin + seg_off;
    if start < 0 {
        return Err(MpiError::InvalidArg(format!(
            "datatype reaches {start} bytes before the start of the buffer"
        )));
    }
    let start = start as usize;
    let end = start + len as usize;
    if end > buf_len {
        return Err(MpiError::BufferTooSmall {
            required: end,
            available: buf_len,
            envelope: None,
        });
    }
    Ok(start..end)
}

/// Pack `incount` items of `dt` from `inbuf` (item `i` at byte
/// `origin + i × extent(dt)`) into `outbuf` starting at `*position`.
/// Advances `*position` by the packed size, like `MPI_Pack`.
pub fn pack(
    reg: &TypeRegistry,
    inbuf: &[u8],
    origin: i64,
    incount: usize,
    dt: Datatype,
    outbuf: &mut [u8],
    position: &mut usize,
) -> MpiResult<()> {
    let segs = segments(reg, dt)?;
    pack_with_segments(reg, &segs, inbuf, origin, incount, dt, outbuf, position)
}

/// Pack with a precomputed segment list (hot loops reuse the list).
#[allow(clippy::too_many_arguments)]
pub fn pack_with_segments(
    reg: &TypeRegistry,
    segs: &[Segment],
    inbuf: &[u8],
    origin: i64,
    incount: usize,
    dt: Datatype,
    outbuf: &mut [u8],
    position: &mut usize,
) -> MpiResult<()> {
    let (_, extent) = reg.extent(dt)?;
    let total = pack_size(reg, incount, dt)?;
    if *position + total > outbuf.len() {
        return Err(MpiError::BufferTooSmall {
            required: *position + total,
            available: outbuf.len(),
            envelope: reg.get_envelope(dt).ok(),
        });
    }
    let mut pos = *position;
    for i in 0..incount {
        let item_origin = origin + i as i64 * extent;
        for seg in segs {
            let r = src_range(item_origin, seg.off, seg.len, inbuf.len())?;
            outbuf[pos..pos + seg.len as usize].copy_from_slice(&inbuf[r]);
            pos += seg.len as usize;
        }
    }
    *position = pos;
    Ok(())
}

/// Unpack from `inbuf` starting at `*position` into `outcount` items of
/// `dt` in `outbuf` (item `i` at byte `origin + i × extent(dt)`).
/// Advances `*position`, like `MPI_Unpack`.
pub fn unpack(
    reg: &TypeRegistry,
    inbuf: &[u8],
    position: &mut usize,
    outbuf: &mut [u8],
    origin: i64,
    outcount: usize,
    dt: Datatype,
) -> MpiResult<()> {
    let segs = segments(reg, dt)?;
    unpack_with_segments(reg, &segs, inbuf, position, outbuf, origin, outcount, dt)
}

/// Unpack with a precomputed segment list.
#[allow(clippy::too_many_arguments)]
pub fn unpack_with_segments(
    reg: &TypeRegistry,
    segs: &[Segment],
    inbuf: &[u8],
    position: &mut usize,
    outbuf: &mut [u8],
    origin: i64,
    outcount: usize,
    dt: Datatype,
) -> MpiResult<()> {
    let (_, extent) = reg.extent(dt)?;
    let total = pack_size(reg, outcount, dt)?;
    if *position + total > inbuf.len() {
        return Err(MpiError::BufferTooSmall {
            required: *position + total,
            available: inbuf.len(),
            envelope: reg.get_envelope(dt).ok(),
        });
    }
    let mut pos = *position;
    for i in 0..outcount {
        let item_origin = origin + i as i64 * extent;
        for seg in segs {
            let r = src_range(item_origin, seg.off, seg.len, outbuf.len())?;
            outbuf[r].copy_from_slice(&inbuf[pos..pos + seg.len as usize]);
            pos += seg.len as usize;
        }
    }
    *position = pos;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::registry::consts::*;
    use super::super::Order;
    use super::*;

    fn fill(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn pack_contiguous_is_memcpy() {
        let mut r = TypeRegistry::new();
        let t = r.type_contiguous(16, MPI_BYTE).unwrap();
        let src = fill(16);
        let mut dst = vec![0u8; 16];
        let mut pos = 0;
        pack(&r, &src, 0, 1, t, &mut dst, &mut pos).unwrap();
        assert_eq!(pos, 16);
        assert_eq!(dst, src);
    }

    #[test]
    fn pack_vector_gathers_blocks() {
        let mut r = TypeRegistry::new();
        // 3 blocks of 2 bytes, stride 4 bytes
        let t = r.type_vector(3, 2, 4, MPI_BYTE).unwrap();
        let src = fill(12);
        let mut dst = vec![0u8; 6];
        let mut pos = 0;
        pack(&r, &src, 0, 1, t, &mut dst, &mut pos).unwrap();
        assert_eq!(dst, vec![0, 1, 4, 5, 8, 9]);
    }

    #[test]
    fn unpack_inverts_pack() {
        let mut r = TypeRegistry::new();
        let t = r
            .type_create_subarray(&[8, 8], &[3, 4], &[2, 1], Order::C, MPI_BYTE)
            .unwrap();
        let src = fill(64);
        let size = pack_size(&r, 1, t).unwrap();
        let mut packed = vec![0u8; size];
        let mut pos = 0;
        pack(&r, &src, 0, 1, t, &mut packed, &mut pos).unwrap();
        assert_eq!(pos, 12);

        let mut dst = vec![0xFFu8; 64];
        let mut pos = 0;
        unpack(&r, &packed, &mut pos, &mut dst, 0, 1, t).unwrap();
        // unpacked positions match source; others untouched
        for row in 0..3 {
            for col in 0..4 {
                let off = (2 + row) * 8 + 1 + col;
                assert_eq!(dst[off], src[off], "byte {off}");
            }
        }
        assert_eq!(dst[0], 0xFF);
        assert_eq!(dst.iter().filter(|&&b| b != 0xFF).count(), 12);
    }

    #[test]
    fn incount_packs_repeated_items_at_extent() {
        let mut r = TypeRegistry::new();
        // vector extent: (2-1)*4+2 = 6 bytes
        let t = r.type_vector(2, 2, 4, MPI_BYTE).unwrap();
        let src = fill(32);
        let mut dst = vec![0u8; 16];
        let mut pos = 0;
        pack(&r, &src, 0, 2, t, &mut dst, &mut pos).unwrap();
        // item 0 at origin 0: bytes 0,1,4,5 ; item 1 at origin 6: 6,7,10,11
        assert_eq!(&dst[..8], &[0, 1, 4, 5, 6, 7, 10, 11]);
        assert_eq!(pos, 8);
    }

    #[test]
    fn position_appends() {
        let mut r = TypeRegistry::new();
        let t = r.type_contiguous(4, MPI_BYTE).unwrap();
        let src = fill(4);
        let mut dst = vec![0u8; 12];
        let mut pos = 4;
        pack(&r, &src, 0, 1, t, &mut dst, &mut pos).unwrap();
        assert_eq!(pos, 8);
        assert_eq!(&dst[4..8], &src[..]);
        assert_eq!(&dst[..4], &[0; 4]);
    }

    #[test]
    fn buffer_too_small_detected() {
        let mut r = TypeRegistry::new();
        let t = r.type_contiguous(16, MPI_BYTE).unwrap();
        let src = fill(16);
        let mut dst = vec![0u8; 8];
        let mut pos = 0;
        assert!(matches!(
            pack(&r, &src, 0, 1, t, &mut dst, &mut pos),
            Err(MpiError::BufferTooSmall {
                required: 16,
                available: 8,
                ..
            })
        ));
        // input buffer shorter than the type's reach
        let short = fill(8);
        let mut dst = vec![0u8; 16];
        assert!(matches!(
            pack(&r, &short, 0, 1, t, &mut dst, &mut pos),
            Err(MpiError::BufferTooSmall { .. })
        ));
    }

    #[test]
    fn negative_reach_detected() {
        let mut r = TypeRegistry::new();
        let t = r.type_create_hindexed(&[1], &[-4], MPI_INT).unwrap();
        let src = fill(16);
        let mut dst = vec![0u8; 4];
        let mut pos = 0;
        assert!(matches!(
            pack(&r, &src, 0, 1, t, &mut dst, &mut pos),
            Err(MpiError::InvalidArg(_))
        ));
        // with origin shifted into range it works
        let mut pos = 0;
        pack(&r, &src, 8, 1, t, &mut dst, &mut pos).unwrap();
        assert_eq!(dst, &src[4..8]);
    }

    #[test]
    fn pack_size_matches_type_size() {
        let mut r = TypeRegistry::new();
        let t = r.type_vector(13, 100, 128, MPI_FLOAT).unwrap();
        assert_eq!(pack_size(&r, 3, t).unwrap(), 3 * 5200);
    }

    #[test]
    fn hindexed_packs_in_typemap_order() {
        let mut r = TypeRegistry::new();
        let t = r.type_create_hindexed(&[2, 2], &[8, 0], MPI_BYTE).unwrap();
        let src = fill(16);
        let mut dst = vec![0u8; 4];
        let mut pos = 0;
        pack(&r, &src, 0, 1, t, &mut dst, &mut pos).unwrap();
        // block at 8 comes first in the typemap
        assert_eq!(dst, vec![8, 9, 0, 1]);
    }
}
