//! Datatype registry: construction, attributes, and introspection.
//!
//! One [`TypeRegistry`] is shared by all ranks of a simulated world (MPI
//! datatypes are per-process, but the constructions in all experiments are
//! identical across ranks; sharing keeps handles comparable in tests).
//! The named types occupy fixed handles (see [`consts`]).

use super::named::Named;
use super::{Combiner, Contents, Datatype, Envelope, Order, TypeAttrs, TypeDef, TypeInfo};
use crate::error::{MpiError, MpiResult};

/// Well-known handles for the named types, in [`Named::ALL`] order.
pub mod consts {
    use super::Datatype;

    /// `MPI_BYTE`
    pub const MPI_BYTE: Datatype = Datatype(0);
    /// `MPI_CHAR`
    pub const MPI_CHAR: Datatype = Datatype(1);
    /// `MPI_UNSIGNED_CHAR`
    pub const MPI_UNSIGNED_CHAR: Datatype = Datatype(2);
    /// `MPI_SHORT`
    pub const MPI_SHORT: Datatype = Datatype(3);
    /// `MPI_UNSIGNED_SHORT`
    pub const MPI_UNSIGNED_SHORT: Datatype = Datatype(4);
    /// `MPI_INT`
    pub const MPI_INT: Datatype = Datatype(5);
    /// `MPI_UNSIGNED`
    pub const MPI_UNSIGNED: Datatype = Datatype(6);
    /// `MPI_LONG`
    pub const MPI_LONG: Datatype = Datatype(7);
    /// `MPI_UNSIGNED_LONG`
    pub const MPI_UNSIGNED_LONG: Datatype = Datatype(8);
    /// `MPI_LONG_LONG`
    pub const MPI_LONG_LONG: Datatype = Datatype(9);
    /// `MPI_FLOAT`
    pub const MPI_FLOAT: Datatype = Datatype(10);
    /// `MPI_DOUBLE`
    pub const MPI_DOUBLE: Datatype = Datatype(11);
}

/// The registry of live datatypes.
#[derive(Debug)]
pub struct TypeRegistry {
    slots: Vec<Option<TypeInfo>>,
}

impl Default for TypeRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeRegistry {
    /// A registry with the named types preregistered at their well-known
    /// handles.
    pub fn new() -> Self {
        let slots = Named::ALL
            .iter()
            .map(|&n| {
                let size = n.size() as i64;
                Some(TypeInfo {
                    def: TypeDef::Named(n),
                    attrs: TypeAttrs {
                        size: n.size() as u64,
                        lb: 0,
                        ub: size,
                        true_lb: 0,
                        true_ub: size,
                    },
                    committed: true, // named types are always committed
                })
            })
            .collect();
        TypeRegistry { slots }
    }

    fn get(&self, dt: Datatype) -> MpiResult<&TypeInfo> {
        self.slots
            .get(dt.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(MpiError::InvalidDatatype)
    }

    fn insert(&mut self, def: TypeDef, attrs: TypeAttrs) -> Datatype {
        let handle = Datatype(self.slots.len() as u32);
        self.slots.push(Some(TypeInfo {
            def,
            attrs,
            committed: false,
        }));
        handle
    }

    /// The full record for a handle.
    pub fn info(&self, dt: Datatype) -> MpiResult<&TypeInfo> {
        self.get(dt)
    }

    /// `MPI_Type_size`.
    pub fn size(&self, dt: Datatype) -> MpiResult<u64> {
        Ok(self.get(dt)?.attrs.size)
    }

    /// `MPI_Type_get_extent`: returns `(lb, extent)`.
    pub fn extent(&self, dt: Datatype) -> MpiResult<(i64, i64)> {
        let a = &self.get(dt)?.attrs;
        Ok((a.lb, a.extent()))
    }

    /// `MPI_Type_get_true_extent`: returns `(true_lb, true_extent)`.
    pub fn true_extent(&self, dt: Datatype) -> MpiResult<(i64, i64)> {
        let a = &self.get(dt)?.attrs;
        Ok((a.true_lb, a.true_extent()))
    }

    /// Cached attributes for a handle.
    pub fn attrs(&self, dt: Datatype) -> MpiResult<TypeAttrs> {
        Ok(self.get(dt)?.attrs)
    }

    /// `MPI_Type_commit`. Idempotent, as in MPI.
    pub fn commit(&mut self, dt: Datatype) -> MpiResult<()> {
        let slot = self
            .slots
            .get_mut(dt.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(MpiError::InvalidDatatype)?;
        slot.committed = true;
        Ok(())
    }

    /// Is the type committed?
    pub fn is_committed(&self, dt: Datatype) -> MpiResult<bool> {
        Ok(self.get(dt)?.committed)
    }

    /// `MPI_Type_free`. Named types cannot be freed. Freeing does not
    /// invalidate types derived from this one (they hold their own copies
    /// of the layout information), matching MPI semantics.
    pub fn free(&mut self, dt: Datatype) -> MpiResult<()> {
        if (dt.0 as usize) < Named::ALL.len() {
            return Err(MpiError::InvalidArg(
                "cannot free a named datatype".to_string(),
            ));
        }
        let slot = self
            .slots
            .get_mut(dt.0 as usize)
            .ok_or(MpiError::InvalidDatatype)?;
        if slot.take().is_none() {
            return Err(MpiError::InvalidDatatype);
        }
        Ok(())
    }

    /// Number of live handles (named + derived).
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    // ---- constructors -------------------------------------------------

    /// `MPI_Type_dup`.
    pub fn type_dup(&mut self, oldtype: Datatype) -> MpiResult<Datatype> {
        let attrs = self.get(oldtype)?.attrs;
        Ok(self.insert(TypeDef::Dup { oldtype }, attrs))
    }

    /// `MPI_Type_contiguous`.
    pub fn type_contiguous(&mut self, count: i32, oldtype: Datatype) -> MpiResult<Datatype> {
        if count < 0 {
            return Err(MpiError::InvalidArg(format!("negative count {count}")));
        }
        let old = self.get(oldtype)?.attrs;
        let attrs = if count == 0 {
            TypeAttrs::EMPTY
        } else {
            let ex = old.extent();
            let n = (count - 1) as i64;
            TypeAttrs {
                size: count as u64 * old.size,
                lb: old.lb + (n * ex).min(0),
                ub: old.ub + (n * ex).max(0),
                true_lb: old.true_lb + (n * ex).min(0),
                true_ub: old.true_ub + (n * ex).max(0),
            }
        };
        Ok(self.insert(TypeDef::Contiguous { count, oldtype }, attrs))
    }

    /// Shared bound math for vector-like constructions: blocks start at the
    /// byte displacements in `block_disps`; within a block, elements are
    /// `extent(old)` apart, `blocklength` per block.
    fn block_attrs(
        old: TypeAttrs,
        block_disps: impl Iterator<Item = i64>,
        blocklength: i64,
        total_blocks: u64,
    ) -> TypeAttrs {
        let ex = old.extent();
        let last = (blocklength - 1) * ex;
        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        let mut tlb = i64::MAX;
        let mut tub = i64::MIN;
        let mut any = false;
        for d in block_disps {
            any = true;
            let (lo, hi) = if last >= 0 {
                (d, d + last)
            } else {
                (d + last, d)
            };
            lb = lb.min(lo + old.lb);
            ub = ub.max(hi + old.ub);
            tlb = tlb.min(lo + old.true_lb);
            tub = tub.max(hi + old.true_ub);
        }
        if !any || blocklength == 0 {
            return TypeAttrs::EMPTY;
        }
        TypeAttrs {
            size: total_blocks * blocklength as u64 * old.size,
            lb,
            ub,
            true_lb: tlb,
            true_ub: tub,
        }
    }

    /// `MPI_Type_vector` (stride in elements).
    pub fn type_vector(
        &mut self,
        count: i32,
        blocklength: i32,
        stride: i32,
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        if count < 0 || blocklength < 0 {
            return Err(MpiError::InvalidArg(format!(
                "negative count/blocklength ({count}, {blocklength})"
            )));
        }
        let old = self.get(oldtype)?.attrs;
        let ex = old.extent();
        let attrs = if count == 0 || blocklength == 0 {
            TypeAttrs::EMPTY
        } else {
            Self::block_attrs(
                old,
                [0i64, (count - 1) as i64 * stride as i64 * ex].into_iter(),
                blocklength as i64,
                count as u64,
            )
        };
        Ok(self.insert(
            TypeDef::Vector {
                count,
                blocklength,
                stride,
                oldtype,
            },
            attrs,
        ))
    }

    /// `MPI_Type_create_hvector` (stride in bytes).
    pub fn type_create_hvector(
        &mut self,
        count: i32,
        blocklength: i32,
        stride_bytes: i64,
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        if count < 0 || blocklength < 0 {
            return Err(MpiError::InvalidArg(format!(
                "negative count/blocklength ({count}, {blocklength})"
            )));
        }
        let old = self.get(oldtype)?.attrs;
        let attrs = if count == 0 || blocklength == 0 {
            TypeAttrs::EMPTY
        } else {
            Self::block_attrs(
                old,
                [0i64, (count - 1) as i64 * stride_bytes].into_iter(),
                blocklength as i64,
                count as u64,
            )
        };
        Ok(self.insert(
            TypeDef::Hvector {
                count,
                blocklength,
                stride_bytes,
                oldtype,
            },
            attrs,
        ))
    }

    /// `MPI_Type_indexed` (displacements in elements).
    pub fn type_indexed(
        &mut self,
        blocklengths: &[i32],
        displacements: &[i32],
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        if blocklengths.len() != displacements.len() {
            return Err(MpiError::InvalidArg(
                "blocklengths and displacements differ in length".to_string(),
            ));
        }
        if blocklengths.iter().any(|&b| b < 0) {
            return Err(MpiError::InvalidArg("negative blocklength".to_string()));
        }
        let old = self.get(oldtype)?.attrs;
        let ex = old.extent();
        let attrs = Self::indexed_attrs(
            old,
            blocklengths
                .iter()
                .zip(displacements)
                .map(|(&b, &d)| (b as i64, d as i64 * ex)),
        );
        Ok(self.insert(
            TypeDef::Indexed {
                blocklengths: blocklengths.to_vec(),
                displacements: displacements.to_vec(),
                oldtype,
            },
            attrs,
        ))
    }

    /// `MPI_Type_create_indexed_block` (equal blocks, displacements in
    /// elements).
    pub fn type_create_indexed_block(
        &mut self,
        blocklength: i32,
        displacements: &[i32],
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        if blocklength < 0 {
            return Err(MpiError::InvalidArg("negative blocklength".to_string()));
        }
        let old = self.get(oldtype)?.attrs;
        let ex = old.extent();
        let attrs = Self::indexed_attrs(
            old,
            displacements
                .iter()
                .map(|&d| (blocklength as i64, d as i64 * ex)),
        );
        Ok(self.insert(
            TypeDef::IndexedBlock {
                blocklength,
                displacements: displacements.to_vec(),
                oldtype,
            },
            attrs,
        ))
    }

    /// `MPI_Type_create_hindexed` (displacements in bytes).
    pub fn type_create_hindexed(
        &mut self,
        blocklengths: &[i32],
        displacements_bytes: &[i64],
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        if blocklengths.len() != displacements_bytes.len() {
            return Err(MpiError::InvalidArg(
                "blocklengths and displacements differ in length".to_string(),
            ));
        }
        if blocklengths.iter().any(|&b| b < 0) {
            return Err(MpiError::InvalidArg("negative blocklength".to_string()));
        }
        let old = self.get(oldtype)?.attrs;
        let attrs = Self::indexed_attrs(
            old,
            blocklengths
                .iter()
                .zip(displacements_bytes)
                .map(|(&b, &d)| (b as i64, d)),
        );
        Ok(self.insert(
            TypeDef::Hindexed {
                blocklengths: blocklengths.to_vec(),
                displacements_bytes: displacements_bytes.to_vec(),
                oldtype,
            },
            attrs,
        ))
    }

    /// Bound math for indexed-like constructions with per-block
    /// `(blocklength, byte displacement)` pairs.
    fn indexed_attrs(old: TypeAttrs, blocks: impl Iterator<Item = (i64, i64)>) -> TypeAttrs {
        let ex = old.extent();
        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        let mut tlb = i64::MAX;
        let mut tub = i64::MIN;
        let mut size = 0u64;
        let mut any = false;
        for (bl, d) in blocks {
            if bl == 0 {
                continue;
            }
            any = true;
            size += bl as u64 * old.size;
            let last = (bl - 1) * ex;
            let (lo, hi) = if last >= 0 {
                (d, d + last)
            } else {
                (d + last, d)
            };
            lb = lb.min(lo + old.lb);
            ub = ub.max(hi + old.ub);
            tlb = tlb.min(lo + old.true_lb);
            tub = tub.max(hi + old.true_ub);
        }
        if !any {
            return TypeAttrs::EMPTY;
        }
        TypeAttrs {
            size,
            lb,
            ub,
            true_lb: tlb,
            true_ub: tub,
        }
    }

    /// `MPI_Type_create_subarray`.
    pub fn type_create_subarray(
        &mut self,
        sizes: &[i32],
        subsizes: &[i32],
        starts: &[i32],
        order: Order,
        oldtype: Datatype,
    ) -> MpiResult<Datatype> {
        let ndims = sizes.len();
        if ndims == 0 {
            return Err(MpiError::InvalidArg(
                "subarray needs ndims >= 1".to_string(),
            ));
        }
        if subsizes.len() != ndims || starts.len() != ndims {
            return Err(MpiError::InvalidArg(
                "sizes/subsizes/starts differ in length".to_string(),
            ));
        }
        for i in 0..ndims {
            if sizes[i] < 1 {
                return Err(MpiError::InvalidArg(format!("sizes[{i}] < 1")));
            }
            if subsizes[i] < 1 || subsizes[i] > sizes[i] {
                return Err(MpiError::InvalidArg(format!(
                    "subsizes[{i}] = {} out of range [1, {}]",
                    subsizes[i], sizes[i]
                )));
            }
            if starts[i] < 0 || starts[i] > sizes[i] - subsizes[i] {
                return Err(MpiError::InvalidArg(format!(
                    "starts[{i}] = {} out of range [0, {}]",
                    starts[i],
                    sizes[i] - subsizes[i]
                )));
            }
        }
        let old = self.get(oldtype)?.attrs;
        let ex = old.extent();
        // Element strides per dimension, in elements of oldtype.
        let strides = subarray_elem_strides(sizes, order);
        let full: i64 = sizes.iter().map(|&s| s as i64).product();
        let nsub: u64 = subsizes.iter().map(|&s| s as u64).product();
        let first: i64 = (0..ndims).map(|i| starts[i] as i64 * strides[i]).sum();
        let last: i64 = (0..ndims)
            .map(|i| (starts[i] + subsizes[i] - 1) as i64 * strides[i])
            .sum();
        let attrs = TypeAttrs {
            size: nsub * old.size,
            // Per MPI, a subarray's extent spans the *full* array.
            lb: 0,
            ub: full * ex,
            true_lb: first * ex + old.true_lb,
            true_ub: last * ex + old.true_ub,
        };
        Ok(self.insert(
            TypeDef::Subarray {
                sizes: sizes.to_vec(),
                subsizes: subsizes.to_vec(),
                starts: starts.to_vec(),
                order,
                oldtype,
            },
            attrs,
        ))
    }

    /// `MPI_Type_create_struct`.
    pub fn type_create_struct(
        &mut self,
        blocklengths: &[i32],
        displacements_bytes: &[i64],
        types: &[Datatype],
    ) -> MpiResult<Datatype> {
        if blocklengths.len() != displacements_bytes.len() || blocklengths.len() != types.len() {
            return Err(MpiError::InvalidArg(
                "struct argument arrays differ in length".to_string(),
            ));
        }
        if blocklengths.iter().any(|&b| b < 0) {
            return Err(MpiError::InvalidArg("negative blocklength".to_string()));
        }
        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        let mut tlb = i64::MAX;
        let mut tub = i64::MIN;
        let mut size = 0u64;
        let mut any = false;
        for i in 0..types.len() {
            let old = self.get(types[i])?.attrs;
            let bl = blocklengths[i] as i64;
            if bl == 0 || old.size == 0 && old.extent() == 0 {
                // zero-length block contributes nothing
                if bl == 0 {
                    continue;
                }
            }
            any = true;
            size += bl as u64 * old.size;
            let d = displacements_bytes[i];
            let last = (bl - 1) * old.extent();
            let (lo, hi) = if last >= 0 {
                (d, d + last)
            } else {
                (d + last, d)
            };
            lb = lb.min(lo + old.lb);
            ub = ub.max(hi + old.ub);
            tlb = tlb.min(lo + old.true_lb);
            tub = tub.max(hi + old.true_ub);
        }
        let attrs = if any {
            TypeAttrs {
                size,
                lb,
                ub,
                true_lb: tlb,
                true_ub: tub,
            }
        } else {
            TypeAttrs::EMPTY
        };
        Ok(self.insert(
            TypeDef::Struct {
                blocklengths: blocklengths.to_vec(),
                displacements_bytes: displacements_bytes.to_vec(),
                types: types.to_vec(),
            },
            attrs,
        ))
    }

    /// `MPI_Type_create_resized`.
    pub fn type_create_resized(
        &mut self,
        oldtype: Datatype,
        lb: i64,
        extent: i64,
    ) -> MpiResult<Datatype> {
        let old = self.get(oldtype)?.attrs;
        let attrs = TypeAttrs {
            size: old.size,
            lb,
            ub: lb + extent,
            true_lb: old.true_lb,
            true_ub: old.true_ub,
        };
        Ok(self.insert(
            TypeDef::Resized {
                lb,
                extent,
                oldtype,
            },
            attrs,
        ))
    }

    // ---- introspection -------------------------------------------------

    /// `MPI_Type_get_envelope`.
    pub fn get_envelope(&self, dt: Datatype) -> MpiResult<Envelope> {
        let info = self.get(dt)?;
        let (ni, na, nd, combiner) = match &info.def {
            TypeDef::Named(_) => (0, 0, 0, Combiner::Named),
            TypeDef::Dup { .. } => (0, 0, 1, Combiner::Dup),
            TypeDef::Contiguous { .. } => (1, 0, 1, Combiner::Contiguous),
            TypeDef::Vector { .. } => (3, 0, 1, Combiner::Vector),
            TypeDef::Hvector { .. } => (2, 1, 1, Combiner::Hvector),
            TypeDef::Indexed { blocklengths, .. } => {
                (2 * blocklengths.len() + 1, 0, 1, Combiner::Indexed)
            }
            TypeDef::IndexedBlock { displacements, .. } => {
                (displacements.len() + 2, 0, 1, Combiner::IndexedBlock)
            }
            TypeDef::Hindexed { blocklengths, .. } => (
                blocklengths.len() + 1,
                blocklengths.len(),
                1,
                Combiner::Hindexed,
            ),
            TypeDef::Subarray { sizes, .. } => (3 * sizes.len() + 2, 0, 1, Combiner::Subarray),
            TypeDef::Struct { types, .. } => {
                (types.len() + 1, types.len(), types.len(), Combiner::Struct)
            }
            TypeDef::Resized { .. } => (0, 2, 1, Combiner::Resized),
        };
        Ok(Envelope {
            num_integers: ni,
            num_addresses: na,
            num_datatypes: nd,
            combiner,
        })
    }

    /// `MPI_Type_get_contents`: the constructor arguments, encoded in the
    /// standard's layout.
    pub fn get_contents(&self, dt: Datatype) -> MpiResult<Contents> {
        let info = self.get(dt)?;
        let mut c = Contents::default();
        match &info.def {
            TypeDef::Named(_) => {
                return Err(MpiError::InvalidArg(
                    "MPI_Type_get_contents is invalid on a named type".to_string(),
                ))
            }
            TypeDef::Dup { oldtype } => c.datatypes.push(*oldtype),
            TypeDef::Contiguous { count, oldtype } => {
                c.integers.push(*count as i64);
                c.datatypes.push(*oldtype);
            }
            TypeDef::Vector {
                count,
                blocklength,
                stride,
                oldtype,
            } => {
                c.integers
                    .extend([*count as i64, *blocklength as i64, *stride as i64]);
                c.datatypes.push(*oldtype);
            }
            TypeDef::Hvector {
                count,
                blocklength,
                stride_bytes,
                oldtype,
            } => {
                c.integers.extend([*count as i64, *blocklength as i64]);
                c.addresses.push(*stride_bytes);
                c.datatypes.push(*oldtype);
            }
            TypeDef::Indexed {
                blocklengths,
                displacements,
                oldtype,
            } => {
                c.integers.push(blocklengths.len() as i64);
                c.integers.extend(blocklengths.iter().map(|&b| b as i64));
                c.integers.extend(displacements.iter().map(|&d| d as i64));
                c.datatypes.push(*oldtype);
            }
            TypeDef::IndexedBlock {
                blocklength,
                displacements,
                oldtype,
            } => {
                c.integers.push(displacements.len() as i64);
                c.integers.push(*blocklength as i64);
                c.integers.extend(displacements.iter().map(|&d| d as i64));
                c.datatypes.push(*oldtype);
            }
            TypeDef::Hindexed {
                blocklengths,
                displacements_bytes,
                oldtype,
            } => {
                c.integers.push(blocklengths.len() as i64);
                c.integers.extend(blocklengths.iter().map(|&b| b as i64));
                c.addresses.extend(displacements_bytes.iter().copied());
                c.datatypes.push(*oldtype);
            }
            TypeDef::Subarray {
                sizes,
                subsizes,
                starts,
                order,
                oldtype,
            } => {
                c.integers.push(sizes.len() as i64);
                c.integers.extend(sizes.iter().map(|&v| v as i64));
                c.integers.extend(subsizes.iter().map(|&v| v as i64));
                c.integers.extend(starts.iter().map(|&v| v as i64));
                c.integers.push(match order {
                    Order::C => 0,
                    Order::Fortran => 1,
                });
                c.datatypes.push(*oldtype);
            }
            TypeDef::Struct {
                blocklengths,
                displacements_bytes,
                types,
            } => {
                c.integers.push(blocklengths.len() as i64);
                c.integers.extend(blocklengths.iter().map(|&b| b as i64));
                c.addresses.extend(displacements_bytes.iter().copied());
                c.datatypes.extend(types.iter().copied());
            }
            TypeDef::Resized {
                lb,
                extent,
                oldtype,
            } => {
                c.addresses.extend([*lb, *extent]);
                c.datatypes.push(*oldtype);
            }
        }
        Ok(c)
    }

    /// A compact human-readable rendering of a type construction, for
    /// diagnostics and figure labels.
    pub fn describe(&self, dt: Datatype) -> String {
        match self.get(dt) {
            Err(_) => format!("<dead #{}>", dt.0),
            Ok(info) => match &info.def {
                TypeDef::Named(n) => n.mpi_name().to_string(),
                TypeDef::Dup { oldtype } => format!("dup({})", self.describe(*oldtype)),
                TypeDef::Contiguous { count, oldtype } => {
                    format!("contiguous({count}, {})", self.describe(*oldtype))
                }
                TypeDef::Vector {
                    count,
                    blocklength,
                    stride,
                    oldtype,
                } => format!(
                    "vector({count}, {blocklength}, {stride}, {})",
                    self.describe(*oldtype)
                ),
                TypeDef::Hvector {
                    count,
                    blocklength,
                    stride_bytes,
                    oldtype,
                } => format!(
                    "hvector({count}, {blocklength}, {stride_bytes}B, {})",
                    self.describe(*oldtype)
                ),
                TypeDef::Indexed { blocklengths, .. } => {
                    format!("indexed({} blocks)", blocklengths.len())
                }
                TypeDef::IndexedBlock {
                    blocklength,
                    displacements,
                    ..
                } => format!(
                    "indexed_block({} x {blocklength} elems)",
                    displacements.len()
                ),
                TypeDef::Hindexed { blocklengths, .. } => {
                    format!("hindexed({} blocks)", blocklengths.len())
                }
                TypeDef::Subarray {
                    sizes,
                    subsizes,
                    starts,
                    oldtype,
                    ..
                } => format!(
                    "subarray(sizes={sizes:?}, subsizes={subsizes:?}, starts={starts:?}, {})",
                    self.describe(*oldtype)
                ),
                TypeDef::Struct { types, .. } => format!("struct({} blocks)", types.len()),
                TypeDef::Resized {
                    lb,
                    extent,
                    oldtype,
                } => format!(
                    "resized(lb={lb}, extent={extent}, {})",
                    self.describe(*oldtype)
                ),
            },
        }
    }
}

/// Element strides (in elements of `oldtype`) per subarray dimension.
pub(crate) fn subarray_elem_strides(sizes: &[i32], order: Order) -> Vec<i64> {
    let n = sizes.len();
    let mut strides = vec![1i64; n];
    match order {
        Order::C => {
            // dimension 0 slowest: stride[i] = prod(sizes[i+1..])
            for i in (0..n.saturating_sub(1)).rev() {
                strides[i] = strides[i + 1] * sizes[i + 1] as i64;
            }
        }
        Order::Fortran => {
            // dimension 0 fastest: stride[i] = prod(sizes[..i])
            for i in 1..n {
                strides[i] = strides[i - 1] * sizes[i - 1] as i64;
            }
        }
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::consts::*;
    use super::*;

    #[test]
    fn named_types_preregistered() {
        let r = TypeRegistry::new();
        assert_eq!(r.size(MPI_FLOAT).unwrap(), 4);
        assert_eq!(r.extent(MPI_DOUBLE).unwrap(), (0, 8));
        assert!(r.is_committed(MPI_BYTE).unwrap());
        assert_eq!(r.live(), 12);
    }

    #[test]
    fn contiguous_attrs() {
        let mut r = TypeRegistry::new();
        let t = r.type_contiguous(100, MPI_FLOAT).unwrap();
        assert_eq!(r.size(t).unwrap(), 400);
        assert_eq!(r.extent(t).unwrap(), (0, 400));
        assert!(!r.is_committed(t).unwrap());
        r.commit(t).unwrap();
        assert!(r.is_committed(t).unwrap());
    }

    #[test]
    fn contiguous_zero_count_is_empty() {
        let mut r = TypeRegistry::new();
        let t = r.type_contiguous(0, MPI_INT).unwrap();
        assert_eq!(r.size(t).unwrap(), 0);
        assert_eq!(r.extent(t).unwrap(), (0, 0));
    }

    #[test]
    fn vector_extent_spans_first_to_last_byte() {
        let mut r = TypeRegistry::new();
        // 13 blocks of 100 floats, stride 128 elements
        let t = r.type_vector(13, 100, 128, MPI_FLOAT).unwrap();
        assert_eq!(r.size(t).unwrap(), 13 * 100 * 4);
        // extent: (12*128 + 100) * 4 = 6544
        assert_eq!(r.extent(t).unwrap(), (0, (12 * 128 + 100) * 4));
    }

    #[test]
    fn vector_negative_stride_bounds() {
        let mut r = TypeRegistry::new();
        let t = r.type_vector(3, 2, -4, MPI_INT).unwrap();
        // blocks at element offsets 0, -4, -8; elements at {0,1} within
        let (lb, extent) = r.extent(t).unwrap();
        assert_eq!(lb, -8 * 4);
        assert_eq!(extent, (-8 * 4..2 * 4).len() as i64);
    }

    #[test]
    fn hvector_stride_is_bytes() {
        let mut r = TypeRegistry::new();
        let t = r.type_create_hvector(13, 1, 256, MPI_BYTE).unwrap();
        assert_eq!(r.size(t).unwrap(), 13);
        assert_eq!(r.extent(t).unwrap(), (0, 12 * 256 + 1));
    }

    #[test]
    fn subarray_extent_is_full_array() {
        let mut r = TypeRegistry::new();
        let t = r
            .type_create_subarray(&[256, 512], &[13, 100], &[0, 0], Order::C, MPI_BYTE)
            .unwrap();
        assert_eq!(r.size(t).unwrap(), 13 * 100);
        // Per MPI: lb = 0, extent = full array
        assert_eq!(r.extent(t).unwrap(), (0, 256 * 512));
        // true extent covers first..last actual byte
        let (tlb, text) = r.true_extent(t).unwrap();
        assert_eq!(tlb, 0);
        assert_eq!(text, 12 * 512 + 100);
    }

    #[test]
    fn subarray_with_starts_offsets_true_lb() {
        let mut r = TypeRegistry::new();
        let t = r
            .type_create_subarray(&[8, 16], &[2, 4], &[3, 5], Order::C, MPI_FLOAT)
            .unwrap();
        let (tlb, _) = r.true_extent(t).unwrap();
        assert_eq!(tlb, (3 * 16 + 5) * 4);
        assert_eq!(r.extent(t).unwrap(), (0, 8 * 16 * 4));
    }

    #[test]
    fn subarray_fortran_order_reverses_strides() {
        let strides_c = subarray_elem_strides(&[4, 6, 8], Order::C);
        assert_eq!(strides_c, vec![48, 8, 1]);
        let strides_f = subarray_elem_strides(&[4, 6, 8], Order::Fortran);
        assert_eq!(strides_f, vec![1, 4, 24]);
    }

    #[test]
    fn subarray_validation() {
        let mut r = TypeRegistry::new();
        assert!(r
            .type_create_subarray(&[], &[], &[], Order::C, MPI_BYTE)
            .is_err());
        assert!(r
            .type_create_subarray(&[4], &[5], &[0], Order::C, MPI_BYTE)
            .is_err());
        assert!(r
            .type_create_subarray(&[4], &[2], &[3], Order::C, MPI_BYTE)
            .is_err());
        assert!(r
            .type_create_subarray(&[4], &[0], &[0], Order::C, MPI_BYTE)
            .is_err());
        assert!(r
            .type_create_subarray(&[4, 4], &[2], &[0], Order::C, MPI_BYTE)
            .is_err());
    }

    #[test]
    fn indexed_attrs_and_size() {
        let mut r = TypeRegistry::new();
        let t = r.type_indexed(&[2, 0, 3], &[10, 99, 0], MPI_INT).unwrap();
        assert_eq!(r.size(t).unwrap(), 5 * 4);
        // blocks: [40..48), [0..12); zero-length block ignored
        assert_eq!(r.extent(t).unwrap(), (0, 48));
    }

    #[test]
    fn indexed_block_attrs_and_introspection() {
        let mut r = TypeRegistry::new();
        let t = r.type_create_indexed_block(2, &[8, 0, 4], MPI_INT).unwrap();
        assert_eq!(r.size(t).unwrap(), 3 * 2 * 4);
        // blocks at elements 8, 0, 4 of 2 ints each: bytes [0, 40)
        assert_eq!(r.extent(t).unwrap(), (0, 40));
        let e = r.get_envelope(t).unwrap();
        assert_eq!(e.combiner, Combiner::IndexedBlock);
        assert_eq!(e.num_integers, 5); // count + blocklength + 3 displs
        assert_eq!(e.num_datatypes, 1);
        let c = r.get_contents(t).unwrap();
        assert_eq!(c.integers, vec![3, 2, 8, 0, 4]);
        assert_eq!(c.datatypes, vec![MPI_INT]);
        assert!(r.describe(t).contains("indexed_block"));
        assert!(r.type_create_indexed_block(-1, &[0], MPI_INT).is_err());
    }

    #[test]
    fn indexed_block_matches_equivalent_indexed() {
        let mut r = TypeRegistry::new();
        let ib = r.type_create_indexed_block(2, &[6, 0], MPI_FLOAT).unwrap();
        let ix = r.type_indexed(&[2, 2], &[6, 0], MPI_FLOAT).unwrap();
        assert_eq!(r.attrs(ib).unwrap(), r.attrs(ix).unwrap());
        assert_eq!(
            super::super::typemap::segments(&r, ib).unwrap(),
            super::super::typemap::segments(&r, ix).unwrap()
        );
    }

    #[test]
    fn hindexed_displacements_are_bytes() {
        let mut r = TypeRegistry::new();
        let t = r
            .type_create_hindexed(&[1, 1], &[100, 0], MPI_DOUBLE)
            .unwrap();
        assert_eq!(r.extent(t).unwrap(), (0, 108));
    }

    #[test]
    fn struct_mixed_types() {
        let mut r = TypeRegistry::new();
        let t = r
            .type_create_struct(&[2, 1], &[0, 16], &[MPI_INT, MPI_DOUBLE])
            .unwrap();
        assert_eq!(r.size(t).unwrap(), 16);
        assert_eq!(r.extent(t).unwrap(), (0, 24));
    }

    #[test]
    fn resized_overrides_bounds() {
        let mut r = TypeRegistry::new();
        let v = r.type_vector(2, 1, 4, MPI_FLOAT).unwrap();
        let t = r.type_create_resized(v, -4, 64).unwrap();
        assert_eq!(r.extent(t).unwrap(), (-4, 64));
        // true extent unchanged
        assert_eq!(r.true_extent(t).unwrap(), (0, 20));
        assert_eq!(r.size(t).unwrap(), 8);
    }

    #[test]
    fn dup_copies_attrs() {
        let mut r = TypeRegistry::new();
        let v = r.type_vector(3, 2, 5, MPI_INT).unwrap();
        let d = r.type_dup(v).unwrap();
        assert_eq!(r.attrs(d).unwrap(), r.attrs(v).unwrap());
    }

    #[test]
    fn nested_type_attrs_compose() {
        let mut r = TypeRegistry::new();
        // Fig. 2 middle construction: row = vector(100,1,1,BYTE);
        // plane = hvector(13,1,256,row); cuboid = hvector(47,1,131072,plane)
        let row = r.type_vector(100, 1, 1, MPI_BYTE).unwrap();
        assert_eq!(r.extent(row).unwrap(), (0, 100));
        let plane = r.type_create_hvector(13, 1, 256, row).unwrap();
        assert_eq!(r.size(plane).unwrap(), 1300);
        assert_eq!(r.extent(plane).unwrap(), (0, 12 * 256 + 100));
        let cuboid = r.type_create_hvector(47, 1, 256 * 512, plane).unwrap();
        assert_eq!(r.size(cuboid).unwrap(), 47 * 13 * 100);
        assert_eq!(
            r.extent(cuboid).unwrap(),
            (0, 46 * 256 * 512 + 12 * 256 + 100)
        );
    }

    #[test]
    fn free_and_use_after_free() {
        let mut r = TypeRegistry::new();
        let t = r.type_contiguous(4, MPI_INT).unwrap();
        r.free(t).unwrap();
        assert_eq!(r.size(t), Err(MpiError::InvalidDatatype));
        assert_eq!(r.free(t), Err(MpiError::InvalidDatatype));
        assert!(r.free(MPI_INT).is_err());
    }

    #[test]
    fn envelope_shapes() {
        let mut r = TypeRegistry::new();
        let v = r.type_vector(2, 3, 4, MPI_INT).unwrap();
        let e = r.get_envelope(v).unwrap();
        assert_eq!(
            e,
            Envelope {
                num_integers: 3,
                num_addresses: 0,
                num_datatypes: 1,
                combiner: Combiner::Vector
            }
        );
        let s = r
            .type_create_subarray(&[4, 4], &[2, 2], &[0, 0], Order::C, MPI_INT)
            .unwrap();
        let e = r.get_envelope(s).unwrap();
        assert_eq!(e.num_integers, 8);
        assert_eq!(e.combiner, Combiner::Subarray);
        assert_eq!(r.get_envelope(MPI_INT).unwrap().combiner, Combiner::Named);
    }

    #[test]
    fn contents_roundtrip_vector() {
        let mut r = TypeRegistry::new();
        let v = r.type_vector(13, 100, 128, MPI_FLOAT).unwrap();
        let c = r.get_contents(v).unwrap();
        assert_eq!(c.integers, vec![13, 100, 128]);
        assert_eq!(c.datatypes, vec![MPI_FLOAT]);
        assert!(c.addresses.is_empty());
    }

    #[test]
    fn contents_roundtrip_subarray() {
        let mut r = TypeRegistry::new();
        let s = r
            .type_create_subarray(&[256, 512], &[13, 100], &[1, 2], Order::C, MPI_BYTE)
            .unwrap();
        let c = r.get_contents(s).unwrap();
        assert_eq!(c.integers, vec![2, 256, 512, 13, 100, 1, 2, 0]);
        assert_eq!(c.datatypes, vec![MPI_BYTE]);
    }

    #[test]
    fn contents_on_named_is_an_error() {
        let r = TypeRegistry::new();
        assert!(r.get_contents(MPI_INT).is_err());
    }

    #[test]
    fn describe_renders_nested() {
        let mut r = TypeRegistry::new();
        let row = r.type_contiguous(4, MPI_FLOAT).unwrap();
        let v = r.type_vector(2, 1, 3, row).unwrap();
        assert_eq!(r.describe(v), "vector(2, 1, 3, contiguous(4, MPI_FLOAT))");
    }

    #[test]
    fn validation_rejects_negatives() {
        let mut r = TypeRegistry::new();
        assert!(r.type_contiguous(-1, MPI_INT).is_err());
        assert!(r.type_vector(-1, 1, 1, MPI_INT).is_err());
        assert!(r.type_vector(1, -1, 1, MPI_INT).is_err());
        assert!(r.type_indexed(&[1], &[0, 1], MPI_INT).is_err());
        assert!(r.type_indexed(&[-1], &[0], MPI_INT).is_err());
    }

    #[test]
    fn invalid_handle_rejected() {
        let r = TypeRegistry::new();
        assert_eq!(r.size(Datatype(9999)), Err(MpiError::InvalidDatatype));
    }
}
