//! Perf-baseline comparison backing the `check_bench` CI gates.
//!
//! Three suites share one comparator ([`compare_rows`]) through the
//! [`GatedSuite`] trait: the `bench_send` datatype zoo, the `bench_scale`
//! scaling sweep, and the `check_guidelines` performance-guidelines zoo.
//! Each bench bin writes fresh rows to `BENCH_<suite>.json` at the
//! repository root; a reviewed copy lives in
//! `results/BENCH_<suite>.baseline.json`. The gate re-runs the suite and
//! fails the build when any row got more than the suite's tolerance
//! slower than the committed baseline on any gated timing column, or when
//! any gated *verdict* (the guideline booleans) differs from the baseline
//! at all — verdicts are gated exactly, timings within the tolerance.
//!
//! All times are *virtual* nanoseconds from the simulator clock, so the
//! comparison is exactly reproducible: a regression here is an algorithmic
//! change (method choice, chunking, extra hops), never host noise.

use serde::{Deserialize, Serialize};

/// Default largest allowed `current / baseline` ratio per gated timing:
/// a 10% slowdown budget, absorbing intentional small costs (an extra
/// branch, a dispatch-overhead bump) while catching method-choice
/// regressions, which move rows by integer factors.
pub const TOLERANCE: f64 = 1.10;

/// One row type of a gated benchmark suite: how to identify a row across
/// runs, which timing columns are gated (within [`Self::TOLERANCE`]),
/// and which boolean verdicts are gated exactly.
pub trait GatedSuite: Serialize + Deserialize {
    /// Suite name — names the `BENCH_<suite>.json` /
    /// `results/BENCH_<suite>.baseline.json` pair in messages.
    const SUITE: &'static str;
    /// Largest allowed `current / baseline` timing ratio for this suite.
    const TOLERANCE: f64;

    /// The identity of a row across runs (also the label in messages).
    fn row_key(&self) -> String;
    /// Gated timing columns, `(metric name, virtual ns)`.
    fn timings(&self) -> Vec<(&'static str, f64)>;
    /// Gated boolean verdicts, compared exactly (none by default).
    fn verdicts(&self) -> Vec<(&'static str, bool)> {
        Vec::new()
    }
}

/// One gated difference between a fresh run and the committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum Regression {
    /// A timing column got slower than the suite tolerance allows.
    Timing {
        /// Row key of the offending row.
        row: String,
        /// Which timing column regressed.
        metric: &'static str,
        /// The committed baseline time, virtual ns.
        baseline_ns: f64,
        /// The freshly measured time, virtual ns.
        current_ns: f64,
        /// The suite's tolerance (as a ratio limit, e.g. 1.10).
        limit: f64,
    },
    /// A gated verdict differs from the baseline (any flip fails: a
    /// changed verdict set must be re-recorded deliberately, even when
    /// the flip is an improvement).
    Verdict {
        /// Row key of the offending row.
        row: String,
        /// Which verdict flipped.
        verdict: &'static str,
        /// The committed baseline value.
        baseline: bool,
        /// The freshly evaluated value.
        current: bool,
    },
}

impl Regression {
    /// Slowdown factor for sorting: `current / baseline` for timings,
    /// `+inf` for verdict flips so they always sort first.
    pub fn ratio(&self) -> f64 {
        match self {
            Regression::Timing {
                baseline_ns,
                current_ns,
                ..
            } => current_ns / baseline_ns,
            Regression::Verdict { .. } => f64::INFINITY,
        }
    }
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Regression::Timing {
                row,
                metric,
                baseline_ns,
                current_ns,
                limit,
            } => write!(
                f,
                "{row}: {metric} {baseline_ns:.0} ns -> {current_ns:.0} ns \
                 ({:.2}x, limit {limit:.2}x)",
                self.ratio()
            ),
            Regression::Verdict {
                row,
                verdict,
                baseline,
                current,
            } => write!(
                f,
                "{row}: verdict {verdict} flipped {baseline} -> {current} \
                 (verdicts are gated exactly; re-record the baseline if intentional)"
            ),
        }
    }
}

/// Compare a fresh suite run against the committed baseline.
///
/// Every baseline row must be present in `current` (keyed by
/// [`GatedSuite::row_key`]) — a vanished row is an error, not a pass, so
/// shrinking a suite cannot silently shrink the gate. Extra current rows
/// are fine: a grown suite gates on the old rows until the baseline is
/// re-recorded. Timings regress only when slower beyond the suite
/// tolerance (getting faster always passes); verdicts regress on any
/// difference. Returns the regressions, worst first (verdict flips
/// before the worst timing).
pub fn compare_rows<T: GatedSuite>(
    baseline: &[T],
    current: &[T],
) -> Result<Vec<Regression>, String> {
    let mut regressions = Vec::new();
    for b in baseline {
        let key = b.row_key();
        let Some(c) = current.iter().find(|c| c.row_key() == key) else {
            return Err(format!(
                "baseline row {key} is missing from the current run (suite shrank? \
                 re-record results/BENCH_{}.baseline.json)",
                T::SUITE
            ));
        };
        let cur_timings = c.timings();
        for (metric, base) in b.timings() {
            let Some(&(_, cur)) = cur_timings.iter().find(|(m, _)| *m == metric) else {
                return Err(format!("current row {key} lost its {metric} column"));
            };
            if base.is_nan() || base <= 0.0 {
                return Err(format!(
                    "baseline row {key} has non-positive {metric} ({base})"
                ));
            }
            if cur > base * T::TOLERANCE {
                regressions.push(Regression::Timing {
                    row: key.clone(),
                    metric,
                    baseline_ns: base,
                    current_ns: cur,
                    limit: T::TOLERANCE,
                });
            }
        }
        let cur_verdicts = c.verdicts();
        for (verdict, base) in b.verdicts() {
            let Some(&(_, cur)) = cur_verdicts.iter().find(|(v, _)| *v == verdict) else {
                return Err(format!("current row {key} lost its {verdict} verdict"));
            };
            if cur != base {
                regressions.push(Regression::Verdict {
                    row: key.clone(),
                    verdict,
                    baseline: base,
                    current: cur,
                });
            }
        }
    }
    regressions.sort_by(|a, b| b.ratio().total_cmp(&a.ratio()));
    Ok(regressions)
}

/// One datatype-zoo row, matching what `bench_send` serializes.
///
/// The derived columns (`speedup_vs_oneshot`, `tuned_vs_static`) and the
/// method labels are carried for the report but not gated on — the gate
/// compares raw times only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRow {
    /// Human-readable object size (e.g. `"1.0 MiB"`).
    #[serde(default)]
    pub object: String,
    /// Total packed bytes of the object — half of the row key.
    pub object_bytes: usize,
    /// Contiguous block size in bytes — the other half of the row key.
    pub block_bytes: usize,
    /// Method the static model chose on the minimal round.
    #[serde(default)]
    pub method_static: String,
    /// Method the online tuner chose on the minimal round.
    #[serde(default)]
    pub method_tuned: String,
    /// One-way delivery time under `TEMPI_TUNER=off`, virtual ns.
    pub static_ns: f64,
    /// One-way delivery time under `TEMPI_TUNER=online`, virtual ns.
    pub tuned_ns: f64,
    /// One-way delivery time with the one-shot method forced, virtual ns.
    pub oneshot_ns: f64,
    /// `oneshot_ns / tuned_ns` (reported, not gated).
    #[serde(default)]
    pub speedup_vs_oneshot: f64,
    /// `static_ns / tuned_ns` (reported, not gated).
    #[serde(default)]
    pub tuned_vs_static: f64,
}

impl BenchRow {
    /// The identity of a zoo row across runs.
    pub fn key(&self) -> (usize, usize) {
        (self.object_bytes, self.block_bytes)
    }
}

impl GatedSuite for BenchRow {
    const SUITE: &'static str = "send";
    const TOLERANCE: f64 = TOLERANCE;

    fn row_key(&self) -> String {
        format!(
            "object {} B / block {} B",
            self.object_bytes, self.block_bytes
        )
    }

    fn timings(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("static_ns", self.static_ns),
            ("tuned_ns", self.tuned_ns),
            ("oneshot_ns", self.oneshot_ns),
        ]
    }
}

/// One `bench_scale` sweep row, matching what `bench_scale` serializes.
///
/// `exchange_ns` is virtual time from the simulator clock (the slowest
/// rank's measured exchange), so the gate is exactly reproducible.
/// `wall_ms` is host wall-clock — reported for the scaling headline,
/// never gated (it is the one noisy column).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleRow {
    /// Which sweep the row belongs to: `"stencil"` or `"alltoallv"`.
    pub workload: String,
    /// World size of the run — half of the row key with `workload`.
    pub ranks: usize,
    /// Slowest rank's virtual-time cost of one steady-state exchange, ns.
    pub exchange_ns: f64,
    /// Host wall-clock of the whole world run, milliseconds (reported,
    /// not gated).
    #[serde(default)]
    pub wall_ms: f64,
}

impl ScaleRow {
    /// The identity of a scale row across runs.
    pub fn key(&self) -> (&str, usize) {
        (&self.workload, self.ranks)
    }
}

impl GatedSuite for ScaleRow {
    const SUITE: &'static str = "scale";
    const TOLERANCE: f64 = TOLERANCE;

    fn row_key(&self) -> String {
        format!("{} @ {} ranks", self.workload, self.ranks)
    }

    fn timings(&self) -> Vec<(&'static str, f64)> {
        vec![("exchange_ns", self.exchange_ns)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(object_bytes: usize, block_bytes: usize, ns: f64) -> BenchRow {
        BenchRow {
            object: String::new(),
            object_bytes,
            block_bytes,
            method_static: String::new(),
            method_tuned: String::new(),
            static_ns: ns,
            tuned_ns: ns,
            oneshot_ns: ns,
            speedup_vs_oneshot: 1.0,
            tuned_vs_static: 1.0,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let base = vec![row(1 << 20, 64, 50_000.0), row(1 << 20, 512, 20_000.0)];
        assert_eq!(compare_rows(&base, &base).unwrap(), vec![]);
    }

    #[test]
    fn within_tolerance_passes_and_speedups_pass() {
        let base = vec![row(1 << 20, 64, 50_000.0)];
        let mut cur = base.clone();
        cur[0].tuned_ns = 50_000.0 * 1.09; // inside the 10% budget
        cur[0].static_ns = 50_000.0 * 0.5; // got faster: never a failure
        assert_eq!(compare_rows(&base, &cur).unwrap(), vec![]);
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let base = vec![row(1 << 20, 64, 50_000.0), row(4 << 20, 512, 80_000.0)];
        let mut cur = base.clone();
        cur[1].tuned_ns = 80_000.0 * 1.2; // the injected 1.2x slowdown
        let regs = compare_rows(&base, &cur).unwrap();
        assert_eq!(regs.len(), 1);
        assert!((regs[0].ratio() - 1.2).abs() < 1e-9);
        // the message names the row, the metric and the limit
        let msg = regs[0].to_string();
        assert!(
            msg.contains("block 512 B") && msg.contains("tuned_ns") && msg.contains("1.10x"),
            "{msg}"
        );
    }

    #[test]
    fn worst_regression_sorts_first() {
        let base = vec![row(1 << 10, 8, 1_000.0), row(1 << 20, 64, 1_000.0)];
        let mut cur = base.clone();
        cur[0].static_ns = 1_300.0;
        cur[1].oneshot_ns = 2_000.0;
        let regs = compare_rows(&base, &cur).unwrap();
        assert_eq!(regs.len(), 2);
        assert!(matches!(
            regs[0],
            Regression::Timing {
                metric: "oneshot_ns",
                ..
            }
        ));
    }

    #[test]
    fn missing_zoo_row_is_an_error_not_a_pass() {
        let base = vec![row(1 << 20, 64, 50_000.0)];
        let err = compare_rows(&base, &[]).unwrap_err();
        assert!(
            err.contains("missing") && err.contains("BENCH_send.baseline.json"),
            "{err}"
        );
    }

    #[test]
    fn rows_round_trip_through_bench_send_json() {
        let base = vec![row(1 << 20, 64, 50_000.0)];
        let s = serde_json::to_string(&base).unwrap();
        let back: Vec<BenchRow> = serde_json::from_str(&s).unwrap();
        assert_eq!(back[0].key(), (1 << 20, 64));
    }

    fn srow(workload: &str, ranks: usize, ns: f64) -> ScaleRow {
        ScaleRow {
            workload: workload.to_string(),
            ranks,
            exchange_ns: ns,
            wall_ms: 1.0,
        }
    }

    #[test]
    fn scale_identical_runs_pass_and_wall_clock_is_not_gated() {
        let base = vec![srow("stencil", 8, 10_000.0), srow("alltoallv", 64, 5_000.0)];
        let mut cur = base.clone();
        cur[0].wall_ms = 1_000.0; // 1000x wall slowdown: noise, never gated
        assert_eq!(compare_rows(&base, &cur).unwrap(), vec![]);
    }

    #[test]
    fn scale_regression_fails_and_names_the_row() {
        let base = vec![srow("stencil", 4096, 80_000.0)];
        let mut cur = base.clone();
        cur[0].exchange_ns = 80_000.0 * 1.25;
        let regs = compare_rows(&base, &cur).unwrap();
        assert_eq!(regs.len(), 1);
        assert!((regs[0].ratio() - 1.25).abs() < 1e-9);
        let msg = regs[0].to_string();
        assert!(msg.contains("stencil @ 4096 ranks"), "{msg}");
    }

    #[test]
    fn scale_missing_row_is_an_error_and_speedups_pass() {
        let base = vec![srow("stencil", 8, 10_000.0)];
        let err = compare_rows(&base, &[]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        let mut cur = base.clone();
        cur[0].exchange_ns = 5_000.0; // got faster: never a failure
        assert_eq!(compare_rows(&base, &cur).unwrap(), vec![]);
    }

    /// A synthetic suite with both gated timings and gated verdicts, for
    /// exercising the verdict arm without the full guidelines harness.
    #[derive(Clone, Serialize, Deserialize)]
    struct VRow {
        name: String,
        ns: f64,
        ok: bool,
    }

    impl GatedSuite for VRow {
        const SUITE: &'static str = "vtest";
        const TOLERANCE: f64 = 1.5;

        fn row_key(&self) -> String {
            self.name.clone()
        }
        fn timings(&self) -> Vec<(&'static str, f64)> {
            vec![("ns", self.ns)]
        }
        fn verdicts(&self) -> Vec<(&'static str, bool)> {
            vec![("ok", self.ok)]
        }
    }

    #[test]
    fn verdict_flips_fail_exactly_and_sort_before_timings() {
        let base = vec![
            VRow {
                name: "a".into(),
                ns: 100.0,
                ok: true,
            },
            VRow {
                name: "b".into(),
                ns: 100.0,
                ok: false,
            },
        ];
        let mut cur = base.clone();
        cur[0].ns = 1_000.0; // a 10x timing regression...
        cur[1].ok = true; // ...and an *improved* verdict: still a flip
        let regs = compare_rows(&base, &cur).unwrap();
        assert_eq!(regs.len(), 2);
        assert!(
            matches!(&regs[0], Regression::Verdict { row, verdict: "ok", baseline: false, current: true } if row == "b"),
            "verdict flip must sort before the timing regression: {regs:?}"
        );
        assert!(regs[0].ratio().is_infinite());
        let msg = regs[0].to_string();
        assert!(msg.contains("gated exactly"), "{msg}");
        // per-suite tolerance: a 1.4x slowdown passes at 1.5x
        let mut cur2 = base.clone();
        cur2[0].ns = 140.0;
        assert_eq!(compare_rows(&base, &cur2).unwrap(), vec![]);
    }
}
