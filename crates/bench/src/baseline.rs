//! Perf-baseline comparison backing the `check_bench` CI gate.
//!
//! `bench_send` writes the datatype-zoo timing rows to `BENCH_send.json`
//! at the repository root; a reviewed copy lives in
//! `results/BENCH_send.baseline.json`. The gate re-runs the zoo and fails
//! the build when any row got more than [`TOLERANCE`] slower than the
//! committed baseline on any of its three timing columns.
//!
//! All times are *virtual* nanoseconds from the simulator clock, so the
//! comparison is exactly reproducible: a regression here is an algorithmic
//! change (method choice, chunking, extra hops), never host noise.

use serde::{Deserialize, Serialize};

/// One datatype-zoo row, matching what `bench_send` serializes.
///
/// The derived columns (`speedup_vs_oneshot`, `tuned_vs_static`) and the
/// method labels are carried for the report but not gated on — the gate
/// compares raw times only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRow {
    /// Human-readable object size (e.g. `"1.0 MiB"`).
    #[serde(default)]
    pub object: String,
    /// Total packed bytes of the object — half of the row key.
    pub object_bytes: usize,
    /// Contiguous block size in bytes — the other half of the row key.
    pub block_bytes: usize,
    /// Method the static model chose on the minimal round.
    #[serde(default)]
    pub method_static: String,
    /// Method the online tuner chose on the minimal round.
    #[serde(default)]
    pub method_tuned: String,
    /// One-way delivery time under `TEMPI_TUNER=off`, virtual ns.
    pub static_ns: f64,
    /// One-way delivery time under `TEMPI_TUNER=online`, virtual ns.
    pub tuned_ns: f64,
    /// One-way delivery time with the one-shot method forced, virtual ns.
    pub oneshot_ns: f64,
    /// `oneshot_ns / tuned_ns` (reported, not gated).
    #[serde(default)]
    pub speedup_vs_oneshot: f64,
    /// `static_ns / tuned_ns` (reported, not gated).
    #[serde(default)]
    pub tuned_vs_static: f64,
}

impl BenchRow {
    /// The identity of a zoo row across runs.
    pub fn key(&self) -> (usize, usize) {
        (self.object_bytes, self.block_bytes)
    }
}

/// One gated metric of one zoo row that got slower than the baseline
/// allows.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Total packed bytes of the offending object.
    pub object_bytes: usize,
    /// Contiguous block size of the offending object.
    pub block_bytes: usize,
    /// Which timing column regressed: `"static_ns"`, `"tuned_ns"` or
    /// `"oneshot_ns"`.
    pub metric: &'static str,
    /// The committed baseline time, virtual ns.
    pub baseline_ns: f64,
    /// The freshly measured time, virtual ns.
    pub current_ns: f64,
}

impl Regression {
    /// Slowdown factor, `current / baseline`.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "object {} B / block {} B: {} {:.0} ns -> {:.0} ns ({:.2}x, limit {:.2}x)",
            self.object_bytes,
            self.block_bytes,
            self.metric,
            self.baseline_ns,
            self.current_ns,
            self.ratio(),
            TOLERANCE
        )
    }
}

/// Largest allowed `current / baseline` ratio per gated metric: a 10%
/// slowdown budget, absorbing intentional small costs (an extra branch,
/// a dispatch-overhead bump) while catching method-choice regressions,
/// which move rows by integer factors.
pub const TOLERANCE: f64 = 1.10;

/// Compare a fresh zoo run against the committed baseline.
///
/// Every baseline row must be present in `current` (keyed by
/// `(object_bytes, block_bytes)`) — a vanished row is an error, not a
/// pass, so shrinking the zoo cannot silently shrink the gate. Extra
/// current rows are fine: a grown zoo gates on the old rows until the
/// baseline is re-recorded. Returns the regressions, worst first.
pub fn compare(baseline: &[BenchRow], current: &[BenchRow]) -> Result<Vec<Regression>, String> {
    let mut regressions = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key() == b.key()) else {
            return Err(format!(
                "baseline row object {} B / block {} B is missing from the current run \
                 (zoo shrank? re-record results/BENCH_send.baseline.json)",
                b.object_bytes, b.block_bytes
            ));
        };
        for (metric, base, cur) in [
            ("static_ns", b.static_ns, c.static_ns),
            ("tuned_ns", b.tuned_ns, c.tuned_ns),
            ("oneshot_ns", b.oneshot_ns, c.oneshot_ns),
        ] {
            if base.is_nan() || base <= 0.0 {
                return Err(format!(
                    "baseline row object {} B / block {} B has non-positive {metric} ({base})",
                    b.object_bytes, b.block_bytes
                ));
            }
            if cur > base * TOLERANCE {
                regressions.push(Regression {
                    object_bytes: b.object_bytes,
                    block_bytes: b.block_bytes,
                    metric,
                    baseline_ns: base,
                    current_ns: cur,
                });
            }
        }
    }
    regressions.sort_by(|a, b| b.ratio().total_cmp(&a.ratio()));
    Ok(regressions)
}

/// One `bench_scale` sweep row, matching what `bench_scale` serializes.
///
/// `exchange_ns` is virtual time from the simulator clock (the slowest
/// rank's measured exchange), so the gate is exactly reproducible.
/// `wall_ms` is host wall-clock — reported for the scaling headline,
/// never gated (it is the one noisy column).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleRow {
    /// Which sweep the row belongs to: `"stencil"` or `"alltoallv"`.
    pub workload: String,
    /// World size of the run — half of the row key with `workload`.
    pub ranks: usize,
    /// Slowest rank's virtual-time cost of one steady-state exchange, ns.
    pub exchange_ns: f64,
    /// Host wall-clock of the whole world run, milliseconds (reported,
    /// not gated).
    #[serde(default)]
    pub wall_ms: f64,
}

impl ScaleRow {
    /// The identity of a scale row across runs.
    pub fn key(&self) -> (&str, usize) {
        (&self.workload, self.ranks)
    }
}

/// One scale-sweep regression: a `(workload, ranks)` row whose virtual
/// exchange time got slower than the baseline allows.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRegression {
    /// Which sweep regressed.
    pub workload: String,
    /// World size of the offending row.
    pub ranks: usize,
    /// The committed baseline time, virtual ns.
    pub baseline_ns: f64,
    /// The freshly measured time, virtual ns.
    pub current_ns: f64,
}

impl ScaleRegression {
    /// Slowdown factor, `current / baseline`.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

impl std::fmt::Display for ScaleRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} @ {} ranks: exchange_ns {:.0} ns -> {:.0} ns ({:.2}x, limit {:.2}x)",
            self.workload,
            self.ranks,
            self.baseline_ns,
            self.current_ns,
            self.ratio(),
            TOLERANCE
        )
    }
}

/// Compare a fresh scale sweep against the committed baseline, with the
/// same contract as [`compare`]: every baseline row must still exist,
/// extra current rows are fine, regressions come back worst first.
pub fn compare_scale(
    baseline: &[ScaleRow],
    current: &[ScaleRow],
) -> Result<Vec<ScaleRegression>, String> {
    let mut regressions = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key() == b.key()) else {
            return Err(format!(
                "baseline row {} @ {} ranks is missing from the current run \
                 (sweep shrank? re-record results/BENCH_scale.baseline.json)",
                b.workload, b.ranks
            ));
        };
        if b.exchange_ns.is_nan() || b.exchange_ns <= 0.0 {
            return Err(format!(
                "baseline row {} @ {} ranks has non-positive exchange_ns ({})",
                b.workload, b.ranks, b.exchange_ns
            ));
        }
        if c.exchange_ns > b.exchange_ns * TOLERANCE {
            regressions.push(ScaleRegression {
                workload: b.workload.clone(),
                ranks: b.ranks,
                baseline_ns: b.exchange_ns,
                current_ns: c.exchange_ns,
            });
        }
    }
    regressions.sort_by(|a, b| b.ratio().total_cmp(&a.ratio()));
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(object_bytes: usize, block_bytes: usize, ns: f64) -> BenchRow {
        BenchRow {
            object: String::new(),
            object_bytes,
            block_bytes,
            method_static: String::new(),
            method_tuned: String::new(),
            static_ns: ns,
            tuned_ns: ns,
            oneshot_ns: ns,
            speedup_vs_oneshot: 1.0,
            tuned_vs_static: 1.0,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let base = vec![row(1 << 20, 64, 50_000.0), row(1 << 20, 512, 20_000.0)];
        assert_eq!(compare(&base, &base).unwrap(), vec![]);
    }

    #[test]
    fn within_tolerance_passes_and_speedups_pass() {
        let base = vec![row(1 << 20, 64, 50_000.0)];
        let mut cur = base.clone();
        cur[0].tuned_ns = 50_000.0 * 1.09; // inside the 10% budget
        cur[0].static_ns = 50_000.0 * 0.5; // got faster: never a failure
        assert_eq!(compare(&base, &cur).unwrap(), vec![]);
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let base = vec![row(1 << 20, 64, 50_000.0), row(4 << 20, 512, 80_000.0)];
        let mut cur = base.clone();
        cur[1].tuned_ns = 80_000.0 * 1.2; // the injected 1.2x slowdown
        let regs = compare(&base, &cur).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "tuned_ns");
        assert_eq!(regs[0].object_bytes, 4 << 20);
        assert!((regs[0].ratio() - 1.2).abs() < 1e-9);
        // the message names the row, the metric and the limit
        let msg = regs[0].to_string();
        assert!(
            msg.contains("block 512 B") && msg.contains("tuned_ns"),
            "{msg}"
        );
    }

    #[test]
    fn worst_regression_sorts_first() {
        let base = vec![row(1 << 10, 8, 1_000.0), row(1 << 20, 64, 1_000.0)];
        let mut cur = base.clone();
        cur[0].static_ns = 1_300.0;
        cur[1].oneshot_ns = 2_000.0;
        let regs = compare(&base, &cur).unwrap();
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].metric, "oneshot_ns");
    }

    #[test]
    fn missing_zoo_row_is_an_error_not_a_pass() {
        let base = vec![row(1 << 20, 64, 50_000.0)];
        let err = compare(&base, &[]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn rows_round_trip_through_bench_send_json() {
        let base = vec![row(1 << 20, 64, 50_000.0)];
        let s = serde_json::to_string(&base).unwrap();
        let back: Vec<BenchRow> = serde_json::from_str(&s).unwrap();
        assert_eq!(back[0].key(), (1 << 20, 64));
    }

    fn srow(workload: &str, ranks: usize, ns: f64) -> ScaleRow {
        ScaleRow {
            workload: workload.to_string(),
            ranks,
            exchange_ns: ns,
            wall_ms: 1.0,
        }
    }

    #[test]
    fn scale_identical_runs_pass_and_wall_clock_is_not_gated() {
        let base = vec![srow("stencil", 8, 10_000.0), srow("alltoallv", 64, 5_000.0)];
        let mut cur = base.clone();
        cur[0].wall_ms = 1_000.0; // 1000x wall slowdown: noise, never gated
        assert_eq!(compare_scale(&base, &cur).unwrap(), vec![]);
    }

    #[test]
    fn scale_regression_fails_and_names_the_row() {
        let base = vec![srow("stencil", 4096, 80_000.0)];
        let mut cur = base.clone();
        cur[0].exchange_ns = 80_000.0 * 1.25;
        let regs = compare_scale(&base, &cur).unwrap();
        assert_eq!(regs.len(), 1);
        assert!((regs[0].ratio() - 1.25).abs() < 1e-9);
        let msg = regs[0].to_string();
        assert!(msg.contains("stencil @ 4096 ranks"), "{msg}");
    }

    #[test]
    fn scale_missing_row_is_an_error_and_speedups_pass() {
        let base = vec![srow("stencil", 8, 10_000.0)];
        let err = compare_scale(&base, &[]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        let mut cur = base.clone();
        cur[0].exchange_ns = 5_000.0; // got faster: never a failure
        assert_eq!(compare_scale(&base, &cur).unwrap(), vec![]);
    }
}
