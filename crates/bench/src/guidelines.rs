//! The DDT performance-guidelines harness behind the `check_guidelines`
//! CI gate.
//!
//! Hunold/Träff ("MPI Derived Datatypes: Performance Expectations and
//! Status Quo") formulate testable *performance guidelines*: an MPI
//! implementation should never make a derived-datatype communication
//! slower than the semantically equivalent operation the user could
//! write by hand. This module states four of those guidelines over the
//! expanded datatype zoo ([`ZooPattern::zoo`]) and evaluates them per
//! (pattern, vendor) cell, with TEMPI interposed and not:
//!
//! * **G1** — a DDT send must not lose to packing the same bytes and
//!   sending them contiguously (`MPI_Pack` + send + `MPI_Unpack`),
//!   beyond the tolerance.
//! * **G2** — a DDT send must not lose to the naive element-wise loop
//!   (one byte-typed message per contiguous block).
//! * **G3** — interposing TEMPI must never violate a guideline the
//!   system MPI alone satisfies (the gate CI fails the build on).
//! * **G4** — canonicalization must not regress any layout it claims to
//!   normalize: with TEMPI interposed, committing through the
//!   canonicalization pass must not make the typed send slower than the
//!   ablated (`canonicalize = false`) commit of the same type.
//!
//! All times are virtual nanoseconds from the simulator clock, measured
//! receiver-side with the same barrier-per-round, minimum-over-rounds
//! protocol as [`crate::measure::send_one_way_times`] — fully
//! deterministic, so verdicts are exact and the baseline gate needs no
//! flake budget. The tolerance knob is `TEMPI_GUIDELINE_TOL`
//! ([`TempiConfig::guideline_tol`], default 10%).

use mpi_sim::consts::MPI_BYTE;
use mpi_sim::datatype::typemap::segments;
use mpi_sim::{MpiError, MpiResult, RankCtx, VendorId, World};
use serde::{Deserialize, Serialize};
use tempi_core::config::TempiConfig;
use tempi_core::interpose::InterposedMpi;
use tempi_core::tempi::{PlanKind, Tempi};

use crate::baseline::GatedSuite;
use crate::measure::Platform;
use crate::workloads::ZooPattern;

/// Warm-up / measured rounds of the typed DDT send (the quantity under
/// test: it gets the most rounds).
const TYPED_WARMUP: usize = 2;
/// Measured typed rounds (minimum is reported).
const TYPED_ROUNDS: usize = 3;
/// Warm-up rounds of the pack-then-send reference.
const PACK_WARMUP: usize = 1;
/// Measured pack-then-send rounds.
const PACK_ROUNDS: usize = 2;
/// Warm-up rounds of the naive element-wise reference (one message per
/// block — expensive, so one warm-up and one measured round suffice in
/// virtual time).
const NAIVE_WARMUP: usize = 1;
/// Measured naive rounds.
const NAIVE_ROUNDS: usize = 1;

/// The three one-way delivery times of one (pattern, vendor, mode) cell,
/// virtual nanoseconds, receiver-side, minimum over measured rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellTimes {
    /// Typed DDT send: `MPI_Send(buf, 1, ddt)` → typed `MPI_Recv`.
    pub ddt_ns: f64,
    /// Pack-then-send of the same bytes: `MPI_Pack` + byte send →
    /// byte recv + `MPI_Unpack` (receiver time spans recv + unpack, so
    /// the sender's pack delay is visible through the wire wait).
    pub pack_send_ns: f64,
    /// Naive element-wise loop: one `MPI_BYTE` message per contiguous
    /// block of the type map.
    pub naive_ns: f64,
}

/// The per-cell guideline verdicts plus the worst violation ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eval {
    /// G1 with plain system MPI.
    pub g1_off: bool,
    /// G2 with plain system MPI.
    pub g2_off: bool,
    /// G1 with TEMPI interposed.
    pub g1_on: bool,
    /// G2 with TEMPI interposed.
    pub g2_on: bool,
    /// G3: TEMPI-on satisfies every guideline TEMPI-off satisfies.
    pub g3: bool,
    /// G4: canonicalization does not regress a normalized layout.
    pub g4: bool,
    /// Largest `time / reference` ratio among the violated guidelines
    /// (1.0 when every guideline holds).
    pub worst_ratio: f64,
}

impl Eval {
    /// Does every guideline hold?
    pub fn clean(&self) -> bool {
        self.g1_off && self.g2_off && self.g1_on && self.g2_on && self.g3 && self.g4
    }
}

/// Evaluate the guidelines for one cell from its measured times.
///
/// `limit = 1 + tol`: a guideline `a ≤ b` is satisfied when
/// `a ≤ b · limit`, so exact ties and anything inside the tolerance
/// pass. G4 is vacuously true when the plan is not `normalized`
/// (fallback/empty plans make no canonicalization claim).
pub fn evaluate(
    off: CellTimes,
    on: CellTimes,
    on_nocanon_ddt_ns: f64,
    normalized: bool,
    tol: f64,
) -> Eval {
    let limit = 1.0 + tol;
    let holds = |t: f64, reference: f64| t <= reference * limit;
    let g1_off = holds(off.ddt_ns, off.pack_send_ns);
    let g2_off = holds(off.ddt_ns, off.naive_ns);
    let g1_on = holds(on.ddt_ns, on.pack_send_ns);
    let g2_on = holds(on.ddt_ns, on.naive_ns);
    let g3 = (!g1_off || g1_on) && (!g2_off || g2_on);
    let g4 = !normalized || holds(on.ddt_ns, on_nocanon_ddt_ns);
    let mut worst: f64 = 1.0;
    for (ok, t, reference) in [
        (g1_off, off.ddt_ns, off.pack_send_ns),
        (g2_off, off.ddt_ns, off.naive_ns),
        (g1_on, on.ddt_ns, on.pack_send_ns),
        (g2_on, on.ddt_ns, on.naive_ns),
        (g4, on.ddt_ns, on_nocanon_ddt_ns),
    ] {
        if !ok {
            worst = worst.max(t / reference);
        }
    }
    Eval {
        g1_off,
        g2_off,
        g1_on,
        g2_on,
        g3,
        g4,
        worst_ratio: worst,
    }
}

/// One (pattern, vendor) cell of `BENCH_guidelines.json`: the raw
/// virtual times of both deployments, the plan TEMPI built, the six
/// verdicts, and the worst violation ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuidelineRow {
    /// Zoo pattern label ([`ZooPattern::label`]).
    pub pattern: String,
    /// Vendor profile label ([`VendorId::label`]).
    pub vendor: String,
    /// Data bytes the pattern denotes.
    pub size_bytes: usize,
    /// Contiguous blocks (= naive-loop messages).
    pub nblocks: usize,
    /// What TEMPI's commit resolved the type to (`contiguous`,
    /// `strided`, `blocklist`, `fallback(...)`, `empty`).
    pub plan: String,
    /// Does the plan claim canonical handling (G4 applies)?
    pub normalized: bool,
    /// Typed send, TEMPI off, virtual ns.
    pub off_ddt_ns: f64,
    /// Pack-then-send, TEMPI off, virtual ns.
    pub off_pack_send_ns: f64,
    /// Naive loop, TEMPI off, virtual ns.
    pub off_naive_ns: f64,
    /// Typed send, TEMPI on, virtual ns.
    pub on_ddt_ns: f64,
    /// Pack-then-send, TEMPI on, virtual ns.
    pub on_pack_send_ns: f64,
    /// Naive loop, TEMPI on, virtual ns.
    pub on_naive_ns: f64,
    /// Typed send, TEMPI on with `canonicalize = false`, virtual ns.
    pub on_nocanon_ddt_ns: f64,
    /// G1 verdict, TEMPI off.
    pub g1_off: bool,
    /// G2 verdict, TEMPI off.
    pub g2_off: bool,
    /// G1 verdict, TEMPI on.
    pub g1_on: bool,
    /// G2 verdict, TEMPI on.
    pub g2_on: bool,
    /// G3 verdict (the build-failing one).
    pub g3: bool,
    /// G4 verdict.
    pub g4: bool,
    /// Worst violation ratio (1.0 when clean).
    pub worst_ratio: f64,
}

impl GuidelineRow {
    /// Is every guideline satisfied on this cell?
    pub fn clean(&self) -> bool {
        self.g1_off && self.g2_off && self.g1_on && self.g2_on && self.g3 && self.g4
    }
}

impl GatedSuite for GuidelineRow {
    const SUITE: &'static str = "guidelines";
    const TOLERANCE: f64 = crate::baseline::TOLERANCE;

    fn row_key(&self) -> String {
        format!("{} [{}]", self.pattern, self.vendor)
    }

    fn timings(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("off_ddt_ns", self.off_ddt_ns),
            ("off_pack_send_ns", self.off_pack_send_ns),
            ("off_naive_ns", self.off_naive_ns),
            ("on_ddt_ns", self.on_ddt_ns),
            ("on_pack_send_ns", self.on_pack_send_ns),
            ("on_naive_ns", self.on_naive_ns),
            ("on_nocanon_ddt_ns", self.on_nocanon_ddt_ns),
        ]
    }

    fn verdicts(&self) -> Vec<(&'static str, bool)> {
        vec![
            ("g1_off", self.g1_off),
            ("g2_off", self.g2_off),
            ("g1_on", self.g1_on),
            ("g2_on", self.g2_on),
            ("g3", self.g3),
            ("g4", self.g4),
        ]
    }
}

/// One violated guideline on one cell, for the worst-first report.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// `"pattern [vendor]"` of the offending cell.
    pub row: String,
    /// Which guideline: `"G1[off]"`, `"G2[on]"`, `"G3"`, `"G4"`, …
    pub guideline: &'static str,
    /// `time / reference` of the violated comparison (G3 reports the
    /// worst ratio of the TEMPI-on guidelines it derives from).
    pub ratio: f64,
    /// Human-readable explanation with the two times.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {:.2}x — {}",
            self.row, self.guideline, self.ratio, self.detail
        )
    }
}

/// Collect every violated guideline across `rows`, worst ratio first.
pub fn violations(rows: &[GuidelineRow]) -> Vec<Violation> {
    let mut out = Vec::new();
    for r in rows {
        let key = r.row_key();
        let mut push = |guideline, t: f64, reference: f64, what: String| {
            out.push(Violation {
                row: key.clone(),
                guideline,
                ratio: t / reference,
                detail: format!("{what} ({t:.0} ns vs {reference:.0} ns)"),
            });
        };
        if !r.g1_off {
            push(
                "G1[off]",
                r.off_ddt_ns,
                r.off_pack_send_ns,
                "system DDT send loses to pack-then-send".into(),
            );
        }
        if !r.g2_off {
            push(
                "G2[off]",
                r.off_ddt_ns,
                r.off_naive_ns,
                "system DDT send loses to the naive loop".into(),
            );
        }
        if !r.g1_on {
            push(
                "G1[on]",
                r.on_ddt_ns,
                r.on_pack_send_ns,
                "TEMPI DDT send loses to pack-then-send".into(),
            );
        }
        if !r.g2_on {
            push(
                "G2[on]",
                r.on_ddt_ns,
                r.on_naive_ns,
                "TEMPI DDT send loses to the naive loop".into(),
            );
        }
        if !r.g3 {
            // report the worse of the TEMPI-on comparisons whose off-side
            // counterpart held
            let (t, reference, what) = if r.g1_off && !r.g1_on {
                (
                    r.on_ddt_ns,
                    r.on_pack_send_ns,
                    "TEMPI-on violates G1 where TEMPI-off satisfies it",
                )
            } else {
                (
                    r.on_ddt_ns,
                    r.on_naive_ns,
                    "TEMPI-on violates G2 where TEMPI-off satisfies it",
                )
            };
            push("G3", t, reference, what.into());
        }
        if !r.g4 {
            push(
                "G4",
                r.on_ddt_ns,
                r.on_nocanon_ddt_ns,
                format!("canonicalization regresses a {} plan", r.plan),
            );
        }
    }
    out.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    out
}

/// Render the human-readable violations report (worst first), ending
/// with a one-line clean/violated summary.
pub fn render_report(rows: &[GuidelineRow], tol: f64) -> String {
    let v = violations(rows);
    let mut s = format!(
        "performance-guidelines report: {} cells, tolerance {:.0}%\n",
        rows.len(),
        tol * 100.0
    );
    if v.is_empty() {
        s.push_str("all guidelines satisfied on every cell\n");
        return s;
    }
    s.push_str(&format!("{} violation(s), worst first:\n", v.len()));
    for violation in &v {
        s.push_str(&format!("  {violation}\n"));
    }
    let g3 = v.iter().filter(|v| v.guideline == "G3").count();
    s.push_str(&format!(
        "{g3} G3 violation(s) — TEMPI-on worse than TEMPI-off fails the build\n"
    ));
    s
}

/// The TEMPI deployment the harness interposes: the default pipeline
/// plus the indexed/struct block-list extension, so the struct-of-arrays
/// and block-cyclic zoo families route through TEMPI's kernels instead
/// of falling back.
pub fn tempi_on_config() -> TempiConfig {
    TempiConfig {
        extend_struct: true,
        ..TempiConfig::default()
    }
}

/// The vendor a measurement platform simulates.
fn vendor_of(platform: Platform) -> VendorId {
    match platform {
        Platform::Mvapich => VendorId::Mvapich,
        Platform::OpenMpi => VendorId::OpenMpi,
        Platform::Summit => VendorId::SpectrumMpi,
    }
}

/// Probe what TEMPI's commit pipeline resolves `pattern` to on
/// `platform`: a plan label and whether the plan claims canonical
/// handling (strided or block-list — the layouts G4 ranges over).
pub fn plan_label(platform: Platform, pattern: ZooPattern) -> MpiResult<(String, bool)> {
    let mut ctx = RankCtx::standalone(&platform.world(1));
    let mut tempi = Tempi::new(tempi_on_config());
    let dt = pattern.build(&mut ctx)?;
    let plan = tempi.type_commit(&mut ctx, dt)?;
    Ok(match &plan.kind {
        PlanKind::Empty => ("empty".to_string(), false),
        PlanKind::Strided(_) if plan.is_contiguous() => ("contiguous".to_string(), true),
        PlanKind::Strided(_) => ("strided".to_string(), true),
        PlanKind::Blocks(_) => ("blocklist".to_string(), true),
        PlanKind::Fallback(c) => (format!("fallback({c:?})"), false),
    })
}

/// Measure the three delivery times of one cell: a 2-rank world (one
/// rank per node), barrier per round, receiver-side minimum over
/// measured rounds. `config = None` runs plain system MPI
/// ([`InterposedMpi::system_only`]); `Some` interposes TEMPI with that
/// configuration. With `typed_only` the two reference measurements are
/// skipped (the G4 ablation needs only the typed time).
pub fn measure_cell(
    platform: Platform,
    config: Option<&TempiConfig>,
    pattern: ZooPattern,
    typed_only: bool,
) -> MpiResult<CellTimes> {
    let mut cfg = platform.world(2);
    cfg.net.ranks_per_node = 1;
    let results = World::run(&cfg, move |ctx| {
        let mut mpi = match config {
            Some(c) => InterposedMpi::new(c.clone()),
            None => InterposedMpi::system_only(),
        };
        let dt = pattern.build(ctx)?;
        mpi.type_commit(ctx, dt)?;
        let buf = ctx.gpu.malloc(pattern.span().max(1))?;
        let total = pattern.total_bytes();

        // typed DDT send
        let mut typed = u64::MAX;
        for i in 0..TYPED_WARMUP + TYPED_ROUNDS {
            ctx.barrier();
            let ps = if ctx.rank == 0 {
                mpi.send(ctx, buf, 1, dt, 1, 0)?;
                0
            } else {
                let t0 = ctx.clock.now();
                mpi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
                (ctx.clock.now() - t0).as_ps()
            };
            if i >= TYPED_WARMUP {
                typed = typed.min(ps);
            }
        }
        if typed_only {
            return Ok([typed, 0, 0]);
        }

        // pack-then-send of the same bytes
        let packed = ctx.gpu.malloc(total.max(1))?;
        let mut pack_send = u64::MAX;
        for i in 0..PACK_WARMUP + PACK_ROUNDS {
            ctx.barrier();
            let ps = if ctx.rank == 0 {
                let mut pos = 0;
                mpi.pack(ctx, buf, 1, dt, packed, total, &mut pos)?;
                mpi.send(ctx, packed, total, MPI_BYTE, 1, 1)?;
                0
            } else {
                let t0 = ctx.clock.now();
                mpi.recv(ctx, packed, total, MPI_BYTE, Some(0), Some(1))?;
                let mut pos = 0;
                mpi.unpack(ctx, packed, total, &mut pos, buf, 1, dt)?;
                (ctx.clock.now() - t0).as_ps()
            };
            if i >= PACK_WARMUP {
                pack_send = pack_send.min(ps);
            }
        }

        // naive element-wise loop: one byte message per contiguous block
        let segs = {
            let reg = ctx.registry().read();
            segments(&reg, dt)?
        };
        let at = |off: i64| {
            buf.offset_by(off)
                .ok_or_else(|| MpiError::InvalidArg("segment reaches before buffer".to_string()))
        };
        let mut naive = u64::MAX;
        for i in 0..NAIVE_WARMUP + NAIVE_ROUNDS {
            ctx.barrier();
            let ps = if ctx.rank == 0 {
                for seg in &segs {
                    mpi.send(ctx, at(seg.off)?, seg.len as usize, MPI_BYTE, 1, 2)?;
                }
                0
            } else {
                let t0 = ctx.clock.now();
                for seg in &segs {
                    mpi.recv(
                        ctx,
                        at(seg.off)?,
                        seg.len as usize,
                        MPI_BYTE,
                        Some(0),
                        Some(2),
                    )?;
                }
                (ctx.clock.now() - t0).as_ps()
            };
            if i >= NAIVE_WARMUP {
                naive = naive.min(ps);
            }
        }
        Ok([typed, pack_send, naive])
    })?;
    // the receiver's clock measured the deliveries
    let ns = |ps: u64| ps as f64 / 1e3;
    let [typed, pack_send, naive] = results[1];
    Ok(CellTimes {
        ddt_ns: ns(typed),
        pack_send_ns: ns(pack_send),
        naive_ns: ns(naive),
    })
}

/// Measure and judge one (pattern, vendor) cell: both deployments, the
/// G4 ablation, the plan probe, and the guideline evaluation at
/// tolerance `tol`.
pub fn run_cell(platform: Platform, pattern: ZooPattern, tol: f64) -> MpiResult<GuidelineRow> {
    let on_cfg = tempi_on_config();
    let nocanon_cfg = TempiConfig {
        canonicalize: false,
        ..tempi_on_config()
    };
    let off = measure_cell(platform, None, pattern, false)?;
    let on = measure_cell(platform, Some(&on_cfg), pattern, false)?;
    let nocanon = measure_cell(platform, Some(&nocanon_cfg), pattern, true)?;
    let (plan, normalized) = plan_label(platform, pattern)?;
    let eval = evaluate(off, on, nocanon.ddt_ns, normalized, tol);
    Ok(GuidelineRow {
        pattern: pattern.label(),
        vendor: vendor_of(platform).label().to_string(),
        size_bytes: pattern.total_bytes(),
        nblocks: pattern.nblocks(),
        plan,
        normalized,
        off_ddt_ns: off.ddt_ns,
        off_pack_send_ns: off.pack_send_ns,
        off_naive_ns: off.naive_ns,
        on_ddt_ns: on.ddt_ns,
        on_pack_send_ns: on.pack_send_ns,
        on_naive_ns: on.naive_ns,
        on_nocanon_ddt_ns: nocanon.ddt_ns,
        g1_off: eval.g1_off,
        g2_off: eval.g2_off,
        g1_on: eval.g1_on,
        g2_on: eval.g2_on,
        g3: eval.g3,
        g4: eval.g4,
        worst_ratio: eval.worst_ratio,
    })
}

/// Run the whole zoo on the given platforms at tolerance `tol`.
pub fn run_zoo_on(platforms: &[Platform], tol: f64) -> MpiResult<Vec<GuidelineRow>> {
    let mut rows = Vec::new();
    for &platform in platforms {
        for pattern in ZooPattern::zoo() {
            rows.push(run_cell(platform, pattern, tol)?);
        }
    }
    Ok(rows)
}

/// Run the whole zoo across all three vendor profiles — what
/// `check_guidelines` and the committed baseline cover.
pub fn run_zoo(tol: f64) -> MpiResult<Vec<GuidelineRow>> {
    run_zoo_on(&Platform::ALL, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(ddt: f64, pack: f64, naive: f64) -> CellTimes {
        CellTimes {
            ddt_ns: ddt,
            pack_send_ns: pack,
            naive_ns: naive,
        }
    }

    #[test]
    fn clean_cell_satisfies_everything() {
        let t = cell(900.0, 1000.0, 5000.0);
        let e = evaluate(t, t, 900.0, true, 0.10);
        assert!(e.clean(), "{e:?}");
        assert_eq!(e.worst_ratio, 1.0);
    }

    #[test]
    fn g1_violation_is_detected_per_mode() {
        // off loses to pack-then-send, on does not
        let off = cell(2000.0, 1000.0, 5000.0);
        let on = cell(900.0, 1000.0, 5000.0);
        let e = evaluate(off, on, 900.0, true, 0.10);
        assert!(!e.g1_off && e.g1_on && e.g2_off && e.g2_on);
        // G3 holds: the violated guideline was already violated off
        assert!(e.g3);
        assert!((e.worst_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn g2_violation_flags_the_naive_loss() {
        let off = cell(900.0, 1000.0, 5000.0);
        let on = cell(9000.0, 10000.0, 5000.0); // slower than naive, not pack
        let e = evaluate(off, on, 9000.0, true, 0.10);
        assert!(e.g1_on && !e.g2_on && e.g2_off);
        assert!(!e.g3, "on violates G2 that off satisfied");
    }

    #[test]
    fn g3_catches_tempi_introduced_violations_only() {
        let off = cell(900.0, 1000.0, 5000.0); // off satisfies G1+G2
        let on = cell(1500.0, 1000.0, 5000.0); // on violates G1
        let e = evaluate(off, on, 1500.0, true, 0.10);
        assert!(!e.g1_on && !e.g3);
        // if off also violated G1, G3 would hold
        let off_bad = cell(1500.0, 1000.0, 5000.0);
        let e2 = evaluate(off_bad, on, 1500.0, true, 0.10);
        assert!(!e2.g1_off && !e2.g1_on && e2.g3);
    }

    #[test]
    fn g4_only_applies_to_normalized_plans() {
        let t = cell(2000.0, 3000.0, 5000.0);
        // canonicalized send 2x the ablated send: a G4 violation...
        let e = evaluate(t, t, 1000.0, true, 0.10);
        assert!(!e.g4);
        assert!((e.worst_ratio - 2.0).abs() < 1e-12);
        // ...unless the plan made no canonicalization claim
        let e2 = evaluate(t, t, 1000.0, false, 0.10);
        assert!(e2.g4 && e2.clean());
    }

    #[test]
    fn tolerance_edges_are_inclusive() {
        // exactly at the limit: satisfied
        let at = cell(1100.0, 1000.0, 1000.0 / 1.1);
        let e = evaluate(at, at, 1000.0, true, 0.10);
        assert!(e.g1_off && e.g1_on && e.g4);
        // a hair past it: violated
        let past = cell(1100.1, 1000.0, 10_000.0);
        let e2 = evaluate(past, past, 1000.0, true, 0.10);
        assert!(!e2.g1_off && !e2.g1_on && !e2.g4);
        // zero tolerance gates exact ties only
        let tie = cell(1000.0, 1000.0, 1000.0);
        let e3 = evaluate(tie, tie, 1000.0, true, 0.0);
        assert!(e3.clean());
    }

    fn row(pattern: &str, vendor: &str) -> GuidelineRow {
        GuidelineRow {
            pattern: pattern.to_string(),
            vendor: vendor.to_string(),
            size_bytes: 1024,
            nblocks: 16,
            plan: "strided".to_string(),
            normalized: true,
            off_ddt_ns: 900.0,
            off_pack_send_ns: 1000.0,
            off_naive_ns: 5000.0,
            on_ddt_ns: 900.0,
            on_pack_send_ns: 1000.0,
            on_naive_ns: 5000.0,
            on_nocanon_ddt_ns: 900.0,
            g1_off: true,
            g2_off: true,
            g1_on: true,
            g2_on: true,
            g3: true,
            g4: true,
            worst_ratio: 1.0,
        }
    }

    #[test]
    fn violations_sort_worst_first_and_name_the_cell() {
        let mut a = row("col/256x8@2048", "mvapich");
        a.g1_on = false;
        a.g3 = false;
        a.on_ddt_ns = 1500.0; // 1.5x
        let mut b = row("soa/8x2048@65536", "spectrum");
        b.g4 = false;
        b.on_ddt_ns = 3000.0;
        b.on_nocanon_ddt_ns = 1000.0; // 3.0x
        let v = violations(&[a, b]);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].guideline, "G4");
        assert!((v[0].ratio - 3.0).abs() < 1e-12);
        assert!(
            v[0].row.contains("soa/8x2048@65536 [spectrum]"),
            "{}",
            v[0].row
        );
        assert!(v.iter().any(|x| x.guideline == "G3"));
        let report = render_report(&[row("row/65536", "openmpi")], 0.10);
        assert!(report.contains("all guidelines satisfied"), "{report}");
    }

    #[test]
    fn rows_round_trip_through_json_and_key_by_pattern_and_vendor() {
        let r = row("nested/32@8192x16x64@256", "openmpi");
        let s = serde_json::to_string(&[r]).unwrap();
        let back: Vec<GuidelineRow> = serde_json::from_str(&s).unwrap();
        assert_eq!(back[0].row_key(), "nested/32@8192x16x64@256 [openmpi]");
        assert_eq!(back[0].timings().len(), 7);
        assert_eq!(back[0].verdicts().len(), 6);
    }

    #[test]
    fn plan_probe_classifies_the_zoo_families() {
        let (p, n) = plan_label(Platform::Summit, ZooPattern::Row { bytes: 4096 }).unwrap();
        assert_eq!(p, "contiguous");
        assert!(n);
        let (p, n) = plan_label(
            Platform::Summit,
            ZooPattern::Col {
                rows: 16,
                elem: 8,
                row_bytes: 64,
            },
        )
        .unwrap();
        assert_eq!(p, "strided");
        assert!(n);
    }

    #[test]
    fn measure_cell_reproduces_the_paper_status_quo() {
        let pattern = ZooPattern::Col {
            rows: 64,
            elem: 8,
            row_bytes: 256,
        };
        let on_cfg = tempi_on_config();
        let off = measure_cell(Platform::Summit, None, pattern, false).unwrap();
        let on = measure_cell(Platform::Summit, Some(&on_cfg), pattern, false).unwrap();
        for t in [&off, &on] {
            assert!(
                t.ddt_ns > 0.0 && t.pack_send_ns > 0.0 && t.naive_ns > 0.0,
                "{t:?}"
            );
        }
        // TEMPI's typed send satisfies both guidelines on this cell:
        // no slower than pack-then-send, faster than the naive loop
        assert!(on.ddt_ns <= on.pack_send_ns * 1.10, "{on:?}");
        assert!(on.ddt_ns < on.naive_ns, "{on:?}");
        // and it beats the vendor's typed path (the paper's headline)
        assert!(on.ddt_ns < off.ddt_ns, "on {on:?} vs off {off:?}");
        // typed-only measurement returns the same typed time, cheaper
        let typed = measure_cell(Platform::Summit, Some(&on_cfg), pattern, true).unwrap();
        assert_eq!(typed.ddt_ns, on.ddt_ns);
    }
}
