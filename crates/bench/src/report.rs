//! Table printing and JSON emission for the figure-regeneration binaries.
//!
//! Every binary prints a human-readable table (the rows/series the paper's
//! figure shows) and, when `results/` is writable, a machine-readable JSON
//! file next to it so EXPERIMENTS.md numbers can be regenerated.

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringifies each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Resolve the shared `--out DIR` flag of the bench binaries from the
/// process arguments, defaulting to `default` (the repository root for
/// the `BENCH_*.json` gate inputs). Other arguments are left for the
/// binary's own parsing; `--out` without a value is an error.
pub fn out_dir_from_args(default: &str) -> Result<PathBuf, String> {
    let mut dir = PathBuf::from(default);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            dir = PathBuf::from(
                args.next()
                    .ok_or_else(|| "--out requires a directory argument".to_string())?,
            );
        }
    }
    Ok(dir)
}

/// Write `rows` as pretty JSON to `dir/name`, creating `dir` if needed.
/// Unlike [`write_json`] this is for gate inputs, where a silent write
/// failure would let CI pass on stale rows — so failures are returned
/// for the binary to exit non-zero on, not swallowed.
pub fn write_rows<T: Serialize>(
    dir: &std::path::Path,
    name: &str,
    rows: &T,
) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(name);
    let s =
        serde_json::to_string_pretty(rows).map_err(|e| format!("cannot serialize {name}: {e}"))?;
    fs::write(&path, s + "\n").map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Write `rows` as pretty JSON to `results/<name>.json` (best effort: the
/// directory is created if needed; failures are reported but not fatal).
pub fn write_json<T: Serialize>(name: &str, rows: &T) {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("note: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(rows) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("note: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("note: cannot serialize {name}: {e}"),
    }
}

/// Format a speedup like the paper quotes them ("720,400x").
pub fn fmt_speedup(s: f64) -> String {
    if s >= 1000.0 {
        let v = s.round() as u64;
        let mut out = String::new();
        let digits = v.to_string();
        for (i, ch) in digits.chars().enumerate() {
            if i > 0 && (digits.len() - i) % 3 == 0 {
                out.push(',');
            }
            out.push(ch);
        }
        format!("{out}x")
    } else if s >= 10.0 {
        format!("{s:.0}x")
    } else {
        format!("{s:.2}x")
    }
}

/// Format a byte count compactly ("4 KiB", "1 MiB").
pub fn fmt_bytes(b: usize) -> String {
    if b >= (1 << 20) && b % (1 << 20) == 0 {
        format!("{} MiB", b >> 20)
    } else if b >= (1 << 10) && b % (1 << 10) == 0 {
        format!("{} KiB", b >> 10)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(720_400.0), "720,400x");
        assert_eq!(fmt_speedup(2850.0), "2,850x");
        assert_eq!(fmt_speedup(59.0), "59x");
        assert_eq!(fmt_speedup(0.94), "0.94x");
        assert_eq!(fmt_speedup(1.07), "1.07x");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(1 << 20), "1 MiB");
        assert_eq!(fmt_bytes(1 << 10), "1 KiB");
        assert_eq!(fmt_bytes(37), "37 B");
        assert_eq!(fmt_bytes(4 << 20), "4 MiB");
    }

    #[test]
    fn write_rows_round_trips_and_reports_failures() {
        let dir = std::env::temp_dir().join("tempi_bench_write_rows_test");
        let p = write_rows(&dir, "x.json", &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> = serde_json::from_str(&fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        // a file in the directory position errors instead of panicking
        let bad = p.join("nested");
        assert!(write_rows(&bad, "y.json", &1).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&[&1, &"x"]);
        t.row(&[&22, &"yy"]);
        t.print(); // smoke: must not panic
        assert_eq!(t.rows.len(), 2);
    }
}
