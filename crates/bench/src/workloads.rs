//! The paper's evaluation objects (Figs. 6, 7, 9, 10, 11) and the
//! equivalent MPI constructions of each.

use mpi_sim::consts::MPI_BYTE;
use mpi_sim::datatype::Order;
use mpi_sim::{Datatype, MpiResult, RankCtx};
use serde::{Deserialize, Serialize};

/// How an object is expressed in MPI (the paper shows that TEMPI treats
/// all of these identically while baselines do not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Construction {
    /// `MPI_Type_contiguous` (only for fully contiguous objects).
    Contiguous,
    /// `MPI_Type_vector`.
    Vector,
    /// `MPI_Type_create_hvector` over a contiguous row.
    Hvector,
    /// A single n-D `MPI_Type_create_subarray`.
    Subarray,
    /// `MPI_Type_vector` of a 2-D subarray plane (Fig. 7c's "vector of
    /// subarrays", MVAPICH's fast case).
    VectorOfSubarray,
}

impl Construction {
    /// Short label used in figure rows.
    pub fn label(self) -> &'static str {
        match self {
            Construction::Contiguous => "contig",
            Construction::Vector => "vector",
            Construction::Hvector => "hvector",
            Construction::Subarray => "subarray",
            Construction::VectorOfSubarray => "vec(subarr)",
        }
    }
}

/// A 2-D strided object: `count` contiguous blocks of `block` bytes,
/// `stride` bytes apart, repeated `incount` times by the MPI call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Obj2d {
    /// Items passed as the pack/send count.
    pub incount: usize,
    /// Contiguous block bytes.
    pub block: usize,
    /// Number of blocks.
    pub count: usize,
    /// Bytes between block starts.
    pub stride: usize,
}

impl Obj2d {
    /// Data bytes of one item.
    pub fn item_bytes(&self) -> usize {
        self.block * self.count
    }

    /// Total data bytes of the call.
    pub fn total_bytes(&self) -> usize {
        self.item_bytes() * self.incount
    }

    /// Bytes the source buffer must span.
    pub fn span(&self) -> usize {
        // items are extent apart; each item spans (count-1)*stride + block
        let item_span = (self.count - 1) * self.stride + self.block;
        // subarray extent = count*stride; allow for the larger
        self.incount * self.count * self.stride + item_span
    }

    /// Is the object actually contiguous (`block == stride` or one block)?
    pub fn is_contiguous(&self) -> bool {
        self.count == 1 || self.block == self.stride
    }

    /// The paper's row label (`incount|block|count` like "1|256|256").
    pub fn label(&self) -> String {
        format!("{}|{}|{}", self.incount, self.block, self.count)
    }

    /// The constructions applicable to this object.
    pub fn constructions(&self) -> Vec<Construction> {
        if self.is_contiguous() {
            vec![
                Construction::Contiguous,
                Construction::Vector,
                Construction::Hvector,
                Construction::Subarray,
            ]
        } else {
            vec![
                Construction::Vector,
                Construction::Hvector,
                Construction::Subarray,
            ]
        }
    }

    /// Create (not commit) the datatype for one construction.
    pub fn build(&self, ctx: &mut RankCtx, c: Construction) -> MpiResult<Datatype> {
        match c {
            Construction::Contiguous => {
                assert!(self.is_contiguous());
                ctx.type_contiguous(self.item_bytes() as i32, MPI_BYTE)
            }
            Construction::Vector => ctx.type_vector(
                self.count as i32,
                self.block as i32,
                self.stride as i32,
                MPI_BYTE,
            ),
            Construction::Hvector => {
                let row = ctx.type_contiguous(self.block as i32, MPI_BYTE)?;
                ctx.type_create_hvector(self.count as i32, 1, self.stride as i64, row)
            }
            Construction::Subarray => ctx.type_create_subarray(
                &[self.count as i32, self.stride as i32],
                &[self.count as i32, self.block as i32],
                &[0, 0],
                Order::C,
                MPI_BYTE,
            ),
            Construction::VectorOfSubarray => {
                let plane = ctx.type_create_subarray(
                    &[self.count as i32, self.stride as i32],
                    &[self.count as i32, self.block as i32],
                    &[0, 0],
                    Order::C,
                    MPI_BYTE,
                )?;
                ctx.type_vector(1, 1, 1, plane)
            }
        }
    }

    /// The Fig. 7a/7b sweep: objects of `total` data bytes with block
    /// sizes from 1 B up to fully contiguous, 50% density (stride = 2 ×
    /// block), for `incount` ∈ {1, 2}.
    pub fn sweep(total: usize) -> Vec<Obj2d> {
        let mut v = Vec::new();
        for incount in [1usize, 2] {
            let item = total / incount;
            let mut block = 1usize;
            while block < item {
                v.push(Obj2d {
                    incount,
                    block,
                    count: item / block,
                    stride: block * 2,
                });
                block *= 8;
            }
            // fully contiguous
            v.push(Obj2d {
                incount,
                block: item,
                count: 1,
                stride: item,
            });
        }
        v
    }
}

/// A 3-D object: an `x × y × z`-byte box inside a cubic byte allocation
/// (Fig. 7c uses a 1024³ B allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Obj3d {
    /// Allocation edge in bytes.
    pub alloc: usize,
    /// Box extent (x = contiguous dimension) in bytes.
    pub x: usize,
    /// Box extent in rows.
    pub y: usize,
    /// Box extent in planes.
    pub z: usize,
}

impl Obj3d {
    /// Data bytes.
    pub fn total_bytes(&self) -> usize {
        self.x * self.y * self.z
    }

    /// Row label like "x|y|z".
    pub fn label(&self) -> String {
        format!("{}|{}|{}", self.x, self.y, self.z)
    }

    /// Constructions evaluated in Fig. 7c.
    pub fn constructions(&self) -> Vec<Construction> {
        vec![
            Construction::Subarray,
            Construction::Hvector,
            Construction::VectorOfSubarray,
        ]
    }

    /// Create the datatype for one construction.
    pub fn build(&self, ctx: &mut RankCtx, c: Construction) -> MpiResult<Datatype> {
        let a = self.alloc as i32;
        match c {
            Construction::Subarray => ctx.type_create_subarray(
                &[a, a, a],
                &[self.z as i32, self.y as i32, self.x as i32],
                &[0, 0, 0],
                Order::C,
                MPI_BYTE,
            ),
            Construction::Hvector => {
                // row → plane of rows → box of planes
                let row = ctx.type_contiguous(self.x as i32, MPI_BYTE)?;
                let plane = ctx.type_create_hvector(self.y as i32, 1, self.alloc as i64, row)?;
                ctx.type_create_hvector(self.z as i32, 1, (self.alloc * self.alloc) as i64, plane)
            }
            Construction::VectorOfSubarray => {
                // a 2-D subarray plane, repeated by a vector — MVAPICH's
                // specialized fast path (root combiner is Vector)
                let plane = ctx.type_create_subarray(
                    &[a, a],
                    &[self.y as i32, self.x as i32],
                    &[0, 0],
                    Order::C,
                    MPI_BYTE,
                )?;
                // plane extent = alloc² bytes = exactly one plane
                ctx.type_vector(self.z as i32, 1, 1, plane)
            }
            other => panic!("construction {other:?} not applicable to 3-D objects"),
        }
    }

    /// The Fig. 7c sweep within an `alloc³` allocation.
    pub fn sweep(alloc: usize) -> Vec<Obj3d> {
        let e = alloc / 2;
        vec![
            Obj3d {
                alloc,
                x: 4,
                y: e,
                z: e,
            },
            Obj3d {
                alloc,
                x: 16,
                y: e,
                z: e,
            },
            Obj3d {
                alloc,
                x: 64,
                y: e,
                z: e,
            },
            Obj3d {
                alloc,
                x: e,
                y: 4,
                z: e,
            },
            Obj3d {
                alloc,
                x: e,
                y: e,
                z: 4,
            },
            Obj3d {
                alloc,
                x: e,
                y: e,
                z: e,
            },
        ]
    }
}

/// One entry of the Fig. 6 object set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig6Object {
    /// The 2-D object (100-byte blocks × 13, stride 256) in one of its
    /// constructions.
    TwoD(Construction),
    /// The Fig.-2 3-D object (100×13×47 in a 256³ allocation).
    ThreeD(Construction),
    /// A contiguous megabyte.
    Contig1MiB,
}

impl Fig6Object {
    /// Create (not commit) this object's datatype.
    pub fn build(self, ctx: &mut RankCtx) -> MpiResult<Datatype> {
        match self {
            Fig6Object::TwoD(c) => Obj2d {
                incount: 1,
                block: 100,
                count: 13,
                stride: 256,
            }
            .build(ctx, c),
            Fig6Object::ThreeD(c) => Obj3d {
                alloc: 256,
                x: 100,
                y: 13,
                z: 47,
            }
            .build(ctx, c),
            Fig6Object::Contig1MiB => ctx.type_contiguous(1 << 20, MPI_BYTE),
        }
    }
}

/// The Fig. 6 object set: representative constructions whose create/commit
/// times are broken down per implementation.
pub fn fig6_set() -> Vec<(String, Fig6Object)> {
    let mut v = Vec::new();
    for c in [
        Construction::Vector,
        Construction::Hvector,
        Construction::Subarray,
    ] {
        v.push((format!("2d-{}", c.label()), Fig6Object::TwoD(c)));
    }
    for c in [
        Construction::Subarray,
        Construction::Hvector,
        Construction::VectorOfSubarray,
    ] {
        v.push((format!("3d-{}", c.label()), Fig6Object::ThreeD(c)));
    }
    v.push(("contig-1MiB".to_string(), Fig6Object::Contig1MiB));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::datatype::typemap::segments;
    use mpi_sim::WorldConfig;

    fn ctx() -> RankCtx {
        RankCtx::standalone(&WorldConfig::summit(1))
    }

    #[test]
    fn all_2d_constructions_are_equivalent() {
        let mut ctx = ctx();
        for obj in Obj2d::sweep(1 << 10) {
            let mut seglists = Vec::new();
            for c in obj.constructions() {
                let dt = obj.build(&mut ctx, c).unwrap();
                let reg = ctx.registry().read();
                seglists.push((c, segments(&reg, dt).unwrap()));
            }
            for w in seglists.windows(2) {
                assert_eq!(
                    w[0].1,
                    w[1].1,
                    "{:?} vs {:?} differ for {}",
                    w[0].0,
                    w[1].0,
                    obj.label()
                );
            }
        }
    }

    #[test]
    fn all_3d_constructions_are_equivalent() {
        let mut ctx = ctx();
        for obj in Obj3d::sweep(64) {
            let mut seglists = Vec::new();
            for c in obj.constructions() {
                let dt = obj.build(&mut ctx, c).unwrap();
                let reg = ctx.registry().read();
                seglists.push((c, segments(&reg, dt).unwrap()));
            }
            for w in seglists.windows(2) {
                assert_eq!(
                    w[0].1,
                    w[1].1,
                    "{:?} vs {:?} differ for {}",
                    w[0].0,
                    w[1].0,
                    obj.label()
                );
            }
        }
    }

    #[test]
    fn sweep_totals_are_exact() {
        for obj in Obj2d::sweep(1 << 20) {
            assert_eq!(obj.total_bytes(), 1 << 20, "{}", obj.label());
        }
        for obj in Obj2d::sweep(1 << 10) {
            assert_eq!(obj.total_bytes(), 1 << 10);
        }
    }

    #[test]
    fn contiguous_objects_know_it() {
        let c = Obj2d {
            incount: 1,
            block: 1024,
            count: 1,
            stride: 1024,
        };
        assert!(c.is_contiguous());
        assert_eq!(c.constructions().len(), 4);
        let s = Obj2d {
            incount: 1,
            block: 4,
            count: 256,
            stride: 8,
        };
        assert!(!s.is_contiguous());
        assert_eq!(s.constructions().len(), 3);
    }

    #[test]
    fn vector_of_subarray_root_combiner_is_vector() {
        let mut ctx = ctx();
        let o = Obj3d {
            alloc: 64,
            x: 16,
            y: 8,
            z: 8,
        };
        let dt = o.build(&mut ctx, Construction::VectorOfSubarray).unwrap();
        assert_eq!(
            ctx.combiner(dt).unwrap(),
            mpi_sim::Combiner::Vector,
            "the MVAPICH fast path keys on a vector root"
        );
    }

    #[test]
    fn fig6_set_builds() {
        let mut ctx = ctx();
        let objs = fig6_set();
        assert_eq!(objs.len(), 7);
        for (label, o) in objs {
            let dt = o.build(&mut ctx).unwrap();
            assert!(ctx.attrs(dt).unwrap().size > 0, "{label}");
        }
    }

    #[test]
    fn span_covers_type_true_extent() {
        let mut ctx = ctx();
        for obj in Obj2d::sweep(1 << 12) {
            for c in obj.constructions() {
                let dt = obj.build(&mut ctx, c).unwrap();
                let a = ctx.attrs(dt).unwrap();
                let needed = a.true_ub + (obj.incount as i64 - 1) * a.extent();
                assert!(
                    obj.span() as i64 >= needed,
                    "span {} < needed {needed} for {} {:?}",
                    obj.span(),
                    obj.label(),
                    c
                );
            }
        }
    }
}
