//! The paper's evaluation objects (Figs. 6, 7, 9, 10, 11) and the
//! equivalent MPI constructions of each.

use mpi_sim::consts::MPI_BYTE;
use mpi_sim::datatype::Order;
use mpi_sim::{Datatype, MpiResult, RankCtx};
use serde::{Deserialize, Serialize};

/// How an object is expressed in MPI (the paper shows that TEMPI treats
/// all of these identically while baselines do not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Construction {
    /// `MPI_Type_contiguous` (only for fully contiguous objects).
    Contiguous,
    /// `MPI_Type_vector`.
    Vector,
    /// `MPI_Type_create_hvector` over a contiguous row.
    Hvector,
    /// A single n-D `MPI_Type_create_subarray`.
    Subarray,
    /// `MPI_Type_vector` of a 2-D subarray plane (Fig. 7c's "vector of
    /// subarrays", MVAPICH's fast case).
    VectorOfSubarray,
}

impl Construction {
    /// Short label used in figure rows.
    pub fn label(self) -> &'static str {
        match self {
            Construction::Contiguous => "contig",
            Construction::Vector => "vector",
            Construction::Hvector => "hvector",
            Construction::Subarray => "subarray",
            Construction::VectorOfSubarray => "vec(subarr)",
        }
    }
}

/// A 2-D strided object: `count` contiguous blocks of `block` bytes,
/// `stride` bytes apart, repeated `incount` times by the MPI call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Obj2d {
    /// Items passed as the pack/send count.
    pub incount: usize,
    /// Contiguous block bytes.
    pub block: usize,
    /// Number of blocks.
    pub count: usize,
    /// Bytes between block starts.
    pub stride: usize,
}

impl Obj2d {
    /// Data bytes of one item.
    pub fn item_bytes(&self) -> usize {
        self.block * self.count
    }

    /// Total data bytes of the call.
    pub fn total_bytes(&self) -> usize {
        self.item_bytes() * self.incount
    }

    /// Bytes the source buffer must span.
    pub fn span(&self) -> usize {
        // items are extent apart; each item spans (count-1)*stride + block
        let item_span = (self.count - 1) * self.stride + self.block;
        // subarray extent = count*stride; allow for the larger
        self.incount * self.count * self.stride + item_span
    }

    /// Is the object actually contiguous (`block == stride` or one block)?
    pub fn is_contiguous(&self) -> bool {
        self.count == 1 || self.block == self.stride
    }

    /// The paper's row label (`incount|block|count` like "1|256|256").
    pub fn label(&self) -> String {
        format!("{}|{}|{}", self.incount, self.block, self.count)
    }

    /// The constructions applicable to this object.
    pub fn constructions(&self) -> Vec<Construction> {
        if self.is_contiguous() {
            vec![
                Construction::Contiguous,
                Construction::Vector,
                Construction::Hvector,
                Construction::Subarray,
            ]
        } else {
            vec![
                Construction::Vector,
                Construction::Hvector,
                Construction::Subarray,
            ]
        }
    }

    /// Create (not commit) the datatype for one construction.
    pub fn build(&self, ctx: &mut RankCtx, c: Construction) -> MpiResult<Datatype> {
        match c {
            Construction::Contiguous => {
                assert!(self.is_contiguous());
                ctx.type_contiguous(self.item_bytes() as i32, MPI_BYTE)
            }
            Construction::Vector => ctx.type_vector(
                self.count as i32,
                self.block as i32,
                self.stride as i32,
                MPI_BYTE,
            ),
            Construction::Hvector => {
                let row = ctx.type_contiguous(self.block as i32, MPI_BYTE)?;
                ctx.type_create_hvector(self.count as i32, 1, self.stride as i64, row)
            }
            Construction::Subarray => ctx.type_create_subarray(
                &[self.count as i32, self.stride as i32],
                &[self.count as i32, self.block as i32],
                &[0, 0],
                Order::C,
                MPI_BYTE,
            ),
            Construction::VectorOfSubarray => {
                let plane = ctx.type_create_subarray(
                    &[self.count as i32, self.stride as i32],
                    &[self.count as i32, self.block as i32],
                    &[0, 0],
                    Order::C,
                    MPI_BYTE,
                )?;
                ctx.type_vector(1, 1, 1, plane)
            }
        }
    }

    /// The Fig. 7a/7b sweep: objects of `total` data bytes with block
    /// sizes from 1 B up to fully contiguous, 50% density (stride = 2 ×
    /// block), for `incount` ∈ {1, 2}.
    pub fn sweep(total: usize) -> Vec<Obj2d> {
        let mut v = Vec::new();
        for incount in [1usize, 2] {
            let item = total / incount;
            let mut block = 1usize;
            while block < item {
                v.push(Obj2d {
                    incount,
                    block,
                    count: item / block,
                    stride: block * 2,
                });
                block *= 8;
            }
            // fully contiguous
            v.push(Obj2d {
                incount,
                block: item,
                count: 1,
                stride: item,
            });
        }
        v
    }
}

/// A 3-D object: an `x × y × z`-byte box inside a cubic byte allocation
/// (Fig. 7c uses a 1024³ B allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Obj3d {
    /// Allocation edge in bytes.
    pub alloc: usize,
    /// Box extent (x = contiguous dimension) in bytes.
    pub x: usize,
    /// Box extent in rows.
    pub y: usize,
    /// Box extent in planes.
    pub z: usize,
}

impl Obj3d {
    /// Data bytes.
    pub fn total_bytes(&self) -> usize {
        self.x * self.y * self.z
    }

    /// Row label like "x|y|z".
    pub fn label(&self) -> String {
        format!("{}|{}|{}", self.x, self.y, self.z)
    }

    /// Constructions evaluated in Fig. 7c.
    pub fn constructions(&self) -> Vec<Construction> {
        vec![
            Construction::Subarray,
            Construction::Hvector,
            Construction::VectorOfSubarray,
        ]
    }

    /// Create the datatype for one construction.
    pub fn build(&self, ctx: &mut RankCtx, c: Construction) -> MpiResult<Datatype> {
        let a = self.alloc as i32;
        match c {
            Construction::Subarray => ctx.type_create_subarray(
                &[a, a, a],
                &[self.z as i32, self.y as i32, self.x as i32],
                &[0, 0, 0],
                Order::C,
                MPI_BYTE,
            ),
            Construction::Hvector => {
                // row → plane of rows → box of planes
                let row = ctx.type_contiguous(self.x as i32, MPI_BYTE)?;
                let plane = ctx.type_create_hvector(self.y as i32, 1, self.alloc as i64, row)?;
                ctx.type_create_hvector(self.z as i32, 1, (self.alloc * self.alloc) as i64, plane)
            }
            Construction::VectorOfSubarray => {
                // a 2-D subarray plane, repeated by a vector — MVAPICH's
                // specialized fast path (root combiner is Vector)
                let plane = ctx.type_create_subarray(
                    &[a, a],
                    &[self.y as i32, self.x as i32],
                    &[0, 0],
                    Order::C,
                    MPI_BYTE,
                )?;
                // plane extent = alloc² bytes = exactly one plane
                ctx.type_vector(self.z as i32, 1, 1, plane)
            }
            other => panic!("construction {other:?} not applicable to 3-D objects"),
        }
    }

    /// The Fig. 7c sweep within an `alloc³` allocation.
    pub fn sweep(alloc: usize) -> Vec<Obj3d> {
        let e = alloc / 2;
        vec![
            Obj3d {
                alloc,
                x: 4,
                y: e,
                z: e,
            },
            Obj3d {
                alloc,
                x: 16,
                y: e,
                z: e,
            },
            Obj3d {
                alloc,
                x: 64,
                y: e,
                z: e,
            },
            Obj3d {
                alloc,
                x: e,
                y: 4,
                z: e,
            },
            Obj3d {
                alloc,
                x: e,
                y: e,
                z: 4,
            },
            Obj3d {
                alloc,
                x: e,
                y: e,
                z: e,
            },
        ]
    }
}

/// One access pattern of the performance-guidelines zoo — the
/// Hunold/Träff ("MPI Derived Datatypes: Performance Expectations and
/// Status Quo") pattern families plus representatives of the existing
/// fig-zoo, each expressed through the MPI construction a real
/// application would use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZooPattern {
    /// Row extraction from a C-order matrix: one fully contiguous run of
    /// `bytes` (the degenerate guideline case — a DDT send of contiguous
    /// data must not lose to a plain byte send).
    Row {
        /// Row length in bytes.
        bytes: usize,
    },
    /// Column extraction from a C-order matrix of `rows` rows: `rows`
    /// blocks of `elem` bytes, `row_bytes` apart (`MPI_Type_vector`).
    Col {
        /// Number of matrix rows (= number of blocks).
        rows: usize,
        /// Element width in bytes (= block length).
        elem: usize,
        /// Row pitch in bytes (= stride).
        row_bytes: usize,
    },
    /// A block-cyclic distribution slice: `blocks` blocks of `block`
    /// bytes, one every `cycle` bytes, expressed as
    /// `MPI_Type_create_indexed_block` (the combiner a ScaLAPACK-style
    /// decomposition produces — same layout as a vector, different
    /// construction, so it exercises canonicalization).
    BlockCyclic {
        /// Number of owned blocks.
        blocks: usize,
        /// Block length in bytes.
        block: usize,
        /// Distance between owned block starts in bytes.
        cycle: usize,
    },
    /// Struct-of-arrays extraction: the first `take` bytes of each of
    /// `fields` member arrays (each `field_bytes` long, laid out
    /// back-to-back), expressed as `MPI_Type_create_struct` over byte
    /// blocks — few large blocks at large offsets, a combiner that
    /// defeats subarray-style translation.
    Soa {
        /// Number of member arrays.
        fields: usize,
        /// Bytes taken from the head of each array.
        take: usize,
        /// Full length of one member array in bytes.
        field_bytes: usize,
    },
    /// Nested vector-of-vector: `planes` repetitions (`plane_stride`
    /// apart, via hvector) of an inner `MPI_Type_vector` of `rows` blocks
    /// of `block` bytes `row_stride` apart — the 3-D box a naive
    /// application composes instead of one subarray.
    Nested {
        /// Outer repetition count.
        planes: usize,
        /// Outer stride in bytes.
        plane_stride: usize,
        /// Inner block count.
        rows: usize,
        /// Inner block length in bytes.
        block: usize,
        /// Inner stride in bytes.
        row_stride: usize,
    },
    /// An existing fig-zoo 2-D object (50%-density strided family),
    /// expressed as hvector like `bench_send` does.
    Fig2d(Obj2d),
    /// An existing fig-zoo 3-D box, expressed as one n-D subarray.
    Fig3d(Obj3d),
}

impl ZooPattern {
    /// The guidelines zoo: every Hunold/Träff pattern family at a small
    /// and a large size where meaningful, plus fig-zoo representatives.
    /// Block counts stay ≤ 1024 so the naive element-wise reference loop
    /// (one message per block) stays tractable at every cell.
    pub fn zoo() -> Vec<ZooPattern> {
        vec![
            ZooPattern::Row { bytes: 64 << 10 },
            ZooPattern::Col {
                rows: 256,
                elem: 8,
                row_bytes: 2048,
            },
            ZooPattern::Col {
                rows: 1024,
                elem: 64,
                row_bytes: 64 << 10,
            },
            ZooPattern::BlockCyclic {
                blocks: 512,
                block: 128,
                cycle: 512,
            },
            ZooPattern::Soa {
                fields: 8,
                take: 2048,
                field_bytes: 64 << 10,
            },
            ZooPattern::Nested {
                planes: 32,
                plane_stride: 8192,
                rows: 16,
                block: 64,
                row_stride: 256,
            },
            ZooPattern::Fig2d(Obj2d {
                incount: 1,
                block: 16,
                count: 512,
                stride: 32,
            }),
            ZooPattern::Fig2d(Obj2d {
                incount: 1,
                block: 4096,
                count: 64,
                stride: 8192,
            }),
            ZooPattern::Fig3d(Obj3d {
                alloc: 128,
                x: 32,
                y: 16,
                z: 16,
            }),
        ]
    }

    /// Stable row label (pattern family + geometry).
    pub fn label(&self) -> String {
        match *self {
            ZooPattern::Row { bytes } => format!("row/{bytes}"),
            ZooPattern::Col {
                rows,
                elem,
                row_bytes,
            } => format!("col/{rows}x{elem}@{row_bytes}"),
            ZooPattern::BlockCyclic {
                blocks,
                block,
                cycle,
            } => format!("blockcyclic/{blocks}x{block}@{cycle}"),
            ZooPattern::Soa {
                fields,
                take,
                field_bytes,
            } => format!("soa/{fields}x{take}@{field_bytes}"),
            ZooPattern::Nested {
                planes,
                plane_stride,
                rows,
                block,
                row_stride,
            } => format!("nested/{planes}@{plane_stride}x{rows}x{block}@{row_stride}"),
            ZooPattern::Fig2d(o) => format!("fig2d/{}", o.label()),
            ZooPattern::Fig3d(o) => format!("fig3d/{}", o.label()),
        }
    }

    /// Data bytes one item of the pattern denotes.
    pub fn total_bytes(&self) -> usize {
        match *self {
            ZooPattern::Row { bytes } => bytes,
            ZooPattern::Col { rows, elem, .. } => rows * elem,
            ZooPattern::BlockCyclic { blocks, block, .. } => blocks * block,
            ZooPattern::Soa { fields, take, .. } => fields * take,
            ZooPattern::Nested {
                planes,
                rows,
                block,
                ..
            } => planes * rows * block,
            ZooPattern::Fig2d(o) => o.total_bytes(),
            ZooPattern::Fig3d(o) => o.total_bytes(),
        }
    }

    /// Number of contiguous blocks (= messages the naive element-wise
    /// reference loop sends).
    pub fn nblocks(&self) -> usize {
        match *self {
            ZooPattern::Row { .. } => 1,
            ZooPattern::Col { rows, .. } => rows,
            ZooPattern::BlockCyclic { blocks, .. } => blocks,
            ZooPattern::Soa { fields, .. } => fields,
            ZooPattern::Nested { planes, rows, .. } => planes * rows,
            ZooPattern::Fig2d(o) => o.count * o.incount,
            ZooPattern::Fig3d(o) => o.y * o.z,
        }
    }

    /// Bytes the source/destination buffer must span.
    pub fn span(&self) -> usize {
        match *self {
            ZooPattern::Row { bytes } => bytes,
            ZooPattern::Col {
                rows, row_bytes, ..
            } => rows * row_bytes,
            ZooPattern::BlockCyclic {
                blocks,
                block,
                cycle,
            } => (blocks - 1) * cycle + block,
            ZooPattern::Soa {
                fields,
                field_bytes,
                ..
            } => fields * field_bytes,
            ZooPattern::Nested {
                planes,
                plane_stride,
                rows,
                block,
                row_stride,
            } => (planes - 1) * plane_stride + (rows - 1) * row_stride + block,
            ZooPattern::Fig2d(o) => o.span(),
            ZooPattern::Fig3d(o) => o.alloc * o.alloc * o.alloc,
        }
    }

    /// Create (not commit) the datatype the pattern's natural MPI
    /// construction produces.
    pub fn build(&self, ctx: &mut RankCtx) -> MpiResult<Datatype> {
        match *self {
            ZooPattern::Row { bytes } => ctx.type_contiguous(bytes as i32, MPI_BYTE),
            ZooPattern::Col {
                rows,
                elem,
                row_bytes,
            } => ctx.type_vector(rows as i32, elem as i32, row_bytes as i32, MPI_BYTE),
            ZooPattern::BlockCyclic {
                blocks,
                block,
                cycle,
            } => {
                let displs: Vec<i32> = (0..blocks as i32).map(|i| i * cycle as i32).collect();
                ctx.type_create_indexed_block(block as i32, &displs, MPI_BYTE)
            }
            ZooPattern::Soa {
                fields,
                take,
                field_bytes,
            } => {
                let lens = vec![take as i32; fields];
                let displs: Vec<i64> = (0..fields as i64).map(|i| i * field_bytes as i64).collect();
                let types = vec![MPI_BYTE; fields];
                ctx.type_create_struct(&lens, &displs, &types)
            }
            ZooPattern::Nested {
                planes,
                plane_stride,
                rows,
                block,
                row_stride,
            } => {
                let inner =
                    ctx.type_vector(rows as i32, block as i32, row_stride as i32, MPI_BYTE)?;
                ctx.type_create_hvector(planes as i32, 1, plane_stride as i64, inner)
            }
            ZooPattern::Fig2d(o) => o.build(ctx, Construction::Hvector),
            ZooPattern::Fig3d(o) => o.build(ctx, Construction::Subarray),
        }
    }
}

/// One entry of the Fig. 6 object set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig6Object {
    /// The 2-D object (100-byte blocks × 13, stride 256) in one of its
    /// constructions.
    TwoD(Construction),
    /// The Fig.-2 3-D object (100×13×47 in a 256³ allocation).
    ThreeD(Construction),
    /// A contiguous megabyte.
    Contig1MiB,
}

impl Fig6Object {
    /// Create (not commit) this object's datatype.
    pub fn build(self, ctx: &mut RankCtx) -> MpiResult<Datatype> {
        match self {
            Fig6Object::TwoD(c) => Obj2d {
                incount: 1,
                block: 100,
                count: 13,
                stride: 256,
            }
            .build(ctx, c),
            Fig6Object::ThreeD(c) => Obj3d {
                alloc: 256,
                x: 100,
                y: 13,
                z: 47,
            }
            .build(ctx, c),
            Fig6Object::Contig1MiB => ctx.type_contiguous(1 << 20, MPI_BYTE),
        }
    }
}

/// The Fig. 6 object set: representative constructions whose create/commit
/// times are broken down per implementation.
pub fn fig6_set() -> Vec<(String, Fig6Object)> {
    let mut v = Vec::new();
    for c in [
        Construction::Vector,
        Construction::Hvector,
        Construction::Subarray,
    ] {
        v.push((format!("2d-{}", c.label()), Fig6Object::TwoD(c)));
    }
    for c in [
        Construction::Subarray,
        Construction::Hvector,
        Construction::VectorOfSubarray,
    ] {
        v.push((format!("3d-{}", c.label()), Fig6Object::ThreeD(c)));
    }
    v.push(("contig-1MiB".to_string(), Fig6Object::Contig1MiB));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::datatype::typemap::segments;
    use mpi_sim::WorldConfig;

    fn ctx() -> RankCtx {
        RankCtx::standalone(&WorldConfig::summit(1))
    }

    #[test]
    fn all_2d_constructions_are_equivalent() {
        let mut ctx = ctx();
        for obj in Obj2d::sweep(1 << 10) {
            let mut seglists = Vec::new();
            for c in obj.constructions() {
                let dt = obj.build(&mut ctx, c).unwrap();
                let reg = ctx.registry().read();
                seglists.push((c, segments(&reg, dt).unwrap()));
            }
            for w in seglists.windows(2) {
                assert_eq!(
                    w[0].1,
                    w[1].1,
                    "{:?} vs {:?} differ for {}",
                    w[0].0,
                    w[1].0,
                    obj.label()
                );
            }
        }
    }

    #[test]
    fn all_3d_constructions_are_equivalent() {
        let mut ctx = ctx();
        for obj in Obj3d::sweep(64) {
            let mut seglists = Vec::new();
            for c in obj.constructions() {
                let dt = obj.build(&mut ctx, c).unwrap();
                let reg = ctx.registry().read();
                seglists.push((c, segments(&reg, dt).unwrap()));
            }
            for w in seglists.windows(2) {
                assert_eq!(
                    w[0].1,
                    w[1].1,
                    "{:?} vs {:?} differ for {}",
                    w[0].0,
                    w[1].0,
                    obj.label()
                );
            }
        }
    }

    #[test]
    fn sweep_totals_are_exact() {
        for obj in Obj2d::sweep(1 << 20) {
            assert_eq!(obj.total_bytes(), 1 << 20, "{}", obj.label());
        }
        for obj in Obj2d::sweep(1 << 10) {
            assert_eq!(obj.total_bytes(), 1 << 10);
        }
    }

    #[test]
    fn contiguous_objects_know_it() {
        let c = Obj2d {
            incount: 1,
            block: 1024,
            count: 1,
            stride: 1024,
        };
        assert!(c.is_contiguous());
        assert_eq!(c.constructions().len(), 4);
        let s = Obj2d {
            incount: 1,
            block: 4,
            count: 256,
            stride: 8,
        };
        assert!(!s.is_contiguous());
        assert_eq!(s.constructions().len(), 3);
    }

    #[test]
    fn vector_of_subarray_root_combiner_is_vector() {
        let mut ctx = ctx();
        let o = Obj3d {
            alloc: 64,
            x: 16,
            y: 8,
            z: 8,
        };
        let dt = o.build(&mut ctx, Construction::VectorOfSubarray).unwrap();
        assert_eq!(
            ctx.combiner(dt).unwrap(),
            mpi_sim::Combiner::Vector,
            "the MVAPICH fast path keys on a vector root"
        );
    }

    #[test]
    fn fig6_set_builds() {
        let mut ctx = ctx();
        let objs = fig6_set();
        assert_eq!(objs.len(), 7);
        for (label, o) in objs {
            let dt = o.build(&mut ctx).unwrap();
            assert!(ctx.attrs(dt).unwrap().size > 0, "{label}");
        }
    }

    #[test]
    fn zoo_patterns_build_and_agree_with_their_geometry() {
        let mut ctx = ctx();
        let zoo = ZooPattern::zoo();
        assert!(zoo.len() >= 9, "the expanded zoo shrank");
        for p in &zoo {
            let dt = p
                .build(&mut ctx)
                .unwrap_or_else(|e| panic!("{}: {e}", p.label()));
            let attrs = ctx.attrs(dt).unwrap();
            assert_eq!(
                attrs.size as usize,
                p.total_bytes(),
                "{}: type size disagrees with total_bytes()",
                p.label()
            );
            let reg = ctx.registry().read();
            let segs = segments(&reg, dt).unwrap();
            assert_eq!(
                segs.len(),
                p.nblocks(),
                "{}: segment count disagrees with nblocks()",
                p.label()
            );
            assert!(
                p.nblocks() <= 1024,
                "{}: {} blocks — the naive reference loop budget is 1024",
                p.label(),
                p.nblocks()
            );
            // every block the type touches fits in the declared span
            let last = segs.iter().map(|s| s.off + s.len as i64).max().unwrap();
            assert!(
                p.span() as i64 >= last,
                "{}: span {} < last byte {last}",
                p.label(),
                p.span()
            );
        }
        // labels are unique — they key baseline rows across runs
        let mut labels: Vec<String> = zoo.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), zoo.len(), "duplicate zoo labels");
    }

    #[test]
    fn block_cyclic_matches_equivalent_vector() {
        // same layout, different construction: the canonicalization claim
        // the guidelines gate leans on
        let mut ctx = ctx();
        let bc = ZooPattern::BlockCyclic {
            blocks: 16,
            block: 32,
            cycle: 128,
        };
        let dt = bc.build(&mut ctx).unwrap();
        let v = ctx.type_vector(16, 32, 128, MPI_BYTE).unwrap();
        let reg = ctx.registry().read();
        assert_eq!(
            segments(&reg, dt).unwrap(),
            segments(&reg, v).unwrap(),
            "indexed_block and vector describe the same block-cyclic slice"
        );
    }

    #[test]
    fn span_covers_type_true_extent() {
        let mut ctx = ctx();
        for obj in Obj2d::sweep(1 << 12) {
            for c in obj.constructions() {
                let dt = obj.build(&mut ctx, c).unwrap();
                let a = ctx.attrs(dt).unwrap();
                let needed = a.true_ub + (obj.incount as i64 - 1) * a.extent();
                assert!(
                    obj.span() as i64 >= needed,
                    "span {} < needed {needed} for {} {:?}",
                    obj.span(),
                    obj.label(),
                    c
                );
            }
        }
    }
}
