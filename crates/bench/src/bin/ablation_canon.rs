//! Ablation: the value of canonicalization (Algorithms 5–7).
//!
//! With `canonicalize = false`, TEMPI still translates and still launches
//! kernels, but parameterizes them from the *raw translated* tree. The two
//! consequences the paper's design predicts:
//!
//! 1. **Equivalent-construction parity breaks** — the same object built as
//!    vector vs hvector vs subarray gets different kernel plans, so the
//!    paper's "equal treatment of equal objects" property disappears;
//! 2. **Performance collapses for compositions** whose raw trees have
//!    non-folded dense leaves: the innermost contiguous run (`counts[0]`)
//!    is the named type's size (1 byte for `MPI_BYTE` rows) instead of the
//!    folded block, destroying coalescing.
//!
//! Run: `cargo run --release -p tempi-bench --bin ablation_canon`

use serde::Serialize;
use tempi_bench::{fmt_speedup, pack_time, Mode, Obj2d, Platform, Table};
use tempi_core::config::TempiConfig;

#[derive(Serialize)]
struct Row {
    object: String,
    construction: &'static str,
    canon_us: f64,
    no_canon_us: f64,
    canon_gain: f64,
}

fn main() {
    let objects = [
        Obj2d {
            incount: 1,
            block: 64,
            count: 1024,
            stride: 128,
        },
        Obj2d {
            incount: 1,
            block: 512,
            count: 2048,
            stride: 1024,
        },
        Obj2d {
            incount: 1,
            block: 4096,
            count: 256,
            stride: 8192,
        },
    ];
    println!("Ablation: canonicalization on vs off (TEMPI pack, Summit)\n");
    let mut t = Table::new(&["object", "construction", "canon", "no canon", "gain"]);
    let mut rows = Vec::new();
    for obj in objects {
        for c in obj.constructions() {
            let on = pack_time(
                Platform::Summit,
                Mode::Tempi,
                TempiConfig::default(),
                |ctx| obj.build(ctx, c),
                1,
                obj.span(),
            )
            .expect("canon pack");
            let off = pack_time(
                Platform::Summit,
                Mode::Tempi,
                TempiConfig {
                    canonicalize: false,
                    ..TempiConfig::default()
                },
                |ctx| obj.build(ctx, c),
                1,
                obj.span(),
            )
            .expect("no-canon pack");
            let gain = off.as_ns_f64() / on.as_ns_f64();
            t.row(&[
                &obj.label(),
                &c.label(),
                &format!("{on}"),
                &format!("{off}"),
                &fmt_speedup(gain),
            ]);
            rows.push(Row {
                object: obj.label(),
                construction: c.label(),
                canon_us: on.as_us_f64(),
                no_canon_us: off.as_us_f64(),
                canon_gain: gain,
            });
        }
    }
    t.print();

    // parity check: with canonicalization, all constructions of one object
    // cost the same; without, they diverge
    for obj in objects {
        let spread = |config: TempiConfig| -> (f64, f64) {
            let times: Vec<f64> = obj
                .constructions()
                .iter()
                .map(|&c| {
                    pack_time(
                        Platform::Summit,
                        Mode::Tempi,
                        config.clone(),
                        |ctx| obj.build(ctx, c),
                        1,
                        obj.span(),
                    )
                    .expect("pack")
                    .as_us_f64()
                })
                .collect();
            (
                times.iter().cloned().fold(f64::INFINITY, f64::min),
                times.iter().cloned().fold(0.0, f64::max),
            )
        };
        let (on_min, on_max) = spread(TempiConfig::default());
        let (off_min, off_max) = spread(TempiConfig {
            canonicalize: false,
            ..TempiConfig::default()
        });
        println!(
            "\n{}: construction spread with canon {:.2}x, without {:.2}x",
            obj.label(),
            on_max / on_min,
            off_max / off_min
        );
    }
    tempi_bench::write_json("ablation_canon", &rows);
}
