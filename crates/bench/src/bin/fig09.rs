//! Fig. 9: pack/unpack performance, "one-shot" vs "device" strategies.
//!
//! Sweeps object sizes 64 B – 4 MiB × contiguous block sizes, measuring
//! TEMPI's kernels packing device → device (the *device* method's pack)
//! and device → mapped-host (the *one-shot* pack), plus the two unpack
//! directions. Reports both the time and the achieved throughput; the
//! paper's peaks are 212 / 202 GB/s (device pack/unpack) and 32.5 / 39
//! GB/s (one-shot), with coalescing knees at 32 B (device) and 128 B
//! (one-shot).
//!
//! Run: `cargo run --release -p tempi-bench --bin fig09`

use gpu_sim::{MemSpace, PackDir};
use mpi_sim::{MpiResult, RankCtx, WorldConfig};
use serde::Serialize;
use tempi_bench::{fmt_bytes, Table};
use tempi_core::config::TempiConfig;
use tempi_core::tempi::{PlanKind, Tempi};

#[derive(Serialize)]
struct Row {
    strategy: &'static str,
    dir: &'static str,
    object_bytes: usize,
    block_bytes: usize,
    time_us: f64,
    gbps: f64,
}

/// Time one TEMPI kernel pack/unpack of the (total, block) object with the
/// packed side in `packed_space`.
fn kernel_time(total: usize, block: usize, dir: PackDir, packed_space: MemSpace) -> MpiResult<f64> {
    let cfg = WorldConfig::summit(1);
    let mut ctx = RankCtx::standalone(&cfg);
    let mut tempi = Tempi::new(TempiConfig::default());
    let count = total / block;
    let dt = ctx.type_vector(
        count as i32,
        block as i32,
        (block * 2) as i32,
        mpi_sim::consts::MPI_BYTE,
    )?;
    let plan = tempi.type_commit(&mut ctx, dt)?;
    let kp = match &plan.kind {
        PlanKind::Strided(kp) => kp.clone(),
        other => panic!("expected strided plan, got {other:?}"),
    };
    let span = count * block * 2;
    let strided = ctx.gpu.malloc(span)?;
    let packed = match packed_space {
        MemSpace::Device => ctx.gpu.malloc(total)?,
        MemSpace::Mapped => ctx.gpu.mapped_alloc(total)?,
        _ => unreachable!(),
    };
    let t0 = ctx.clock.now();
    tempi_core::kernels::execute_strided(
        &kp,
        &mut ctx.stream,
        &mut ctx.clock,
        dir,
        strided,
        plan.extent,
        1,
        packed,
        0,
    )?;
    Ok((ctx.clock.now() - t0).as_us_f64())
}

fn main() {
    let objects: Vec<usize> = (6..=22).step_by(2).map(|p| 1usize << p).collect(); // 64 B – 4 MiB
    let blocks: Vec<usize> = vec![1, 4, 8, 12, 16, 24, 32, 64, 128, 512, 4096];

    let mut rows = Vec::new();
    for (strategy, space) in [("oneshot", MemSpace::Mapped), ("device", MemSpace::Device)] {
        for (dname, dir) in [("pack", PackDir::Pack), ("unpack", PackDir::Unpack)] {
            println!("\nFig. 9: {strategy} {dname} time (us) by object size × block size\n");
            let mut headers: Vec<String> = vec!["object".to_string()];
            headers.extend(blocks.iter().map(|b| format!("{b} B")));
            let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut t = Table::new(&hrefs);
            for &total in &objects {
                let mut cells: Vec<String> = vec![fmt_bytes(total)];
                for &block in &blocks {
                    if block > total {
                        cells.push("-".to_string());
                        continue;
                    }
                    let us = kernel_time(total, block, dir, space).expect("kernel time");
                    // headline throughput is kernel-only (the fixed launch
                    // + synchronize overhead excluded, as the paper's
                    // "maximum achieved" peaks read)
                    let m = gpu_sim::GpuCostModel::summit_v100();
                    let overhead_us =
                        (m.kernel_launch_overhead + m.stream_sync_overhead).as_us_f64();
                    let gbps = total as f64 / ((us - overhead_us).max(0.01) * 1e3);
                    cells.push(format!("{us:.1}"));
                    rows.push(Row {
                        strategy,
                        dir: dname,
                        object_bytes: total,
                        block_bytes: block,
                        time_us: us,
                        gbps,
                    });
                }
                let refs: Vec<&dyn std::fmt::Display> =
                    cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
                t.row(&refs);
            }
            t.print();
        }
    }

    // headline peaks
    for (strategy, dir) in [
        ("oneshot", "pack"),
        ("oneshot", "unpack"),
        ("device", "pack"),
        ("device", "unpack"),
    ] {
        let peak = rows
            .iter()
            .filter(|r| r.strategy == strategy && r.dir == dir)
            .map(|r| r.gbps)
            .fold(0.0f64, f64::max);
        let paper = match (strategy, dir) {
            ("oneshot", "pack") => 32.5,
            ("oneshot", "unpack") => 39.0,
            ("device", "pack") => 212.0,
            _ => 202.0,
        };
        println!("max {strategy} {dir} throughput: {peak:.1} GB/s (paper: {paper} GB/s)");
    }
    tempi_bench::write_json("fig09", &rows);
}
