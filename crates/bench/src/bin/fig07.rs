//! Fig. 7: TEMPI `MPI_Pack` speedup vs the system implementations.
//!
//! Three parts, as in the paper:
//!   (a) 1 KiB 2-D objects, equivalently expressed as vector / hvector /
//!       subarray (contiguous where applicable);
//!   (b) 1 MiB 2-D objects — where the headline 720,400× lives;
//!   (c) 3-D boxes inside a cubic byte allocation (the paper uses 1024³ B;
//!       default here is 256³, set `TEMPI_BENCH_FULL=1` for 1024³).
//!
//! MVAPICH's specialized root-vector handling (speedup ≈ 1) and its buggy
//! contiguous path (omitted rows, as in the paper) are reproduced.
//!
//! Run: `cargo run --release -p tempi-bench --bin fig07`

use serde::Serialize;
use tempi_bench::{fmt_bytes, fmt_speedup, pack_time, Mode, Obj2d, Obj3d, Platform, Table};
use tempi_core::config::TempiConfig;

#[derive(Serialize)]
struct Row {
    part: &'static str,
    object: String,
    construction: &'static str,
    platform: &'static str,
    tempi_us: f64,
    system_us: f64,
    speedup: Option<f64>,
    omitted_reason: Option<&'static str>,
}

fn measure_2d(part: &'static str, total: usize, rows: &mut Vec<Row>) {
    println!(
        "\nFig. 7{part}: MPI_Pack speedup, {} 2-D objects",
        fmt_bytes(total)
    );
    let mut t = Table::new(&["object", "construction", "mv", "op", "sp"]);
    for obj in Obj2d::sweep(total) {
        for c in obj.constructions() {
            let mut cells: Vec<String> = Vec::new();
            for platform in Platform::ALL {
                // MVAPICH contiguous results omitted: its contiguous pack
                // returns before the copy completes (semantic bug).
                let omitted = platform == Platform::Mvapich && obj.is_contiguous();
                let tempi = pack_time(
                    platform,
                    Mode::Tempi,
                    TempiConfig::default(),
                    |ctx| obj.build(ctx, c),
                    obj.incount,
                    obj.span(),
                )
                .expect("tempi pack");
                let system = pack_time(
                    platform,
                    Mode::System,
                    TempiConfig::default(),
                    |ctx| obj.build(ctx, c),
                    obj.incount,
                    obj.span(),
                )
                .expect("system pack");
                let speedup = system.as_ns_f64() / tempi.as_ns_f64();
                cells.push(if omitted {
                    "(omitted)".to_string()
                } else {
                    fmt_speedup(speedup)
                });
                rows.push(Row {
                    part,
                    object: obj.label(),
                    construction: c.label(),
                    platform: platform.label(),
                    tempi_us: tempi.as_us_f64(),
                    system_us: system.as_us_f64(),
                    speedup: (!omitted).then_some(speedup),
                    omitted_reason: omitted.then_some("mvapich contiguous sync bug"),
                });
            }
            t.row(&[&obj.label(), &c.label(), &cells[0], &cells[1], &cells[2]]);
        }
    }
    t.print();
}

fn measure_3d(alloc: usize, rows: &mut Vec<Row>) {
    println!("\nFig. 7c: MPI_Pack speedup, 3-D objects in a {alloc}^3 B allocation");
    let mut t = Table::new(&["x|y|z", "construction", "mv", "op", "sp"]);
    for obj in Obj3d::sweep(alloc) {
        for c in obj.constructions() {
            let mut cells: Vec<String> = Vec::new();
            for platform in Platform::ALL {
                let span = alloc * alloc * alloc;
                let tempi = pack_time(
                    platform,
                    Mode::Tempi,
                    TempiConfig::default(),
                    |ctx| obj.build(ctx, c),
                    1,
                    span,
                )
                .expect("tempi pack");
                let system = pack_time(
                    platform,
                    Mode::System,
                    TempiConfig::default(),
                    |ctx| obj.build(ctx, c),
                    1,
                    span,
                )
                .expect("system pack");
                let speedup = system.as_ns_f64() / tempi.as_ns_f64();
                cells.push(fmt_speedup(speedup));
                rows.push(Row {
                    part: "c",
                    object: obj.label(),
                    construction: c.label(),
                    platform: platform.label(),
                    tempi_us: tempi.as_us_f64(),
                    system_us: system.as_us_f64(),
                    speedup: Some(speedup),
                    omitted_reason: None,
                });
            }
            t.row(&[&obj.label(), &c.label(), &cells[0], &cells[1], &cells[2]]);
        }
    }
    t.print();
}

fn main() {
    let full = std::env::var("TEMPI_BENCH_FULL").is_ok();
    let mut rows: Vec<Row> = Vec::new();
    measure_2d("a", 1 << 10, &mut rows);
    measure_2d("b", 1 << 20, &mut rows);
    measure_3d(if full { 1024 } else { 256 }, &mut rows);

    let max = rows.iter().filter_map(|r| r.speedup).fold(0.0f64, f64::max);
    let min = rows
        .iter()
        .filter_map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nOverall speedup range: {} to {} (paper: 0.89x to 720,400x)",
        fmt_speedup(min),
        fmt_speedup(max)
    );
    tempi_bench::write_json("fig07", &rows);
}
