//! Table 1: experimental platform summaries.
//!
//! Run: `cargo run -p tempi-bench --bin table1`

use serde::Serialize;
use tempi_bench::{Platform, Table};

#[derive(Serialize)]
struct Row {
    name: String,
    mpi: String,
    cpu: String,
    gpu: String,
    gpu_mem_gib: usize,
    ranks_per_node: String,
    cpu_floor_us: f64,
    gpu_floor_us: f64,
}

fn main() {
    let mut table = Table::new(&[
        "Name",
        "MPI",
        "CPU",
        "GPU",
        "GPU mem",
        "ranks/node",
        "cpu-cpu floor",
        "gpu-gpu floor",
    ]);
    let mut rows = Vec::new();
    for p in [Platform::Summit, Platform::OpenMpi, Platform::Mvapich] {
        let w = p.world(1);
        let name = match p {
            Platform::Summit => "OLCF Summit",
            Platform::OpenMpi => "openmpi",
            Platform::Mvapich => "mvapich",
        };
        let cpu = match p {
            Platform::Summit => "IBM POWER9",
            _ => "AMD Ryzen 7 3700x",
        };
        let mpi = format!("{} {}", w.vendor.mpi_name, w.vendor.version);
        let rpn = if w.net.ranks_per_node == usize::MAX {
            "all".to_string()
        } else {
            w.net.ranks_per_node.to_string()
        };
        let cpu_floor = w.net.cpu_latency_inter.as_us_f64();
        let gpu_floor = w.net.gpu_latency_inter.as_us_f64();
        table.row(&[
            &name,
            &mpi,
            &cpu,
            &w.device.name,
            &format!("{} GiB", w.device.global_mem_bytes >> 30),
            &rpn,
            &format!("{cpu_floor:.1} us"),
            &format!("{gpu_floor:.1} us"),
        ]);
        rows.push(Row {
            name: name.to_string(),
            mpi,
            cpu: cpu.to_string(),
            gpu: w.device.name.clone(),
            gpu_mem_gib: w.device.global_mem_bytes >> 30,
            ranks_per_node: rpn,
            cpu_floor_us: cpu_floor,
            gpu_floor_us: gpu_floor,
        });
    }
    println!("Table 1: Experimental Platform Summaries (simulated)\n");
    table.print();
    tempi_bench::write_json("table1", &rows);
}
