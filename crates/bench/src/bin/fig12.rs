//! Fig. 12: 3-D stencil halo-exchange speedup, TEMPI vs Spectrum MPI.
//!
//! Weak scaling: each rank owns an `N³` subdomain (the paper uses 512³;
//! default here is 32³ for a CI-sized run — set `TEMPI_BENCH_FULL=1` for
//! 96³ — the substitution is documented in DESIGN.md). For each rank count
//! the halo exchange runs against the system baseline and against TEMPI;
//! the figure reports total / pack / unpack speedups. The paper's shape:
//! pack and unpack speedups are enormous (up to ~10⁴), the iteration
//! speedup shrinks as rank count grows because inter-GPU communication
//! takes a relatively larger share.
//!
//! Run: `cargo run --release -p tempi-bench --bin fig12`

use gpu_sim::SimTime;
use mpi_sim::{World, WorldConfig};
use serde::Serialize;
use tempi_bench::{fmt_speedup, Table};
use tempi_core::config::TempiConfig;
use tempi_core::interpose::InterposedMpi;
use tempi_stencil::{ExchangeTiming, HaloConfig, HaloExchanger};

#[derive(Serialize)]
struct Row {
    ranks: usize,
    local: usize,
    pack_speedup: f64,
    unpack_speedup: f64,
    total_speedup: f64,
    tempi_total_us: f64,
    system_total_us: f64,
}

/// Run the exchange on `p` ranks; returns the max-over-ranks phase times
/// (the iteration is gated by the slowest rank).
fn run(p: usize, n: usize, interposed: bool) -> ExchangeTiming {
    let mut cfg = WorldConfig::summit(p);
    cfg.net.ranks_per_node = 2;
    let per_rank = World::run(&cfg, |ctx| {
        let mut mpi = if interposed {
            InterposedMpi::new(TempiConfig::default())
        } else {
            InterposedMpi::system_only()
        };
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(n))?;
        ex.fill(ctx)?;
        // warm-up exchange, then a measured steady-state one
        ex.exchange(ctx, &mut mpi)?;
        ctx.barrier();
        ctx.reset_clock();
        let t = ex.exchange(ctx, &mut mpi)?;
        let bad = ex.verify_ghosts(ctx)?;
        assert_eq!(bad, 0, "halo corruption on rank {}", ctx.rank);
        Ok(t)
    })
    .expect("stencil world");
    let max =
        |f: fn(&ExchangeTiming) -> SimTime| per_rank.iter().map(f).max().unwrap_or(SimTime::ZERO);
    ExchangeTiming {
        pack: max(|t| t.pack),
        comm: max(|t| t.comm),
        unpack: max(|t| t.unpack),
    }
}

fn main() {
    let full = std::env::var("TEMPI_BENCH_FULL").is_ok();
    let n = if full { 96 } else { 32 };
    let ranks = if full {
        vec![1usize, 2, 4, 8, 16, 27]
    } else {
        vec![1usize, 2, 4, 8]
    };

    println!(
        "Fig. 12: 3-D stencil halo exchange speedup vs Spectrum MPI ({n}^3 per rank, radius 2)\n"
    );
    let mut t = Table::new(&[
        "ranks",
        "pack speedup",
        "unpack speedup",
        "exchange speedup",
        "TEMPI total",
        "baseline total",
    ]);
    let mut rows = Vec::new();
    for &p in &ranks {
        let sys = run(p, n, false);
        let tmp = run(p, n, true);
        let pack = sys.pack.as_ns_f64() / tmp.pack.as_ns_f64();
        let unpack = sys.unpack.as_ns_f64() / tmp.unpack.as_ns_f64();
        let total = sys.total().as_ns_f64() / tmp.total().as_ns_f64();
        t.row(&[
            &p,
            &fmt_speedup(pack),
            &fmt_speedup(unpack),
            &fmt_speedup(total),
            &format!("{}", tmp.total()),
            &format!("{}", sys.total()),
        ]);
        rows.push(Row {
            ranks: p,
            local: n,
            pack_speedup: pack,
            unpack_speedup: unpack,
            total_speedup: total,
            tempi_total_us: tmp.total().as_us_f64(),
            system_total_us: sys.total().as_us_f64(),
        });
    }
    t.print();
    println!(
        "\npaper shape: pack/unpack speedups ~10^3-10^4; iteration speedup decreases\n\
         with rank count as communication takes a larger share (up to ~20,000x on 512^3)"
    );
    tempi_bench::write_json("fig12", &rows);
}
