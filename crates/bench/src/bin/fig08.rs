//! Fig. 8: raw transfer measurements and the resulting performance models.
//!
//! (a) Measured T_d2h, T_h2d, T_cpu-cpu, T_gpu-gpu vs message size — the
//!     CUDA paths share an ≈11 µs floor, the CPU path a 2.2 µs floor.
//! (b) T_device / T_oneshot / T_staged *excluding pack time* — the region
//!     where T_cpu-cpu < T_gpu-gpu is never enough to make staged
//!     competitive.
//! (c) T_oneshot under hypothetical pack/unpack bandwidths, including the
//!     measured 4.5 µs kernel-launch time.
//!
//! Parts (a) are *measured* in the simulated world (actual ping-pongs /
//! actual stream operations); parts (b)-(c) evaluate the Section-5 model —
//! the same relationship the paper's figure has to its raw data.
//!
//! Run: `cargo run --release -p tempi-bench --bin fig08`

use gpu_sim::{SimClock, SimTime};
use mpi_sim::{World, WorldConfig};
use serde::Serialize;
use tempi_bench::{fmt_bytes, Table};
use tempi_core::model::SendModel;

#[derive(Serialize)]
struct RowA {
    bytes: usize,
    d2h_us: f64,
    h2d_us: f64,
    cpu_cpu_us: f64,
    gpu_gpu_us: f64,
}

#[derive(Serialize)]
struct RowB {
    bytes: usize,
    device_us: f64,
    oneshot_us: f64,
    staged_us: f64,
}

#[derive(Serialize)]
struct RowC {
    bytes: usize,
    bw_gbps: f64,
    oneshot_us: f64,
}

fn sizes() -> Vec<usize> {
    (0..=26).step_by(2).map(|p| 1usize << p).collect()
}

/// Measured half-ping-pong between ranks 0 and 1 on different nodes.
fn measure_pingpong(bytes: usize, device: bool) -> SimTime {
    let mut cfg = WorldConfig::summit(2);
    cfg.net.ranks_per_node = 1;
    let results = World::run(&cfg, |ctx| {
        let buf = if device {
            ctx.gpu.malloc(bytes.max(1))?
        } else {
            ctx.gpu.pinned_alloc(bytes.max(1))?
        };
        let peer = 1 - ctx.rank;
        ctx.barrier();
        let t0 = ctx.clock.now();
        if ctx.rank == 0 {
            ctx.send_bytes(buf, bytes, peer, 0)?;
            ctx.recv_bytes(buf, bytes, Some(peer), Some(0))?;
        } else {
            ctx.recv_bytes(buf, bytes, Some(peer), Some(0))?;
            ctx.send_bytes(buf, bytes, peer, 0)?;
        }
        Ok((ctx.clock.now() - t0).as_ps())
    })
    .expect("pingpong");
    SimTime::from_ps(results[0] / 2)
}

/// Measured `cudaMemcpyAsync` + synchronize on a standalone rank.
fn measure_memcpy(bytes: usize, d2h: bool) -> SimTime {
    let cfg = WorldConfig::summit(1);
    let mut ctx = mpi_sim::RankCtx::standalone(&cfg);
    let dev = ctx.gpu.malloc(bytes.max(1)).expect("alloc");
    let host = ctx.gpu.pinned_alloc(bytes.max(1)).expect("alloc");
    let (dst, src) = if d2h { (host, dev) } else { (dev, host) };
    let mut clock = SimClock::new();
    ctx.stream
        .memcpy_async(&mut clock, dst, src, bytes)
        .expect("memcpy");
    ctx.stream.synchronize(&mut clock);
    clock.now()
}

fn main() {
    let model = SendModel::summit_internode();

    println!("Fig. 8a: measured transfer primitives (half ping-pong / memcpy+sync)\n");
    let mut t = Table::new(&["size", "T_d2h", "T_h2d", "T_cpu-cpu", "T_gpu-gpu"]);
    let mut rows_a = Vec::new();
    for bytes in sizes() {
        let d2h = measure_memcpy(bytes, true);
        let h2d = measure_memcpy(bytes, false);
        let cpu = measure_pingpong(bytes, false);
        let gpu = measure_pingpong(bytes, true);
        t.row(&[
            &fmt_bytes(bytes),
            &format!("{}", d2h),
            &format!("{}", h2d),
            &format!("{}", cpu),
            &format!("{}", gpu),
        ]);
        rows_a.push(RowA {
            bytes,
            d2h_us: d2h.as_us_f64(),
            h2d_us: h2d.as_us_f64(),
            cpu_cpu_us: cpu.as_us_f64(),
            gpu_gpu_us: gpu.as_us_f64(),
        });
    }
    t.print();
    println!("\nfloors: gpu-gpu / d2h / h2d ≈ 11 us; cpu-cpu ≈ 2.2 us (paper Fig. 8a)");

    println!("\nFig. 8b: modeled methods excluding pack time\n");
    let mut t = Table::new(&["size", "T_device", "T_oneshot", "T_staged"]);
    let mut rows_b = Vec::new();
    for bytes in sizes() {
        let dev = model.t_gpu_gpu(bytes);
        let osh = model.t_cpu_cpu(bytes);
        let stg = model.t_d2h(bytes) + model.t_cpu_cpu(bytes) + model.t_h2d(bytes);
        t.row(&[
            &fmt_bytes(bytes),
            &format!("{dev}"),
            &format!("{osh}"),
            &format!("{stg}"),
        ]);
        rows_b.push(RowB {
            bytes,
            device_us: dev.as_us_f64(),
            oneshot_us: osh.as_us_f64(),
            staged_us: stg.as_us_f64(),
        });
    }
    t.print();
    println!("\nstaged is never below device: the cpu-cpu advantage is consumed by D2H+H2D");

    println!("\nFig. 8c: modeled T_oneshot for hypothetical pack/unpack bandwidths\n");
    let bws = [5.0f64, 10.0, 20.0, 40.0, f64::INFINITY];
    let launch = model.gpu.kernel_launch_overhead + model.gpu.stream_sync_overhead;
    let mut t = Table::new(&["size", "5 GB/s", "10 GB/s", "20 GB/s", "40 GB/s", "inf"]);
    let mut rows_c = Vec::new();
    for bytes in sizes() {
        let mut cells = Vec::new();
        for &bw in &bws {
            let pack = if bw.is_infinite() {
                SimTime::ZERO
            } else {
                SimTime::from_ns_f64(bytes as f64 / bw)
            };
            let total = launch + pack + model.t_cpu_cpu(bytes) + launch + pack;
            cells.push(format!("{total}"));
            rows_c.push(RowC {
                bytes,
                bw_gbps: bw,
                oneshot_us: total.as_us_f64(),
            });
        }
        t.row(&[
            &fmt_bytes(bytes),
            &cells[0],
            &cells[1],
            &cells[2],
            &cells[3],
            &cells[4],
        ]);
    }
    t.print();
    println!("\nlatency of one-shot depends heavily on pack/unpack performance (paper Fig. 8c)");

    tempi_bench::write_json("fig08a", &rows_a);
    tempi_bench::write_json("fig08b", &rows_b);
    tempi_bench::write_json("fig08c", &rows_c);
}
