//! Ablation: the §8 pipelining extension.
//!
//! Sweeps chunk sizes for 1 / 4 / 16 MiB objects and compares the
//! measured pipelined send against the paper's three methods. Expected
//! shape: pipelining beats everything for large coarse-grained objects
//! (it hides pack, D2H, H2D and unpack behind the wire), with an optimum
//! chunk size — too small pays per-chunk overheads, too large stops
//! overlapping.
//!
//! Run: `cargo run --release -p tempi-bench --bin ablation_pipeline`

use serde::Serialize;
use tempi_bench::{fmt_bytes, send_pair_time, Construction, Mode, Obj2d, Platform, Table};
use tempi_core::config::{Method, TempiConfig};

#[derive(Serialize)]
struct Row {
    object_bytes: usize,
    chunk_bytes: Option<usize>,
    method: String,
    time_us: f64,
}

fn main() {
    let block = 4096usize;
    let chunks = [64usize << 10, 256 << 10, 1 << 20, 4 << 20];
    let mut rows = Vec::new();
    for total in [1usize << 20, 4 << 20, 16 << 20] {
        let obj = Obj2d {
            incount: 1,
            block,
            count: total / block,
            stride: block * 2,
        };
        let run = |config: TempiConfig, label: String| -> Row {
            let t = send_pair_time(
                Platform::Summit,
                Mode::Tempi,
                config,
                |ctx| obj.build(ctx, Construction::Vector),
                1,
                obj.span(),
            )
            .expect("send");
            Row {
                object_bytes: total,
                chunk_bytes: None,
                method: label,
                time_us: t.as_us_f64(),
            }
        };
        println!(
            "\nAblation: pipelining, {} object ({} B blocks)\n",
            fmt_bytes(total),
            block
        );
        let mut t = Table::new(&["method", "time"]);
        let mut all = Vec::new();
        for m in [Method::OneShot, Method::Device, Method::Staged] {
            let r = run(
                TempiConfig {
                    force_method: Some(m),
                    ..TempiConfig::default()
                },
                format!("{m:?}"),
            );
            t.row(&[&r.method, &format!("{:.1} us", r.time_us)]);
            all.push(r);
        }
        for chunk in chunks {
            if chunk >= total {
                continue;
            }
            let mut r = run(
                TempiConfig {
                    force_method: Some(Method::Pipelined),
                    pipeline_chunk: Some(chunk),
                    ..TempiConfig::default()
                },
                format!("Pipelined({})", fmt_bytes(chunk)),
            );
            r.chunk_bytes = Some(chunk);
            t.row(&[&r.method, &format!("{:.1} us", r.time_us)]);
            all.push(r);
        }
        // the model-driven choice with pipelining enabled
        let r = run(
            TempiConfig {
                pipeline_chunk: Some(256 << 10),
                ..TempiConfig::default()
            },
            "model (pipeline enabled)".to_string(),
        );
        t.row(&[&r.method, &format!("{:.1} us", r.time_us)]);
        all.push(r);
        t.print();
        rows.extend(all);
    }
    println!(
        "\npipelining hides pack/copy/unpack behind the wire; the optimum chunk\n\
         balances per-chunk overheads against overlap (paper §8: 'prior work\n\
         suggests that pipelining packing operations with MPI send operations\n\
         is optimal')."
    );
    tempi_bench::write_json("ablation_pipeline", &rows);
}
