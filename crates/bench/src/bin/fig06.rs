//! Fig. 6: MPI derived-type create + commit time, per implementation.
//!
//! For each construction in the evaluation set, reports the "create" time
//! (the `MPI_Type_*` constructor calls) and the "commit" time with plain
//! system MPI vs with TEMPI interposed, plus TEMPI's commit slowdown —
//! the paper reports 2.1–5.5× (mvapich), 3.5–6.8× (openmpi) and 4.2–11.6×
//! (Summit).
//!
//! Run: `cargo run --release -p tempi-bench --bin fig06`

use serde::Serialize;
use tempi_bench::{commit_breakdown, fig6_set, Platform, Table};

#[derive(Serialize)]
struct Row {
    platform: &'static str,
    object: String,
    create_us: f64,
    commit_system_us: f64,
    commit_tempi_us: f64,
    slowdown: f64,
    introspection_calls: u64,
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    for platform in Platform::ALL {
        for (label, obj) in fig6_set() {
            let b = commit_breakdown(platform, |ctx| obj.build(ctx)).expect("measurement");
            rows.push(Row {
                platform: platform.label(),
                object: label.clone(),
                create_us: b.create.as_us_f64(),
                commit_system_us: b.commit_system.as_us_f64(),
                commit_tempi_us: b.commit_tempi.as_us_f64(),
                slowdown: b.slowdown(),
                introspection_calls: b.introspection_calls,
            });
        }
    }

    println!("Fig. 6: type create + commit breakdown (virtual time)\n");
    let mut t = Table::new(&[
        "impl",
        "object",
        "create",
        "commit (system)",
        "commit (TEMPI)",
        "slowdown",
        "introspect calls",
    ]);
    for r in &rows {
        t.row(&[
            &r.platform,
            &r.object,
            &format!("{:.2} us", r.create_us),
            &format!("{:.2} us", r.commit_system_us),
            &format!("{:.2} us", r.commit_tempi_us),
            &format!("{:.1}x", r.slowdown),
            &r.introspection_calls,
        ]);
    }
    t.print();

    for platform in Platform::ALL {
        let s: Vec<f64> = rows
            .iter()
            .filter(|r| r.platform == platform.label())
            .map(|r| r.slowdown)
            .collect();
        let (lo, hi) = (
            s.iter().cloned().fold(f64::INFINITY, f64::min),
            s.iter().cloned().fold(0.0, f64::max),
        );
        println!(
            "\n{}: TEMPI commit slowdown {:.1}x - {:.1}x (paper: {})",
            platform.label(),
            lo,
            hi,
            match platform {
                Platform::Mvapich => "2.1x - 5.5x",
                Platform::OpenMpi => "3.5x - 6.8x",
                Platform::Summit => "4.2x - 11.6x",
            }
        );
    }
    tempi_bench::write_json("fig06", &rows);
}
