//! `check_bench`: the CI perf gate over the `bench_send` datatype zoo.
//!
//! Reads the fresh `BENCH_send.json` at the repository root (written by a
//! preceding `bench_send` run) and the committed
//! `results/BENCH_send.baseline.json`, and exits non-zero when any zoo
//! row got more than 10% slower on any timing column (see
//! [`tempi_bench::baseline`]). All times are virtual nanoseconds, so the
//! gate is deterministic — no flake budget needed.
//!
//! Bootstrap: an empty (`[]`) or absent baseline records the current rows
//! as the new baseline and passes. That is how the baseline is
//! (re-)captured after an intentional perf change: delete the file's
//! contents down to `[]`, re-run `bench_send` then `check_bench`, and
//! commit the rewritten baseline.
//!
//! Run: `cargo run --release -p tempi-bench --bin check_bench`

use tempi_bench::baseline::{compare, BenchRow, TOLERANCE};

fn read_rows(path: &str) -> Result<Vec<BenchRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let current_path = format!("{root}/BENCH_send.json");
    let baseline_path = format!("{root}/results/BENCH_send.baseline.json");

    let current = match read_rows(&current_path) {
        Ok(rows) if !rows.is_empty() => rows,
        Ok(_) => {
            eprintln!("check_bench: {current_path} is empty — run `bench_send` first");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("check_bench: {e} — run `bench_send` first");
            std::process::exit(1);
        }
    };
    let baseline = match std::fs::metadata(&baseline_path) {
        Ok(_) => match read_rows(&baseline_path) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("check_bench: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => Vec::new(),
    };

    if baseline.is_empty() {
        let s = serde_json::to_string_pretty(&current).expect("serializable rows");
        match std::fs::write(&baseline_path, s + "\n") {
            Ok(()) => println!(
                "check_bench: baseline was empty — recorded {} zoo rows to {baseline_path}; \
                 review and commit it",
                current.len()
            ),
            Err(e) => {
                eprintln!("check_bench: cannot bootstrap {baseline_path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    match compare(&baseline, &current) {
        Ok(regressions) if regressions.is_empty() => {
            println!(
                "check_bench: {} zoo rows within the {:.0}% budget of {baseline_path}",
                baseline.len(),
                (TOLERANCE - 1.0) * 100.0
            );
        }
        Ok(regressions) => {
            eprintln!(
                "check_bench: {} regression(s) beyond the {:.0}% budget:",
                regressions.len(),
                (TOLERANCE - 1.0) * 100.0
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            eprintln!(
                "if intentional, re-record the baseline (empty {baseline_path} to `[]`, \
                 re-run bench_send + check_bench, commit)"
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("check_bench: {e}");
            std::process::exit(1);
        }
    }
}
