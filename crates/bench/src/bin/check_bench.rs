//! `check_bench`: the CI perf gates over the `bench_send` datatype zoo
//! and the `bench_scale` scaling sweep.
//!
//! Reads the fresh `BENCH_send.json` / `BENCH_scale.json` at the
//! repository root (written by preceding `bench_send` / `bench_scale`
//! runs) and the committed `results/BENCH_*.baseline.json` copies, and
//! exits non-zero when any zoo row got more than 10% slower on any gated
//! timing column (see [`tempi_bench::baseline`]). All gated times are
//! virtual nanoseconds, so both gates are deterministic — no flake budget
//! needed. (`bench_scale`'s wall-clock column is reported but never
//! gated.)
//!
//! Bootstrap: an empty (`[]`) or absent baseline records the current rows
//! as the new baseline and passes. That is how a baseline is
//! (re-)captured after an intentional perf change: delete the file's
//! contents down to `[]`, re-run the bench bin then `check_bench`, and
//! commit the rewritten baseline.
//!
//! Run: `cargo run --release -p tempi-bench --bin check_bench`

use serde::{Deserialize, Serialize};
use tempi_bench::baseline::{compare, compare_scale, BenchRow, ScaleRow, TOLERANCE};

fn read_rows<T: Deserialize>(path: &str) -> Result<Vec<T>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Run one gate: load current + baseline rows, bootstrap an absent or
/// empty baseline, otherwise compare. Returns `Err(exit message)` on any
/// failure, `Ok(report line)` on pass.
fn gate<T, R>(
    label: &str,
    current_path: &str,
    baseline_path: &str,
    bench_bin: &str,
    check: impl Fn(&[T], &[T]) -> Result<Vec<R>, String>,
) -> Result<String, String>
where
    T: Deserialize + Serialize,
    R: std::fmt::Display,
{
    let current: Vec<T> = match read_rows(current_path) {
        Ok(rows) if !rows.is_empty() => rows,
        Ok(_) => return Err(format!("{current_path} is empty — run `{bench_bin}` first")),
        Err(e) => return Err(format!("{e} — run `{bench_bin}` first")),
    };
    let baseline: Vec<T> = match std::fs::metadata(baseline_path) {
        Ok(_) => read_rows(baseline_path)?,
        Err(_) => Vec::new(),
    };

    if baseline.is_empty() {
        let s = serde_json::to_string_pretty(&current).expect("serializable rows");
        return match std::fs::write(baseline_path, s + "\n") {
            Ok(()) => Ok(format!(
                "{label}: baseline was empty — recorded {} rows to {baseline_path}; \
                 review and commit it",
                current.len()
            )),
            Err(e) => Err(format!("cannot bootstrap {baseline_path}: {e}")),
        };
    }

    match check(&baseline, &current)? {
        regressions if regressions.is_empty() => Ok(format!(
            "{label}: {} rows within the {:.0}% budget of {baseline_path}",
            baseline.len(),
            (TOLERANCE - 1.0) * 100.0
        )),
        regressions => {
            let mut msg = format!(
                "{label}: {} regression(s) beyond the {:.0}% budget:\n",
                regressions.len(),
                (TOLERANCE - 1.0) * 100.0
            );
            for r in &regressions {
                msg.push_str(&format!("  {r}\n"));
            }
            msg.push_str(&format!(
                "if intentional, re-record the baseline (empty {baseline_path} to `[]`, \
                 re-run {bench_bin} + check_bench, commit)"
            ));
            Err(msg)
        }
    }
}

fn main() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut failed = false;
    for result in [
        gate::<BenchRow, _>(
            "check_bench[send]",
            &format!("{root}/BENCH_send.json"),
            &format!("{root}/results/BENCH_send.baseline.json"),
            "bench_send",
            compare,
        ),
        gate::<ScaleRow, _>(
            "check_bench[scale]",
            &format!("{root}/BENCH_scale.json"),
            &format!("{root}/results/BENCH_scale.baseline.json"),
            "bench_scale",
            compare_scale,
        ),
    ] {
        match result {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("check_bench: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
