//! `check_bench`: the CI perf gates over the `bench_send` datatype zoo,
//! the `bench_scale` scaling sweep, and the `check_guidelines`
//! performance-guidelines zoo.
//!
//! Reads the fresh `BENCH_<suite>.json` at the repository root (written
//! by the preceding `bench_send` / `bench_scale` / `check_guidelines`
//! run) and the committed `results/BENCH_<suite>.baseline.json` copy,
//! compares them through the shared [`tempi_bench::baseline`] comparator,
//! and exits non-zero when any row got slower than the suite tolerance
//! on any gated timing column or any gated *verdict* (the guideline
//! booleans) differs from the baseline. All gated times are virtual
//! nanoseconds, so every gate is deterministic — no flake budget needed.
//!
//! Bootstrap: an empty (`[]`) or absent baseline records the current rows
//! as the new baseline and passes. That is how a baseline is
//! (re-)captured after an intentional perf change: empty the file's
//! contents down to `[]`, re-run the bench bin then `check_bench`, and
//! commit the rewritten baseline.
//!
//! Run: `cargo run --release -p tempi-bench --bin check_bench [send|scale|guidelines ...]`
//! (no arguments = all three gates).

use tempi_bench::baseline::{compare_rows, BenchRow, GatedSuite, ScaleRow};
use tempi_bench::guidelines::GuidelineRow;

fn read_rows<T: GatedSuite>(path: &str) -> Result<Vec<T>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Run one gate: load current + baseline rows, bootstrap an absent or
/// empty baseline, otherwise compare. Returns `Err(exit message)` on any
/// failure, `Ok(report line)` on pass.
fn gate<T: GatedSuite>(root: &str, bench_bin: &str) -> Result<String, String> {
    let label = format!("check_bench[{}]", T::SUITE);
    let current_path = format!("{root}/BENCH_{}.json", T::SUITE);
    let baseline_path = format!("{root}/results/BENCH_{}.baseline.json", T::SUITE);
    let current: Vec<T> = match read_rows(&current_path) {
        Ok(rows) if !rows.is_empty() => rows,
        Ok(_) => return Err(format!("{current_path} is empty — run `{bench_bin}` first")),
        Err(e) => return Err(format!("{e} — run `{bench_bin}` first")),
    };
    let baseline: Vec<T> = match std::fs::metadata(&baseline_path) {
        Ok(_) => read_rows(&baseline_path)?,
        Err(_) => Vec::new(),
    };

    if baseline.is_empty() {
        let s = serde_json::to_string_pretty(&current).expect("serializable rows");
        return match std::fs::write(&baseline_path, s + "\n") {
            Ok(()) => Ok(format!(
                "{label}: baseline was empty — recorded {} rows to {baseline_path}; \
                 review and commit it",
                current.len()
            )),
            Err(e) => Err(format!("cannot bootstrap {baseline_path}: {e}")),
        };
    }

    match compare_rows(&baseline, &current)? {
        regressions if regressions.is_empty() => Ok(format!(
            "{label}: {} rows within the {:.0}% budget of {baseline_path}",
            baseline.len(),
            (T::TOLERANCE - 1.0) * 100.0
        )),
        regressions => {
            let mut msg = format!(
                "{label}: {} regression(s) beyond the {:.0}% budget:\n",
                regressions.len(),
                (T::TOLERANCE - 1.0) * 100.0
            );
            for r in &regressions {
                msg.push_str(&format!("  {r}\n"));
            }
            msg.push_str(&format!(
                "if intentional, re-record the baseline (empty {baseline_path} to `[]`, \
                 re-run {bench_bin} + check_bench, commit)"
            ));
            Err(msg)
        }
    }
}

fn main() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let selected: Vec<String> = std::env::args().skip(1).collect();
    let all = ["send", "scale", "guidelines"];
    for s in &selected {
        if !all.contains(&s.as_str()) {
            eprintln!("check_bench: unknown suite `{s}` (expected send, scale or guidelines)");
            std::process::exit(2);
        }
    }
    let run = |suite: &str| selected.is_empty() || selected.iter().any(|s| s == suite);

    let mut failed = false;
    let mut results = Vec::new();
    if run("send") {
        results.push(gate::<BenchRow>(root, "bench_send"));
    }
    if run("scale") {
        results.push(gate::<ScaleRow>(root, "bench_scale"));
    }
    if run("guidelines") {
        results.push(gate::<GuidelineRow>(root, "check_guidelines"));
    }
    for result in results {
        match result {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("check_bench: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
