//! `bench_scale`: the event-scheduler scaling sweep.
//!
//! The headline deliverable of the discrete-event runtime: world sizes
//! that the thread-per-rank backend could never reach. Two sweeps run on
//! the Summit profile:
//!
//! * **stencil** — the paper's 26-direction 3-D halo exchange
//!   ([`HaloExchanger`], packed with TEMPI, exchanged with the sparse
//!   `MPI_Alltoallv`) from 8 ranks up through 4,096, plus a 10,000-rank
//!   row proving the "10k ranks on a laptop" claim;
//! * **alltoallv** — the dense all-pairs `MPI_Alltoallv` (every rank
//!   exchanges a slice with every other rank) up through 1,024 ranks,
//!   where the O(size) argument arrays are the workload's own cost.
//!
//! Each row reports the *virtual* time of one steady-state exchange (the
//! slowest rank's, after one warm-up exchange and a clock-synchronizing
//! barrier) — deterministic, so `check_bench` gates on it — and the host
//! wall-clock of the whole world run, which is the scaling headline but
//! is never gated (it is the one noisy column).
//!
//! Rows go to `BENCH_scale.json` at the repository root (gate input, or
//! `--out DIR`; a failed write exits non-zero) and
//! `results/BENCH_scale.json` (report copy).
//!
//! Run: `cargo run --release -p tempi-bench --bin bench_scale [-- --out DIR]`

use std::time::Instant;

use mpi_sim::{World, WorldConfig};
use tempi_bench::{ScaleRow, Table};
use tempi_core::config::TempiConfig;
use tempi_core::interpose::InterposedMpi;
use tempi_stencil::{HaloConfig, HaloExchanger};

/// Stencil sweep sizes: powers of 8 through 4,096, then the 10,000-rank
/// headline row.
const STENCIL_RANKS: [usize; 5] = [8, 64, 512, 4_096, 10_000];

/// Dense alltoallv sweep sizes (the O(size²) message count keeps this
/// sweep at or below the paper's 1,024-GPU scale).
const ALLTOALLV_RANKS: [usize; 4] = [8, 64, 256, 1_024];

/// Bytes each rank exchanges with every peer in the dense sweep.
const ALLTOALLV_CHUNK: usize = 64;

/// One measured stencil world: warm-up exchange, barrier, measured
/// exchange. Returns the slowest rank's virtual exchange time in ns.
fn stencil_exchange_ns(ranks: usize) -> f64 {
    let cfg = WorldConfig::summit(ranks);
    let results = World::run(&cfg, |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(4))?;
        ex.fill(ctx)?;
        ex.exchange(ctx, &mut mpi)?; // warm-up: plans cached, pools warm
        ctx.barrier();
        let t = ex.exchange(ctx, &mut mpi)?;
        let bad = ex.verify_ghosts(ctx)?;
        assert_eq!(bad, 0, "rank {}: corrupt ghost cells", ctx.rank);
        Ok(t.total().as_ps())
    })
    .expect("stencil world");
    results.into_iter().max().expect("non-empty world") as f64 / 1e3
}

/// One measured dense-alltoallv world, same warm-up/barrier/measure
/// protocol as the stencil sweep.
fn alltoallv_exchange_ns(ranks: usize) -> f64 {
    let cfg = WorldConfig::summit(ranks);
    let results = World::run(&cfg, |ctx| {
        let n = ctx.size;
        let send = ctx.gpu.malloc(ALLTOALLV_CHUNK * n)?;
        let recv = ctx.gpu.malloc(ALLTOALLV_CHUNK * n)?;
        let counts = vec![ALLTOALLV_CHUNK; n];
        let displs: Vec<usize> = (0..n).map(|j| j * ALLTOALLV_CHUNK).collect();
        ctx.alltoallv_bytes(send, &counts, &displs, recv, &counts, &displs)?;
        ctx.barrier();
        let t0 = ctx.clock.now();
        ctx.alltoallv_bytes(send, &counts, &displs, recv, &counts, &displs)?;
        Ok((ctx.clock.now() - t0).as_ps())
    })
    .expect("alltoallv world");
    results.into_iter().max().expect("non-empty world") as f64 / 1e3
}

/// One sweep: workload label, rank counts, measurement entry point.
type Sweep = (&'static str, &'static [usize], fn(usize) -> f64);

fn main() {
    let mut rows: Vec<ScaleRow> = Vec::new();
    let mut t = Table::new(&["workload", "ranks", "exchange(virt)", "wall"]);
    let sweeps: [Sweep; 2] = [
        ("stencil", &STENCIL_RANKS, stencil_exchange_ns),
        ("alltoallv", &ALLTOALLV_RANKS, alltoallv_exchange_ns),
    ];
    for (workload, sizes, run) in sweeps {
        for &ranks in sizes {
            let wall = Instant::now();
            let exchange_ns = run(ranks);
            let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
            t.row(&[
                &workload,
                &ranks,
                &format!("{:.1} µs", exchange_ns / 1e3),
                &format!("{wall_ms:.0} ms"),
            ]);
            rows.push(ScaleRow {
                workload: workload.to_string(),
                ranks,
                exchange_ns,
                wall_ms,
            });
        }
    }
    t.print();

    let headline = rows
        .iter()
        .find(|r| r.workload == "stencil" && r.ranks == 10_000)
        .expect("10k stencil row");
    println!(
        "\n10,000-rank stencil exchange: {:.1} s wall-clock",
        headline.wall_ms / 1e3
    );
    assert!(
        headline.wall_ms < 60_000.0,
        "10,000-rank stencil exchange took {:.1} s — the acceptance bar is 60 s",
        headline.wall_ms / 1e3
    );

    let write = tempi_bench::out_dir_from_args(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .and_then(|out| tempi_bench::write_rows(&out, "BENCH_scale.json", &rows));
    match write {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("bench_scale: {e}");
            std::process::exit(1);
        }
    }
    tempi_bench::write_json("BENCH_scale", &rows);
}
