//! `bench_send`: the Fig. 11 datatype zoo under the online-calibrated
//! send-method tuner.
//!
//! For every 2-D object in the zoo (1 KiB / 1 MiB / 4 MiB totals across
//! contiguous block sizes) this measures the one-way typed delivery time
//! three ways:
//!
//! * **static** — `TEMPI_TUNER=off`: the §5 analytical model evaluated
//!   fresh on every send (the pre-tuner behavior);
//! * **tuned** — `TEMPI_TUNER=online`: the calibrated, memoized,
//!   epsilon-greedy tuner, which may also auto-select the §8 pipelined
//!   method with a bandwidth-crossover chunk size;
//! * **one-shot** — `MPI_Send` forced to the one-shot method (the
//!   single-method baseline the speedup column is quoted against).
//!
//! Each cell is the minimum over measured rounds after warm-up, so
//! epsilon-probe rounds report the converged choice (the paper's
//! steady-state methodology). The table goes to stdout and the rows to
//! `BENCH_send.json` at the repository root (or `--out DIR`); a failed
//! write exits non-zero so CI never gates on stale rows.
//!
//! Run: `cargo run --release -p tempi-bench --bin bench_send [-- --out DIR]`

use gpu_sim::SimTime;
use serde::Serialize;
use tempi_bench::{
    fmt_bytes, fmt_speedup, send_one_way_times, Construction, Obj2d, Platform, Table,
};
use tempi_core::config::{Method, TempiConfig, TunerMode};

const WARMUP: usize = 4;
const ROUNDS: usize = 8;

#[derive(Serialize)]
struct Row {
    object: String,
    object_bytes: usize,
    block_bytes: usize,
    method_static: String,
    method_tuned: String,
    static_ns: f64,
    tuned_ns: f64,
    oneshot_ns: f64,
    speedup_vs_oneshot: f64,
    tuned_vs_static: f64,
}

/// Minimum delivery time over the measured rounds, plus the method the
/// sender used on that minimal round.
fn measure(obj: Obj2d, config: TempiConfig) -> (SimTime, Option<Method>) {
    send_one_way_times(
        Platform::Summit,
        config,
        |ctx| obj.build(ctx, Construction::Hvector),
        obj.incount,
        obj.span(),
        WARMUP,
        ROUNDS,
    )
    .expect("send measurement")
    .into_iter()
    .min_by_key(|&(t, _)| t)
    .expect("at least one round")
}

fn zoo() -> Vec<Obj2d> {
    let mut v = Vec::new();
    for total in [1usize << 10, 1 << 20, 4 << 20] {
        let mut block = 8usize;
        while block < total {
            v.push(Obj2d {
                incount: 1,
                block,
                count: total / block,
                stride: block * 2,
            });
            block *= 8;
        }
        // fully contiguous
        v.push(Obj2d {
            incount: 1,
            block: total,
            count: 1,
            stride: total,
        });
    }
    v
}

fn main() {
    let mut rows = Vec::new();
    let mut t = Table::new(&[
        "object",
        "block",
        "static",
        "tuned",
        "one-shot",
        "m(static)",
        "m(tuned)",
        "vs 1shot",
        "vs static",
    ]);
    for obj in zoo() {
        let (stat_t, stat_m) = measure(
            obj,
            TempiConfig {
                tuner: TunerMode::Off,
                ..TempiConfig::default()
            },
        );
        let (tuned_t, tuned_m) = measure(
            obj,
            TempiConfig {
                tuner: TunerMode::Online,
                ..TempiConfig::default()
            },
        );
        let (oneshot_t, _) = measure(
            obj,
            TempiConfig {
                force_method: Some(Method::OneShot),
                tuner: TunerMode::Off,
                ..TempiConfig::default()
            },
        );
        let name = |m: Option<Method>| m.map_or("system".to_string(), |m| format!("{m:?}"));
        let speedup_vs_oneshot = oneshot_t.as_ns_f64() / tuned_t.as_ns_f64();
        let tuned_vs_static = stat_t.as_ns_f64() / tuned_t.as_ns_f64();
        t.row(&[
            &fmt_bytes(obj.total_bytes()),
            &fmt_bytes(obj.block),
            &format!("{stat_t}"),
            &format!("{tuned_t}"),
            &format!("{oneshot_t}"),
            &name(stat_m),
            &name(tuned_m),
            &fmt_speedup(speedup_vs_oneshot),
            &fmt_speedup(tuned_vs_static),
        ]);
        rows.push(Row {
            object: fmt_bytes(obj.total_bytes()),
            object_bytes: obj.total_bytes(),
            block_bytes: obj.block,
            method_static: name(stat_m),
            method_tuned: name(tuned_m),
            static_ns: stat_t.as_ns_f64(),
            tuned_ns: tuned_t.as_ns_f64(),
            oneshot_ns: oneshot_t.as_ns_f64(),
            speedup_vs_oneshot,
            tuned_vs_static,
        });
    }
    t.print();

    let best = rows
        .iter()
        .map(|r| r.tuned_vs_static)
        .fold(0.0f64, f64::max);
    println!("\nbest tuned-vs-static speedup: {}", fmt_speedup(best));

    // The tuner must not lose meaningfully to the static model on its own
    // zoo, and must find at least one staged/one-shot → pipelined
    // crossover worth ≥ 1.2× — the bar EXPERIMENTS.md quotes. NEAR_TIE
    // gives the tuner 2% of slack: its choice is the argmin of the
    // *calibrated model*, so on rows where two methods are within the
    // model's error (device vs pipelined at 2 blocks, say) it may pick
    // the one that measures a hair slower one-way. A real mis-selection
    // is far outside 2%; the gate below still catches regressions against
    // the committed baseline.
    const NEAR_TIE: f64 = 0.98;
    for r in &rows {
        assert!(
            r.tuned_vs_static >= NEAR_TIE - 1e-9,
            "tuned send lost to the static model on {} / block {}: {} ns vs {} ns",
            r.object,
            r.block_bytes,
            r.tuned_ns,
            r.static_ns
        );
    }
    assert!(
        best >= 1.2,
        "no zoo workload shows the >=1.2x pipelined crossover (best {best:.3}x)"
    );

    let write = tempi_bench::out_dir_from_args(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .and_then(|out| tempi_bench::write_rows(&out, "BENCH_send.json", &rows));
    match write {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("bench_send: {e}");
            std::process::exit(1);
        }
    }
    tempi_bench::write_json("BENCH_send", &rows);
}
