//! Ablation: the Section-5 method selection.
//!
//! Compares the model-driven choice against always-one-shot (prior work's
//! preference), always-device, and always-staged across object sizes and
//! block sizes. The model-driven send should never lose to either forced
//! strategy by more than measurement-noise, while each forced strategy has
//! a region where it loses badly — the paper's argument for the model.
//!
//! Run: `cargo run --release -p tempi-bench --bin ablation_method`

use serde::Serialize;
use tempi_bench::{fmt_bytes, send_pair_time, Construction, Mode, Obj2d, Platform, Table};
use tempi_core::config::{Method, TempiConfig};

#[derive(Serialize)]
struct Row {
    object_bytes: usize,
    block_bytes: usize,
    model_us: f64,
    oneshot_us: f64,
    device_us: f64,
    staged_us: f64,
    model_regret_pct: f64,
}

fn main() {
    println!("Ablation: model-driven method choice vs forced methods (send/recv pair)\n");
    let mut t = Table::new(&[
        "object",
        "block",
        "model",
        "one-shot",
        "device",
        "staged",
        "model regret",
    ]);
    let mut rows = Vec::new();
    for (total, block) in [
        (64usize << 10, 32usize),
        (64 << 10, 4096),
        (1 << 20, 16),
        (1 << 20, 8192),
        (4 << 20, 16),
        (4 << 20, 8192),
    ] {
        let obj = Obj2d {
            incount: 1,
            block,
            count: total / block,
            stride: block * 2,
        };
        let run = |force: Option<Method>| {
            send_pair_time(
                Platform::Summit,
                Mode::Tempi,
                TempiConfig {
                    force_method: force,
                    ..TempiConfig::default()
                },
                |ctx| obj.build(ctx, Construction::Vector),
                1,
                obj.span(),
            )
            .expect("send")
            .as_us_f64()
        };
        let model = run(None);
        let oneshot = run(Some(Method::OneShot));
        let device = run(Some(Method::Device));
        let staged = run(Some(Method::Staged));
        let best = oneshot.min(device).min(staged);
        let regret = (model / best - 1.0) * 100.0;
        t.row(&[
            &fmt_bytes(total),
            &fmt_bytes(block),
            &format!("{model:.1} us"),
            &format!("{oneshot:.1} us"),
            &format!("{device:.1} us"),
            &format!("{staged:.1} us"),
            &format!("{regret:.1}%"),
        ]);
        rows.push(Row {
            object_bytes: total,
            block_bytes: block,
            model_us: model,
            oneshot_us: oneshot,
            device_us: device,
            staged_us: staged,
            model_regret_pct: regret,
        });
    }
    t.print();
    println!(
        "\nthe model choice should track the per-row best; forced one-shot loses on\n\
         large strided objects, forced device loses on small contiguous ones"
    );
    tempi_bench::write_json("ablation_method", &rows);
}
