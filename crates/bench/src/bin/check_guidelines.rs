//! `check_guidelines`: the self-checking DDT performance-guidelines
//! harness (see [`tempi_bench::guidelines`]).
//!
//! Runs the expanded datatype zoo across all three vendor profiles with
//! TEMPI on and off, evaluates guidelines G1–G4 per (pattern, vendor)
//! cell, prints the cell table, and writes two artifacts to the output
//! directory (`--out DIR`, default repository root):
//!
//! * `BENCH_guidelines.json` — the structured per-cell rows
//!   (virtual-ns timings + verdicts + worst violation ratio), the input
//!   `check_bench guidelines` gates against the committed baseline;
//! * `BENCH_guidelines_violations.txt` — the human-readable worst-first
//!   violations report.
//!
//! Exit status: non-zero on any **G3** violation (TEMPI-on breaking a
//! guideline TEMPI-off satisfies — the regression the paper's thesis
//! forbids) or on any write failure. Off-side violations (a vendor
//! quirk breaking G1/G2 without TEMPI) are reported but do not fail the
//! run: they are the status quo the harness documents, and the
//! `check_bench` verdict gate pins them against silent drift.
//!
//! Tolerance: `TEMPI_GUIDELINE_TOL` (default 0.10 — see
//! `TempiConfig::guideline_tol`).
//!
//! Run: `cargo run --release -p tempi-bench --bin check_guidelines [--out DIR]`

use tempi_bench::guidelines::{render_report, run_zoo, violations};
use tempi_bench::{fmt_bytes, out_dir_from_args, write_rows, Table};
use tempi_core::config::TempiConfig;

fn main() {
    let out = match out_dir_from_args(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")) {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("check_guidelines: {e}");
            std::process::exit(2);
        }
    };
    let tol = match TempiConfig::from_env() {
        Ok(cfg) => cfg.guideline_tol,
        Err(e) => {
            eprintln!("check_guidelines: {e}");
            std::process::exit(2);
        }
    };

    let rows = match run_zoo(tol) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("check_guidelines: measurement failed: {e}");
            std::process::exit(1);
        }
    };

    let mut t = Table::new(&[
        "pattern",
        "vendor",
        "size",
        "plan",
        "ddt(off)",
        "ddt(on)",
        "pack(on)",
        "naive(on)",
        "verdicts",
        "worst",
    ]);
    for r in &rows {
        let verdicts = format!(
            "{}{}{}{}{}{}",
            if r.g1_off { '-' } else { '1' },
            if r.g2_off { '-' } else { '2' },
            if r.g1_on { '-' } else { '1' },
            if r.g2_on { '-' } else { '2' },
            if r.g3 { '-' } else { '3' },
            if r.g4 { '-' } else { '4' },
        );
        let verdicts = if r.clean() {
            "ok".to_string()
        } else {
            format!("viol[{verdicts}]")
        };
        t.row(&[
            &r.pattern,
            &r.vendor,
            &fmt_bytes(r.size_bytes),
            &r.plan,
            &format!("{:.0} ns", r.off_ddt_ns),
            &format!("{:.0} ns", r.on_ddt_ns),
            &format!("{:.0} ns", r.on_pack_send_ns),
            &format!("{:.0} ns", r.on_naive_ns),
            &verdicts,
            &format!("{:.2}x", r.worst_ratio),
        ]);
    }
    t.print();

    let report = render_report(&rows, tol);
    println!("\n{report}");

    let report_path = out.join("BENCH_guidelines_violations.txt");
    let writes = [
        write_rows(&out, "BENCH_guidelines.json", &rows),
        std::fs::write(&report_path, &report)
            .map(|()| report_path.clone())
            .map_err(|e| format!("cannot write {}: {e}", report_path.display())),
    ];
    for write in writes {
        match write {
            Ok(p) => eprintln!("wrote {}", p.display()),
            Err(e) => {
                eprintln!("check_guidelines: {e}");
                std::process::exit(1);
            }
        }
    }

    let g3: Vec<_> = violations(&rows)
        .into_iter()
        .filter(|v| v.guideline == "G3")
        .collect();
    if !g3.is_empty() {
        eprintln!(
            "check_guidelines: {} G3 violation(s) — TEMPI-on violates guidelines \
             TEMPI-off satisfies:",
            g3.len()
        );
        for v in &g3 {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!(
        "check_guidelines: no G3 violations across {} cells (tolerance {:.0}%)",
        rows.len(),
        tol * 100.0
    );
}
