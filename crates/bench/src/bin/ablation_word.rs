//! Ablation: the kernel word size `W`.
//!
//! TEMPI specializes each kernel to the largest GPU-native word that is
//! aligned to the object and divides `counts[0]` (§3.3). Forcing `W = 1`
//! quantifies what the wide loads buy across block sizes: nothing at tiny
//! blocks (coalescing dominates) and a substantial factor once blocks are
//! wide enough to be word-limited.
//!
//! Run: `cargo run --release -p tempi-bench --bin ablation_word`

use serde::Serialize;
use tempi_bench::{fmt_bytes, pack_time, Construction, Mode, Obj2d, Platform, Table};
use tempi_core::config::TempiConfig;

#[derive(Serialize)]
struct Row {
    block_bytes: usize,
    auto_word_us: f64,
    w1_us: f64,
    gain: f64,
}

fn main() {
    println!("Ablation: selected word size vs forced W=1 (1 MiB objects, TEMPI pack)\n");
    let mut t = Table::new(&["block", "auto W", "forced W=1", "gain"]);
    let mut rows = Vec::new();
    let total = 1usize << 20;
    for block in [4usize, 16, 64, 256, 1024, 4096, 16384] {
        let obj = Obj2d {
            incount: 1,
            block,
            count: total / block,
            stride: block * 2,
        };
        let auto = pack_time(
            Platform::Summit,
            Mode::Tempi,
            TempiConfig::default(),
            |ctx| obj.build(ctx, Construction::Vector),
            1,
            obj.span(),
        )
        .expect("auto");
        let w1 = pack_time(
            Platform::Summit,
            Mode::Tempi,
            TempiConfig {
                force_word: Some(1),
                ..TempiConfig::default()
            },
            |ctx| obj.build(ctx, Construction::Vector),
            1,
            obj.span(),
        )
        .expect("w1");
        let gain = w1.as_ns_f64() / auto.as_ns_f64();
        t.row(&[
            &fmt_bytes(block),
            &format!("{auto}"),
            &format!("{w1}"),
            &format!("{gain:.2}x"),
        ]);
        rows.push(Row {
            block_bytes: block,
            auto_word_us: auto.as_us_f64(),
            w1_us: w1.as_us_f64(),
            gain,
        });
    }
    t.print();
    tempi_bench::write_json("ablation_word", &rows);
}
