//! Fig. 10: measured vs modeled `MPI_Send` for the one-shot and device
//! packing strategies.
//!
//! For 1 MiB and 4 MiB 2-D objects across contiguous block sizes, runs an
//! actual two-rank ping-pong with the method *forced* to one-shot or
//! device (measured), and evaluates the Section-5 equations with the same
//! parameters (modeled). The paper's finding: at 1 MiB one-shot is faster;
//! at 4 MiB device is faster; the models track the measurements except for
//! very small blocks.
//!
//! Run: `cargo run --release -p tempi-bench --bin fig10`

use serde::Serialize;
use tempi_bench::{fmt_bytes, send_pair_time, Construction, Mode, Obj2d, Platform, Table};
use tempi_core::config::{Method, TempiConfig};
use tempi_core::model::SendModel;

#[derive(Serialize)]
struct Row {
    object_bytes: usize,
    block_bytes: usize,
    oneshot_measured_us: f64,
    oneshot_modeled_us: f64,
    device_measured_us: f64,
    device_modeled_us: f64,
    winner: &'static str,
}

fn main() {
    let model = SendModel::summit_internode();
    let mut rows = Vec::new();
    for total in [1usize << 20, 4 << 20] {
        println!(
            "\nFig. 10: send time for a {} object (measured | modeled)\n",
            fmt_bytes(total)
        );
        let mut t = Table::new(&[
            "block",
            "oneshot meas",
            "oneshot model",
            "device meas",
            "device model",
            "faster",
        ]);
        for block in [8usize, 32, 128, 512, 2048, 8192, 65536] {
            let obj = Obj2d {
                incount: 1,
                block,
                count: total / block,
                stride: block * 2,
            };
            let measure = |m: Method| {
                send_pair_time(
                    Platform::Summit,
                    Mode::Tempi,
                    TempiConfig {
                        force_method: Some(m),
                        ..TempiConfig::default()
                    },
                    |ctx| obj.build(ctx, Construction::Vector),
                    1,
                    obj.span(),
                )
                .expect("send")
                .as_us_f64()
            };
            let osh_meas = measure(Method::OneShot);
            let dev_meas = measure(Method::Device);
            // modeled with the plan's word size (same inputs TEMPI uses)
            let word =
                tempi_core::kernels::select_word(&tempi_core::ir::strided_block::StridedBlock {
                    start: 0,
                    counts: vec![block as i64, (total / block) as i64],
                    strides: vec![1, (block * 2) as i64],
                });
            let osh_model = model.t_oneshot(total, block, word).total().as_us_f64();
            let dev_model = model.t_device(total, block, word).total().as_us_f64();
            let winner = if dev_meas < osh_meas {
                "device"
            } else {
                "oneshot"
            };
            t.row(&[
                &format!("{block} B"),
                &format!("{osh_meas:.1} us"),
                &format!("{osh_model:.1} us"),
                &format!("{dev_meas:.1} us"),
                &format!("{dev_model:.1} us"),
                &winner,
            ]);
            rows.push(Row {
                object_bytes: total,
                block_bytes: block,
                oneshot_measured_us: osh_meas,
                oneshot_modeled_us: osh_model,
                device_measured_us: dev_meas,
                device_modeled_us: dev_model,
                winner,
            });
        }
        t.print();
    }
    println!(
        "\npaper: one-shot wins the 1 MiB object, device wins the 4 MiB object;\n\
         models track measurements except at very small blocks"
    );
    tempi_bench::write_json("fig10", &rows);
}
