//! Fig. 11: time of an `MPI_Send`/`MPI_Recv` pair for 1 KiB / 1 MiB /
//! 4 MiB 2-D objects across contiguous block sizes — TEMPI (model-chosen
//! method) vs the system baseline.
//!
//! The paper's range: speedup 1.07× (large contiguous) to 59,000× (large
//! objects of small blocks).
//!
//! Run: `cargo run --release -p tempi-bench --bin fig11`

use serde::Serialize;
use tempi_bench::{
    fmt_bytes, fmt_speedup, send_pair_time, Construction, Mode, Obj2d, Platform, Table,
};
use tempi_core::config::TempiConfig;

#[derive(Serialize)]
struct Row {
    object_bytes: usize,
    block_bytes: usize,
    tempi_us: f64,
    system_us: f64,
    speedup: f64,
}

fn main() {
    let mut rows = Vec::new();
    for total in [1usize << 10, 1 << 20, 4 << 20] {
        println!(
            "\nFig. 11: send/recv pair time, {} 2-D objects\n",
            fmt_bytes(total)
        );
        let mut t = Table::new(&["block", "TEMPI", "Spectrum MPI", "speedup"]);
        let mut block = 8usize;
        while block <= total {
            let obj = if block == total {
                Obj2d {
                    incount: 1,
                    block,
                    count: 1,
                    stride: block,
                }
            } else {
                Obj2d {
                    incount: 1,
                    block,
                    count: total / block,
                    stride: block * 2,
                }
            };
            let run = |mode: Mode| {
                send_pair_time(
                    Platform::Summit,
                    mode,
                    TempiConfig::default(),
                    |ctx| obj.build(ctx, Construction::Hvector),
                    1,
                    obj.span(),
                )
                .expect("send pair")
            };
            let tempi = run(Mode::Tempi);
            let system = run(Mode::System);
            let speedup = system.as_ns_f64() / tempi.as_ns_f64();
            t.row(&[
                &format!("{block} B"),
                &format!("{tempi}"),
                &format!("{system}"),
                &fmt_speedup(speedup),
            ]);
            rows.push(Row {
                object_bytes: total,
                block_bytes: block,
                tempi_us: tempi.as_us_f64(),
                system_us: system.as_us_f64(),
                speedup,
            });
            block *= 8;
        }
        t.print();
    }
    let max = rows.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
    let min = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    println!(
        "\nspeedup range {} - {} (paper: 1.07x - 59,000x)",
        fmt_speedup(min),
        fmt_speedup(max)
    );
    tempi_bench::write_json("fig11", &rows);
}
