//! # tempi-bench — figure/table regeneration harness
//!
//! Shared machinery for the `fig*`, `table1` and `ablation_*` binaries in
//! `src/bin/`: the paper's workload objects ([`workloads`]), deterministic
//! virtual-time measurement entry points ([`measure`]), and table/JSON
//! reporting ([`report`]). See `EXPERIMENTS.md` at the repository root for
//! the per-figure index and recorded results.

#![warn(missing_docs)]

pub mod baseline;
pub mod guidelines;
pub mod measure;
pub mod report;
pub mod workloads;

pub use baseline::{compare_rows, BenchRow, GatedSuite, Regression, ScaleRow, TOLERANCE};
pub use guidelines::{evaluate, run_zoo, run_zoo_on, CellTimes, GuidelineRow, Violation};
pub use measure::{
    commit_breakdown, pack_time, send_one_way_times, send_pair_time, trimean, Mode, Platform,
};
pub use report::{fmt_bytes, fmt_speedup, out_dir_from_args, write_json, write_rows, Table};
pub use workloads::{fig6_set, Construction, Fig6Object, Obj2d, Obj3d, ZooPattern};
