//! Measurement harness: deterministic virtual-time measurements of pack,
//! commit, and send operations across platforms and interposition modes.

use gpu_sim::SimTime;
use mpi_sim::{Datatype, MpiResult, RankCtx, VendorProfile, World, WorldConfig};
use serde::{Deserialize, Serialize};
use tempi_core::config::{Method, TempiConfig};
use tempi_core::interpose::InterposedMpi;

/// The paper's three experimental platforms (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// MVAPICH2 2.3.4 on the GTX-1070 workstation.
    Mvapich,
    /// OpenMPI 4.0.5 on the GTX-1070 workstation.
    OpenMpi,
    /// Spectrum MPI 10.3.1.2 on OLCF Summit (V100).
    Summit,
}

impl Platform {
    /// All platforms in the paper's reporting order.
    pub const ALL: [Platform; 3] = [Platform::Mvapich, Platform::OpenMpi, Platform::Summit];

    /// The paper's abbreviation (mv / op / sp).
    pub fn label(self) -> &'static str {
        match self {
            Platform::Mvapich => "mv",
            Platform::OpenMpi => "op",
            Platform::Summit => "sp",
        }
    }

    /// World configuration for `size` ranks.
    pub fn world(self, size: usize) -> WorldConfig {
        match self {
            Platform::Mvapich => WorldConfig::workstation(size, VendorProfile::mvapich()),
            Platform::OpenMpi => WorldConfig::workstation(size, VendorProfile::openmpi()),
            Platform::Summit => WorldConfig::summit(size),
        }
    }
}

/// Tukey's trimean, the paper's reported statistic:
/// `(Q1 + 2·median + Q3) / 4`.
pub fn trimean(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let idx = p * (samples.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        samples[lo] * (1.0 - frac) + samples[hi] * frac
    };
    (q(0.25) + 2.0 * q(0.5) + q(0.75)) / 4.0
}

/// Interposition mode of a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// TEMPI in the link order.
    Tempi,
    /// Plain system MPI.
    System,
}

fn mpi_for(mode: Mode, config: TempiConfig) -> InterposedMpi {
    match mode {
        Mode::Tempi => InterposedMpi::new(config),
        Mode::System => InterposedMpi::system_only(),
    }
}

/// Measure one `MPI_Pack` of `incount` items of the type `build` creates,
/// from a device buffer spanning `span` bytes into a device buffer of the
/// packed size. The measurement is steady-state: one warm-up pack runs
/// first (plans cached, pools warm), matching the paper's trimean-of-many
/// methodology.
pub fn pack_time(
    platform: Platform,
    mode: Mode,
    config: TempiConfig,
    build: impl FnOnce(&mut RankCtx) -> MpiResult<Datatype>,
    incount: usize,
    span: usize,
) -> MpiResult<SimTime> {
    let cfg = platform.world(1);
    let mut ctx = RankCtx::standalone(&cfg);
    let mut mpi = mpi_for(mode, config);
    let dt = build(&mut ctx)?;
    mpi.type_commit(&mut ctx, dt)?;
    let total = mpi.pack_size(&mut ctx, incount, dt)?;
    let src = ctx.gpu.malloc(span.max(1))?;
    let dst = ctx.gpu.malloc(total.max(1))?;
    // warm-up
    let mut pos = 0;
    mpi.pack(&mut ctx, src, incount, dt, dst, total, &mut pos)?;
    // measured
    let t0 = ctx.clock.now();
    let mut pos = 0;
    mpi.pack(&mut ctx, src, incount, dt, dst, total, &mut pos)?;
    Ok(ctx.clock.now() - t0)
}

/// Measure one `MPI_Unpack` (mirror of [`pack_time`]).
pub fn unpack_time(
    platform: Platform,
    mode: Mode,
    config: TempiConfig,
    build: impl FnOnce(&mut RankCtx) -> MpiResult<Datatype>,
    incount: usize,
    span: usize,
) -> MpiResult<SimTime> {
    let cfg = platform.world(1);
    let mut ctx = RankCtx::standalone(&cfg);
    let mut mpi = mpi_for(mode, config);
    let dt = build(&mut ctx)?;
    mpi.type_commit(&mut ctx, dt)?;
    let total = mpi.pack_size(&mut ctx, incount, dt)?;
    let packed = ctx.gpu.malloc(total.max(1))?;
    let out = ctx.gpu.malloc(span.max(1))?;
    let mut pos = 0;
    mpi.unpack(&mut ctx, packed, total, &mut pos, out, incount, dt)?;
    let t0 = ctx.clock.now();
    let mut pos = 0;
    mpi.unpack(&mut ctx, packed, total, &mut pos, out, incount, dt)?;
    Ok(ctx.clock.now() - t0)
}

/// Create/commit breakdown for Fig. 6: virtual time of the `MPI_Type_*`
/// construction calls, and of `MPI_Type_commit` (native-only vs with TEMPI
/// interposed).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CommitBreakdown {
    /// Time in the constructor calls.
    pub create: SimTime,
    /// Native (system) commit time.
    pub commit_system: SimTime,
    /// Commit time with TEMPI interposed (native + translation +
    /// canonicalization + kernel selection).
    pub commit_tempi: SimTime,
    /// Introspection calls TEMPI's translation made.
    pub introspection_calls: u64,
}

impl CommitBreakdown {
    /// TEMPI commit slowdown vs native (Fig. 6's headline ratios).
    pub fn slowdown(&self) -> f64 {
        self.commit_tempi.as_ns_f64() / self.commit_system.as_ns_f64()
    }
}

/// Measure the Fig. 6 breakdown for one construction on one platform.
pub fn commit_breakdown(
    platform: Platform,
    build: impl Fn(&mut RankCtx) -> MpiResult<Datatype>,
) -> MpiResult<CommitBreakdown> {
    // create + native commit
    let cfg = platform.world(1);
    let mut ctx = RankCtx::standalone(&cfg);
    let t0 = ctx.clock.now();
    let dt = build(&mut ctx)?;
    let create = ctx.clock.now() - t0;
    let mut sys = InterposedMpi::system_only();
    let t0 = ctx.clock.now();
    sys.type_commit(&mut ctx, dt)?;
    let commit_system = ctx.clock.now() - t0;

    // fresh world: create + TEMPI commit
    let mut ctx = RankCtx::standalone(&cfg);
    let dt = build(&mut ctx)?;
    let mut tempi = InterposedMpi::new(TempiConfig::default());
    let t0 = ctx.clock.now();
    tempi.type_commit(&mut ctx, dt)?;
    let commit_tempi = ctx.clock.now() - t0;
    let introspection_calls = tempi
        .tempi
        .plan(dt)
        .map(|p| p.report.introspection_calls)
        .unwrap_or(0);
    Ok(CommitBreakdown {
        create,
        commit_system,
        commit_tempi,
        introspection_calls,
    })
}

/// Half ping-pong time of an `MPI_Send`/`MPI_Recv` pair of `incount` items
/// of the built type between two ranks on different nodes (Fig. 11's
/// metric), steady state.
pub fn send_pair_time(
    platform: Platform,
    mode: Mode,
    config: TempiConfig,
    build: impl Fn(&mut RankCtx) -> MpiResult<Datatype> + Sync,
    incount: usize,
    span: usize,
) -> MpiResult<SimTime> {
    let mut cfg = platform.world(2);
    cfg.net.ranks_per_node = 1; // both experiments place ranks on separate nodes
    let config = &config;
    let build = &build;
    let results = World::run(&cfg, move |ctx| {
        let mut mpi = mpi_for(mode, config.clone());
        let dt = build(ctx)?;
        mpi.type_commit(ctx, dt)?;
        let buf = ctx.gpu.malloc(span.max(1))?;
        let peer = 1 - ctx.rank;
        let round = |ctx: &mut RankCtx, mpi: &mut InterposedMpi| -> MpiResult<()> {
            if ctx.rank == 0 {
                mpi.send(ctx, buf, incount, dt, peer, 0)?;
                mpi.recv(ctx, buf, incount, dt, Some(peer), Some(0))?;
            } else {
                mpi.recv(ctx, buf, incount, dt, Some(peer), Some(0))?;
                mpi.send(ctx, buf, incount, dt, peer, 0)?;
            }
            Ok(())
        };
        // warm-up (plans, pools), then synchronize clocks and measure
        round(ctx, &mut mpi)?;
        ctx.barrier();
        let t0 = ctx.clock.now();
        round(ctx, &mut mpi)?;
        Ok((ctx.clock.now() - t0).as_ps())
    })?;
    // half of the rank-0 round trip
    Ok(SimTime::from_ps(results[0] / 2))
}

/// One-way typed delivery times (rank 0 → rank 1 on separate nodes),
/// `rounds` measured rounds after `warmup` unmeasured ones, one barrier per
/// round so the clocks re-synchronize and every round is independent.
///
/// Each element is `(delivery time, method rank 0 chose that round)`. The
/// caller typically takes the *minimum* over rounds: with the online tuner
/// active, individual rounds may be epsilon-probes of a deliberately
/// non-optimal method, and the minimum reports the converged choice — the
/// same way the paper's trimean-of-thousands reports steady state.
#[allow(clippy::too_many_arguments)]
pub fn send_one_way_times(
    platform: Platform,
    config: TempiConfig,
    build: impl Fn(&mut RankCtx) -> MpiResult<Datatype> + Sync,
    incount: usize,
    span: usize,
    warmup: usize,
    rounds: usize,
) -> MpiResult<Vec<(SimTime, Option<Method>)>> {
    assert!(rounds > 0);
    let mut cfg = platform.world(2);
    cfg.net.ranks_per_node = 1;
    let config = &config;
    let build = &build;
    let results = World::run(&cfg, move |ctx| {
        let mut mpi = InterposedMpi::new(config.clone());
        let dt = build(ctx)?;
        mpi.type_commit(ctx, dt)?;
        let buf = ctx.gpu.malloc(span.max(1))?;
        let one =
            |ctx: &mut RankCtx, mpi: &mut InterposedMpi| -> MpiResult<(u64, Option<Method>)> {
                ctx.barrier();
                if ctx.rank == 0 {
                    let m = mpi.send(ctx, buf, incount, dt, 1, 0)?;
                    Ok((0, m))
                } else {
                    let t0 = ctx.clock.now();
                    mpi.recv(ctx, buf, incount, dt, Some(0), Some(0))?;
                    Ok(((ctx.clock.now() - t0).as_ps(), None))
                }
            };
        for _ in 0..warmup {
            one(ctx, &mut mpi)?;
        }
        let mut out = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            out.push(one(ctx, &mut mpi)?);
        }
        Ok(out)
    })?;
    // times come from the receiving rank, methods from the sending rank
    Ok(results[1]
        .iter()
        .zip(&results[0])
        .map(|(&(ps, _), &(_, m))| (SimTime::from_ps(ps), m))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{Construction, Obj2d};

    #[test]
    fn trimean_basics() {
        assert_eq!(trimean(&mut [5.0]), 5.0);
        assert_eq!(trimean(&mut [1.0, 2.0, 3.0, 100.0]), 8.5);
        // robust to one outlier relative to the mean
        let mut xs = vec![10.0, 10.0, 10.0, 10.0, 1000.0];
        assert!(trimean(&mut xs) < 20.0);
    }

    #[test]
    fn pack_time_tempi_beats_system_everywhere() {
        let obj = Obj2d {
            incount: 1,
            block: 16,
            count: 64,
            stride: 32,
        };
        for p in Platform::ALL {
            let t = pack_time(
                p,
                Mode::Tempi,
                TempiConfig::default(),
                |ctx| obj.build(ctx, Construction::Hvector),
                1,
                obj.span(),
            )
            .unwrap();
            let s = pack_time(
                p,
                Mode::System,
                TempiConfig::default(),
                |ctx| obj.build(ctx, Construction::Hvector),
                1,
                obj.span(),
            )
            .unwrap();
            assert!(t < s, "{p:?}: tempi {t} vs system {s}");
        }
    }

    #[test]
    fn commit_breakdown_shows_tempi_slowdown() {
        let obj = Obj2d {
            incount: 1,
            block: 100,
            count: 13,
            stride: 256,
        };
        for p in Platform::ALL {
            let b = commit_breakdown(p, |ctx| obj.build(ctx, Construction::Subarray)).unwrap();
            assert!(b.create > SimTime::ZERO);
            assert!(b.commit_tempi > b.commit_system, "{p:?}");
            // Fig. 6: slowdowns are single-digit to low-double-digit
            let s = b.slowdown();
            assert!(s > 1.5 && s < 20.0, "{p:?} slowdown {s}");
            assert!(b.introspection_calls > 0);
        }
    }

    #[test]
    fn summit_commit_slowdown_exceeds_mvapich() {
        // Fig. 6: TEMPI overhead is priced through each vendor's
        // introspection costs — Summit (Spectrum) is the slowest.
        let obj = Obj2d {
            incount: 1,
            block: 100,
            count: 13,
            stride: 256,
        };
        let mv = commit_breakdown(Platform::Mvapich, |ctx| {
            obj.build(ctx, Construction::Vector)
        })
        .unwrap();
        let sp =
            commit_breakdown(Platform::Summit, |ctx| obj.build(ctx, Construction::Vector)).unwrap();
        assert!(sp.commit_tempi - sp.commit_system > mv.commit_tempi - mv.commit_system);
    }

    #[test]
    fn one_way_tuned_never_loses_to_static() {
        use tempi_core::config::TunerMode;
        let obj = Obj2d {
            incount: 1,
            block: 64,
            count: 256,
            stride: 128,
        };
        let run = |tuner: TunerMode| {
            send_one_way_times(
                Platform::Summit,
                TempiConfig {
                    tuner,
                    ..TempiConfig::default()
                },
                |ctx| obj.build(ctx, Construction::Vector),
                1,
                obj.span(),
                4,
                8,
            )
            .unwrap()
            .into_iter()
            .map(|(t, _)| t)
            .min()
            .unwrap()
        };
        let stat = run(TunerMode::Off);
        let tuned = run(TunerMode::Online);
        assert!(tuned <= stat, "tuned {tuned} vs static {stat}");
    }

    #[test]
    fn send_pair_time_tempi_wins_for_strided() {
        let obj = Obj2d {
            incount: 1,
            block: 64,
            count: 512,
            stride: 128,
        };
        let t = send_pair_time(
            Platform::Summit,
            Mode::Tempi,
            TempiConfig::default(),
            |ctx| obj.build(ctx, Construction::Vector),
            1,
            obj.span(),
        )
        .unwrap();
        let s = send_pair_time(
            Platform::Summit,
            Mode::System,
            TempiConfig::default(),
            |ctx| obj.build(ctx, Construction::Vector),
            1,
            obj.span(),
        )
        .unwrap();
        assert!(t < s, "tempi {t} vs system {s}");
    }
}
