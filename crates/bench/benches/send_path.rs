//! Host-side microbenchmarks of the send hot path.
//!
//! Three variants of a 2-rank strided send, measured in *wall-clock* time
//! (the simulator's host cost, not virtual time — virtual-time comparisons
//! live in `bench_send`):
//!
//! * `cold_plan`  — a fresh `InterposedMpi` per round: type commit, plan
//!   build, buffer-pool population, launch-geometry computation all on the
//!   measured path;
//! * `cached_plan` — one warm library, steady rounds: plan cache, buffer
//!   pool and launch cache all hot (the zero-allocation path);
//! * `tuned_bucket` — the same steady rounds with the online tuner active:
//!   adds the per-bucket decision lookup and EWMA observations.
//!
//! Before timing anything, this asserts the cached path's zero-allocation
//! property via `TempiStats`: across steady rounds, `pool_fresh_allocs`
//! must not move while `pool_hits` and `launch_cache_hits` do.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use mpi_sim::consts::MPI_BYTE;
use mpi_sim::{MpiResult, RankCtx, World, WorldConfig};
use tempi_core::config::{TempiConfig, TunerMode};
use tempi_core::interpose::InterposedMpi;
use tempi_core::tempi::TempiStats;

fn world() -> WorldConfig {
    let mut cfg = WorldConfig::summit(2);
    cfg.net.ranks_per_node = 1;
    cfg
}

fn ping_pong(
    ctx: &mut RankCtx,
    mpi: &mut InterposedMpi,
    buf: gpu_sim::GpuPtr,
    dt: mpi_sim::Datatype,
) -> MpiResult<()> {
    let peer = 1 - ctx.rank;
    if ctx.rank == 0 {
        mpi.send(ctx, buf, 1, dt, peer, 0)?;
        mpi.recv(ctx, buf, 1, dt, Some(peer), Some(0))?;
    } else {
        mpi.recv(ctx, buf, 1, dt, Some(peer), Some(0))?;
        mpi.send(ctx, buf, 1, dt, peer, 0)?;
    }
    Ok(())
}

/// `rounds` steady ping-pong rounds after `warmup` unmeasured ones, on a
/// persistent library instance. Returns rank 0's wall-clock time for the
/// measured loop plus its stats snapshots around it.
fn steady(tuner: TunerMode, warmup: usize, rounds: u64) -> (Duration, TempiStats, TempiStats) {
    let results = World::run(&world(), move |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig {
            tuner,
            ..TempiConfig::default()
        });
        let dt = ctx.type_vector(64, 16, 64, MPI_BYTE)?;
        mpi.type_commit(ctx, dt)?;
        let buf = ctx.gpu.malloc(64 * 64 + 64)?;
        for _ in 0..warmup {
            ping_pong(ctx, &mut mpi, buf, dt)?;
        }
        let warm = mpi.tempi.stats;
        let start = Instant::now();
        for _ in 0..rounds {
            ping_pong(ctx, &mut mpi, buf, dt)?;
        }
        Ok((start.elapsed(), warm, mpi.tempi.stats))
    })
    .expect("steady world");
    results.into_iter().next().expect("rank 0")
}

/// `rounds` rounds where every round pays the cold costs: a fresh library,
/// a fresh type commit, an empty buffer pool.
fn cold(rounds: u64) -> Duration {
    let results = World::run(&world(), move |ctx| {
        let buf = ctx.gpu.malloc(64 * 64 + 64)?;
        let start = Instant::now();
        for _ in 0..rounds {
            let mut mpi = InterposedMpi::new(TempiConfig::default());
            let dt = ctx.type_vector(64, 16, 64, MPI_BYTE)?;
            mpi.type_commit(ctx, dt)?;
            ping_pong(ctx, &mut mpi, buf, dt)?;
        }
        Ok(start.elapsed())
    })
    .expect("cold world");
    results.into_iter().next().expect("rank 0")
}

fn bench_send_path(c: &mut Criterion) {
    // The property the cached path exists for: steady-state sends perform
    // zero fresh allocations and reuse the cached launch geometry.
    let (_, warm, done) = steady(TunerMode::Model, 2, 10);
    assert_eq!(
        done.pool_fresh_allocs, warm.pool_fresh_allocs,
        "steady-state sends must not allocate"
    );
    assert!(
        done.pool_hits >= warm.pool_hits + 10,
        "steady-state sends must come from the pool"
    );
    assert!(
        done.launch_cache_hits > warm.launch_cache_hits,
        "steady-state sends must reuse cached launch geometry"
    );

    let mut g = c.benchmark_group("send_path");
    g.sample_size(10);
    g.bench_function("cold_plan", |b| b.iter_custom(cold));
    g.bench_function("cached_plan", |b| {
        b.iter_custom(|iters| steady(TunerMode::Model, 2, iters).0)
    });
    g.bench_function("tuned_bucket", |b| {
        b.iter_custom(|iters| steady(TunerMode::Online, 2, iters).0)
    });
    g.finish();
}

criterion_group!(benches, bench_send_path);
criterion_main!(benches);
