//! Host-side microbenchmarks of the send hot path.
//!
//! Three variants of a 2-rank strided send, measured in *wall-clock* time
//! (the simulator's host cost, not virtual time — virtual-time comparisons
//! live in `bench_send`):
//!
//! * `cold_plan`  — a fresh `InterposedMpi` per round: type commit, plan
//!   build, buffer-pool population, launch-geometry computation all on the
//!   measured path;
//! * `cached_plan` — one warm library, steady rounds: plan cache, buffer
//!   pool and launch cache all hot (the zero-allocation path);
//! * `tuned_bucket` — the same steady rounds with the online tuner active:
//!   adds the per-bucket decision lookup and EWMA observations.
//!
//! Before timing anything, this asserts the cached path's zero-allocation
//! property via `TempiStats`: across steady rounds, `pool_fresh_allocs`
//! must not move while `pool_hits` and `launch_cache_hits` do — and that
//! the property survives an attached-but-off tracer (`TEMPI_TRACE=off`),
//! which must record zero events. A fourth benchmark variant
//! (`cached_plan_traced`) runs the same steady rounds under
//! `TEMPI_TRACE=full` so the recording overhead stays visible.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use mpi_sim::consts::MPI_BYTE;
use mpi_sim::{MpiResult, RankCtx, World, WorldConfig};
use tempi_core::config::{TempiConfig, TunerMode};
use tempi_core::interpose::InterposedMpi;
use tempi_core::tempi::TempiStats;
use tempi_core::{TraceLevel, Tracer};

fn world(tracer: &Tracer) -> WorldConfig {
    let mut cfg = WorldConfig::summit(2);
    cfg.net.ranks_per_node = 1;
    cfg.with_tracer(tracer.clone())
}

fn ping_pong(
    ctx: &mut RankCtx,
    mpi: &mut InterposedMpi,
    buf: gpu_sim::GpuPtr,
    dt: mpi_sim::Datatype,
) -> MpiResult<()> {
    let peer = 1 - ctx.rank;
    if ctx.rank == 0 {
        mpi.send(ctx, buf, 1, dt, peer, 0)?;
        mpi.recv(ctx, buf, 1, dt, Some(peer), Some(0))?;
    } else {
        mpi.recv(ctx, buf, 1, dt, Some(peer), Some(0))?;
        mpi.send(ctx, buf, 1, dt, peer, 0)?;
    }
    Ok(())
}

/// `rounds` steady ping-pong rounds after `warmup` unmeasured ones, on a
/// persistent library instance with `tracer` attached to the world.
/// Returns rank 0's wall-clock time for the measured loop plus its stats
/// snapshots around it.
fn steady(
    tuner: TunerMode,
    tracer: &Tracer,
    warmup: usize,
    rounds: u64,
) -> (Duration, TempiStats, TempiStats) {
    let results = World::run(&world(tracer), move |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig {
            tuner,
            ..TempiConfig::default()
        });
        let dt = ctx.type_vector(64, 16, 64, MPI_BYTE)?;
        mpi.type_commit(ctx, dt)?;
        let buf = ctx.gpu.malloc(64 * 64 + 64)?;
        for _ in 0..warmup {
            ping_pong(ctx, &mut mpi, buf, dt)?;
        }
        let warm = mpi.tempi.stats;
        let start = Instant::now();
        for _ in 0..rounds {
            ping_pong(ctx, &mut mpi, buf, dt)?;
        }
        Ok((start.elapsed(), warm, mpi.tempi.stats))
    })
    .expect("steady world");
    results.into_iter().next().expect("rank 0")
}

/// `rounds` rounds where every round pays the cold costs: a fresh library,
/// a fresh type commit, an empty buffer pool.
fn cold(rounds: u64) -> Duration {
    let results = World::run(&world(&Tracer::off()), move |ctx| {
        let buf = ctx.gpu.malloc(64 * 64 + 64)?;
        let start = Instant::now();
        for _ in 0..rounds {
            let mut mpi = InterposedMpi::new(TempiConfig::default());
            let dt = ctx.type_vector(64, 16, 64, MPI_BYTE)?;
            mpi.type_commit(ctx, dt)?;
            ping_pong(ctx, &mut mpi, buf, dt)?;
        }
        Ok(start.elapsed())
    })
    .expect("cold world");
    results.into_iter().next().expect("rank 0")
}

fn bench_send_path(c: &mut Criterion) {
    // The property the cached path exists for: steady-state sends perform
    // zero fresh allocations and reuse the cached launch geometry — with
    // an off tracer attached (TEMPI_TRACE=off), which must stay invisible:
    // zero events recorded, zero extra allocations.
    let off = Tracer::new(TraceLevel::Off);
    let (_, warm, done) = steady(TunerMode::Model, &off, 2, 10);
    assert_eq!(
        off.event_count(),
        0,
        "an off tracer must record nothing on the send path"
    );
    assert_eq!(
        done.pool_fresh_allocs, warm.pool_fresh_allocs,
        "steady-state sends must not allocate"
    );
    assert!(
        done.pool_hits >= warm.pool_hits + 10,
        "steady-state sends must come from the pool"
    );
    assert!(
        done.launch_cache_hits > warm.launch_cache_hits,
        "steady-state sends must reuse cached launch geometry"
    );

    // Full tracing records spans but must not disturb the buffer-pool
    // steady state: the hot path stays allocation-free even while traced.
    let full = Tracer::new(TraceLevel::Full);
    let (_, twarm, tdone) = steady(TunerMode::Model, &full, 2, 10);
    assert!(
        full.event_count() > 0,
        "a full tracer must capture the steady send rounds"
    );
    assert_eq!(
        tdone.pool_fresh_allocs, twarm.pool_fresh_allocs,
        "tracing must not put allocations back on the steady send path"
    );

    let mut g = c.benchmark_group("send_path");
    g.sample_size(10);
    g.bench_function("cold_plan", |b| b.iter_custom(cold));
    g.bench_function("cached_plan", |b| {
        b.iter_custom(|iters| steady(TunerMode::Model, &Tracer::off(), 2, iters).0)
    });
    g.bench_function("tuned_bucket", |b| {
        b.iter_custom(|iters| steady(TunerMode::Online, &Tracer::off(), 2, iters).0)
    });
    g.bench_function("cached_plan_traced", |b| {
        b.iter_custom(|iters| steady(TunerMode::Model, &Tracer::new(TraceLevel::Full), 2, iters).0)
    });
    g.finish();
}

criterion_group!(benches, bench_send_path);
criterion_main!(benches);
