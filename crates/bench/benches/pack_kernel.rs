//! Wall-clock throughput of the functional packing machinery — the real
//! bytes the simulator moves per second of host CPU time when executing
//! TEMPI's strided kernels versus the baseline copy-per-block loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpi_sim::consts::MPI_BYTE;
use mpi_sim::{RankCtx, WorldConfig};
use std::hint::black_box;
use tempi_core::config::TempiConfig;
use tempi_core::interpose::InterposedMpi;

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi_pack_1mib");
    let total = 1usize << 20;
    for &block in &[64usize, 1024, 16384] {
        let count = total / block;
        group.throughput(Throughput::Bytes(total as u64));
        for (name, interposed) in [("tempi", true), ("system", false)] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("block{block}")),
                &block,
                |b, _| {
                    let mut ctx = RankCtx::standalone(&WorldConfig::summit(1));
                    let mut mpi = if interposed {
                        InterposedMpi::new(TempiConfig::default())
                    } else {
                        InterposedMpi::system_only()
                    };
                    let dt = ctx
                        .type_vector(count as i32, block as i32, (block * 2) as i32, MPI_BYTE)
                        .unwrap();
                    mpi.type_commit(&mut ctx, dt).unwrap();
                    let src = ctx.gpu.malloc(total * 2).unwrap();
                    let dst = ctx.gpu.malloc(total).unwrap();
                    b.iter(|| {
                        let mut pos = 0;
                        mpi.pack(&mut ctx, black_box(src), 1, dt, dst, total, &mut pos)
                            .unwrap();
                        black_box(pos)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pack);
criterion_main!(benches);
