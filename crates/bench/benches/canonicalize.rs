//! Wall-clock throughput of TEMPI's commit pipeline pieces: translation
//! (Algs. 1–4), canonicalization (Algs. 5–7), and StridedBlock conversion
//! (Alg. 8). These run on the CPU in the real library too, so — unlike the
//! virtual-time figures — these numbers are directly meaningful.

use criterion::{criterion_group, criterion_main, Criterion};
use mpi_sim::consts::MPI_BYTE;
use mpi_sim::datatype::Order;
use mpi_sim::{Datatype, TypeRegistry};
use std::hint::black_box;
use tempi_core::ir::strided_block::strided_block;
use tempi_core::ir::transform::simplify;
use tempi_core::ir::translate::{translate, translate_strided};

fn zoo(reg: &mut TypeRegistry) -> Vec<Datatype> {
    let plane = reg
        .type_create_subarray(&[512, 256], &[13, 100], &[0, 0], Order::C, MPI_BYTE)
        .unwrap();
    let c1 = reg.type_vector(47, 1, 1, plane).unwrap();
    let row = reg.type_vector(100, 1, 1, MPI_BYTE).unwrap();
    let p2 = reg.type_create_hvector(13, 1, 256, row).unwrap();
    let c2 = reg.type_create_hvector(47, 1, 256 * 512, p2).unwrap();
    let c3 = reg
        .type_create_subarray(
            &[1024, 512, 256],
            &[47, 13, 100],
            &[0, 0, 0],
            Order::C,
            MPI_BYTE,
        )
        .unwrap();
    vec![c1, c2, c3]
}

fn bench_pipeline(c: &mut Criterion) {
    let mut reg = TypeRegistry::new();
    let types = zoo(&mut reg);

    c.bench_function("translate_fig2_zoo", |b| {
        b.iter(|| {
            for &dt in &types {
                black_box(translate(&mut reg, black_box(dt)).unwrap());
            }
        })
    });

    let trees: Vec<_> = types
        .iter()
        .map(|&dt| translate_strided(&mut reg, dt).unwrap())
        .collect();
    c.bench_function("simplify_fig2_zoo", |b| {
        b.iter(|| {
            for t in &trees {
                black_box(simplify(black_box(t.clone())));
            }
        })
    });

    let canon: Vec<_> = trees.iter().map(|t| simplify(t.clone()).0).collect();
    c.bench_function("strided_block_fig2_zoo", |b| {
        b.iter(|| {
            for t in &canon {
                black_box(strided_block(black_box(t)));
            }
        })
    });

    c.bench_function("full_commit_pipeline", |b| {
        b.iter(|| {
            for &dt in &types {
                let t = translate_strided(&mut reg, black_box(dt)).unwrap();
                let (canon, _) = simplify(t);
                black_box(strided_block(&canon));
            }
        })
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
