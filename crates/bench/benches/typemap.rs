//! Wall-clock cost of typemap flattening (the semantics oracle) — the
//! operation baseline implementations effectively perform per pack, and
//! the term TEMPI's canonical representation avoids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpi_sim::consts::MPI_BYTE;
use mpi_sim::datatype::typemap::segments;
use mpi_sim::datatype::Order;
use mpi_sim::TypeRegistry;
use std::hint::black_box;

fn bench_segments(c: &mut Criterion) {
    let mut group = c.benchmark_group("segments");
    for &count in &[64usize, 1024, 16384] {
        let mut reg = TypeRegistry::new();
        let v = reg.type_vector(count as i32, 16, 64, MPI_BYTE).unwrap();
        group.bench_with_input(BenchmarkId::new("vector", count), &count, |b, _| {
            b.iter(|| black_box(segments(&reg, black_box(v)).unwrap()))
        });
    }
    let mut reg = TypeRegistry::new();
    let cuboid = reg
        .type_create_subarray(
            &[256, 128, 64],
            &[100, 50, 32],
            &[2, 2, 2],
            Order::C,
            MPI_BYTE,
        )
        .unwrap();
    group.bench_function("subarray_3d_100x50", |b| {
        b.iter(|| black_box(segments(&reg, black_box(cuboid)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_segments);
criterion_main!(benches);
