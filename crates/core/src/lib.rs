//! # tempi-core — TEMPI: Topology Experiments for MPI (reproduction)
//!
//! The paper's primary contribution, implemented on the simulated
//! substrates of [`gpu_sim`] and [`mpi_sim`]:
//!
//! * [`ir`] — the canonical datatype representation: translation of MPI
//!   derived types to a `DenseData`/`StreamData` tree (Algorithms 1–4),
//!   canonicalization by dense folding + stream elision to a fixed point
//!   (Algorithms 5–7), and conversion to the `StridedBlock` kernel
//!   parameterization (Algorithm 8).
//! * [`kernels`] — kernel selection (word size `W`, power-of-two block
//!   dimensions X→Z under the 1024-thread cap) and execution of the 2-D /
//!   3-D / N-D strided kernels, the block-list kernel, and the
//!   `cudaMemcpy2D` DMA alternative.
//! * [`model`] — the Section-5 performance model (`T_device`,
//!   `T_oneshot`, `T_staged`) and the per-send method choice.
//! * [`tempi`] — the library state: the `MPI_Type_commit` pipeline with
//!   its per-type plan cache, interposed `MPI_Pack`/`MPI_Unpack`, and
//!   datatype-accelerated `MPI_Send`/`MPI_Recv` over intermediate pooled
//!   buffers ([`buffers`]).
//! * [`interpose`] — the Section-4 architecture: a symbol-resolution
//!   table deciding, per MPI entry point, whether TEMPI or the system MPI
//!   serves the call, with automatic fall-through.
//! * [`tuner`] — the online calibration layer: per-bucket EWMA ratios of
//!   measured to modeled component times, epsilon-greedy re-probing, and
//!   memoized per-(shape, size, peer) method decisions feeding [`tempi`]'s
//!   zero-allocation hot send path.
//!
//! ## Quickstart
//!
//! ```
//! use mpi_sim::{RankCtx, WorldConfig, consts::MPI_BYTE};
//! use tempi_core::interpose::InterposedMpi;
//! use tempi_core::config::TempiConfig;
//!
//! let mut ctx = RankCtx::standalone(&WorldConfig::summit(1));
//! let mut mpi = InterposedMpi::new(TempiConfig::default());
//!
//! // a 2-D strided object: 13 rows of 100 bytes in a 256-byte pitch
//! let dt = ctx.type_vector(13, 100, 256, MPI_BYTE).unwrap();
//! mpi.type_commit(&mut ctx, dt).unwrap();
//!
//! let src = ctx.gpu.malloc(13 * 256).unwrap();
//! let dst = ctx.gpu.malloc(1300).unwrap();
//! let mut position = 0;
//! mpi.pack(&mut ctx, src, 1, dt, dst, 1300, &mut position).unwrap();
//! assert_eq!(position, 1300);
//! ```

#![warn(missing_docs)]

pub mod buffers;
pub mod config;
pub mod interpose;
pub mod ir;
pub mod kernels;
pub mod model;
pub mod tempi;
pub mod tuner;

pub use config::{Method, TempiConfig, TunerMode};
pub use interpose::{InterposedMpi, Linker, MpiSymbol, Provider};
pub use model::{Breakdown, SendModel};
pub use tempi::{CommitReport, PlanKind, Tempi, TempiStats, TypePlan};
pub use tempi_trace::{TraceLevel, Tracer};
pub use tuner::{BucketKey, Decision, Tuner, Workload};
