//! Intermediate-buffer pool.
//!
//! Datatype-accelerated sends need scratch buffers — device buffers for the
//! "device" method, mapped host buffers for "one-shot", pinned buffers for
//! "staged". `cudaMalloc`/`cudaHostAlloc` cost ~100 µs each, so TEMPI (like
//! the real library) retains and reuses them; after warm-up, steady-state
//! sends pay nothing for allocation. The paper's methodology (trimean over
//! thousands of repetitions) measures exactly this steady state.

use gpu_sim::{GpuPtr, MemSpace};
use mpi_sim::{MpiResult, RankCtx};

/// Size-tracked free lists per address space.
#[derive(Default)]
pub struct BufferPool {
    device: Vec<(GpuPtr, usize)>,
    mapped: Vec<(GpuPtr, usize)>,
    pinned: Vec<(GpuPtr, usize)>,
    /// Fresh allocations performed (for tests/reporting).
    pub fresh_allocs: u64,
    /// Takes satisfied from the pool without allocating. Together with
    /// [`BufferPool::fresh_allocs`] this gives the reuse rate the
    /// steady-state ("zero allocation") assertion checks.
    pub hits: u64,
    /// Buffers handed out and not yet returned (takes minus puts). Every
    /// code path is expected to `put` what it `take`s — even on error —
    /// so at teardown this must be zero; the chaos leak oracle checks it.
    outstanding: u64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    fn list(&mut self, space: MemSpace) -> Option<&mut Vec<(GpuPtr, usize)>> {
        match space {
            MemSpace::Device => Some(&mut self.device),
            MemSpace::Mapped => Some(&mut self.mapped),
            MemSpace::Pinned => Some(&mut self.pinned),
            // The pool never manages pageable host buffers.
            MemSpace::Host => None,
        }
    }

    /// Take a buffer of at least `len` bytes in `space`, reusing a pooled
    /// one when possible (best fit). A fresh allocation charges the
    /// cudaMalloc overhead to the rank's clock.
    pub fn take(
        &mut self,
        ctx: &mut RankCtx,
        space: MemSpace,
        len: usize,
    ) -> MpiResult<(GpuPtr, usize)> {
        let Some(list) = self.list(space) else {
            return Err(mpi_sim::MpiError::InvalidArg(
                "the buffer pool does not manage pageable host buffers".to_string(),
            ));
        };
        // best fit: smallest pooled buffer that is large enough
        let mut best: Option<usize> = None;
        for (i, &(_, sz)) in list.iter().enumerate() {
            if sz >= len && best.is_none_or(|b| sz < list[b].1) {
                best = Some(i);
            }
        }
        if let Some(i) = best {
            let hit = list.swap_remove(i);
            self.hits += 1;
            self.outstanding += 1;
            Self::trace_take(ctx, space, len, true);
            return Ok(hit);
        }
        self.fresh_allocs += 1;
        ctx.clock.advance(ctx.stream.cost_model().alloc_overhead);
        let ptr = match space {
            MemSpace::Device => ctx.gpu.malloc(len)?,
            MemSpace::Mapped => ctx.gpu.mapped_alloc(len)?,
            MemSpace::Pinned => ctx.gpu.pinned_alloc(len)?,
            MemSpace::Host => {
                return Err(mpi_sim::MpiError::InvalidArg(
                    "the buffer pool does not manage pageable host buffers".to_string(),
                ))
            }
        };
        Self::trace_take(ctx, space, len, false);
        self.outstanding += 1;
        Ok((ptr, len))
    }

    /// Return a buffer taken with [`BufferPool::take`]. Buffers in spaces
    /// the pool does not manage are silently dropped (it never hands such
    /// buffers out, so nothing is lost).
    pub fn put(&mut self, ptr: GpuPtr, size: usize) {
        if let Some(list) = self.list(ptr.space) {
            list.push((ptr, size));
            self.outstanding = self.outstanding.saturating_sub(1);
        }
    }

    /// Number of buffers currently pooled across all spaces.
    pub fn pooled(&self) -> usize {
        self.device.len() + self.mapped.len() + self.pinned.len()
    }

    /// Buffers currently handed out and not yet [`BufferPool::put`] back.
    /// Non-zero at teardown means some send path leaked scratch space —
    /// one of the chaos invariant oracles.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// One `pool.take` instant on the rank's CPU lane (recorded only at
    /// [`tempi_trace::TraceLevel::Full`]; the arguments are materialized
    /// after that check, so the hot path never formats anything).
    fn trace_take(ctx: &RankCtx, space: MemSpace, len: usize, hit: bool) {
        ctx.tracer.debug_instant(
            ctx.world_rank as u32,
            tempi_trace::LANE_CPU,
            "tempi",
            "pool.take",
            ctx.clock.now().as_ps(),
            || {
                vec![
                    ("space", format!("{space:?}").into()),
                    ("len", len.into()),
                    ("hit", hit.into()),
                ]
            },
        );
    }
}

/// Take-with-RAII is deliberately not provided: the pool is owned by the
/// `Tempi` state which also owns the operations using the buffer, so a
/// guard would fight the borrow checker for no robustness gain; call sites
/// are short and `put` unconditionally.
#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::WorldConfig;

    fn ctx() -> RankCtx {
        RankCtx::standalone(&WorldConfig::summit(1))
    }

    #[test]
    fn fresh_alloc_charges_overhead_then_reuse_is_free() {
        let mut ctx = ctx();
        let mut pool = BufferPool::new();
        let t0 = ctx.clock.now();
        let (p, sz) = pool.take(&mut ctx, MemSpace::Device, 4096).unwrap();
        assert_eq!(sz, 4096);
        let alloc_cost = ctx.clock.now() - t0;
        assert_eq!(alloc_cost, ctx.stream.cost_model().alloc_overhead);
        pool.put(p, sz);

        let t1 = ctx.clock.now();
        let (p2, sz2) = pool.take(&mut ctx, MemSpace::Device, 1024).unwrap();
        assert_eq!(ctx.clock.now(), t1, "reuse must be free");
        assert_eq!((p2, sz2), (p, 4096));
        assert_eq!(pool.fresh_allocs, 1);
        assert_eq!(pool.hits, 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ctx = ctx();
        let mut pool = BufferPool::new();
        let (a, asz) = pool.take(&mut ctx, MemSpace::Mapped, 1 << 20).unwrap();
        let (b, bsz) = pool.take(&mut ctx, MemSpace::Mapped, 4096).unwrap();
        pool.put(a, asz);
        pool.put(b, bsz);
        let (got, gsz) = pool.take(&mut ctx, MemSpace::Mapped, 2048).unwrap();
        assert_eq!((got, gsz), (b, 4096));
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn outstanding_counts_takes_minus_puts() {
        let mut ctx = ctx();
        let mut pool = BufferPool::new();
        let (a, asz) = pool.take(&mut ctx, MemSpace::Device, 64).unwrap();
        let (b, bsz) = pool.take(&mut ctx, MemSpace::Device, 64).unwrap();
        assert_eq!(pool.outstanding(), 2);
        pool.put(a, asz);
        assert_eq!(pool.outstanding(), 1, "one buffer still out is a leak");
        pool.put(b, bsz);
        assert_eq!(pool.outstanding(), 0);
        // reuse path counts too
        let (c, csz) = pool.take(&mut ctx, MemSpace::Device, 64).unwrap();
        assert_eq!((pool.hits, pool.outstanding()), (1, 1));
        pool.put(c, csz);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn too_small_pooled_buffers_are_not_reused() {
        let mut ctx = ctx();
        let mut pool = BufferPool::new();
        let (a, asz) = pool.take(&mut ctx, MemSpace::Pinned, 64).unwrap();
        pool.put(a, asz);
        let (b, _) = pool.take(&mut ctx, MemSpace::Pinned, 128).unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.fresh_allocs, 2);
    }

    #[test]
    fn spaces_are_segregated() {
        let mut ctx = ctx();
        let mut pool = BufferPool::new();
        let (d, dsz) = pool.take(&mut ctx, MemSpace::Device, 256).unwrap();
        pool.put(d, dsz);
        let (m, _) = pool.take(&mut ctx, MemSpace::Mapped, 256).unwrap();
        assert_ne!(d, m);
        assert_eq!(m.space, MemSpace::Mapped);
    }
}
