//! TEMPI's internal representation of datatypes (paper Section 3.1).
//!
//! A [`Type`] is a tree whose nodes carry [`TypeData`]:
//!
//! * [`DenseData`] — a run of contiguous bytes (the role MPI named types
//!   play); leaf nodes.
//! * [`StreamData`] — a strided sequence of `count` elements of the single
//!   child type, `stride` bytes apart, starting `off` bytes from the
//!   parent's origin.
//!
//! Every composition of contiguous / vector / hvector / subarray types
//! translates to such a tree ([`translate`]); canonicalization
//! ([`transform`]) then collapses equivalent trees to an identical form,
//! which converts to the [`strided_block::StridedBlock`] the packing
//! kernels consume.

pub mod strided_block;
pub mod transform;
pub mod translate;

use std::fmt;

use serde::{Deserialize, Serialize};

/// A contiguous run of bytes (paper §3.1, "DenseData").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DenseData {
    /// Bytes between the lower bound and the first byte of the run.
    pub off: i64,
    /// Number of contiguous bytes.
    pub extent: i64,
}

/// A strided sequence of elements of the child type (paper §3.1,
/// "StreamData").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamData {
    /// Bytes between the lower bound and the first element.
    pub off: i64,
    /// Bytes between consecutive elements.
    pub stride: i64,
    /// Number of elements.
    pub count: i64,
}

/// Discriminated node payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeData {
    /// Contiguous bytes; leaf.
    Dense(DenseData),
    /// Strided repetition of the child.
    Stream(StreamData),
}

/// A node of the IR tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Type {
    /// Node payload.
    pub data: TypeData,
    /// Children (empty for Dense; exactly one for Stream in well-formed
    /// trees).
    pub children: Vec<Type>,
}

impl Type {
    /// A dense leaf.
    pub fn dense(off: i64, extent: i64) -> Type {
        Type {
            data: TypeData::Dense(DenseData { off, extent }),
            children: Vec::new(),
        }
    }

    /// A stream node over one child.
    pub fn stream(off: i64, stride: i64, count: i64, child: Type) -> Type {
        Type {
            data: TypeData::Stream(StreamData { off, stride, count }),
            children: vec![child],
        }
    }

    /// Is this node dense?
    pub fn is_dense(&self) -> bool {
        matches!(self.data, TypeData::Dense(_))
    }

    /// The single child of a stream node, if well-formed.
    pub fn child(&self) -> Option<&Type> {
        self.children.first()
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(Type::node_count).sum::<usize>()
    }

    /// Depth of the tree (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Type::depth).max().unwrap_or(0)
    }

    /// Total bytes of data the type denotes (product of stream counts times
    /// leaf extents).
    pub fn data_bytes(&self) -> i64 {
        match self.data {
            TypeData::Dense(d) => d.extent,
            TypeData::Stream(s) => {
                s.count * self.children.iter().map(Type::data_bytes).sum::<i64>()
            }
        }
    }

    /// Is the tree a well-formed chain: streams with exactly one child
    /// each, terminated by a dense leaf? (Translation of the strided
    /// constructors always produces chains; Alg. 8 requires one.)
    pub fn is_chain(&self) -> bool {
        match self.data {
            TypeData::Dense(_) => self.children.is_empty(),
            TypeData::Stream(_) => self.children.len() == 1 && self.children[0].is_chain(),
        }
    }
}

impl fmt::Display for Type {
    /// Renders like the paper's Fig. 2 annotations, parent above child.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &Type, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for _ in 0..depth {
                write!(f, "  ")?;
            }
            match t.data {
                TypeData::Dense(d) => {
                    writeln!(f, "DenseData{{offset:{}, extent:{}}}", d.off, d.extent)?
                }
                TypeData::Stream(s) => writeln!(
                    f,
                    "StreamData{{offset:{}, count:{}, stride:{}}}",
                    s.off, s.count, s.stride
                )?,
            }
            for c in &t.children {
                go(c, depth + 1, f)?;
            }
            Ok(())
        }
        go(self, 0, f)
    }
}

/// A flat list of `(offset, length)` byte runs — the representation TEMPI
/// uses for indexed-family types that are not nested strided patterns
/// (paper §8 extension; prior work reduces *everything* to this, TEMPI only
/// what cannot be expressed as a [`strided_block::StridedBlock`]).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BlockList {
    /// `(byte offset from origin, length)` in typemap order.
    pub blocks: Vec<(i64, u64)>,
}

impl BlockList {
    /// Total data bytes.
    pub fn data_bytes(&self) -> u64 {
        self.blocks.iter().map(|&(_, l)| l).sum()
    }

    /// Largest contiguous block.
    pub fn max_block(&self) -> u64 {
        self.blocks.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_tree() -> Type {
        // cuboid: 47 planes × 13 rows × 100 bytes in a 256×512×1024 alloc
        Type::stream(0, 131072, 47, Type::stream(0, 256, 13, Type::dense(0, 100)))
    }

    #[test]
    fn constructors_and_shape() {
        let t = fig2_tree();
        assert!(t.is_chain());
        assert!(!t.is_dense());
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.data_bytes(), 47 * 13 * 100);
    }

    #[test]
    fn display_matches_paper_layout() {
        let s = format!("{}", fig2_tree());
        assert!(s.contains("StreamData{offset:0, count:47, stride:131072}"));
        assert!(s.contains("  StreamData{offset:0, count:13, stride:256}"));
        assert!(s.contains("    DenseData{offset:0, extent:100}"));
    }

    #[test]
    fn non_chain_detected() {
        let mut t = fig2_tree();
        t.children.push(Type::dense(0, 4));
        assert!(!t.is_chain());
    }

    #[test]
    fn blocklist_stats() {
        let b = BlockList {
            blocks: vec![(0, 8), (100, 16), (50, 4)],
        };
        assert_eq!(b.data_bytes(), 28);
        assert_eq!(b.max_block(), 16);
        assert_eq!(BlockList::default().max_block(), 0);
    }

    #[test]
    fn dense_leaf_data_bytes() {
        assert_eq!(Type::dense(10, 64).data_bytes(), 64);
    }
}
