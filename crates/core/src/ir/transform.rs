//! Type transformation: canonicalizing the IR tree (paper §3.2,
//! Algorithms 5–7).
//!
//! Two rewrites run to a fixed point:
//!
//! * **Dense folding** (Alg. 6, Fig. 3): a `Stream` whose `Dense` child's
//!   extent equals the stream's stride is a larger contiguous run — replace
//!   the pair with one `Dense` of `count × stride` bytes.
//! * **Stream elision** (Alg. 7, Fig. 4): a `Stream` of a single element
//!   contributes nothing — remove it, folding its offset into its child.
//!
//! One deliberate strengthening over the paper's pseudocode: Alg. 7 as
//! printed elides only count-1 *children* of a stream, which leaves a
//! count-1 node at the *root* (e.g. `MPI_Type_vector(1, E0, 1, …)`)
//! uncanonicalized and would make equivalent constructions select
//! different kernels. We elide count-1 stream nodes wherever they appear,
//! adding the node's offset to its child — semantically identical, and
//! required for the paper's own claim that equivalent objects get equal
//! treatment.

use super::{DenseData, Type, TypeData};

/// Dense folding (Algorithm 6), applied bottom-up across the whole tree.
/// Returns the rewritten tree and whether anything changed.
pub fn dense_folding(mut ty: Type) -> (Type, bool) {
    let mut changed = false;
    // fold from the bottom up
    ty.children = ty
        .children
        .into_iter()
        .map(|c| {
            let (c, ch) = dense_folding(c);
            changed |= ch;
            c
        })
        .collect();

    let TypeData::Stream(p) = ty.data else {
        return (ty, changed);
    };
    if ty.children.len() != 1 {
        return (ty, changed);
    }
    let TypeData::Dense(c) = ty.children[0].data else {
        return (ty, changed);
    };
    if c.extent == p.stride && c.extent > 0 {
        // replace the pair with one larger dense run
        let folded = Type {
            data: TypeData::Dense(DenseData {
                off: p.off + c.off,
                extent: p.count * p.stride,
            }),
            children: Vec::new(),
        };
        return (folded, true);
    }
    (ty, changed)
}

/// Stream elision (Algorithm 7, strengthened as documented above), applied
/// bottom-up. Returns the rewritten tree and whether anything changed.
pub fn stream_elision(mut ty: Type) -> (Type, bool) {
    let mut changed = false;
    ty.children = ty
        .children
        .into_iter()
        .map(|c| {
            let (c, ch) = stream_elision(c);
            changed |= ch;
            c
        })
        .collect();

    if let TypeData::Stream(s) = ty.data {
        if s.count == 1 && ty.children.len() == 1 {
            // a single-element stream is its child, shifted by the
            // stream's offset
            let mut child = ty.children.pop().expect("len checked");
            match &mut child.data {
                TypeData::Dense(d) => d.off += s.off,
                TypeData::Stream(cs) => cs.off += s.off,
            }
            return (child, true);
        }
    }
    (ty, changed)
}

/// The fixed-point driver (Algorithm 5): alternate folding and elision
/// until neither changes the tree. Returns the canonical tree and the
/// number of passes taken.
pub fn simplify(mut ty: Type) -> (Type, usize) {
    let mut passes = 0;
    loop {
        passes += 1;
        let (t1, c1) = dense_folding(ty);
        let (t2, c2) = stream_elision(t1);
        ty = t2;
        if !c1 && !c2 {
            return (ty, passes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_contiguous_of_named() {
        // Fig. 3: Stream{stride 4, count 100} over Dense{extent 4} →
        // Dense{extent 400}
        let t = Type::stream(0, 4, 100, Type::dense(0, 4));
        let (t, changed) = dense_folding(t);
        assert!(changed);
        assert_eq!(t, Type::dense(0, 400));
    }

    #[test]
    fn fold_accumulates_offsets() {
        let t = Type::stream(8, 4, 10, Type::dense(3, 4));
        let (t, _) = dense_folding(t);
        assert_eq!(t, Type::dense(11, 40));
    }

    #[test]
    fn fold_requires_exact_stride_match() {
        let t = Type::stream(0, 8, 10, Type::dense(0, 4)); // holes: no fold
        let (t2, changed) = dense_folding(t.clone());
        assert!(!changed);
        assert_eq!(t2, t);
    }

    #[test]
    fn fold_cascades_up_the_tree() {
        // contiguous(4, contiguous(8, BYTE)): two foldable levels
        let t = Type::stream(0, 8, 4, Type::stream(0, 1, 8, Type::dense(0, 1)));
        let (t, passes) = simplify(t);
        assert_eq!(t, Type::dense(0, 32));
        assert!(passes <= 3);
    }

    #[test]
    fn elide_count_one_child() {
        // Fig. 4: vector with blocklength 1 produces an inner count-1 stream
        let t = Type::stream(0, 256, 13, Type::stream(0, 1, 1, Type::dense(0, 1)));
        let (t, changed) = stream_elision(t);
        assert!(changed);
        assert_eq!(t, Type::stream(0, 256, 13, Type::dense(0, 1)));
    }

    #[test]
    fn elide_count_one_root() {
        // vector(1, E0, 1, FLOAT): root stream has count 1 — the
        // strengthened rule removes it
        let t = Type::stream(0, 4, 1, Type::stream(0, 4, 100, Type::dense(0, 4)));
        let (t, _) = simplify(t);
        assert_eq!(t, Type::dense(0, 400));
    }

    #[test]
    fn elision_preserves_offset() {
        let t = Type::stream(64, 1, 1, Type::dense(3, 8));
        let (t, changed) = stream_elision(t);
        assert!(changed);
        assert_eq!(t, Type::dense(67, 8));
    }

    #[test]
    fn elision_preserves_offset_onto_stream_child() {
        let t = Type::stream(64, 999, 1, Type::stream(8, 16, 4, Type::dense(0, 4)));
        let (t, _) = stream_elision(t);
        assert_eq!(t, Type::stream(72, 16, 4, Type::dense(0, 4)));
    }

    #[test]
    fn fig2_all_three_constructions_converge() {
        // The three translated trees from Fig. 2 (asserted in translate.rs)
        // must all canonicalize to the identical form.
        let top = Type::stream(
            0,
            131072,
            47,
            Type::stream(
                0,
                131072,
                1,
                Type::stream(0, 256, 13, Type::stream(0, 1, 100, Type::dense(0, 1))),
            ),
        );
        let middle = Type::stream(
            0,
            131072,
            47,
            Type::stream(
                0,
                3172,
                1,
                Type::stream(
                    0,
                    256,
                    13,
                    Type::stream(0, 100, 1, Type::stream(0, 1, 100, Type::dense(0, 1))),
                ),
            ),
        );
        let bottom = Type::stream(
            0,
            131072,
            47,
            Type::stream(0, 256, 13, Type::stream(0, 1, 100, Type::dense(0, 1))),
        );
        let want = Type::stream(0, 131072, 47, Type::stream(0, 256, 13, Type::dense(0, 100)));
        assert_eq!(simplify(top).0, want);
        assert_eq!(simplify(middle).0, want);
        assert_eq!(simplify(bottom).0, want);
    }

    #[test]
    fn simplify_is_idempotent() {
        let t = Type::stream(
            0,
            131072,
            47,
            Type::stream(0, 256, 13, Type::stream(0, 1, 100, Type::dense(0, 1))),
        );
        let (once, _) = simplify(t);
        let (twice, passes) = simplify(once.clone());
        assert_eq!(once, twice);
        assert_eq!(passes, 1); // second run makes no changes
    }

    #[test]
    fn canonical_form_preserves_data_bytes() {
        let t = Type::stream(
            0,
            131072,
            47,
            Type::stream(
                0,
                3172,
                1,
                Type::stream(
                    0,
                    256,
                    13,
                    Type::stream(0, 100, 1, Type::stream(0, 1, 100, Type::dense(0, 1))),
                ),
            ),
        );
        let before = t.data_bytes();
        let (canon, _) = simplify(t);
        assert_eq!(canon.data_bytes(), before);
    }

    #[test]
    fn already_canonical_is_untouched() {
        let t = Type::stream(0, 256, 13, Type::dense(0, 100));
        let (got, passes) = simplify(t.clone());
        assert_eq!(got, t);
        assert_eq!(passes, 1);
    }

    #[test]
    fn zero_count_stream_not_elided() {
        // count 0 denotes no data; it is not a single element and must
        // survive (pack treats it as a no-op)
        let t = Type::stream(0, 8, 0, Type::dense(0, 4));
        let (got, changed) = stream_elision(t.clone());
        assert!(!changed);
        assert_eq!(got, t);
    }

    #[test]
    fn negative_stride_stream_never_folds() {
        let t = Type::stream(0, -4, 4, Type::dense(0, 4));
        let (got, changed) = dense_folding(t);
        assert!(!changed, "{got}");
    }
}
