//! Type translation: MPI datatype → IR tree (paper §3.1, Algorithms 1–4).
//!
//! Translation sees the datatype exactly the way a real interposed library
//! must: through the MPI introspection interface (`MPI_Type_get_envelope`,
//! `MPI_Type_get_contents`, `MPI_Type_get_extent`, `MPI_Type_size`),
//! abstracted here as the [`Introspect`] trait. When driven through a
//! [`mpi_sim::RankCtx`] the calls are priced with the vendor's
//! introspection cost — which is why Fig. 6's commit overhead differs
//! across implementations even though TEMPI does identical work.

use mpi_sim::datatype::{Combiner, Contents, Datatype, Envelope, Order};
use mpi_sim::{MpiError, MpiResult, RankCtx, TypeRegistry};

use super::{BlockList, Type};

/// The introspection face of MPI that translation consumes.
pub trait Introspect {
    /// `MPI_Type_get_envelope`.
    fn envelope(&mut self, dt: Datatype) -> MpiResult<Envelope>;
    /// `MPI_Type_get_contents`.
    fn contents(&mut self, dt: Datatype) -> MpiResult<Contents>;
    /// `MPI_Type_get_extent` → `(lb, extent)`.
    fn extent(&mut self, dt: Datatype) -> MpiResult<(i64, i64)>;
    /// `MPI_Type_size`.
    fn type_size(&mut self, dt: Datatype) -> MpiResult<u64>;
}

impl Introspect for RankCtx {
    fn envelope(&mut self, dt: Datatype) -> MpiResult<Envelope> {
        self.get_envelope(dt)
    }
    fn contents(&mut self, dt: Datatype) -> MpiResult<Contents> {
        self.get_contents(dt)
    }
    fn extent(&mut self, dt: Datatype) -> MpiResult<(i64, i64)> {
        self.get_extent(dt)
    }
    fn type_size(&mut self, dt: Datatype) -> MpiResult<u64> {
        self.type_size(dt)
    }
}

impl Introspect for TypeRegistry {
    fn envelope(&mut self, dt: Datatype) -> MpiResult<Envelope> {
        self.get_envelope(dt)
    }
    fn contents(&mut self, dt: Datatype) -> MpiResult<Contents> {
        self.get_contents(dt)
    }
    fn extent(&mut self, dt: Datatype) -> MpiResult<(i64, i64)> {
        TypeRegistry::extent(self, dt)
    }
    fn type_size(&mut self, dt: Datatype) -> MpiResult<u64> {
        self.size(dt)
    }
}

/// Wrapper that counts introspection calls (Fig. 6 reports how many MPI
/// calls TEMPI's commit makes).
pub struct CountingIntrospect<'a, I: Introspect> {
    inner: &'a mut I,
    /// Number of introspection calls made through this wrapper.
    pub calls: u64,
}

impl<'a, I: Introspect> CountingIntrospect<'a, I> {
    /// Wrap an introspection source.
    pub fn new(inner: &'a mut I) -> Self {
        CountingIntrospect { inner, calls: 0 }
    }
}

impl<I: Introspect> Introspect for CountingIntrospect<'_, I> {
    fn envelope(&mut self, dt: Datatype) -> MpiResult<Envelope> {
        self.calls += 1;
        self.inner.envelope(dt)
    }
    fn contents(&mut self, dt: Datatype) -> MpiResult<Contents> {
        self.calls += 1;
        self.inner.contents(dt)
    }
    fn extent(&mut self, dt: Datatype) -> MpiResult<(i64, i64)> {
        self.calls += 1;
        self.inner.extent(dt)
    }
    fn type_size(&mut self, dt: Datatype) -> MpiResult<u64> {
        self.calls += 1;
        self.inner.type_size(dt)
    }
}

/// Result of translating an MPI datatype.
#[derive(Debug, Clone, PartialEq)]
pub enum Translated {
    /// The type denotes no bytes (a count-zero construction).
    Empty,
    /// A nested strided pattern — the representation the paper's kernels
    /// consume after canonicalization.
    Strided(Type),
    /// An irregular pattern captured as a block list (indexed-family
    /// extension, paper §8).
    Blocks(BlockList),
    /// A construction TEMPI does not accelerate (struct); handling falls
    /// through to the system MPI.
    Unsupported(Combiner),
}

/// Translate `dt` into the IR (Algorithms 1–4, plus the hvector, resized
/// and indexed/hindexed cases).
pub fn translate<I: Introspect>(intro: &mut I, dt: Datatype) -> MpiResult<Translated> {
    let env = intro.envelope(dt)?;
    match env.combiner {
        // Algorithm 1: named types are dense, offset 0.
        Combiner::Named => {
            let (_, extent) = intro.extent(dt)?;
            Ok(Translated::Strided(Type::dense(0, extent)))
        }
        Combiner::Dup => {
            let c = intro.contents(dt)?;
            translate(intro, c.datatypes[0])
        }
        // Algorithm 2: a contiguous type is a stream whose stride is the
        // element extent.
        Combiner::Contiguous => {
            let c = intro.contents(dt)?;
            let count = c.integers[0];
            let old = c.datatypes[0];
            let (_, ex) = intro.extent(old)?;
            wrap_stream(intro, old, &[(0, ex, count)])
        }
        // Algorithm 3: vector/hvector become two nested streams (blocks,
        // then elements within a block).
        Combiner::Vector => {
            let c = intro.contents(dt)?;
            let (count, blocklength, stride) = (c.integers[0], c.integers[1], c.integers[2]);
            let old = c.datatypes[0];
            let (_, ex) = intro.extent(old)?;
            wrap_stream(intro, old, &[(0, ex, blocklength), (0, ex * stride, count)])
        }
        Combiner::Hvector => {
            let c = intro.contents(dt)?;
            let (count, blocklength) = (c.integers[0], c.integers[1]);
            let stride_bytes = c.addresses[0];
            let old = c.datatypes[0];
            let (_, ex) = intro.extent(old)?;
            wrap_stream(
                intro,
                old,
                &[(0, ex, blocklength), (0, stride_bytes, count)],
            )
        }
        // Algorithm 4: each subarray dimension is a nested stream;
        // dimension strides are products of the faster dimensions' sizes.
        Combiner::Subarray => {
            let c = intro.contents(dt)?;
            let ndims = c.integers[0] as usize;
            let sizes = &c.integers[1..1 + ndims];
            let subsizes = &c.integers[1 + ndims..1 + 2 * ndims];
            let starts = &c.integers[1 + 2 * ndims..1 + 3 * ndims];
            let order = if c.integers[1 + 3 * ndims] == 0 {
                Order::C
            } else {
                Order::Fortran
            };
            let old = c.datatypes[0];
            let (_, ex) = intro.extent(old)?;
            // element stride of each dimension
            let mut strides = vec![1i64; ndims];
            match order {
                Order::C => {
                    for i in (0..ndims.saturating_sub(1)).rev() {
                        strides[i] = strides[i + 1] * sizes[i + 1];
                    }
                }
                Order::Fortran => {
                    for i in 1..ndims {
                        strides[i] = strides[i - 1] * sizes[i - 1];
                    }
                }
            }
            // innermost (fastest-varying) dimension first
            let dims_inner_first: Vec<usize> = match order {
                Order::C => (0..ndims).rev().collect(),
                Order::Fortran => (0..ndims).collect(),
            };
            let specs: Vec<(i64, i64, i64)> = dims_inner_first
                .iter()
                .map(|&d| (starts[d] * strides[d] * ex, strides[d] * ex, subsizes[d]))
                .collect();
            wrap_stream(intro, old, &specs)
        }
        Combiner::Resized => {
            let c = intro.contents(dt)?;
            translate(intro, c.datatypes[0])
        }
        // Indexed-family extension: flatten to a block list when the
        // element type itself reduces to a block list or dense run.
        Combiner::Indexed => {
            let c = intro.contents(dt)?;
            let count = c.integers[0] as usize;
            let bls = &c.integers[1..1 + count];
            let displs = &c.integers[1 + count..1 + 2 * count];
            let old = c.datatypes[0];
            let (_, ex) = intro.extent(old)?;
            let blocks: Vec<(i64, i64)> =
                bls.iter().zip(displs).map(|(&b, &d)| (d * ex, b)).collect();
            indexed_blocks(intro, old, &blocks)
        }
        Combiner::IndexedBlock => {
            let c = intro.contents(dt)?;
            let count = c.integers[0] as usize;
            let bl = c.integers[1];
            let displs = &c.integers[2..2 + count];
            let old = c.datatypes[0];
            let (_, ex) = intro.extent(old)?;
            let blocks: Vec<(i64, i64)> = displs.iter().map(|&d| (d * ex, bl)).collect();
            indexed_blocks(intro, old, &blocks)
        }
        Combiner::Hindexed => {
            let c = intro.contents(dt)?;
            let count = c.integers[0] as usize;
            let bls = &c.integers[1..1 + count];
            let old = c.datatypes[0];
            let blocks: Vec<(i64, i64)> = bls
                .iter()
                .zip(&c.addresses)
                .map(|(&b, &d)| (d, b))
                .collect();
            indexed_blocks(intro, old, &blocks)
        }
        Combiner::Struct => Ok(Translated::Unsupported(Combiner::Struct)),
    }
}

/// Wrap the translation of `old` in a chain of streams, innermost first:
/// each spec is `(off, stride, count)`. Handles empty and block-list
/// children; rejects unsupported ones.
fn wrap_stream<I: Introspect>(
    intro: &mut I,
    old: Datatype,
    specs: &[(i64, i64, i64)],
) -> MpiResult<Translated> {
    if specs.iter().any(|&(_, _, count)| count == 0) {
        return Ok(Translated::Empty);
    }
    match translate(intro, old)? {
        Translated::Empty => Ok(Translated::Empty),
        Translated::Unsupported(c) => Ok(Translated::Unsupported(c)),
        Translated::Strided(mut ty) => {
            for &(off, stride, count) in specs {
                ty = Type::stream(off, stride, count, ty);
            }
            Ok(Translated::Strided(ty))
        }
        Translated::Blocks(inner) => {
            // replicate the block list through each stream level
            let mut blocks = inner.blocks;
            for &(off, stride, count) in specs {
                let mut next = Vec::with_capacity(blocks.len() * count as usize);
                for i in 0..count {
                    let base = off + i * stride;
                    next.extend(blocks.iter().map(|&(o, l)| (base + o, l)));
                }
                blocks = next;
            }
            Ok(Translated::Blocks(BlockList { blocks }))
        }
    }
}

/// Build a block list for an indexed-family type with `(byte displacement,
/// element count)` blocks of element type `old`.
fn indexed_blocks<I: Introspect>(
    intro: &mut I,
    old: Datatype,
    blocks: &[(i64, i64)],
) -> MpiResult<Translated> {
    let (_, ex) = intro.extent(old)?;
    match translate(intro, old)? {
        Translated::Empty => Ok(Translated::Empty),
        Translated::Unsupported(c) => Ok(Translated::Unsupported(c)),
        Translated::Strided(ty) => {
            // Canonicalize the child, then enumerate its contiguous runs
            // per block element (prior work reduces *all* types this way;
            // TEMPI only does it for the indexed family).
            let canon = super::transform::simplify(ty).0;
            let Some(sb) = super::strided_block::strided_block(&canon) else {
                return Ok(Translated::Unsupported(Combiner::Indexed));
            };
            let mut out = Vec::new();
            for &(disp, bl) in blocks {
                if bl == 0 {
                    continue;
                }
                if sb.is_contiguous() && sb.block_bytes() == ex {
                    // elements tile: one run per block
                    out.push((disp + sb.start, (bl * ex) as u64));
                } else {
                    for j in 0..bl {
                        let elem_base = disp + j * ex;
                        sb.for_each_block(|off| {
                            out.push((elem_base + off, sb.block_bytes() as u64))
                        });
                    }
                }
            }
            if out.is_empty() {
                Ok(Translated::Empty)
            } else {
                Ok(Translated::Blocks(BlockList { blocks: out }))
            }
        }
        Translated::Blocks(inner) => {
            let mut out = Vec::new();
            for &(disp, bl) in blocks {
                for j in 0..bl {
                    let base = disp + j * ex;
                    out.extend(inner.blocks.iter().map(|&(o, l)| (base + o, l)));
                }
            }
            if out.is_empty() {
                Ok(Translated::Empty)
            } else {
                Ok(Translated::Blocks(BlockList { blocks: out }))
            }
        }
    }
}

/// Extension (paper §8): translate a *top-level* `MPI_Type_create_struct`
/// into a block list, so the block-list kernel can serve it instead of
/// falling back to copy-per-block. Members may be any construction that
/// itself translates to a strided pattern or a block list; a struct nested
/// *inside* another combiner still falls back (the paper's tree-only
/// analysis).
pub fn translate_struct_blocks<I: Introspect>(
    intro: &mut I,
    dt: Datatype,
) -> MpiResult<Translated> {
    let env = intro.envelope(dt)?;
    if env.combiner != Combiner::Struct {
        return translate(intro, dt);
    }
    let c = intro.contents(dt)?;
    let count = c.integers[0] as usize;
    let bls = &c.integers[1..1 + count];
    let mut out: Vec<(i64, u64)> = Vec::new();
    for ((&bl, &disp), &old) in bls.iter().zip(&c.addresses).zip(&c.datatypes) {
        if bl == 0 {
            continue;
        }
        match indexed_blocks(intro, old, &[(disp, bl)])? {
            Translated::Empty => {}
            Translated::Blocks(b) => out.extend(b.blocks),
            Translated::Unsupported(u) => return Ok(Translated::Unsupported(u)),
            Translated::Strided(_) => {
                return Err(MpiError::Internal(
                    "indexed_blocks returned a strided tree".to_string(),
                ))
            }
        }
    }
    if out.is_empty() {
        Ok(Translated::Empty)
    } else {
        Ok(Translated::Blocks(BlockList { blocks: out }))
    }
}

/// Convenience for tests and tools: translate expecting a strided tree.
pub fn translate_strided<I: Introspect>(intro: &mut I, dt: Datatype) -> MpiResult<Type> {
    match translate(intro, dt)? {
        Translated::Strided(t) => Ok(t),
        other => Err(MpiError::Internal(format!(
            "expected strided translation, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::consts::*;

    fn reg() -> TypeRegistry {
        TypeRegistry::new()
    }

    #[test]
    fn named_translates_to_dense() {
        let mut r = reg();
        let t = translate_strided(&mut r, MPI_FLOAT).unwrap();
        assert_eq!(t, Type::dense(0, 4));
    }

    #[test]
    fn contiguous_translates_to_stream_of_dense() {
        let mut r = reg();
        let dt = r.type_contiguous(100, MPI_FLOAT).unwrap();
        let t = translate_strided(&mut r, dt).unwrap();
        assert_eq!(t, Type::stream(0, 4, 100, Type::dense(0, 4)));
    }

    #[test]
    fn vector_translates_to_two_streams() {
        let mut r = reg();
        // Algorithm 3: outer stride = extent × stride
        let dt = r.type_vector(13, 100, 128, MPI_FLOAT).unwrap();
        let t = translate_strided(&mut r, dt).unwrap();
        assert_eq!(
            t,
            Type::stream(0, 4 * 128, 13, Type::stream(0, 4, 100, Type::dense(0, 4)))
        );
    }

    #[test]
    fn hvector_stride_taken_verbatim() {
        let mut r = reg();
        let dt = r.type_create_hvector(13, 1, 256, MPI_BYTE).unwrap();
        let t = translate_strided(&mut r, dt).unwrap();
        assert_eq!(
            t,
            Type::stream(0, 256, 13, Type::stream(0, 1, 1, Type::dense(0, 1)))
        );
    }

    #[test]
    fn fig2_top_construction() {
        // subarray{sizes:[512,256]→(256,512 in paper's (A0,A1) order),
        // subsizes 13,100} then vector(47,1,1,plane): the paper's first
        // fragment. Expect the exact IR of Fig. 2 (top right).
        let mut r = reg();
        let plane = r
            .type_create_subarray(&[512, 256], &[13, 100], &[0, 0], Order::C, MPI_BYTE)
            .unwrap();
        let cuboid = r.type_vector(47, 1, 1, plane).unwrap();
        let t = translate_strided(&mut r, cuboid).unwrap();
        // vector over plane: extent(plane) = 512*256 = 131072
        assert_eq!(
            t,
            Type::stream(
                0,
                131072,
                47,
                Type::stream(
                    0,
                    131072,
                    1,
                    Type::stream(0, 256, 13, Type::stream(0, 1, 100, Type::dense(0, 1)))
                )
            )
        );
    }

    #[test]
    fn fig2_middle_construction() {
        // row = vector(100,1,1,BYTE); plane = hvector(13,1,256,row);
        // cuboid = hvector(47,1,131072,plane)
        let mut r = reg();
        let row = r.type_vector(100, 1, 1, MPI_BYTE).unwrap();
        let plane = r.type_create_hvector(13, 1, 256, row).unwrap();
        let cuboid = r.type_create_hvector(47, 1, 256 * 512, plane).unwrap();
        let t = translate_strided(&mut r, cuboid).unwrap();
        assert_eq!(
            t,
            Type::stream(
                0,
                131072,
                47,
                Type::stream(
                    0,
                    3172, // extent(plane) = 12*256 + 100
                    1,
                    Type::stream(
                        0,
                        256,
                        13,
                        Type::stream(
                            0,
                            100, // extent(row)
                            1,
                            Type::stream(0, 1, 100, Type::stream(0, 1, 1, Type::dense(0, 1)))
                        )
                    )
                )
            )
        );
    }

    #[test]
    fn fig2_bottom_construction() {
        // single 3D subarray
        let mut r = reg();
        let cuboid = r
            .type_create_subarray(
                &[1024, 512, 256],
                &[47, 13, 100],
                &[0, 0, 0],
                Order::C,
                MPI_BYTE,
            )
            .unwrap();
        let t = translate_strided(&mut r, cuboid).unwrap();
        assert_eq!(
            t,
            Type::stream(
                0,
                131072,
                47,
                Type::stream(0, 256, 13, Type::stream(0, 1, 100, Type::dense(0, 1)))
            )
        );
    }

    #[test]
    fn subarray_starts_become_offsets() {
        let mut r = reg();
        let dt = r
            .type_create_subarray(&[8, 16], &[2, 4], &[3, 5], Order::C, MPI_FLOAT)
            .unwrap();
        let t = translate_strided(&mut r, dt).unwrap();
        // inner dim (fastest): stride 4, count 4, off 5*4=20
        // outer dim: stride 16*4=64, count 2, off 3*64=192
        assert_eq!(
            t,
            Type::stream(192, 64, 2, Type::stream(20, 4, 4, Type::dense(0, 4)))
        );
    }

    #[test]
    fn fortran_subarray_reverses_dims() {
        let mut r = reg();
        let c_dt = r
            .type_create_subarray(&[16, 8], &[4, 2], &[0, 0], Order::C, MPI_BYTE)
            .unwrap();
        let f_dt = r
            .type_create_subarray(&[8, 16], &[2, 4], &[0, 0], Order::Fortran, MPI_BYTE)
            .unwrap();
        assert_eq!(
            translate_strided(&mut r, c_dt).unwrap(),
            translate_strided(&mut r, f_dt).unwrap()
        );
    }

    #[test]
    fn zero_count_translates_to_empty() {
        let mut r = reg();
        let dt = r.type_contiguous(0, MPI_INT).unwrap();
        assert_eq!(translate(&mut r, dt).unwrap(), Translated::Empty);
        let dt = r.type_vector(0, 4, 8, MPI_INT).unwrap();
        assert_eq!(translate(&mut r, dt).unwrap(), Translated::Empty);
        let dt = r.type_vector(4, 0, 8, MPI_INT).unwrap();
        assert_eq!(translate(&mut r, dt).unwrap(), Translated::Empty);
    }

    #[test]
    fn dup_and_resized_are_transparent() {
        let mut r = reg();
        let v = r.type_vector(4, 2, 8, MPI_INT).unwrap();
        let d = r.type_dup(v).unwrap();
        let rz = r.type_create_resized(v, -8, 999).unwrap();
        let tv = translate(&mut r, v).unwrap();
        assert_eq!(translate(&mut r, d).unwrap(), tv);
        assert_eq!(translate(&mut r, rz).unwrap(), tv);
    }

    #[test]
    fn hindexed_becomes_blocklist() {
        let mut r = reg();
        let dt = r.type_create_hindexed(&[2, 3], &[100, 0], MPI_INT).unwrap();
        match translate(&mut r, dt).unwrap() {
            Translated::Blocks(b) => {
                assert_eq!(b.blocks, vec![(100, 8), (0, 12)]);
            }
            other => panic!("expected blocks, got {other:?}"),
        }
    }

    #[test]
    fn indexed_with_strided_child_flattens_per_element() {
        let mut r = reg();
        // element type: vector with a hole (extent 12, data 8)
        let v = r.type_vector(2, 1, 2, MPI_FLOAT).unwrap();
        let dt = r.type_indexed(&[2], &[1], v).unwrap();
        match translate(&mut r, dt).unwrap() {
            Translated::Blocks(b) => {
                // displacement 1 element = extent(v) = 12 bytes; 2 elements,
                // each contributing dense leaves at +0 and +8
                assert_eq!(b.blocks, vec![(12, 4), (20, 4), (24, 4), (32, 4)]);
            }
            other => panic!("expected blocks, got {other:?}"),
        }
    }

    #[test]
    fn struct_is_unsupported() {
        let mut r = reg();
        let dt = r
            .type_create_struct(&[1, 1], &[0, 8], &[MPI_INT, MPI_DOUBLE])
            .unwrap();
        assert_eq!(
            translate(&mut r, dt).unwrap(),
            Translated::Unsupported(Combiner::Struct)
        );
    }

    #[test]
    fn vector_of_hindexed_replicates_blocks() {
        let mut r = reg();
        let h = r.type_create_hindexed(&[1, 1], &[4, 0], MPI_BYTE).unwrap();
        // extent(h) = 5
        let v = r.type_vector(2, 1, 2, h).unwrap(); // stride 2 elements = 10 B
        match translate(&mut r, v).unwrap() {
            Translated::Blocks(b) => {
                assert_eq!(b.blocks, vec![(4, 1), (0, 1), (14, 1), (10, 1)]);
            }
            other => panic!("expected blocks, got {other:?}"),
        }
    }

    #[test]
    fn counting_introspect_counts() {
        let mut r = reg();
        let dt = r.type_vector(4, 2, 8, MPI_FLOAT).unwrap();
        let mut c = CountingIntrospect::new(&mut r);
        translate(&mut c, dt).unwrap();
        // vector: envelope + contents + extent(old) + child: envelope + extent
        assert_eq!(c.calls, 5);
    }
}
