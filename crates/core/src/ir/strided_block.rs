//! Conversion of a canonical IR tree to a `StridedBlock` (paper §3.3,
//! Algorithm 8).
//!
//! A [`StridedBlock`] is "semantically similar to an MPI subarray": a
//! `start` byte offset, plus per-dimension `counts` and `strides`.
//! Dimension 0 is the contiguous innermost run — `counts[0]` is its byte
//! length and `strides[0]` is always 1 — and each higher dimension `d`
//! repeats the structure below it `counts[d]` times, `strides[d]` bytes
//! apart. It exists only to parameterize kernel selection: no tree or
//! metadata ever reaches the (simulated) GPU, just these scalars.

use serde::{Deserialize, Serialize};

use super::{Type, TypeData};

/// The canonical N-dimensional strided object (paper §3.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StridedBlock {
    /// Byte offset between the type's lower bound and the first byte.
    pub start: i64,
    /// `counts[0]` is bytes in the contiguous innermost run; `counts[d]`
    /// (d ≥ 1) is the element count of dimension `d`.
    pub counts: Vec<i64>,
    /// `strides[0] == 1`; `strides[d]` is bytes between the starts of
    /// dimension `d`'s repetitions.
    pub strides: Vec<i64>,
}

impl StridedBlock {
    /// Number of dimensions (1 = fully contiguous).
    pub fn ndims(&self) -> usize {
        self.counts.len()
    }

    /// Is the object a single contiguous run?
    pub fn is_contiguous(&self) -> bool {
        self.ndims() == 1
    }

    /// Total data bytes of one object.
    pub fn data_bytes(&self) -> i64 {
        self.counts.iter().product()
    }

    /// Byte length of the contiguous innermost block.
    pub fn block_bytes(&self) -> i64 {
        self.counts[0]
    }

    /// Number of contiguous blocks in one object.
    pub fn block_count(&self) -> i64 {
        self.counts[1..].iter().product()
    }

    /// Byte offset (from the type origin) of the `i`-th contiguous block
    /// in layout order — the mixed-radix decomposition of `i` over
    /// `counts[1..]` (dimension 1 fastest). Used by the pipelined path to
    /// address block sub-ranges.
    pub fn block_offset(&self, i: i64) -> i64 {
        let mut off = self.start;
        let mut rest = i;
        for d in 1..self.ndims() {
            off += (rest % self.counts[d]) * self.strides[d];
            rest /= self.counts[d];
        }
        debug_assert_eq!(rest, 0, "block index {i} out of range");
        off
    }

    /// Visit the byte offset (from the type origin) of every contiguous
    /// innermost run, in layout order — the loop structure the packing
    /// kernels execute.
    pub fn for_each_block(&self, mut f: impl FnMut(i64)) {
        let dims = self.ndims() - 1; // outer dimensions
        let mut idx = vec![0i64; dims];
        loop {
            let off: i64 = self.start
                + idx
                    .iter()
                    .zip(&self.strides[1..])
                    .map(|(&i, &s)| i * s)
                    .sum::<i64>();
            f(off);
            // odometer: dimension 1 (innermost outer dimension) fastest
            let mut d = 0;
            loop {
                if d == dims {
                    return;
                }
                idx[d] += 1;
                if idx[d] < self.counts[d + 1] {
                    break;
                }
                idx[d] = 0;
                d += 1;
            }
        }
    }
}

/// Algorithm 8: convert a canonical chain (Dense leaf under zero or more
/// Streams) into a [`StridedBlock`]. Returns `None` for trees that are not
/// such a chain ("Not strided" in the paper — those fall back to other
/// handling).
pub fn strided_block(ty: &Type) -> Option<StridedBlock> {
    // Walk to the leaf, collecting nodes root→leaf.
    let mut datas: Vec<&Type> = Vec::new();
    let mut cur = ty;
    loop {
        datas.push(cur);
        match cur.children.len() {
            0 => break,
            1 => cur = &cur.children[0],
            _ => return None, // not a chain
        }
    }
    // Leaf-first: dimension 0 must be dense, the rest streams.
    let mut sb = StridedBlock {
        start: 0,
        counts: Vec::with_capacity(datas.len()),
        strides: Vec::with_capacity(datas.len()),
    };
    for (i, node) in datas.iter().rev().enumerate() {
        match (i, &node.data) {
            (0, TypeData::Dense(d)) => {
                sb.start = d.off;
                sb.counts.push(d.extent);
                sb.strides.push(1);
            }
            (0, TypeData::Stream(_)) => return None, // leaf must be dense
            (_, TypeData::Stream(s)) => {
                sb.start += s.off;
                sb.counts.push(s.count);
                sb.strides.push(s.stride);
            }
            (_, TypeData::Dense(_)) => return None, // dense above leaf
        }
    }
    Some(sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::transform::simplify;

    #[test]
    fn dense_leaf_is_1d() {
        let sb = strided_block(&Type::dense(16, 400)).unwrap();
        assert_eq!(
            sb,
            StridedBlock {
                start: 16,
                counts: vec![400],
                strides: vec![1]
            }
        );
        assert!(sb.is_contiguous());
        assert_eq!(sb.data_bytes(), 400);
        assert_eq!(sb.block_count(), 1);
    }

    #[test]
    fn two_level_chain_is_2d() {
        let t = Type::stream(0, 512, 13, Type::dense(0, 400));
        let sb = strided_block(&t).unwrap();
        assert_eq!(sb.counts, vec![400, 13]);
        assert_eq!(sb.strides, vec![1, 512]);
        assert_eq!(sb.block_bytes(), 400);
        assert_eq!(sb.block_count(), 13);
        assert_eq!(sb.data_bytes(), 5200);
    }

    #[test]
    fn three_level_chain_is_3d_with_offsets_accumulated() {
        let t = Type::stream(
            1024,
            131072,
            47,
            Type::stream(8, 256, 13, Type::dense(2, 100)),
        );
        let sb = strided_block(&t).unwrap();
        assert_eq!(sb.start, 1024 + 8 + 2);
        assert_eq!(sb.counts, vec![100, 13, 47]);
        assert_eq!(sb.strides, vec![1, 256, 131072]);
    }

    #[test]
    fn canonicalized_fig2_constructions_yield_identical_blocks() {
        let top = Type::stream(
            0,
            131072,
            47,
            Type::stream(
                0,
                131072,
                1,
                Type::stream(0, 256, 13, Type::stream(0, 1, 100, Type::dense(0, 1))),
            ),
        );
        let bottom = Type::stream(
            0,
            131072,
            47,
            Type::stream(0, 256, 13, Type::stream(0, 1, 100, Type::dense(0, 1))),
        );
        let a = strided_block(&simplify(top).0).unwrap();
        let b = strided_block(&simplify(bottom).0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.counts, vec![100, 13, 47]);
    }

    #[test]
    fn non_chain_rejected() {
        let mut t = Type::stream(0, 8, 2, Type::dense(0, 4));
        t.children.push(Type::dense(0, 4));
        assert_eq!(strided_block(&t), None);
    }

    #[test]
    fn stream_leaf_rejected() {
        // a Stream with no children is malformed — "not strided"
        let t = Type {
            data: TypeData::Stream(crate::ir::StreamData {
                off: 0,
                stride: 4,
                count: 4,
            }),
            children: vec![],
        };
        assert_eq!(strided_block(&t), None);
    }

    #[test]
    fn block_offset_matches_for_each_block() {
        let sb = StridedBlock {
            start: 7,
            counts: vec![16, 3, 4],
            strides: vec![1, 100, 1000],
        };
        let mut seq = Vec::new();
        sb.for_each_block(|o| seq.push(o));
        assert_eq!(seq.len(), 12);
        for (i, &o) in seq.iter().enumerate() {
            assert_eq!(sb.block_offset(i as i64), o, "block {i}");
        }
    }

    #[test]
    fn uncanonicalized_tree_still_converts_with_extra_dims() {
        // Without simplify, a vector's inner count-1 stream adds a
        // dimension — legal, just worse (the canonicalization ablation
        // measures exactly this).
        let t = Type::stream(0, 256, 13, Type::stream(0, 1, 1, Type::dense(0, 1)));
        let sb = strided_block(&t).unwrap();
        assert_eq!(sb.counts, vec![1, 1, 13]);
        assert_eq!(sb.strides, vec![1, 1, 256]);
    }
}
